//! The lossy controller ↔ node transport: a seeded `FaultPlan`
//! interpreter.
//!
//! Every message between the controller and a node crosses one logical
//! link whose behaviour the plan dictates: severed entirely while the
//! node is crashed or partitioned, otherwise dropped with the link's loss
//! probability or delivered after a delay drawn from the link's bounds
//! (unequal draws are what reorders messages). All RNG draws happen here,
//! serially, in the driver's deterministic event order — worker threads
//! never touch the RNG, so the delivery schedule is a pure function of
//! `(plan, seed)` regardless of `NWDP_THREADS`.
//!
//! Severance is checked at *send* time here and re-checked at delivery
//! time by the driver (a push launched just before a crash must not
//! install on a dead node); in-flight messages crossing a partition
//! boundary within one delay are treated as lost at whichever end was
//! cut.

use nwdp_core::resilience::FaultPlan;
use nwdp_topo::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// What the network decided to do with one message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SendOutcome {
    /// Arrives at the given instant.
    Delivered { at: f64 },
    /// Dropped by link loss.
    DroppedLoss,
    /// Dropped because the path is severed (crash or partition).
    DroppedCut,
}

/// Seeded per-run transport state.
pub struct Transport {
    plan: FaultPlan,
    rng: StdRng,
}

impl Transport {
    pub fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed ^ 0x7a6e_5000_11d5_c0de);
        Transport { plan, rng }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of one message on the controller ↔ `node` link at
    /// `now`. Exactly one Bernoulli draw per live-path message and one
    /// delay draw per delivered message, in call order — the draw
    /// sequence is part of the determinism contract.
    pub fn send(&mut self, node: NodeId, now: f64) -> SendOutcome {
        if self.plan.cut(node, now) {
            return SendOutcome::DroppedCut;
        }
        let link = self.plan.link(node);
        if self.rng.random_bool(link.drop_p) {
            return SendOutcome::DroppedLoss;
        }
        let delay = if link.delay_max > link.delay_min {
            self.rng.random_range(link.delay_min..link.delay_max)
        } else {
            link.delay_min
        };
        SendOutcome::Delivered { at: now + delay }
    }

    /// Is the path to `node` severed at `now`? Used by the driver for the
    /// delivery-time re-check.
    pub fn cut(&self, node: NodeId, now: f64) -> bool {
        self.plan.cut(node, now)
    }

    /// Largest delay any live link can impose — the heartbeat monitor's
    /// grace allowance.
    pub fn max_delay(&self) -> f64 {
        self.plan
            .overrides
            .iter()
            .map(|(_, l)| l.delay_max)
            .fold(self.plan.link.delay_max, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwdp_core::resilience::faultplan::Partition;

    #[test]
    fn clean_plan_delivers_everything_with_fixed_delay() {
        let mut tx = Transport::new(FaultPlan::clean(3));
        for k in 0..50 {
            let now = k as f64 * 0.01;
            match tx.send(NodeId(k % 5), now) {
                SendOutcome::Delivered { at } => assert!((at - now - 0.001).abs() < 1e-12),
                other => panic!("clean plan dropped a message: {other:?}"),
            }
        }
    }

    #[test]
    fn loss_rate_and_determinism() {
        let plan = FaultPlan::lossy(0.3, 0.001, 0.004, 9);
        let mut a = Transport::new(plan.clone());
        let mut b = Transport::new(plan);
        let mut dropped = 0;
        for k in 0..2000 {
            let now = k as f64 * 1e-4;
            let oa = a.send(NodeId(0), now);
            assert_eq!(oa, b.send(NodeId(0), now), "same seed, same fate");
            match oa {
                SendOutcome::DroppedLoss => dropped += 1,
                SendOutcome::Delivered { at } => {
                    assert!(at - now >= 0.001 - 1e-12 && at - now < 0.004 + 1e-12);
                }
                SendOutcome::DroppedCut => panic!("no cuts in a lossy-only plan"),
            }
        }
        let rate = dropped as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "empirical loss {rate} far from 0.3");
    }

    #[test]
    fn cuts_beat_loss() {
        let mut plan = FaultPlan::clean(1);
        plan.partitions.push(Partition { nodes: vec![NodeId(2)], from: 0.4, until: 0.6 });
        plan.crashes.push((NodeId(1), 0.5));
        let mut tx = Transport::new(plan);
        assert!(matches!(tx.send(NodeId(2), 0.5), SendOutcome::DroppedCut));
        assert!(matches!(tx.send(NodeId(2), 0.7), SendOutcome::Delivered { .. }));
        assert!(matches!(tx.send(NodeId(1), 0.9), SendOutcome::DroppedCut));
        assert!(tx.cut(NodeId(1), 0.9));
        assert!(!tx.cut(NodeId(0), 0.9));
        assert!((tx.max_delay() - 0.001).abs() < 1e-12);
    }
}
