/root/repo/target/debug/examples/nids_enterprise-2dad2f18ad70633f.d: examples/nids_enterprise.rs

/root/repo/target/debug/examples/nids_enterprise-2dad2f18ad70633f: examples/nids_enterprise.rs

examples/nids_enterprise.rs:
