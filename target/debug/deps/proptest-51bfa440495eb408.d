/root/repo/target/debug/deps/proptest-51bfa440495eb408.d: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs

/root/repo/target/debug/deps/proptest-51bfa440495eb408: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs

crates/proptest/src/lib.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/strategy.rs:
