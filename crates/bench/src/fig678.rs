//! Figs 6–8 — the network-wide evaluation on Internet2.
//!
//! Fig 6: max per-node memory/CPU as NIDS module count grows (9 → 21,
//! duplicates of HTTP/IRC/Login/TFTP), 100 k sessions.
//! Fig 7: max per-node memory/CPU as traffic volume grows (20 k → 100 k
//! sessions), 21 modules.
//! Fig 8: per-node memory/CPU for 100 k sessions and 21 modules — the
//! edge-only hotspot (node 11 = New York) vs the coordinated spread.

use crate::output::{f2, Table};
use crate::scenario::{NidsContext, Scale};
use nwdp_engine::{run_coordinated, run_edge_only, NetworkRun, Placement};
use nwdp_hash::KeyedHasher;

const MB: f64 = 1024.0 * 1024.0;
/// CPU-cycles → the paper's "utilization × time" style unit (arbitrary
/// linear scale; only relative magnitudes matter).
const CPU_UNIT: f64 = 1.0e9;

/// One (config) → (edge max, coord max) measurement pair.
#[derive(Debug, Clone)]
pub struct NetwidePoint {
    pub x: usize,
    pub edge_max_cpu: f64,
    pub coord_max_cpu: f64,
    pub edge_max_mem: f64,
    pub coord_max_mem: f64,
}

fn one_run(
    ctx: &NidsContext,
    n_modules: usize,
    sessions: usize,
    seed: u64,
) -> (NetworkRun, NetworkRun) {
    let dep = ctx.deployment(n_modules);
    let (_assignment, manifest) = ctx.manifests(&dep);
    let trace = ctx.trace(sessions, seed);
    let h = KeyedHasher::with_key(0xC0DE);
    let edge = run_edge_only(&dep, &trace, h).expect("evaluation classes are registered");
    let coord = run_coordinated(&dep, &manifest, &ctx.paths, &trace, Placement::EventEngine, h)
        .expect("evaluation classes are registered");
    (edge, coord)
}

/// Fig 6: sweep the module count (one scoped thread per sweep point).
pub fn fig6(scale: Scale) -> Vec<NetwidePoint> {
    let ctx = NidsContext::internet2();
    let sessions = scale.netwide_sessions();
    let modules = scale.fig6_modules();
    nwdp_core::parallel::par_map(&modules, |_, &m| {
        let (edge, coord) = one_run(&ctx, m, sessions, 7000 + m as u64);
        NetwidePoint {
            x: m,
            edge_max_cpu: edge.max_cpu() as f64 / CPU_UNIT,
            coord_max_cpu: coord.max_cpu() as f64 / CPU_UNIT,
            edge_max_mem: edge.max_mem() as f64 / MB,
            coord_max_mem: coord.max_mem() as f64 / MB,
        }
    })
}

/// Fig 7: sweep the traffic volume at 21 modules (one scoped thread per
/// sweep point).
pub fn fig7(scale: Scale) -> Vec<NetwidePoint> {
    let ctx = NidsContext::internet2();
    let volumes = scale.fig7_volumes();
    nwdp_core::parallel::par_map(&volumes, |_, &v| {
        let (edge, coord) = one_run(&ctx, 21, v, 9000 + v as u64);
        NetwidePoint {
            x: v,
            edge_max_cpu: edge.max_cpu() as f64 / CPU_UNIT,
            coord_max_cpu: coord.max_cpu() as f64 / CPU_UNIT,
            edge_max_mem: edge.max_mem() as f64 / MB,
            coord_max_mem: coord.max_mem() as f64 / MB,
        }
    })
}

/// Fig 8: per-node loads at the largest configuration.
pub struct Fig8Result {
    /// (node id 1-based, node name, edge cpu, coord cpu, edge mem MB,
    /// coord mem MB)
    pub rows: Vec<(usize, String, f64, f64, f64, f64)>,
}

pub fn fig8(scale: Scale) -> Fig8Result {
    let ctx = NidsContext::internet2();
    let (edge, coord) = one_run(&ctx, 21, scale.netwide_sessions(), 4242);
    let rows = (0..ctx.topo.num_nodes())
        .map(|j| {
            (
                j + 1,
                ctx.topo.node(nwdp_topo::NodeId(j)).name.clone(),
                edge.per_node[j].cpu_cycles as f64 / CPU_UNIT,
                coord.per_node[j].cpu_cycles as f64 / CPU_UNIT,
                edge.per_node[j].mem_peak as f64 / MB,
                coord.per_node[j].mem_peak as f64 / MB,
            )
        })
        .collect();
    Fig8Result { rows }
}

pub fn table6(points: &[NetwidePoint]) -> Table {
    let mut t = Table::new(
        "Fig 6: max per-node load vs number of NIDS modules (100k-session class)",
        &["modules", "edge max CPU", "coord max CPU", "edge max mem (MB)", "coord max mem (MB)"],
    );
    for p in points {
        t.row(vec![
            p.x.to_string(),
            f2(p.edge_max_cpu),
            f2(p.coord_max_cpu),
            f2(p.edge_max_mem),
            f2(p.coord_max_mem),
        ]);
    }
    t
}

pub fn table7(points: &[NetwidePoint]) -> Table {
    let mut t = Table::new(
        "Fig 7: max per-node load vs total traffic volume (21 modules)",
        &["sessions", "edge max CPU", "coord max CPU", "edge max mem (MB)", "coord max mem (MB)"],
    );
    for p in points {
        t.row(vec![
            p.x.to_string(),
            f2(p.edge_max_cpu),
            f2(p.coord_max_cpu),
            f2(p.edge_max_mem),
            f2(p.coord_max_mem),
        ]);
    }
    t
}

pub fn table8(r: &Fig8Result) -> Table {
    let mut t = Table::new(
        "Fig 8: per-node load (21 modules)",
        &["node", "city", "edge CPU", "coord CPU", "edge mem (MB)", "coord mem (MB)"],
    );
    for (id, name, ec, cc, em, cm) in &r.rows {
        t.row(vec![id.to_string(), name.clone(), f2(*ec), f2(*cc), f2(*em), f2(*cm)]);
    }
    t
}
