/root/repo/target/debug/deps/equivalence-a015cd65b49924e1.d: crates/engine/tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-a015cd65b49924e1: crates/engine/tests/equivalence.rs

crates/engine/tests/equivalence.rs:
