//! Network-wide NIDS deployment (paper §2): the assignment LP, sampling
//! manifests, and the redundancy extension.

pub mod lp;
pub mod manifest;
pub mod manifest_io;

pub use lp::{
    edge_only_loads, loads_from_assignment, solve_nids_lp, solve_nids_lp_excluding,
    solve_nids_lp_warm, NidsAssignment, NidsError, NidsLpConfig, NodeCaps,
};
pub use manifest::{
    generate_manifests, validate_manifests, validate_manifests_excluding, CapacityCeiling,
    ManifestEntry, ManifestValidationError, SamplingManifest,
};
pub use manifest_io::{node_manifest_from_text, node_manifest_to_text, NodeManifest};
pub use nwdp_lp::WarmStart;
