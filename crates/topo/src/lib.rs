//! # nwdp-topo — topology & routing substrate
//!
//! Network topologies, deterministic shortest-path routing, and the path
//! database the optimization layers consume. Includes the Internet2 and
//! GÉANT reference backbones used by the paper's evaluations, seeded
//! Rocketfuel-like ISP stand-ins (AS 1221 / 1239 / 3257), and synthetic
//! generators (Waxman, ring, star, line) for tests and scaling studies.

pub mod builtin;
pub mod generate;
pub mod graph;
pub mod io;
pub mod rocketfuel;
pub mod routing;

pub use builtin::{geant, internet2};
pub use generate::{line, ring, star, waxman};
pub use graph::{Link, Node, NodeId, Topology};
pub use io::{from_text, to_text};
pub use rocketfuel::{as1221, as1239, as3257};
pub use routing::{Path, PathDb};
