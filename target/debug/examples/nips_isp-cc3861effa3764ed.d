/root/repo/target/debug/examples/nips_isp-cc3861effa3764ed.d: examples/nips_isp.rs

/root/repo/target/debug/examples/nips_isp-cc3861effa3764ed: examples/nips_isp.rs

examples/nips_isp.rs:
