/root/repo/target/debug/deps/proptest-8641a706c48b066a.d: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-8641a706c48b066a.rmeta: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs Cargo.toml

crates/proptest/src/lib.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
