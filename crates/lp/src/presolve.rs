//! LP presolve: cheap problem reductions applied before the simplex.
//!
//! Opt-in (`reduce` → solve → `restore`): the deployment formulations
//! produce many structurally-trivial elements — variables fixed by their
//! bounds, empty rows, singleton rows that are really bounds — and
//! removing them shrinks the basis the simplex must manage. The reduction
//! is conservative and reversible; `restore` maps a reduced solution back
//! to the original variable space.

use crate::model::{Cmp, Problem, VarId};
use crate::solution::{Solution, Status};

/// Outcome of presolving.
pub struct Reduced {
    /// The reduced problem (possibly identical).
    pub problem: Problem,
    /// For each original variable: `Keep(new index)` or `Fixed(value)`.
    map: Vec<Disposition>,
    /// Rows kept (original indices, in reduced order).
    rows_kept: Vec<usize>,
    n_orig_vars: usize,
    n_orig_rows: usize,
    /// Objective contribution of fixed variables.
    fixed_obj: f64,
    /// Detected infeasibility during reduction.
    pub infeasible: bool,
}

#[derive(Debug, Clone, Copy)]
enum Disposition {
    Keep(usize),
    Fixed(f64),
}

/// Statistics from a reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PresolveStats {
    pub vars_fixed: usize,
    pub rows_dropped: usize,
    pub bounds_tightened: usize,
}

impl Reduced {
    /// Map a solution of the reduced problem back to original indices.
    pub fn restore(&self, sol: &Solution) -> Solution {
        if sol.status != Status::Optimal {
            return Solution {
                status: sol.status,
                objective: sol.objective,
                x: self
                    .map
                    .iter()
                    .map(|d| match d {
                        Disposition::Keep(j) => sol.x.get(*j).copied().unwrap_or(0.0),
                        Disposition::Fixed(v) => *v,
                    })
                    .collect(),
                duals: vec![0.0; self.n_orig_rows],
                iterations: sol.iterations,
            };
        }
        let x: Vec<f64> = self
            .map
            .iter()
            .map(|d| match d {
                Disposition::Keep(j) => sol.x[*j],
                Disposition::Fixed(v) => *v,
            })
            .collect();
        let mut duals = vec![0.0; self.n_orig_rows];
        for (new, &orig) in self.rows_kept.iter().enumerate() {
            duals[orig] = sol.duals[new];
        }
        Solution {
            status: sol.status,
            objective: sol.objective + self.fixed_obj,
            x,
            duals,
            iterations: sol.iterations,
        }
    }

    pub fn stats(&self) -> PresolveStats {
        PresolveStats {
            vars_fixed: self.map.iter().filter(|d| matches!(d, Disposition::Fixed(_))).count(),
            rows_dropped: self.n_orig_rows - self.rows_kept.len(),
            bounds_tightened: 0, // folded into var fixing in this pass
        }
    }

    pub fn num_orig_vars(&self) -> usize {
        self.n_orig_vars
    }
}

/// Reduce `p`: fix variables with `lb == ub`, drop empty rows (checking
/// their trivial feasibility), and convert singleton rows into bounds on
/// their single variable.
pub fn reduce(p: &Problem) -> Reduced {
    let n = p.num_vars();
    let m = p.num_cons();
    let tol = 1e-11;

    // Pass 1: dispositions for fixed variables.
    let mut map = Vec::with_capacity(n);
    let mut fixed_obj = 0.0;
    let mut lb: Vec<f64> = Vec::with_capacity(n);
    let mut ub: Vec<f64> = Vec::with_capacity(n);
    for j in 0..n {
        let v = p.var_id(j);
        let (l, u) = p.var_bounds(v);
        lb.push(l);
        ub.push(u);
        if (u - l).abs() <= tol {
            map.push(Disposition::Fixed(l));
            fixed_obj += 0.0; // filled after we know objectives
        } else {
            map.push(Disposition::Keep(usize::MAX)); // index assigned later
        }
    }

    // Row scan: compute constant contribution of fixed vars per row;
    // detect empty and singleton rows.
    let mut row_terms: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
    for j in 0..n {
        for &(row, a) in &p.cols[j] {
            row_terms[row].push((j, a));
        }
    }
    let mut infeasible = false;
    let mut rows_kept = Vec::new();
    // Singleton rows become bound tightenings.
    for (i, terms) in row_terms.iter().enumerate() {
        let live: Vec<&(usize, f64)> =
            terms.iter().filter(|(j, _)| matches!(map[*j], Disposition::Keep(_))).collect();
        let fixed_part: f64 = terms
            .iter()
            .filter_map(|(j, a)| match map[*j] {
                Disposition::Fixed(v) => Some(a * v),
                Disposition::Keep(_) => None,
            })
            .sum();
        let rhs = p.cons[i].rhs - fixed_part;
        let cmp = p.cons[i].cmp;
        match live.len() {
            0 => {
                // Empty row: feasible constant or infeasible problem.
                let viol = match cmp {
                    Cmp::Le => -rhs,
                    Cmp::Ge => rhs,
                    Cmp::Eq => rhs.abs(),
                };
                if viol > 1e-7 {
                    infeasible = true;
                }
            }
            1 => {
                let &&(j, a) = live.first().expect("len checked");
                // a * x cmp rhs → bound on x.
                let b = rhs / a;
                match (cmp, a > 0.0) {
                    (Cmp::Le, true) | (Cmp::Ge, false) => ub[j] = ub[j].min(b),
                    (Cmp::Le, false) | (Cmp::Ge, true) => lb[j] = lb[j].max(b),
                    (Cmp::Eq, _) => {
                        lb[j] = lb[j].max(b);
                        ub[j] = ub[j].min(b);
                    }
                }
                if lb[j] > ub[j] + 1e-9 {
                    infeasible = true;
                }
            }
            _ => rows_kept.push(i),
        }
    }

    // Variables that became fixed through singleton tightening.
    for j in 0..n {
        if matches!(map[j], Disposition::Keep(_)) && (ub[j] - lb[j]).abs() <= tol {
            map[j] = Disposition::Fixed(lb[j]);
        }
        if lb[j] > ub[j] + 1e-9 {
            infeasible = true;
        }
    }
    if infeasible {
        // Don't build a reduced problem with crossed bounds; callers must
        // consult `infeasible` first.
        return Reduced {
            problem: Problem::new(p.sense()),
            map: (0..n).map(|_| Disposition::Fixed(0.0)).collect(),
            rows_kept: Vec::new(),
            n_orig_vars: n,
            n_orig_rows: m,
            fixed_obj: 0.0,
            infeasible: true,
        };
    }

    // Build the reduced problem.
    let mut q = Problem::new(p.sense());
    let mut next = 0usize;
    for j in 0..n {
        let v = p.var_id(j);
        match map[j] {
            Disposition::Fixed(val) => {
                fixed_obj += val * obj_of(p, v);
            }
            Disposition::Keep(_) => {
                let nv = q.add_var(p.var_name(v).to_string(), lb[j], ub[j], obj_of(p, v));
                if p.var_is_integer(v) {
                    q.mark_integer(nv);
                }
                map[j] = Disposition::Keep(nv.index());
                debug_assert_eq!(nv.index(), next);
                next += 1;
            }
        }
    }
    for &i in &rows_kept {
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        let mut fixed_part = 0.0;
        for &(j, a) in &row_terms[i] {
            match map[j] {
                Disposition::Keep(nj) => terms.push((q.var_id(nj), a)),
                Disposition::Fixed(v) => fixed_part += a * v,
            }
        }
        q.add_con(p.cons[i].name.clone(), &terms, p.cons[i].cmp, p.cons[i].rhs - fixed_part);
    }

    Reduced { problem: q, map, rows_kept, n_orig_vars: n, n_orig_rows: m, fixed_obj, infeasible }
}

fn obj_of(p: &Problem, v: VarId) -> f64 {
    p.vars[v.index()].obj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::simplex::{solve, SolverOpts};

    #[test]
    fn fixed_vars_removed_and_restored() {
        let mut p = Problem::new(Sense::Max);
        let x = p.add_var("x", 0.0, 5.0, 2.0);
        let f = p.add_var("f", 3.0, 3.0, 10.0); // fixed at 3
        p.add_con("c", &[(x, 1.0), (f, 1.0)], Cmp::Le, 6.0);
        let red = reduce(&p);
        assert!(!red.infeasible);
        assert_eq!(red.problem.num_vars(), 1);
        assert_eq!(red.stats().vars_fixed, 1);
        let sol = solve(&red.problem, &SolverOpts::default());
        let full = red.restore(&sol);
        assert_eq!(full.status, Status::Optimal);
        // x <= 3 after fixing f: objective = 2*3 + 10*3 = 36.
        assert!((full.objective - 36.0).abs() < 1e-7, "{}", full.objective);
        assert!((full.x[x.index()] - 3.0).abs() < 1e-7);
        assert!((full.x[f.index()] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_rows_become_bounds() {
        let mut p = Problem::new(Sense::Max);
        let x = p.add_var("x", 0.0, 100.0, 1.0);
        let y = p.add_var("y", 0.0, 100.0, 1.0);
        p.add_con("sx", &[(x, 2.0)], Cmp::Le, 10.0); // x <= 5
        p.add_con("sy", &[(y, -1.0)], Cmp::Le, -2.0); // y >= 2
        p.add_con("joint", &[(x, 1.0), (y, 1.0)], Cmp::Le, 6.0);
        let red = reduce(&p);
        assert_eq!(red.problem.num_cons(), 1, "singletons removed");
        let sol = solve(&red.problem, &SolverOpts::default());
        let full = red.restore(&sol);
        assert_eq!(full.status, Status::Optimal);
        assert!((full.objective - 6.0).abs() < 1e-7);
        // Check the reduced solution obeys the singleton-derived bounds.
        assert!(full.x[x.index()] <= 5.0 + 1e-9);
        assert!(full.x[y.index()] >= 2.0 - 1e-9);
    }

    #[test]
    fn empty_infeasible_row_detected() {
        let mut p = Problem::new(Sense::Min);
        let f = p.add_var("f", 1.0, 1.0, 0.0);
        p.add_con("bad", &[(f, 1.0)], Cmp::Ge, 5.0); // 1 >= 5: impossible
        let red = reduce(&p);
        assert!(red.infeasible);
    }

    #[test]
    fn reduction_preserves_optimum_on_random_lps() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..40 {
            let nv = rng.random_range(2..8);
            let mut p = Problem::new(Sense::Max);
            let vars: Vec<_> = (0..nv)
                .map(|j| {
                    // A third of variables are fixed.
                    let lb = rng.random_range(0.0..1.0);
                    let ub =
                        if rng.random_bool(0.33) { lb } else { lb + rng.random_range(0.5..2.0) };
                    p.add_var(format!("v{j}"), lb, ub, rng.random_range(-2.0..2.0))
                })
                .collect();
            for c in 0..rng.random_range(1..5) {
                let k = rng.random_range(1..=nv);
                let terms: Vec<_> =
                    (0..k).map(|t| (vars[(t + c) % nv], rng.random_range(0.2..1.5))).collect();
                p.add_con(format!("c{c}"), &terms, Cmp::Le, rng.random_range(2.0..8.0));
            }
            let direct = solve(&p, &SolverOpts::default());
            let red = reduce(&p);
            if red.infeasible {
                assert_eq!(direct.status, Status::Infeasible, "trial {trial}");
                continue;
            }
            let sol = solve(&red.problem, &SolverOpts::default());
            let full = red.restore(&sol);
            assert_eq!(direct.status, full.status, "trial {trial}");
            if direct.status == Status::Optimal {
                assert!(
                    (direct.objective - full.objective).abs()
                        < 1e-6 * (1.0 + direct.objective.abs()),
                    "trial {trial}: {} vs {}",
                    direct.objective,
                    full.objective
                );
                assert!(p.max_violation(&full.x) < 1e-6, "trial {trial}");
            }
        }
    }
}
