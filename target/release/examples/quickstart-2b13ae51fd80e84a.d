/root/repo/target/release/examples/quickstart-2b13ae51fd80e84a.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-2b13ae51fd80e84a: examples/quickstart.rs

examples/quickstart.rs:
