/root/repo/target/debug/deps/nwdp_obs-e314452ef35ddf22.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs

/root/repo/target/debug/deps/libnwdp_obs-e314452ef35ddf22.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs

/root/repo/target/debug/deps/libnwdp_obs-e314452ef35ddf22.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/registry.rs:
