/root/repo/target/release/deps/nwdp_traffic-5c9023fdb18dd6b4.d: crates/traffic/src/lib.rs crates/traffic/src/faults.rs crates/traffic/src/generator.rs crates/traffic/src/matchrate.rs crates/traffic/src/matrix.rs crates/traffic/src/profile.rs crates/traffic/src/session.rs crates/traffic/src/volume.rs

/root/repo/target/release/deps/libnwdp_traffic-5c9023fdb18dd6b4.rlib: crates/traffic/src/lib.rs crates/traffic/src/faults.rs crates/traffic/src/generator.rs crates/traffic/src/matchrate.rs crates/traffic/src/matrix.rs crates/traffic/src/profile.rs crates/traffic/src/session.rs crates/traffic/src/volume.rs

/root/repo/target/release/deps/libnwdp_traffic-5c9023fdb18dd6b4.rmeta: crates/traffic/src/lib.rs crates/traffic/src/faults.rs crates/traffic/src/generator.rs crates/traffic/src/matchrate.rs crates/traffic/src/matrix.rs crates/traffic/src/profile.rs crates/traffic/src/session.rs crates/traffic/src/volume.rs

crates/traffic/src/lib.rs:
crates/traffic/src/faults.rs:
crates/traffic/src/generator.rs:
crates/traffic/src/matchrate.rs:
crates/traffic/src/matrix.rs:
crates/traffic/src/profile.rs:
crates/traffic/src/session.rs:
crates/traffic/src/volume.rs:
