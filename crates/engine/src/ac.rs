//! Aho–Corasick multi-pattern matcher.
//!
//! Substrate for the Signature and Blaster modules: Bro's signature engine
//! matches byte patterns against packet payloads in the event engine. This
//! is a standard goto/fail automaton over byte alphabets with a dense
//! transition table per state (payloads are small; states are few — the
//! pattern sets are NIDS signatures, not dictionaries).

/// A compiled multi-pattern automaton.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// Dense next-state table: `goto_[state * 256 + byte]`.
    goto_: Vec<u32>,
    /// Patterns ending at each state (indices into the original set).
    output: Vec<Vec<u32>>,
    n_patterns: usize,
}

impl AhoCorasick {
    /// Build from a pattern set. Empty patterns are rejected.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        assert!(!patterns.is_empty(), "empty pattern set");
        // Trie construction.
        let mut goto_: Vec<u32> = vec![0; 256]; // state 0 = root
        let mut fail: Vec<u32> = vec![0];
        let mut output: Vec<Vec<u32>> = vec![Vec::new()];
        let mut children: Vec<Vec<(u8, u32)>> = vec![Vec::new()];

        for (pi, pat) in patterns.iter().enumerate() {
            let pat = pat.as_ref();
            assert!(!pat.is_empty(), "empty pattern");
            let mut s = 0u32;
            for &b in pat {
                let next = goto_[s as usize * 256 + b as usize];
                if next != 0 {
                    s = next;
                } else {
                    let ns = fail.len() as u32;
                    goto_.extend(std::iter::repeat_n(0, 256));
                    fail.push(0);
                    output.push(Vec::new());
                    children.push(Vec::new());
                    goto_[s as usize * 256 + b as usize] = ns;
                    children[s as usize].push((b, ns));
                    s = ns;
                }
            }
            output[s as usize].push(pi as u32);
        }

        // BFS failure links; convert goto to a full DFA (dense table).
        let mut queue = std::collections::VecDeque::new();
        for &s in goto_.iter().take(256) {
            if s != 0 {
                fail[s as usize] = 0;
                queue.push_back(s);
            }
        }
        while let Some(s) = queue.pop_front() {
            let f = fail[s as usize];
            // Merge outputs from the failure state.
            let inherited: Vec<u32> = output[f as usize].clone();
            output[s as usize].extend(inherited);
            for b in 0..256usize {
                let t = goto_[s as usize * 256 + b];
                if t != 0 {
                    fail[t as usize] = goto_[f as usize * 256 + b];
                    queue.push_back(t);
                } else {
                    goto_[s as usize * 256 + b] = goto_[f as usize * 256 + b];
                }
            }
        }

        AhoCorasick { goto_, output, n_patterns: patterns.len() }
    }

    pub fn num_states(&self) -> usize {
        self.goto_.len() / 256
    }

    pub fn num_patterns(&self) -> usize {
        self.n_patterns
    }

    /// Scan `haystack`, invoking `on_match(pattern_index, end_offset)` for
    /// every occurrence (including overlaps). Returns the match count.
    pub fn scan(&self, haystack: &[u8], mut on_match: impl FnMut(usize, usize)) -> usize {
        let mut s = 0u32;
        let mut count = 0;
        for (i, &b) in haystack.iter().enumerate() {
            s = self.goto_[s as usize * 256 + b as usize];
            for &pi in &self.output[s as usize] {
                on_match(pi as usize, i + 1);
                count += 1;
            }
        }
        count
    }

    /// Does any pattern occur in `haystack`?
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        let mut s = 0u32;
        for &b in haystack {
            s = self.goto_[s as usize * 256 + b as usize];
            if !self.output[s as usize].is_empty() {
                return true;
            }
        }
        false
    }

    /// Streaming scan: resume from `state` (0 = fresh stream), consume
    /// `chunk`, and return `(new_state, matched)`. Because the automaton
    /// state carries the partially-matched suffix, patterns split across
    /// packet boundaries are still found — the reason real NIDS signature
    /// engines run over the reassembled byte stream, not per packet.
    pub fn scan_stream(&self, state: u32, chunk: &[u8]) -> (u32, bool) {
        let mut s = state;
        let mut matched = false;
        for &b in chunk {
            s = self.goto_[s as usize * 256 + b as usize];
            if !self.output[s as usize].is_empty() {
                matched = true;
            }
        }
        (s, matched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pattern() {
        let ac = AhoCorasick::new(&[b"abc"]);
        assert!(ac.is_match(b"xxabcxx"));
        assert!(!ac.is_match(b"abxbc"));
        let mut hits = Vec::new();
        ac.scan(b"abcabc", |p, end| hits.push((p, end)));
        assert_eq!(hits, vec![(0, 3), (0, 6)]);
    }

    #[test]
    fn overlapping_patterns() {
        let ac = AhoCorasick::new(&[b"he".as_ref(), b"she", b"hers", b"his"]);
        let mut hits = Vec::new();
        ac.scan(b"ushers", |p, _| hits.push(p));
        // "ushers" contains "she" (1), "he" (0), "hers" (2).
        hits.sort();
        assert_eq!(hits, vec![0, 1, 2]);
    }

    #[test]
    fn suffix_outputs_inherited() {
        let ac = AhoCorasick::new(&[b"abcd".as_ref(), b"bc"]);
        let mut hits = Vec::new();
        ac.scan(b"abcd", |p, end| hits.push((p, end)));
        assert!(hits.contains(&(1, 3)), "inner pattern via failure path");
        assert!(hits.contains(&(0, 4)));
    }

    #[test]
    fn binary_patterns() {
        let ac = AhoCorasick::new(&[&b"\x90\x90\x90"[..], &b"\x00\x01"[..]]);
        assert!(ac.is_match(b"zz\x90\x90\x90zz"));
        assert!(ac.is_match(b"\x00\x01filename"));
        assert!(!ac.is_match(b"\x90\x90q\x90"));
    }

    #[test]
    fn match_count_and_states() {
        let ac = AhoCorasick::new(&[b"aa"]);
        let n = ac.scan(b"aaaa", |_, _| {});
        assert_eq!(n, 3, "overlapping matches all reported");
        assert_eq!(ac.num_patterns(), 1);
        assert_eq!(ac.num_states(), 3);
    }

    #[test]
    fn streaming_matches_across_chunk_boundaries() {
        let ac = AhoCorasick::new(&[b"msblast.exe"]);
        // Split the pattern across three chunks.
        let (s1, m1) = ac.scan_stream(0, b"...msbl");
        assert!(!m1);
        let (s2, m2) = ac.scan_stream(s1, b"ast.e");
        assert!(!m2);
        let (_, m3) = ac.scan_stream(s2, b"xe...");
        assert!(m3, "pattern split across chunks must match");
        // Per-chunk scans (state reset) miss it — the failure mode
        // streaming exists to avoid.
        assert!(!ac.is_match(b"...msbl"));
        assert!(!ac.is_match(b"ast.e"));
        assert!(!ac.is_match(b"xe..."));
    }

    #[test]
    fn real_signatures() {
        let ac =
            AhoCorasick::new(&[&b"msblast.exe"[..], nwdp_traffic::session::templates::MALWARE_SIG]);
        assert!(ac.is_match(nwdp_traffic::session::templates::BLASTER));
        assert!(!ac.is_match(b"GET /index.html HTTP/1.1"));
    }
}
