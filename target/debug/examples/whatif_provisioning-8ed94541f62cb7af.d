/root/repo/target/debug/examples/whatif_provisioning-8ed94541f62cb7af.d: examples/whatif_provisioning.rs

/root/repo/target/debug/examples/whatif_provisioning-8ed94541f62cb7af: examples/whatif_provisioning.rs

examples/whatif_provisioning.rs:
