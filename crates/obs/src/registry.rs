//! Process-global metric registry with labeled scopes.
//!
//! Metrics are keyed by their rendered name — `base{k="v",…}` with label
//! keys sorted — in a `BTreeMap`, so every export walks them in a
//! deterministic order. Lookup takes a mutex; hot paths are expected to
//! resolve their handles once (handles are `Arc`s) or buffer locally and
//! flush per solve/run, never lock per event.

use crate::metrics::{Counter, Gauge, Histogram, Timer};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

#[derive(Clone)]
pub(crate) enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Timer(Arc<Timer>),
    Histogram(Arc<Histogram>),
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Render `base{k="v",…}` with label keys sorted for determinism.
fn render_name(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort();
    let mut out = String::with_capacity(base.len() + 16 * sorted.len());
    out.push_str(base);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

macro_rules! accessor {
    ($get:ident, $get_with:ident, $variant:ident, $ty:ty, $make:expr) => {
        /// Fetch-or-create the named metric. A name already registered with
        /// a different type yields a fresh unregistered instance instead of
        /// panicking (the caller's updates then simply go unexported).
        pub fn $get(name: &str) -> Arc<$ty> {
            $get_with(name, &[])
        }

        /// Labeled variant of the same accessor.
        pub fn $get_with(name: &str, labels: &[(&str, &str)]) -> Arc<$ty> {
            let key = render_name(name, labels);
            let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
            match map.entry(key).or_insert_with(|| Metric::$variant(Arc::new($make))) {
                Metric::$variant(m) => Arc::clone(m),
                _ => Arc::new($make),
            }
        }
    };
}

accessor!(counter, counter_with, Counter, Counter, Counter::new());
accessor!(gauge, gauge_with, Gauge, Gauge, Gauge::new());
accessor!(timer, timer_with, Timer, Timer, Timer::new());

/// Fetch-or-create a histogram with the given bucket bounds. If the name
/// exists with different bounds, the existing instance wins.
pub fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    histogram_with(name, &[], bounds)
}

/// Labeled variant of [`histogram`].
pub fn histogram_with(name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Arc<Histogram> {
    let key = render_name(name, labels);
    let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
    match map.entry(key).or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds)))) {
        Metric::Histogram(m) => Arc::clone(m),
        _ => Arc::new(Histogram::new(bounds)),
    }
}

/// A name prefix; metrics created through a scope get `prefix.name`.
#[derive(Debug, Clone)]
pub struct Scope {
    prefix: String,
}

impl Scope {
    pub fn new(prefix: impl Into<String>) -> Self {
        Scope { prefix: prefix.into() }
    }

    fn full(&self, name: &str) -> String {
        format!("{}.{name}", self.prefix)
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        counter(&self.full(name))
    }

    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        counter_with(&self.full(name), labels)
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        gauge(&self.full(name))
    }

    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        gauge_with(&self.full(name), labels)
    }

    pub fn timer(&self, name: &str) -> Arc<Timer> {
        timer(&self.full(name))
    }

    pub fn timer_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Timer> {
        timer_with(&self.full(name), labels)
    }

    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        histogram(&self.full(name), bounds)
    }

    pub fn scope(&self, sub: &str) -> Scope {
        Scope::new(self.full(sub))
    }
}

/// One exported metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    Counter(u64),
    Gauge(f64),
    Timer {
        count: u64,
        total_ns: u64,
        min_ns: u64,
        max_ns: u64,
        mean_ns: f64,
    },
    Histogram {
        bounds: Vec<f64>,
        counts: Vec<u64>,
        count: u64,
        sum: f64,
        /// Bucket-interpolated percentile estimates (see
        /// [`Histogram::quantile`](crate::Histogram::quantile)).
        p50: f64,
        p95: f64,
        p99: f64,
    },
}

/// Point-in-time copy of every registered metric, in name order.
pub fn snapshot() -> Vec<(String, SnapshotValue)> {
    let map = registry().lock().unwrap_or_else(|e| e.into_inner());
    map.iter()
        .map(|(name, metric)| {
            let value = match metric {
                Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                Metric::Timer(t) => SnapshotValue::Timer {
                    count: t.count(),
                    total_ns: t.total_ns(),
                    min_ns: t.min_ns(),
                    max_ns: t.max_ns(),
                    mean_ns: t.mean_ns(),
                },
                Metric::Histogram(h) => SnapshotValue::Histogram {
                    bounds: h.bounds().to_vec(),
                    counts: h.bucket_counts(),
                    count: h.count(),
                    sum: h.sum(),
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    p99: h.quantile(0.99),
                },
            };
            (name.clone(), value)
        })
        .collect()
}

/// Zero every registered metric (tests and repeated harness runs).
pub fn reset() {
    let map = registry().lock().unwrap_or_else(|e| e.into_inner());
    for metric in map.values() {
        match metric {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Timer(t) => t.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_instance() {
        let a = counter("test.registry.same");
        let b = counter("test.registry.same");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labels_make_distinct_instances() {
        let a = counter_with("test.registry.labeled", &[("node", "0")]);
        let b = counter_with("test.registry.labeled", &[("node", "1")]);
        a.add(3);
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let a = counter_with("test.registry.order", &[("a", "1"), ("b", "2")]);
        let b = counter_with("test.registry.order", &[("b", "2"), ("a", "1")]);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn type_mismatch_returns_detached_instance() {
        let c = counter("test.registry.mismatch");
        let g = gauge("test.registry.mismatch");
        g.set(5.0); // must not panic, must not corrupt the counter
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn scope_prefixes_names() {
        let s = Scope::new("test.scoped");
        s.counter("hits").add(2);
        let direct = counter("test.scoped.hits");
        assert_eq!(direct.get(), 2);
        let nested = s.scope("inner");
        nested.counter("x").inc();
        assert_eq!(counter("test.scoped.inner.x").get(), 1);
    }

    #[test]
    fn snapshot_is_name_ordered() {
        counter("test.snap.b").inc();
        counter("test.snap.a").inc();
        let snap = snapshot();
        let names: Vec<_> =
            snap.iter().map(|(n, _)| n.as_str()).filter(|n| n.starts_with("test.snap.")).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
