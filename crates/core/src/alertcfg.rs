//! Alert-plane environment configuration.
//!
//! `NWDP_ALERT=FILE[:format]` turns the structured alert plane on and
//! installs an egress writer at `FILE` — `format` is `jsonl` (default)
//! or `cef`. The tuning knobs ride alongside:
//!
//! - `NWDP_ALERT_RATE` — token-bucket refill rate (alerts per
//!   replay-time unit); `0` or unset disables the limiter.
//! - `NWDP_ALERT_BURST` — token-bucket capacity (positive number).
//! - `NWDP_ALERT_SUPPRESS` — suppression window on the replay clock
//!   (non-negative number).
//!
//! Invalid values go through the same warn-once
//! [`parallel::note_invalid_env_expecting`] path as every other `NWDP_*`
//! knob — one stderr warning per variable per process, a
//! `config.invalid_env{var=...}` counter bump when metrics are on, and
//! the default stands in. With `NWDP_ALERT` unset nothing is enabled and
//! the knobs are not even read, so outputs stay bit-identical.

use crate::parallel;
use nwdp_obs as obs;
use std::path::PathBuf;

fn f64_knob(var: &str, default: f64, lo: f64, hi: f64, expecting: &str) -> f64 {
    let Some(raw) = std::env::var_os(var) else { return default };
    let raw = raw.to_string_lossy();
    match raw.trim().parse::<f64>() {
        Ok(v) if v.is_finite() && (lo..=hi).contains(&v) => v,
        _ => {
            parallel::note_invalid_env_expecting(var, &raw, expecting);
            default
        }
    }
}

/// Parse `FILE[:format]`. The format suffix is only split off when it
/// names a known format, so plain paths containing `:` still work.
fn split_spec(spec: &str) -> (PathBuf, obs::AlertFormat) {
    if let Some((path, suffix)) = spec.rsplit_once(':') {
        if let Some(fmt) = obs::AlertFormat::parse(suffix) {
            return (PathBuf::from(path), fmt);
        }
    }
    (PathBuf::from(spec), obs::AlertFormat::Jsonl)
}

/// Read `NWDP_ALERT` (+ `NWDP_ALERT_RATE` / `_BURST` / `_SUPPRESS`);
/// when set, configure the pipeline, install a buffered file writer,
/// and enable the alert plane. Returns the egress path when configured.
/// Unset ⇒ nothing happens (the plane stays off and free).
pub fn init_alert_from_env() -> Option<PathBuf> {
    let spec = std::env::var_os("NWDP_ALERT")?;
    let spec = spec.to_string_lossy();
    let (path, format) = split_spec(&spec);
    let file = match std::fs::File::create(&path) {
        Ok(f) => f,
        Err(e) => {
            // User-facing regardless of tracing config: a bad NWDP_ALERT path
            // silently disabling SIEM egress would lose the whole run's alerts.
            use std::io::Write as _;
            let _ = writeln!(
                std::io::stderr(),
                "nwdp: cannot create NWDP_ALERT file {}: {e}",
                path.display()
            );
            return None;
        }
    };
    obs::set_alert_config(alert_config_from_env());
    obs::add_alert_writer(format, Box::new(std::io::BufWriter::new(file)));
    obs::set_alert_enabled(true);
    Some(path)
}

/// The pipeline tuning the `NWDP_ALERT_*` knobs describe (defaults where
/// unset or invalid). Split out so benches can apply the knobs without
/// installing the env-selected writer.
pub fn alert_config_from_env() -> obs::AlertConfig {
    let default = obs::AlertConfig::default();
    obs::AlertConfig {
        rate: f64_knob(
            "NWDP_ALERT_RATE",
            default.rate,
            0.0,
            f64::MAX,
            "a non-negative alerts-per-replay-unit rate",
        ),
        burst: f64_knob("NWDP_ALERT_BURST", default.burst, 1.0, f64::MAX, "a burst size >= 1"),
        suppress: f64_knob(
            "NWDP_ALERT_SUPPRESS",
            default.suppress,
            0.0,
            1.0,
            "a suppression window in [0, 1]",
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global; the knob tests run under one lock.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spec_splits_format_suffix_only_when_known() {
        let (p, f) = split_spec("alerts.jsonl");
        assert_eq!((p, f), (PathBuf::from("alerts.jsonl"), obs::AlertFormat::Jsonl));
        let (p, f) = split_spec("out/alerts.log:cef");
        assert_eq!((p, f), (PathBuf::from("out/alerts.log"), obs::AlertFormat::Cef));
        let (p, f) = split_spec("weird:name.log");
        assert_eq!((p, f), (PathBuf::from("weird:name.log"), obs::AlertFormat::Jsonl));
        let (p, f) = split_spec("a.json:JSONL");
        assert_eq!((p, f), (PathBuf::from("a.json"), obs::AlertFormat::Jsonl));
    }

    #[test]
    fn knobs_parse_and_fall_back() {
        let _g = guard();
        for var in ["NWDP_ALERT_RATE", "NWDP_ALERT_BURST", "NWDP_ALERT_SUPPRESS"] {
            std::env::remove_var(var);
        }
        assert_eq!(alert_config_from_env(), obs::AlertConfig::default());

        std::env::set_var("NWDP_ALERT_RATE", "250");
        std::env::set_var("NWDP_ALERT_BURST", "8");
        std::env::set_var("NWDP_ALERT_SUPPRESS", "0.05");
        let cfg = alert_config_from_env();
        assert_eq!((cfg.rate, cfg.burst, cfg.suppress), (250.0, 8.0, 0.05));

        // Out-of-range and garbage values fall back to the defaults.
        std::env::set_var("NWDP_ALERT_RATE", "-3");
        std::env::set_var("NWDP_ALERT_BURST", "0");
        std::env::set_var("NWDP_ALERT_SUPPRESS", "soon");
        let cfg = alert_config_from_env();
        assert_eq!(cfg, obs::AlertConfig::default());
        for var in ["NWDP_ALERT_RATE", "NWDP_ALERT_BURST", "NWDP_ALERT_SUPPRESS"] {
            std::env::remove_var(var);
        }
    }

    #[test]
    fn invalid_knob_bumps_config_invalid_env_counter() {
        let _g = guard();
        let was = obs::enabled();
        obs::set_enabled(true);
        let counter = obs::Scope::new("config")
            .counter_with("invalid_env", &[("var", "NWDP_ALERT_SUPPRESS")]);
        let before = counter.get();
        std::env::set_var("NWDP_ALERT_SUPPRESS", "not-a-window");
        let cfg = alert_config_from_env();
        std::env::remove_var("NWDP_ALERT_SUPPRESS");
        obs::set_enabled(was);
        assert_eq!(cfg.suppress, obs::AlertConfig::default().suppress);
        assert_eq!(counter.get(), before + 1, "invalid knob must be counted");
    }
}
