//! Shared experiment scaffolding: scale presets and common setups.

use nwdp_core::nids::{generate_manifests, solve_nids_lp, NidsLpConfig, NodeCaps};
use nwdp_core::{build_units, AnalysisClass, NidsDeployment};
use nwdp_topo::{internet2, PathDb, Topology};
use nwdp_traffic::{generate_trace, NetTrace, TraceConfig, TrafficMatrix, VolumeModel};

/// Experiment scale preset.
///
/// `quick` trims workload sizes so the whole suite runs in minutes;
/// `full` uses the paper's sizes (100 k sessions, 30 match-rate scenarios,
/// 1000 epochs). EXPERIMENTS.md records which preset produced the shipped
/// numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Full,
}

impl Scale {
    pub fn from_flag(quick: bool) -> Self {
        if quick {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Sessions for the Fig 5 microbenchmark (paper: 100 k).
    pub fn fig5_sessions(&self) -> usize {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 100_000,
        }
    }

    /// Runs per configuration (paper: 5).
    pub fn repeats(&self) -> usize {
        5
    }

    /// Sessions for the Fig 6/8 network-wide runs (paper: 100 k).
    pub fn netwide_sessions(&self) -> usize {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 100_000,
        }
    }

    /// Volume sweep for Fig 7 (paper: 20 k → 100 k).
    pub fn fig7_volumes(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![5_000, 10_000, 15_000, 20_000],
            Scale::Full => vec![20_000, 40_000, 60_000, 80_000, 100_000],
        }
    }

    /// Module counts for Fig 6 (paper: 9 standard → 21 with duplicates;
    /// the figure's x-axis starts at 8).
    pub fn fig6_modules(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![9, 13, 17, 21],
            Scale::Full => vec![9, 11, 13, 15, 17, 19, 21],
        }
    }

    /// NIPS rules for Fig 10 (paper: 100).
    pub fn fig10_rules(&self) -> usize {
        match self {
            Scale::Quick => 30,
            Scale::Full => 100,
        }
    }

    /// Match-rate scenarios per configuration (paper: 30).
    pub fn fig10_scenarios(&self) -> usize {
        match self {
            Scale::Quick => 5,
            Scale::Full => 30,
        }
    }

    /// Rounding iterations per scenario (paper: 10).
    pub fn fig10_iterations(&self) -> usize {
        match self {
            Scale::Quick => 5,
            Scale::Full => 10,
        }
    }

    /// Rule-capacity fractions swept in Fig 10.
    pub fn fig10_cap_fracs(&self) -> Vec<f64> {
        vec![0.05, 0.10, 0.15, 0.20, 0.25]
    }

    /// Epochs for Fig 11 (paper: 1000).
    pub fn fig11_epochs(&self) -> usize {
        match self {
            Scale::Quick => 150,
            Scale::Full => 1000,
        }
    }

    /// Independent runs for Fig 11 (paper: 5).
    pub fn fig11_runs(&self) -> usize {
        5
    }
}

/// Homogeneous node capacities used for the NIDS network-wide evaluation.
pub fn default_caps() -> NodeCaps {
    NodeCaps { cpu: 2.0e8, mem: 4.0e9 }
}

/// The Internet2 NIDS evaluation context: topology, routing, gravity TM,
/// baseline volume.
pub struct NidsContext {
    pub topo: Topology,
    pub paths: PathDb,
    pub tm: TrafficMatrix,
    pub vol: VolumeModel,
}

impl NidsContext {
    pub fn internet2() -> Self {
        let topo = internet2();
        let paths = PathDb::shortest_paths(&topo);
        let tm = TrafficMatrix::gravity(&topo);
        let vol = VolumeModel::internet2_baseline();
        NidsContext { topo, paths, tm, vol }
    }

    pub fn deployment(&self, n_modules: usize) -> NidsDeployment {
        let classes = if n_modules <= 9 {
            let mut c = AnalysisClass::standard_set();
            c.truncate(n_modules);
            c
        } else {
            AnalysisClass::scaled_set(n_modules).expect("scaled set within the paper's range")
        };
        build_units(&self.topo, &self.paths, &self.tm, &self.vol, &classes)
    }

    pub fn trace(&self, sessions: usize, seed: u64) -> NetTrace {
        generate_trace(&self.topo, &self.tm, &TraceConfig::new(sessions, seed))
    }

    /// Solve the LP and compile manifests for a deployment.
    pub fn manifests(
        &self,
        dep: &NidsDeployment,
    ) -> (nwdp_core::nids::NidsAssignment, nwdp_core::nids::SamplingManifest) {
        let cfg = NidsLpConfig::homogeneous(dep.num_nodes, default_caps());
        let assignment = solve_nids_lp(dep, &cfg).expect("NIDS LP must solve");
        let manifest = generate_manifests(dep, &assignment.d);
        (assignment, manifest)
    }
}
