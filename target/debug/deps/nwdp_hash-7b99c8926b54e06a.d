/root/repo/target/debug/deps/nwdp_hash-7b99c8926b54e06a.d: crates/hash/src/lib.rs crates/hash/src/key.rs crates/hash/src/keyed.rs crates/hash/src/lookup3.rs crates/hash/src/range.rs

/root/repo/target/debug/deps/nwdp_hash-7b99c8926b54e06a: crates/hash/src/lib.rs crates/hash/src/key.rs crates/hash/src/keyed.rs crates/hash/src/lookup3.rs crates/hash/src/range.rs

crates/hash/src/lib.rs:
crates/hash/src/key.rs:
crates/hash/src/keyed.rs:
crates/hash/src/lookup3.rs:
crates/hash/src/range.rs:
