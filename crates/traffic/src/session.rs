//! Template sessions and deterministic packet synthesis.
//!
//! The paper's evaluation uses "template sessions using real traffic
//! captured for common protocols like HTTP, IRC, and Telnet, and
//! synthetically generate[d] traffic sessions for other protocols" (§2.4).
//! Here every protocol has a payload template skeleton; a [`Session`] is a
//! compact spec from which [`Session::packets`] synthesizes the same packet
//! sequence every time (handshake, application exchange, teardown), so
//! traces stay small in memory and runs are bit-reproducible.

use crate::profile::AppProtocol;
use nwdp_hash::FiveTuple;
use nwdp_topo::NodeId;

/// What kind of activity a session represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionKind {
    /// Benign application session.
    Normal(AppProtocol),
    /// One probe of a port/address scan (single SYN, RST back).
    ScanProbe,
    /// One spoofed SYN of a SYN flood (no reply ever comes).
    SynFloodPkt,
    /// Blaster-style worm propagation attempt (RPC exploit + name).
    Blaster,
    /// Benign-looking app session whose payload carries a malware
    /// signature (exercises the Signature module).
    InfectedPayload(AppProtocol),
}

impl SessionKind {
    /// Application protocol whose port the session uses.
    pub fn app(&self) -> AppProtocol {
        match self {
            SessionKind::Normal(a) | SessionKind::InfectedPayload(a) => *a,
            SessionKind::ScanProbe => AppProtocol::OtherTcp,
            SessionKind::SynFloodPkt => AppProtocol::Http, // floods hit web servers
            SessionKind::Blaster => AppProtocol::Tftp,     // Blaster pulls itself via TFTP
        }
    }

    pub fn is_malicious(&self) -> bool {
        !matches!(self, SessionKind::Normal(_))
    }
}

/// A compact session spec. `tuple` is oriented initiator → responder.
#[derive(Debug, Clone)]
pub struct Session {
    pub id: u64,
    pub tuple: FiveTuple,
    pub kind: SessionKind,
    pub src_node: NodeId,
    pub dst_node: NodeId,
    /// Application-payload exchanges (request/response rounds) beyond the
    /// handshake; scales per-session work.
    pub exchanges: u8,
}

/// One synthesized packet.
#[derive(Debug, Clone, Copy)]
pub struct Packet<'a> {
    /// Oriented in the packet's travel direction.
    pub tuple: FiveTuple,
    pub forward: bool,
    pub syn: bool,
    pub ack: bool,
    pub fin: bool,
    pub rst: bool,
    pub payload: &'a [u8],
    /// Total on-wire size (headers + payload).
    pub size: u16,
}

/// Payload template skeletons per protocol and direction.
pub mod templates {
    /// Request-direction payloads, cycled across exchanges.
    pub fn request(app: crate::profile::AppProtocol) -> &'static [u8] {
        use crate::profile::AppProtocol as A;
        match app {
            A::Http => b"GET /index.html HTTP/1.1\r\nHost: www.example.com\r\nUser-Agent: nwdp/1.0\r\nAccept: */*\r\n\r\n",
            A::Irc => b"NICK ndwp\r\nUSER nwdp 8 * :nwdp\r\nJOIN #chan\r\nPRIVMSG #chan :hello there\r\n",
            A::Telnet => b"login: alice\r\nPassword: hunter2\r\nls -la\r\n",
            A::Tftp => b"\x00\x01netconfig.txt\x00octet\x00",
            A::Smtp => b"HELO client.example.com\r\nMAIL FROM:<a@example.com>\r\nRCPT TO:<b@example.org>\r\nDATA\r\n",
            A::Dns => b"\x12\x34\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00\x03www\x07example\x03com\x00\x00\x01\x00\x01",
            A::Ftp => b"USER anonymous\r\nPASS guest@\r\nRETR file.bin\r\n",
            A::Ssh => b"SSH-2.0-OpenSSH_5.1\r\n",
            A::OtherTcp => b"\x01\x02\x03\x04application data block\x00\x00",
        }
    }

    /// Response-direction payloads.
    pub fn response(app: crate::profile::AppProtocol) -> &'static [u8] {
        use crate::profile::AppProtocol as A;
        match app {
            A::Http => b"HTTP/1.1 200 OK\r\nServer: nwdpd\r\nContent-Type: text/html\r\nContent-Length: 42\r\n\r\n<html><body>hello world</body></html>\r\n\r\n",
            A::Irc => b":server 001 nwdp :Welcome\r\n:nwdp!u@h JOIN #chan\r\n",
            A::Telnet => b"Last login: Mon Jul  5\r\n$ ",
            A::Tftp => b"\x00\x03\x00\x01data-block-contents-here",
            A::Smtp => b"220 mail.example.org ESMTP\r\n250 OK\r\n354 go ahead\r\n",
            A::Dns => b"\x12\x34\x81\x80\x00\x01\x00\x01\x00\x00\x00\x00\x03www\x07example\x03com\x00\x00\x01\x00\x01\xc0\x0c\x00\x01\x00\x01\x00\x00\x0e\x10\x00\x04\x5d\xb8\xd8\x22",
            A::Ftp => b"230 Login successful.\r\n150 Opening BINARY mode\r\n",
            A::Ssh => b"SSH-2.0-OpenSSH_5.3\r\n",
            A::OtherTcp => b"\x04\x03\x02\x01response data block\x00\x00",
        }
    }

    /// The Blaster worm propagation payload: DCOM RPC exploit bytes
    /// followed by the worm binary name (the classic detection string).
    pub const BLASTER: &[u8] =
        b"\x05\x00\x0b\x03\x10\x00\x00\x00H\x00\x00\x00\x7f\x00\x00\x00\xd0\x16\xd0\x16\x90\x90\x90\x90msblast.exe I just want to say LOVE YOU SAN!!";

    /// Generic malware signature planted in infected payloads.
    pub const MALWARE_SIG: &[u8] = b"\x90\x90\x90\x90\xeb\x1fEVIL-NWDP-PAYLOAD-SIGNATURE";
}

const HDR: u16 = 40; // IP + TCP header estimate (UDP sessions just use it too)

impl Session {
    pub fn app(&self) -> AppProtocol {
        self.kind.app()
    }

    /// Synthesize the session's packet sequence.
    pub fn packets(&self) -> Vec<Packet<'static>> {
        let mut out = Vec::with_capacity(self.packet_count());
        self.packets_into(&mut out);
        out
    }

    /// Synthesize the packet sequence into a reusable buffer (cleared
    /// first). The streaming engine calls this once per session with a
    /// long-lived buffer, eliminating the per-session `Vec` allocation of
    /// [`Session::packets`].
    pub fn packets_into(&self, out: &mut Vec<Packet<'static>>) {
        out.clear();
        let fwd = self.tuple;
        let rev = self.tuple.reversed();
        let pkt = |tuple: FiveTuple, forward: bool, payload: &'static [u8]| Packet {
            tuple,
            forward,
            syn: false,
            ack: true,
            fin: false,
            rst: false,
            payload,
            size: HDR + payload.len() as u16,
        };
        match self.kind {
            SessionKind::SynFloodPkt => {
                out.push(Packet { syn: true, ack: false, ..pkt(fwd, true, b"") });
            }
            SessionKind::ScanProbe => {
                out.push(Packet { syn: true, ack: false, ..pkt(fwd, true, b"") });
                out.push(Packet { rst: true, ..pkt(rev, false, b"") });
            }
            SessionKind::Blaster => {
                out.push(Packet { syn: true, ack: false, ..pkt(fwd, true, b"") });
                out.push(Packet { syn: true, ..pkt(rev, false, b"") });
                out.push(pkt(fwd, true, b""));
                out.push(pkt(fwd, true, templates::BLASTER));
                out.push(pkt(rev, false, templates::response(AppProtocol::Tftp)));
                out.push(Packet { fin: true, ..pkt(fwd, true, b"") });
            }
            SessionKind::Normal(app) | SessionKind::InfectedPayload(app) => {
                let infected = matches!(self.kind, SessionKind::InfectedPayload(_));
                if !app.is_udp() {
                    out.push(Packet { syn: true, ack: false, ..pkt(fwd, true, b"") });
                    out.push(Packet { syn: true, ..pkt(rev, false, b"") });
                    out.push(pkt(fwd, true, b""));
                }
                for round in 0..self.exchanges.max(1) {
                    let req = if infected && round == 0 {
                        templates::MALWARE_SIG
                    } else {
                        templates::request(app)
                    };
                    out.push(pkt(fwd, true, req));
                    out.push(pkt(rev, false, templates::response(app)));
                }
                if !app.is_udp() {
                    out.push(Packet { fin: true, ..pkt(fwd, true, b"") });
                    out.push(Packet { fin: true, ..pkt(rev, false, b"") });
                }
            }
        }
    }

    /// Packet count without materializing the packets.
    pub fn packet_count(&self) -> usize {
        match self.kind {
            SessionKind::SynFloodPkt => 1,
            SessionKind::ScanProbe => 2,
            SessionKind::Blaster => 6,
            SessionKind::Normal(app) | SessionKind::InfectedPayload(app) => {
                let rounds = 2 * self.exchanges.max(1) as usize;
                if app.is_udp() {
                    rounds
                } else {
                    rounds + 5
                }
            }
        }
    }

    /// Total bytes without materializing packets.
    pub fn byte_count(&self) -> usize {
        self.packets().iter().map(|p| p.size as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(kind: SessionKind) -> Session {
        Session {
            id: 1,
            tuple: FiveTuple::new(
                0x0a000001,
                0x0a010001,
                40000,
                kind.app().server_port(),
                kind.app().ip_proto(),
            ),
            kind,
            src_node: NodeId(0),
            dst_node: NodeId(1),
            exchanges: 2,
        }
    }

    #[test]
    fn tcp_session_has_handshake_and_teardown() {
        let s = mk(SessionKind::Normal(AppProtocol::Http));
        let pkts = s.packets();
        assert_eq!(pkts.len(), s.packet_count());
        assert!(pkts[0].syn && !pkts[0].ack && pkts[0].forward);
        assert!(pkts[1].syn && pkts[1].ack && !pkts[1].forward);
        assert!(pkts[pkts.len() - 1].fin);
        // Exactly the configured number of request payloads.
        let reqs = pkts
            .iter()
            .filter(|p| p.forward && p.payload == templates::request(AppProtocol::Http))
            .count();
        assert_eq!(reqs, 2);
    }

    #[test]
    fn udp_session_skips_handshake() {
        let s = mk(SessionKind::Normal(AppProtocol::Dns));
        let pkts = s.packets();
        assert!(pkts.iter().all(|p| !p.syn && !p.fin));
        assert_eq!(pkts.len(), 4); // 2 exchanges
    }

    #[test]
    fn scan_probe_is_syn_rst() {
        let s = mk(SessionKind::ScanProbe);
        let pkts = s.packets();
        assert_eq!(pkts.len(), 2);
        assert!(pkts[0].syn && pkts[0].forward);
        assert!(pkts[1].rst && !pkts[1].forward);
    }

    #[test]
    fn synflood_is_single_unanswered_syn() {
        let s = mk(SessionKind::SynFloodPkt);
        let pkts = s.packets();
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].syn && !pkts[0].ack);
    }

    #[test]
    fn blaster_carries_its_signature() {
        let s = mk(SessionKind::Blaster);
        let hit = s.packets().iter().any(|p| p.payload.windows(11).any(|w| w == b"msblast.exe"));
        assert!(hit);
    }

    #[test]
    fn infected_payload_carries_generic_signature() {
        let s = mk(SessionKind::InfectedPayload(AppProtocol::Http));
        let hit = s.packets().iter().any(|p| {
            p.payload.windows(templates::MALWARE_SIG.len()).any(|w| w == templates::MALWARE_SIG)
        });
        assert!(hit);
    }

    #[test]
    fn reverse_packets_use_reversed_tuple() {
        let s = mk(SessionKind::Normal(AppProtocol::Irc));
        for p in s.packets() {
            if p.forward {
                assert_eq!(p.tuple, s.tuple);
            } else {
                assert_eq!(p.tuple, s.tuple.reversed());
            }
        }
    }

    #[test]
    fn packets_into_reuses_buffer_and_matches_packets() {
        let mut buf = Vec::new();
        for kind in [
            SessionKind::Normal(AppProtocol::Http),
            SessionKind::ScanProbe,
            SessionKind::Blaster,
            SessionKind::Normal(AppProtocol::Dns),
        ] {
            let s = mk(kind);
            s.packets_into(&mut buf); // clears previous contents
            let fresh = s.packets();
            assert_eq!(buf.len(), fresh.len(), "{kind:?}");
            for (a, b) in buf.iter().zip(&fresh) {
                assert_eq!(a.tuple, b.tuple);
                assert_eq!(a.payload, b.payload);
                assert_eq!((a.syn, a.ack, a.fin, a.rst), (b.syn, b.ack, b.fin, b.rst));
            }
        }
    }

    #[test]
    fn packet_count_matches_for_all_kinds() {
        for kind in [
            SessionKind::Normal(AppProtocol::Http),
            SessionKind::Normal(AppProtocol::Tftp),
            SessionKind::ScanProbe,
            SessionKind::SynFloodPkt,
            SessionKind::Blaster,
            SessionKind::InfectedPayload(AppProtocol::Smtp),
        ] {
            let s = mk(kind);
            assert_eq!(s.packets().len(), s.packet_count(), "{kind:?}");
        }
    }
}
