//! Workspace property tests for the resilience subsystem: over random
//! topologies and random failure sets, greedy manifest repair must
//! produce exact-arithmetic manifests — zero coverage gap outside the
//! provably unrecoverable units, no overlap, failed nodes fully drained —
//! with the surviving maximum load inside the greedy bound, and identical
//! results under 1-thread and 4-thread execution.

use nwdp::core::parallel;
use nwdp::prelude::*;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

/// A random small topology: line, ring, or Waxman (connected by
/// construction in `nwdp::topo`).
fn arb_topology() -> impl proptest::strategy::Strategy<Value = Topology> {
    (0usize..3, 4usize..9, 0u64..1000).prop_map(|(kind, n, seed)| match kind {
        0 => nwdp::topo::line(n),
        1 => nwdp::topo::ring(n),
        _ => nwdp::topo::waxman("prop", n, 0.6, 0.5, seed),
    })
}

fn deployment_for(topo: &Topology) -> (NidsDeployment, NidsLpConfig, SamplingManifest) {
    let paths = PathDb::shortest_paths(topo);
    let tm = TrafficMatrix::uniform(topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let assignment = solve_nids_lp(&dep, &cfg).expect("generous caps always solve");
    let manifest = generate_manifests(&dep, &assignment.d);
    (dep, cfg, manifest)
}

/// Deterministic fingerprint of a manifest for cross-thread-count
/// comparison: every (unit, node) segment list, bit for bit.
fn fingerprint(dep: &NidsDeployment, m: &SamplingManifest) -> Vec<(usize, usize, u64, u64)> {
    let mut out = Vec::new();
    for (u, unit) in dep.units.iter().enumerate() {
        for &j in &unit.nodes {
            if let Some(ranges) = m.range(u, j) {
                for seg in ranges.segments() {
                    out.push((u, j.index(), seg.lo.to_bits(), seg.hi.to_bits()));
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn repaired_manifests_are_gap_free_bounded_and_thread_invariant(
        case in (arb_topology(), 0u64..10_000)
    ) {
        let (topo, fail_seed) = case;
        let (dep, cfg, manifest) = deployment_for(&topo);

        // 1–2 distinct failed nodes, derived deterministically from the seed.
        let n = dep.num_nodes;
        let a = NodeId((fail_seed as usize) % n);
        let b = NodeId((fail_seed as usize / n) % n);
        let mut failed = vec![a];
        if b != a && fail_seed % 3 == 0 {
            failed.push(b);
        }
        failed.sort();

        let repair = greedy_repair(&dep, &manifest, &cfg.caps, &failed);

        // Exact sweep, every unit: zero gap and zero overlap wherever a
        // survivor exists; fully dark where none does (those units are
        // exactly the reported unrecoverable set).
        let mut dark = Vec::new();
        for (u, unit) in dep.units.iter().enumerate() {
            let survivors = unit.nodes.iter().filter(|j| !failed.contains(j)).count();
            let (lo, hi) = repair.manifest.unit_coverage_exact(&dep, u);
            if survivors == 0 {
                prop_assert_eq!((lo, hi), (0, 0), "unit {} has no survivors yet coverage", u);
                dark.push(u);
            } else {
                prop_assert_eq!((lo, hi), (1, 1), "unit {}: coverage [{}, {}]", u, lo, hi);
            }
            // Failed nodes are fully drained.
            for &j in &failed {
                prop_assert!(
                    repair.manifest.share(u, j) == 0.0,
                    "failed node {} still owns measure in unit {}", j.index(), u
                );
            }
        }
        prop_assert_eq!(&dark, &repair.unrecoverable);

        // The residual blind gap is exactly the unrecoverable traffic.
        let residual = manifest_gap_fraction(&dep, &repair.manifest, &failed);
        prop_assert!(
            (residual - repair.unrecoverable_traffic_fraction).abs() < 1e-9,
            "residual {} vs unrecoverable {}", residual, repair.unrecoverable_traffic_fraction
        );

        // Recompute surviving loads externally: the greedy bound holds.
        let (cpu, mem) = manifest_loads(&dep, &cfg.caps, &repair.manifest);
        let max_surviving = (0..n)
            .filter(|j| !failed.contains(&NodeId(*j)))
            .map(|j| cpu[j].max(mem[j]))
            .fold(0.0f64, f64::max);
        prop_assert!(
            max_surviving <= repair.load_bound + 1e-9,
            "surviving load {} exceeds the greedy bound {}", max_surviving, repair.load_bound
        );
        prop_assert!((max_surviving - repair.max_load_after).abs() < 1e-9);

        // Bit-identical repair under 1 and 4 threads.
        let fp1 = parallel::with_threads(1, || {
            fingerprint(&dep, &greedy_repair(&dep, &manifest, &cfg.caps, &failed).manifest)
        });
        let fp4 = parallel::with_threads(4, || {
            fingerprint(&dep, &greedy_repair(&dep, &manifest, &cfg.caps, &failed).manifest)
        });
        prop_assert_eq!(&fp1, &fp4, "repair must not depend on thread count");
        prop_assert_eq!(&fp1, &fingerprint(&dep, &repair.manifest));
    }

    #[test]
    fn shedding_never_overloads_and_never_overshoots(
        case in (arb_topology(), 0.2f64..0.9, 1.5f64..4.0)
    ) {
        let (topo, factor, surge) = case;
        let (dep, cfg, manifest) = deployment_for(&topo);
        // Shrink capacities so the post-surge bottleneck overloads, then
        // shed: no node may stay above its ceiling, and the shed fraction
        // stays within [0, 1].
        let (cpu, mem) = manifest_loads(&dep, &cfg.caps, &manifest);
        let worst = cpu.iter().zip(&mem).map(|(c, m)| c.max(*m)).fold(0.0f64, f64::max);
        prop_assert!(worst > 0.0);
        let caps: Vec<NodeCaps> = cfg
            .caps
            .iter()
            .map(|c| NodeCaps { cpu: c.cpu * worst * factor, mem: c.mem * worst * factor })
            .collect();
        let values = distance_weighted_values(&dep);
        let out = shed_overload(&dep, &manifest, &caps, surge, &values);
        prop_assert!((0.0..=1.0).contains(&out.shed_fraction));
        let (cpu2, mem2) = manifest_loads(&dep, &caps, &out.manifest);
        for j in 0..dep.num_nodes {
            let post = surge * cpu2[j].max(mem2[j]);
            prop_assert!(post <= 1.0 + 1e-6, "node {} still overloaded: {}", j, post);
        }
        // Determinism across thread counts.
        let f1 = parallel::with_threads(1, || {
            fingerprint(&dep, &shed_overload(&dep, &manifest, &caps, surge, &values).manifest)
        });
        let f4 = parallel::with_threads(4, || {
            fingerprint(&dep, &shed_overload(&dep, &manifest, &caps, surge, &values).manifest)
        });
        prop_assert_eq!(f1, f4);
    }
}
