/root/repo/target/debug/deps/simplex-7fd4ca9d47318bc4.d: crates/lp/tests/simplex.rs Cargo.toml

/root/repo/target/debug/deps/libsimplex-7fd4ca9d47318bc4.rmeta: crates/lp/tests/simplex.rs Cargo.toml

crates/lp/tests/simplex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
