/root/repo/target/debug/deps/nwdp_online-0b0268af5bbf6cc4.d: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

/root/repo/target/debug/deps/libnwdp_online-0b0268af5bbf6cc4.rlib: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

/root/repo/target/debug/deps/libnwdp_online-0b0268af5bbf6cc4.rmeta: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

crates/online/src/lib.rs:
crates/online/src/adversary.rs:
crates/online/src/fpl.rs:
