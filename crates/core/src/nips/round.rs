//! Randomized rounding for NIPS deployment (paper Fig 9 and §3.3).
//!
//! The MILP (Eqs 7–14) is NP-hard, so the paper rounds the LP relaxation:
//! each `ê_ij` is set to 1 independently with probability `e*_ij / α`; the
//! sampling fractions are carried over proportionally and the trial is
//! rejected if any resource constraint is violated by more than a factor
//! `β·log N` (then everything is rescaled into feasibility). Two practical
//! refinements from §3.3/§3.4 replace the conservative rescaling:
//!
//! - [`Strategy::LpResolve`] — fix the rounded placement and re-solve the
//!   LP over the sampling fractions exactly;
//! - [`Strategy::GreedyLpResolve`] — additionally fill leftover TCAM slots
//!   greedily before the re-solve (the variant that reaches ≥92% of
//!   `OptLP` in Fig 10(b)).
//!
//! The inner sampling LP is solved by an exact min-cost-flow fast path
//! when the instance has proportional requirements (the paper's
//! evaluation setting), and by the simplex with lazy coverage rows
//! otherwise. Both paths are cross-checked in tests.

use super::model::{NipsInstance, SolutionD};
use super::relax::RelaxSolution;
use nwdp_lp::flow::{ArcId, MinCostFlow};
use nwdp_lp::rowgen::{solve_with_lazy_rows_ctx, LazyRow, RowGenOpts, SolveContext};
use nwdp_lp::{Cmp, Problem, Sense, Status, VarId};
use nwdp_obs as obs;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Typed failure of the rounding pipeline. Degenerate instances (NaN
/// gains from zero-volume rules, negative TCAM budgets, inner LPs that
/// hit their iteration limit) surface here instead of panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundError {
    /// A node is over its TCAM capacity with no enabled rule left to
    /// disable (only possible with a negative capacity).
    TcamInfeasible { node: usize },
    /// The inner sampling LP did not reach a converged optimum.
    InnerLpFailed { status: Status, converged: bool },
}

impl std::fmt::Display for RoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoundError::TcamInfeasible { node } => {
                write!(f, "node {node} exceeds its TCAM capacity with no enabled rules")
            }
            RoundError::InnerLpFailed { status, converged } => {
                write!(f, "inner sampling LP failed: status {status:?}, converged {converged}")
            }
        }
    }
}

impl std::error::Error for RoundError {}

/// Rounding refinement strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Fig 9 verbatim: scale `d` down by `β·log N` after rounding.
    ScaledFig9,
    /// Fig 10(a): rounding + exact LP re-solve over `d`.
    LpResolve,
    /// Fig 10(b): rounding + greedy TCAM fill + LP re-solve.
    GreedyLpResolve,
}

/// Options for the rounding pipeline.
#[derive(Debug, Clone)]
pub struct RoundingOpts {
    /// Probability divisor `α` (Fig 9 line 5).
    pub alpha: f64,
    /// Violation budget factor `β` (Fig 9 line 7).
    pub beta: f64,
    /// Retries of the randomized trial before giving up on the check.
    pub max_tries: usize,
    /// Independent rounding runs; the best solution is kept (§3.4 runs 10).
    pub iterations: usize,
    pub strategy: Strategy,
    pub seed: u64,
    /// Warm-start the inner simplex re-solves from a shared baseline
    /// basis (solved once before the trial fan-out). Every trial starts
    /// from the *same* snapshot, so results stay bit-identical across
    /// `NWDP_THREADS`; set to `false` for cold-solve comparisons.
    pub warm_start: bool,
}

impl Default for RoundingOpts {
    fn default() -> Self {
        RoundingOpts {
            alpha: 2.0,
            beta: 2.0,
            max_tries: 60,
            iterations: 10,
            strategy: Strategy::GreedyLpResolve,
            seed: 0,
            warm_start: true,
        }
    }
}

/// An integral NIPS deployment.
#[derive(Debug, Clone)]
pub struct NipsSolution {
    /// `e[rule][node]`.
    pub e: Vec<Vec<bool>>,
    pub d: SolutionD,
    pub objective: f64,
}

/// Run the full pipeline: `iterations` independent rounding runs, keep the
/// best. Requires the relaxation solution (Fig 9 steps 1–2 output).
///
/// The trials are independent (§3.4) and fan out across scoped threads
/// (see [`crate::parallel`]); each trial derives its own seed from the
/// trial index and the winner is selected in trial order, so the result
/// is bit-identical to a serial run for any `NWDP_THREADS`.
///
/// `Err` only when *every* trial fails; the error of the earliest trial
/// is returned (deterministic across thread counts).
pub fn round_best_of(
    inst: &NipsInstance,
    relax: &RelaxSolution,
    opts: &RoundingOpts,
) -> Result<NipsSolution, RoundError> {
    let t0 = obs::now_if_enabled();
    // Shared warm-start baseline: with the inner-simplex path in play,
    // solve the all-enabled sampling LP once and seed every trial with its
    // basis and active lazy rows. Each trial's LP differs from the
    // baseline only in variable bounds (which rules got rounded off), so
    // the basis is usually a near-optimal starting guess. Every trial
    // clones the *same* context, keeping the fan-out bit-identical to a
    // serial run for any `NWDP_THREADS`.
    let baseline: Option<SolveContext> = if opts.warm_start
        && matches!(opts.strategy, Strategy::LpResolve | Strategy::GreedyLpResolve)
        && !inst.is_proportional()
    {
        let all = vec![vec![true; inst.num_nodes]; inst.rules.len()];
        let mut ctx = SolveContext::new();
        solve_inner_simplex_ctx(inst, &all, &mut ctx).ok().map(|_| ctx)
    } else {
        None
    };
    let _span = obs::span!(
        "rounding.best_of",
        trials = opts.iterations.max(1),
        rules = inst.rules.len(),
        nodes = inst.num_nodes
    );
    let trials = crate::parallel::par_map_n(opts.iterations.max(1), |it| {
        let _span = obs::span!("rounding.trial", trial = it);
        let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(it as u64 * 7919));
        let mut ctx = baseline.clone().unwrap_or_default();
        round_once_ctx(inst, relax, opts, &mut rng, &mut ctx)
    });
    let n_trials = trials.len();
    let mut best: Option<NipsSolution> = None;
    let mut first_err: Option<RoundError> = None;
    let mut n_failed = 0u64;
    let mut trial_ratios: Vec<f64> = Vec::new();
    for trial in trials {
        match trial {
            Ok(sol) => {
                if obs::enabled() && relax.objective > 0.0 {
                    trial_ratios.push(sol.objective / relax.objective);
                }
                if best.as_ref().is_none_or(|b| sol.objective > b.objective) {
                    best = Some(sol);
                }
            }
            Err(e) => {
                n_failed += 1;
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    if obs::enabled() {
        let s = obs::Scope::new("round");
        s.counter("calls").inc();
        s.counter("trials").add(n_trials as u64);
        s.counter("trials_failed").add(n_failed);
        // Trial quality vs. the LP bound (Fig 10's y-axis): how much of
        // OptLP each trial recovers, and the best run's trajectory.
        let h = s.histogram(
            "trial_ratio_vs_lp",
            &[0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.925, 0.95, 0.975, 1.0],
        );
        for r in &trial_ratios {
            h.observe(*r);
        }
        if let Some(b) = &best {
            s.gauge("best_objective").set(b.objective);
            s.gauge("lp_bound").set(relax.objective);
            if relax.objective > 0.0 {
                s.gauge("best_ratio_vs_lp").set_max(b.objective / relax.objective);
            }
        }
        s.timer("best_of_ns").observe_since(t0);
    }
    match best {
        Some(sol) => Ok(sol),
        // par_map_n returns one entry per trial and iterations >= 1, so
        // an empty `best` implies at least one recorded error.
        None => Err(first_err.unwrap_or(RoundError::TcamInfeasible { node: 0 })),
    }
}

/// One randomized-rounding run (Fig 9 plus the selected refinement).
pub fn round_once(
    inst: &NipsInstance,
    relax: &RelaxSolution,
    opts: &RoundingOpts,
    rng: &mut StdRng,
) -> Result<NipsSolution, RoundError> {
    round_once_ctx(inst, relax, opts, rng, &mut SolveContext::new())
}

/// [`round_once`] with an inner-LP solver context: the simplex re-solve
/// warm-starts from `ctx` (a prior basis over the same instance) instead
/// of a cold slack basis.
pub fn round_once_ctx(
    inst: &NipsInstance,
    relax: &RelaxSolution,
    opts: &RoundingOpts,
    rng: &mut StdRng,
    ctx: &mut SolveContext,
) -> Result<NipsSolution, RoundError> {
    let lay = &relax.layout;
    let (nr, nn) = (lay.n_rules, lay.n_nodes);
    let n_big = nn.max(nr) as f64;
    let budget = (opts.beta * n_big.ln()).max(1.0);
    // Local tallies, flushed once at the end (trials run on worker
    // threads; the registry handles are atomic).
    let mut n_retries = 0u64;
    let mut n_greedy_adds = 0u64;

    // Fig 9 line 3: epsilon_ikj = d*/e*.
    let eps = |i: usize, k: usize, pos: usize, node: usize| -> f64 {
        let ev = relax.e[lay.e(i, node)];
        if ev <= 1e-9 {
            0.0
        } else {
            (relax.d[lay.d(i, k, pos)] / ev).min(1.0)
        }
    };

    // Fig 9 lines 4–9: randomized trial with violation check.
    let mut ehat = vec![vec![false; nn]; nr];
    for trial in 0..opts.max_tries {
        for (i, row) in ehat.iter_mut().enumerate().take(nr) {
            for (j, cell) in row.iter_mut().enumerate().take(nn) {
                let p = (relax.e[lay.e(i, j)] / opts.alpha).clamp(0.0, 1.0);
                *cell = rng.random_bool(p);
            }
        }
        if trial + 1 == opts.max_tries || !violates_budget(inst, lay, &ehat, &eps, budget) {
            break;
        }
        n_retries += 1;
    }

    // Fig 9 line 10: enforce the TCAM constraint by disabling rules. We
    // drop the enabled rule with the smallest potential contribution at
    // the node ("arbitrarily" per the paper).
    let n_tcam_drops = enforce_tcam(inst, &mut ehat, /*node_gain=*/ &node_gains(inst, lay))?;

    let result = match opts.strategy {
        Strategy::ScaledFig9 => {
            // Fig 9 lines 11–12: scale epsilon down by the budget.
            let mut d: SolutionD = SolutionD::new();
            for (i, ehat_i) in ehat.iter().enumerate().take(nr) {
                for (k, path) in inst.paths.iter().enumerate() {
                    let mut shares = Vec::new();
                    for (pos, &node) in path.nodes.iter().enumerate() {
                        if ehat_i[node.index()] {
                            let v = eps(i, k, pos, node.index()) / budget;
                            if v > 1e-12 {
                                shares.push((pos, v));
                            }
                        }
                    }
                    if !shares.is_empty() {
                        d.insert((i, k), shares);
                    }
                }
            }
            let objective = inst.objective(&d);
            Ok(NipsSolution { e: ehat, d, objective })
        }
        Strategy::LpResolve => finish_with_inner_lp(inst, ehat, ctx),
        Strategy::GreedyLpResolve => {
            n_greedy_adds = greedy_fill(inst, lay, &mut ehat, &node_gains(inst, lay));
            finish_with_inner_lp(inst, ehat, ctx)
        }
    };
    if obs::enabled() {
        let s = obs::Scope::new("round");
        s.counter("reject_retries").add(n_retries);
        s.counter("tcam_drops").add(n_tcam_drops);
        s.counter("greedy_fills").add(n_greedy_adds);
        if matches!(opts.strategy, Strategy::LpResolve | Strategy::GreedyLpResolve) {
            s.counter("lp_resolves").inc();
        }
    }
    result
}

/// Check Eqs (9)–(11) against the `β·log N` violation budget (Fig 9 line 7).
fn violates_budget(
    inst: &NipsInstance,
    lay: &super::relax::Layout,
    ehat: &[Vec<bool>],
    eps: &impl Fn(usize, usize, usize, usize) -> f64,
    budget: f64,
) -> bool {
    let nn = lay.n_nodes;
    let mut mem = vec![0.0; nn];
    let mut cpu = vec![0.0; nn];
    for (i, ehat_i) in ehat.iter().enumerate().take(lay.n_rules) {
        for (k, path) in inst.paths.iter().enumerate() {
            let mut cov = 0.0;
            for (pos, &node) in path.nodes.iter().enumerate() {
                let j = node.index();
                if ehat_i[j] {
                    let v = eps(i, k, pos, j);
                    mem[j] += inst.paths[k].items * inst.rules[i].mem_per_item * v;
                    cpu[j] += inst.paths[k].pkts * inst.rules[i].cpu_per_pkt * v;
                    cov += v;
                }
            }
            if cov > budget {
                return true;
            }
        }
    }
    (0..nn).any(|j| mem[j] > budget * inst.mem_cap[j] || cpu[j] > budget * inst.cpu_cap[j])
}

/// Static per-(rule, node) gain estimate: total droppable weight if the
/// rule were the only consumer at the node.
fn node_gains(inst: &NipsInstance, lay: &super::relax::Layout) -> Vec<Vec<f64>> {
    let mut g = vec![vec![0.0; lay.n_nodes]; lay.n_rules];
    for (i, gi) in g.iter_mut().enumerate().take(lay.n_rules) {
        for (k, path) in inst.paths.iter().enumerate() {
            for (pos, &node) in path.nodes.iter().enumerate() {
                gi[node.index()] += inst.weight(i, k, pos);
            }
        }
    }
    g
}

/// Disable lowest-gain rules until every node's TCAM constraint holds.
/// Non-finite gains (NaN from a zero-volume rule on a zero-traffic path)
/// compare as the smallest possible gain, so those rules are dropped
/// first. Returns the number of rules disabled.
fn enforce_tcam(
    inst: &NipsInstance,
    ehat: &mut [Vec<bool>],
    gains: &[Vec<f64>],
) -> Result<u64, RoundError> {
    let finite_or_min = |g: f64| if g.is_finite() { g } else { f64::NEG_INFINITY };
    let mut drops = 0u64;
    for j in 0..inst.num_nodes {
        loop {
            let used: f64 =
                (0..inst.rules.len()).filter(|&i| ehat[i][j]).map(|i| inst.rules[i].cam_req).sum();
            if used <= inst.cam_cap[j] + 1e-9 {
                break;
            }
            let worst = (0..inst.rules.len())
                .filter(|&i| ehat[i][j])
                .min_by(|&a, &b| finite_or_min(gains[a][j]).total_cmp(&finite_or_min(gains[b][j])));
            match worst {
                Some(i) => {
                    ehat[i][j] = false;
                    drops += 1;
                }
                // Nothing enabled yet still over budget: the node's TCAM
                // capacity is negative — the instance is unroundable.
                None => return Err(RoundError::TcamInfeasible { node: j }),
            }
        }
    }
    Ok(drops)
}

/// Greedily enable extra rules into leftover TCAM space, best static gain
/// first (§3.3: "greedily try to set ê_ij to 1 until no more can be set").
/// Non-finite gains are skipped. Returns the number of rules enabled.
fn greedy_fill(
    inst: &NipsInstance,
    lay: &super::relax::Layout,
    ehat: &mut [Vec<bool>],
    gains: &[Vec<f64>],
) -> u64 {
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for i in 0..lay.n_rules {
        for j in 0..lay.n_nodes {
            if !ehat[i][j] && gains[i][j].is_finite() && gains[i][j] > 0.0 {
                candidates.push((i, j));
            }
        }
    }
    candidates.sort_by(|&(ia, ja), &(ib, jb)| gains[ib][jb].total_cmp(&gains[ia][ja]));
    let mut used: Vec<f64> = (0..inst.num_nodes)
        .map(|j| (0..inst.rules.len()).filter(|&i| ehat[i][j]).map(|i| inst.rules[i].cam_req).sum())
        .collect();
    let mut fills = 0u64;
    for (i, j) in candidates {
        if used[j] + inst.rules[i].cam_req <= inst.cam_cap[j] + 1e-9 {
            ehat[i][j] = true;
            used[j] += inst.rules[i].cam_req;
            fills += 1;
        }
    }
    fills
}

/// Fix the placement and solve the sampling LP exactly.
fn finish_with_inner_lp(
    inst: &NipsInstance,
    ehat: Vec<Vec<bool>>,
    ctx: &mut SolveContext,
) -> Result<NipsSolution, RoundError> {
    let d = if inst.is_proportional() {
        solve_inner_flow(inst, &ehat)
    } else {
        solve_inner_simplex_ctx(inst, &ehat, ctx)?
    };
    let objective = inst.objective(&d);
    Ok(NipsSolution { e: ehat, d, objective })
}

/// LP solutions satisfy the resource rows only to solver tolerance; scale
/// every sampling fraction down by the worst relative overshoot so the
/// returned solution is *exactly* feasible (the objective loss is at the
/// tolerance level). Applied by both inner solvers before returning.
fn rescale_into_feasibility(inst: &NipsInstance, d: &mut SolutionD) {
    let nn = inst.num_nodes;
    let mut mem = vec![0.0; nn];
    let mut cpu = vec![0.0; nn];
    let mut worst: f64 = 1.0;
    for ((i, k), shares) in d.iter() {
        let path = &inst.paths[*k];
        let mut cov = 0.0;
        for &(pos, frac) in shares {
            let j = path.nodes[pos].index();
            mem[j] += path.items * inst.rules[*i].mem_per_item * frac;
            cpu[j] += path.pkts * inst.rules[*i].cpu_per_pkt * frac;
            cov += frac;
        }
        worst = worst.max(cov);
    }
    for j in 0..nn {
        if inst.mem_cap[j].is_finite() && inst.mem_cap[j] > 0.0 {
            worst = worst.max(mem[j] / inst.mem_cap[j]);
        }
        if inst.cpu_cap[j].is_finite() && inst.cpu_cap[j] > 0.0 {
            worst = worst.max(cpu[j] / inst.cpu_cap[j]);
        }
    }
    if worst > 1.0 {
        let s = 1.0 / worst;
        for shares in d.values_mut() {
            for e in shares.iter_mut() {
                e.1 *= s;
            }
        }
    }
}

/// Exact inner solve via min-cost flow (proportional instances).
///
/// Variables are rescaled to shipped items `x = d · T_items`; the coverage
/// row becomes a supply arc, the two node resource rows collapse into one
/// node capacity, and the objective becomes per-item profit
/// `M_ik · Dist_ikj`. Volumes are rounded down to integers — for the
/// paper-scale volumes (≥10³ flows per path) the discretization error is
/// negligible and always on the conservative side.
pub fn solve_inner_flow(inst: &NipsInstance, ehat: &[Vec<bool>]) -> SolutionD {
    solve_inner_flow_weighted(inst, ehat, |i, k, pos| inst.weight(i, k, pos))
}

/// [`solve_inner_flow`] with a custom objective-weight function (used by
/// the online-adaptation oracle, whose weights come from perturbed
/// historical match rates rather than the instance's own).
///
/// `weight(i, k, pos)` must be expressible as `profit_per_item × T_items`
/// for the reduction to stay exact, which holds for any per-(i,k,pos)
/// linear objective.
pub fn solve_inner_flow_weighted(
    inst: &NipsInstance,
    ehat: &[Vec<bool>],
    weight: impl Fn(usize, usize, usize) -> f64,
) -> SolutionD {
    InnerFlowOracle::build(inst, ehat).solve_feasible(inst, weight)
}

/// A reusable min-cost-flow network for the inner sampling LP.
///
/// Building the transportation network (nodes, commodities, arcs, and all
/// their allocations) dominates a single flow solve once the instance has
/// thousands of (rule, path) commodities. Repeated-solve loops — the FPL
/// online game re-solves this network every epoch with only the objective
/// weights changed — build the oracle **once** and call [`Self::solve`]
/// per epoch: flows are reset, arcs are re-priced (and zero/negative-
/// weight arcs throttled to zero capacity), and the augmentation runs on
/// the recycled structure. The post-reset network state is exactly what a
/// fresh build with the same weights would produce, so reused and
/// fresh-built solves are bit-identical.
pub struct InnerFlowOracle {
    g: MinCostFlow,
    source: usize,
    sink: usize,
    /// `(rule, path, pos, arc, supply, items)` per candidate arc.
    arcs: Vec<(usize, usize, usize, ArcId, i64, f64)>,
}

impl InnerFlowOracle {
    /// Build the network for a fixed placement `ehat` (arc costs are set
    /// per solve). Every enabled on-path position gets an arc, so any
    /// weight function over `(rule, path, pos)` can be priced later.
    pub fn build(inst: &NipsInstance, ehat: &[Vec<bool>]) -> Self {
        let r0 = &inst.rules[0];
        let ratio = inst.paths[0].pkts / inst.paths[0].items.max(1e-12);
        let mut g = MinCostFlow::new();
        let source = g.add_node();
        let sink = g.add_node();
        let node_ids: Vec<usize> = (0..inst.num_nodes).map(|_| g.add_node()).collect();
        for (j, &nid) in node_ids.iter().enumerate().take(inst.num_nodes) {
            let cap_items = (inst.mem_cap[j] / r0.mem_per_item.max(1e-12))
                .min(inst.cpu_cap[j] / (r0.cpu_per_pkt * ratio).max(1e-12));
            let cap = cap_items.min(9e17).floor() as i64;
            g.add_arc(nid, sink, cap.max(0), 0.0);
        }
        // Commodity per (rule, path) with at least one enabled on-path
        // node and a positive volume.
        let mut arcs = Vec::new();
        for (i, ehat_i) in ehat.iter().enumerate().take(inst.rules.len()) {
            for (k, path) in inst.paths.iter().enumerate() {
                let enabled: Vec<usize> = path
                    .nodes
                    .iter()
                    .enumerate()
                    .filter(|&(_, n)| ehat_i[n.index()])
                    .map(|(pos, _)| pos)
                    .collect();
                if enabled.is_empty() {
                    continue;
                }
                let supply = path.items.floor().max(0.0) as i64;
                if supply == 0 {
                    continue;
                }
                let c = g.add_node();
                g.add_arc(source, c, supply, 0.0);
                for pos in enabled {
                    let node = path.nodes[pos].index();
                    let a = g.add_arc(c, node_ids[node], supply, 0.0);
                    arcs.push((i, k, pos, a, supply, path.items));
                }
            }
        }
        if obs::enabled() {
            obs::counter("flow.oracle_builds").inc();
        }
        InnerFlowOracle { g, source, sink, arcs }
    }

    /// Solve the sampling LP under `weight`, reusing the built network.
    pub fn solve(&mut self, weight: impl Fn(usize, usize, usize) -> f64) -> SolutionD {
        self.g.reset_flows();
        for &(i, k, pos, a, _, items) in &self.arcs {
            let w = weight(i, k, pos);
            if w > 0.0 {
                // Per-item profit: the objective coefficient divided by
                // the commodity volume.
                self.g.set_cost(a, -(w / items.max(1e-12)));
            } else {
                // Unprofitable this round: price at zero and close the
                // arc (the next reset re-opens it).
                self.g.set_cost(a, 0.0);
                self.g.throttle(a, 0);
            }
        }
        self.g.solve_profitable(self.source, self.sink);
        if obs::enabled() {
            obs::counter("flow.oracle_solves").inc();
        }
        self.extract()
    }

    fn extract(&self) -> SolutionD {
        let mut d: SolutionD = SolutionD::new();
        for &(i, k, pos, a, supply, _) in &self.arcs {
            let f = self.g.flow(a);
            if f > 0 {
                let frac = (f as f64 / supply as f64).min(1.0);
                d.entry((i, k)).or_default().push((pos, frac));
            }
        }
        d
    }

    /// [`Self::solve`] followed by the exact-feasibility rescaling that
    /// the rounding pipeline applies.
    pub fn solve_feasible(
        &mut self,
        inst: &NipsInstance,
        weight: impl Fn(usize, usize, usize) -> f64,
    ) -> SolutionD {
        let mut d = self.solve(weight);
        rescale_into_feasibility(inst, &mut d);
        d
    }
}

/// Exact inner solve via the simplex with lazy coverage rows (general
/// instances; also the cross-check oracle for the flow path).
pub fn solve_inner_simplex(
    inst: &NipsInstance,
    ehat: &[Vec<bool>],
) -> Result<SolutionD, RoundError> {
    solve_inner_simplex_ctx(inst, ehat, &mut SolveContext::new())
}

/// [`solve_inner_simplex`] with a cross-call [`SolveContext`].
///
/// The LP is built over the *full* variable space — one `d_ikj` per
/// (rule, path, pos) with a positive match rate — and the placement is
/// encoded purely in the bounds (`ub = 0` for disabled triples). The
/// problem shape is therefore identical for every placement over the same
/// instance, which is what lets a shared context warm-start the re-solves
/// across rounding trials; the pricing loop skips fixed variables, so the
/// extra columns cost little.
pub fn solve_inner_simplex_ctx(
    inst: &NipsInstance,
    ehat: &[Vec<bool>],
    ctx: &mut SolveContext,
) -> Result<SolutionD, RoundError> {
    let mut p = Problem::new(Sense::Max);
    let mut vars: Vec<(usize, usize, usize, VarId)> = Vec::new();
    let mut mem_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); inst.num_nodes];
    let mut cpu_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); inst.num_nodes];
    let mut cover: std::collections::BTreeMap<(usize, usize), Vec<(VarId, f64)>> =
        std::collections::BTreeMap::new();
    for (i, ehat_i) in ehat.iter().enumerate().take(inst.rules.len()) {
        for (k, path) in inst.paths.iter().enumerate() {
            if inst.match_rates.rate(i, k) <= 0.0 {
                continue;
            }
            for (pos, &node) in path.nodes.iter().enumerate() {
                let ub = if ehat_i[node.index()] { 1.0 } else { 0.0 };
                let v = p.add_var(format!("d_{i}_{k}_{pos}"), 0.0, ub, inst.weight(i, k, pos));
                mem_terms[node.index()].push((v, path.items * inst.rules[i].mem_per_item));
                cpu_terms[node.index()].push((v, path.pkts * inst.rules[i].cpu_per_pkt));
                cover.entry((i, k)).or_default().push((v, 1.0));
                vars.push((i, k, pos, v));
            }
        }
    }
    for j in 0..inst.num_nodes {
        if !mem_terms[j].is_empty() {
            p.add_con(format!("mem_{j}"), &mem_terms[j], Cmp::Le, inst.mem_cap[j]);
            p.add_con(format!("cpu_{j}"), &cpu_terms[j], Cmp::Le, inst.cpu_cap[j]);
        }
    }
    let lazy: Vec<LazyRow> = cover
        .into_iter()
        .map(|((i, k), terms)| LazyRow::new(format!("cov_{i}_{k}"), terms, Cmp::Le, 1.0))
        .collect();
    let res = solve_with_lazy_rows_ctx(&p, &lazy, &RowGenOpts::default(), ctx);
    if res.solution.status != Status::Optimal || !res.converged {
        return Err(RoundError::InnerLpFailed {
            status: res.solution.status,
            converged: res.converged,
        });
    }
    let mut d: SolutionD = SolutionD::new();
    for (i, k, pos, v) in vars {
        let f = res.solution.value(v);
        if f > 1e-9 {
            d.entry((i, k)).or_default().push((pos, f.min(1.0)));
        }
    }
    rescale_into_feasibility(inst, &mut d);
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nips::relax::solve_relaxation;
    use nwdp_topo::{internet2, PathDb};
    use nwdp_traffic::{MatchRates, TrafficMatrix, VolumeModel};

    fn instance(n_rules: usize, cap_frac: f64, seed: u64) -> NipsInstance {
        let t = internet2();
        let paths = PathDb::shortest_paths(&t);
        let tm = TrafficMatrix::gravity(&t);
        let vol = VolumeModel::internet2_baseline();
        let rates = MatchRates::uniform_001(n_rules, paths.all_pairs().count(), seed);
        NipsInstance::evaluation_setup(&t, &paths, &tm, &vol, n_rules, cap_frac, rates)
    }

    #[test]
    fn rounding_produces_feasible_solutions_all_strategies() {
        let inst = instance(10, 0.2, 21);
        let relax = solve_relaxation(&inst, &RowGenOpts::default()).unwrap();
        for strategy in [Strategy::ScaledFig9, Strategy::LpResolve, Strategy::GreedyLpResolve] {
            let opts = RoundingOpts { strategy, iterations: 3, seed: 5, ..Default::default() };
            let sol = round_best_of(&inst, &relax, &opts).unwrap();
            inst.check_feasible(&sol.e, &sol.d, 1e-6)
                .unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
            assert!(sol.objective >= 0.0);
            assert!(
                sol.objective <= relax.objective * (1.0 + 1e-6),
                "{strategy:?}: rounded {} exceeds OptLP {}",
                sol.objective,
                relax.objective
            );
        }
    }

    #[test]
    fn refinements_dominate_plain_scaling() {
        let inst = instance(10, 0.15, 33);
        let relax = solve_relaxation(&inst, &RowGenOpts::default()).unwrap();
        let run = |strategy| {
            let opts = RoundingOpts { strategy, iterations: 5, seed: 9, ..Default::default() };
            round_best_of(&inst, &relax, &opts).unwrap().objective
        };
        let scaled = run(Strategy::ScaledFig9);
        let resolve = run(Strategy::LpResolve);
        let greedy = run(Strategy::GreedyLpResolve);
        assert!(resolve >= scaled * 0.99, "LP re-solve should beat scaling");
        assert!(greedy >= resolve * 0.999, "greedy should not hurt");
        // Fig 10(b): greedy + LP re-solve lands close to the LP bound.
        assert!(
            greedy >= 0.80 * relax.objective,
            "greedy at {} of OptLP",
            greedy / relax.objective
        );
    }

    #[test]
    fn inner_flow_matches_inner_simplex() {
        // Full TCAM budget: the hand-built placement below is then legal
        // (this test compares the two inner solvers, not the placement).
        let inst = instance(6, 1.0, 77);
        assert!(inst.is_proportional());
        // A deterministic placement: enable rule i on nodes with
        // (i + node) % 3 == 0.
        let ehat: Vec<Vec<bool>> =
            (0..6).map(|i| (0..inst.num_nodes).map(|j| (i + j) % 3 == 0).collect()).collect();
        let df = solve_inner_flow(&inst, &ehat);
        let ds = solve_inner_simplex(&inst, &ehat).unwrap();
        let of = inst.objective(&df);
        let os = inst.objective(&ds);
        // Flow discretizes volumes to integers; allow a small relative gap.
        assert!((of - os).abs() <= 1e-3 * (1.0 + os.abs()), "flow {of} vs simplex {os}");
        inst.check_feasible(&ehat, &df, 1e-6).unwrap();
        inst.check_feasible(&ehat, &ds, 1e-6).unwrap();
    }

    #[test]
    fn empty_placement_drops_nothing() {
        let inst = instance(4, 0.25, 1);
        let ehat = vec![vec![false; inst.num_nodes]; 4];
        let d = solve_inner_flow(&inst, &ehat);
        assert!(d.is_empty());
        assert_eq!(inst.objective(&d), 0.0);
    }

    /// Minimal hand-built instance: `n_rules` unit rules, one node, one
    /// single-node path. `cam_cap` is the node's TCAM budget.
    fn tiny_instance(n_rules: usize, cam_cap: f64) -> NipsInstance {
        use super::super::model::{DistanceModel, NipsRule};
        use nwdp_traffic::MatchRates;
        NipsInstance {
            rules: (0..n_rules)
                .map(|i| NipsRule {
                    name: format!("r{i}"),
                    cam_req: 1.0,
                    cpu_per_pkt: 1.0,
                    mem_per_item: 1.0,
                })
                .collect(),
            paths: vec![super::super::model::NipsPath {
                nodes: vec![nwdp_topo::NodeId(0)],
                items: 1.0,
                pkts: 1.0,
            }],
            num_nodes: 1,
            cam_cap: vec![cam_cap],
            mem_cap: vec![f64::INFINITY],
            cpu_cap: vec![f64::INFINITY],
            dist: DistanceModel::Hops,
            match_rates: MatchRates::zeros(n_rules, 1),
        }
    }

    /// Regression: a NaN gain (zero-volume rule on a zero-traffic path)
    /// used to trip `partial_cmp(..).expect("NaN gain")`; NaN gains now
    /// compare lowest and those rules are dropped first.
    #[test]
    fn enforce_tcam_handles_nan_gains() {
        let inst = tiny_instance(2, 1.0);
        let mut ehat = vec![vec![true], vec![true]];
        let gains = vec![vec![f64::NAN], vec![1.0]];
        let drops = enforce_tcam(&inst, &mut ehat, &gains).unwrap();
        assert_eq!(drops, 1);
        assert!(!ehat[0][0], "the NaN-gain rule must be dropped first");
        assert!(ehat[1][0]);
    }

    /// Regression: NaN gains in the greedy-fill sort also panicked; they
    /// are now filtered out of the candidate list entirely.
    #[test]
    fn greedy_fill_skips_non_finite_gains() {
        let inst = tiny_instance(2, 1.0);
        let lay = crate::nips::relax::Layout::new(&inst);
        let mut ehat = vec![vec![false], vec![false]];
        let gains = vec![vec![f64::NAN], vec![2.0]];
        let fills = greedy_fill(&inst, &lay, &mut ehat, &gains);
        assert_eq!(fills, 1);
        assert!(!ehat[0][0], "non-finite gains are never filled");
        assert!(ehat[1][0]);
    }

    /// Regression: a node over TCAM with nothing left to disable used to
    /// trip `expect("over TCAM with no enabled rules")`.
    #[test]
    fn negative_tcam_yields_typed_error() {
        let inst = tiny_instance(2, -1.0);
        let mut ehat = vec![vec![false], vec![false]];
        let err = enforce_tcam(&inst, &mut ehat, &[vec![1.0], vec![1.0]]).unwrap_err();
        assert_eq!(err, RoundError::TcamInfeasible { node: 0 });
    }

    /// The typed error propagates through the full `round_best_of` fan-out
    /// instead of aborting the process.
    #[test]
    fn round_best_of_propagates_tcam_error() {
        let mut inst = instance(4, 0.25, 1);
        let relax = solve_relaxation(&inst, &RowGenOpts::default()).unwrap();
        inst.cam_cap = vec![-1.0; inst.num_nodes];
        let opts = RoundingOpts { iterations: 3, seed: 7, ..Default::default() };
        let err = round_best_of(&inst, &relax, &opts).unwrap_err();
        assert!(matches!(err, RoundError::TcamInfeasible { .. }));
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = instance(8, 0.2, 4);
        let relax = solve_relaxation(&inst, &RowGenOpts::default()).unwrap();
        let opts = RoundingOpts { iterations: 2, seed: 123, ..Default::default() };
        let a = round_best_of(&inst, &relax, &opts).unwrap();
        let b = round_best_of(&inst, &relax, &opts).unwrap();
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.e, b.e);
    }
}
