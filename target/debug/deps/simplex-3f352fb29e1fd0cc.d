/root/repo/target/debug/deps/simplex-3f352fb29e1fd0cc.d: crates/lp/tests/simplex.rs

/root/repo/target/debug/deps/simplex-3f352fb29e1fd0cc: crates/lp/tests/simplex.rs

crates/lp/tests/simplex.rs:
