//! Adversary models for online NIPS adaptation (§3.5).
//!
//! "An adversary can control the sources and nature of the unwanted
//! traffic. For example, an attacker who controls a botnet can modify the
//! attack profile." Each model reveals the epoch's true match rates only
//! *after* the defender has committed its deployment decision.

use nwdp_traffic::MatchRates;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A source of per-epoch match-rate scenarios.
pub trait Adversary {
    /// Reveal epoch `t`'s true match rates. May inspect the defender's
    /// previous decision value to adapt.
    fn reveal(&mut self, epoch: usize, defender_dropped: &[Vec<f64>]) -> MatchRates;
    fn n_rules(&self) -> usize;
    fn n_paths(&self) -> usize;
}

/// The paper's evaluation setting: i.i.d. `M ~ U[0, max]` each epoch.
pub struct StochasticUniform {
    n_rules: usize,
    n_paths: usize,
    max: f64,
    rng: StdRng,
}

impl StochasticUniform {
    pub fn new(n_rules: usize, n_paths: usize, max: f64, seed: u64) -> Self {
        StochasticUniform { n_rules, n_paths, max, rng: StdRng::seed_from_u64(seed) }
    }
}

impl Adversary for StochasticUniform {
    fn reveal(&mut self, _epoch: usize, _dropped: &[Vec<f64>]) -> MatchRates {
        let mut m = MatchRates::zeros(self.n_rules, self.n_paths);
        for i in 0..self.n_rules {
            for k in 0..self.n_paths {
                m.set_rate(i, k, self.rng.random_range(0.0..self.max));
            }
        }
        m
    }
    fn n_rules(&self) -> usize {
        self.n_rules
    }
    fn n_paths(&self) -> usize {
        self.n_paths
    }
}

/// A shifting adversary: attack mass concentrates on a rotating subset of
/// rules, moving every `period` epochs (models a botnet switching attack
/// vectors).
pub struct Shifting {
    n_rules: usize,
    n_paths: usize,
    max: f64,
    period: usize,
    hot_rules: usize,
    rng: StdRng,
}

impl Shifting {
    pub fn new(
        n_rules: usize,
        n_paths: usize,
        max: f64,
        period: usize,
        hot_rules: usize,
        seed: u64,
    ) -> Self {
        assert!(period >= 1 && hot_rules >= 1);
        Shifting { n_rules, n_paths, max, period, hot_rules, rng: StdRng::seed_from_u64(seed) }
    }
}

impl Adversary for Shifting {
    fn reveal(&mut self, epoch: usize, _dropped: &[Vec<f64>]) -> MatchRates {
        let phase = (epoch / self.period) * self.hot_rules;
        let mut m = MatchRates::zeros(self.n_rules, self.n_paths);
        for h in 0..self.hot_rules {
            let i = (phase + h) % self.n_rules;
            for k in 0..self.n_paths {
                m.set_rate(i, k, self.rng.random_range(0.5 * self.max..self.max));
            }
        }
        m
    }
    fn n_rules(&self) -> usize {
        self.n_rules
    }
    fn n_paths(&self) -> usize {
        self.n_paths
    }
}

/// A reactive adversary: shifts mass onto the (rule, path) cells the
/// defender dropped *least* of in the previous epoch — the strategic
/// behaviour the perturbation term exists to blunt.
pub struct Reactive {
    n_rules: usize,
    n_paths: usize,
    max: f64,
    rng: StdRng,
}

impl Reactive {
    pub fn new(n_rules: usize, n_paths: usize, max: f64, seed: u64) -> Self {
        Reactive { n_rules, n_paths, max, rng: StdRng::seed_from_u64(seed) }
    }
}

impl Adversary for Reactive {
    fn reveal(&mut self, epoch: usize, dropped: &[Vec<f64>]) -> MatchRates {
        let mut m = MatchRates::zeros(self.n_rules, self.n_paths);
        if epoch == 0 || dropped.is_empty() {
            for i in 0..self.n_rules {
                for k in 0..self.n_paths {
                    m.set_rate(i, k, self.rng.random_range(0.0..self.max));
                }
            }
            return m;
        }
        for (i, dropped_i) in dropped.iter().enumerate().take(self.n_rules) {
            for (k, &drop) in dropped_i.iter().enumerate().take(self.n_paths) {
                // More mass where less was dropped last epoch.
                let covered = drop.clamp(0.0, 1.0);
                let base = self.max * (1.0 - covered);
                m.set_rate(
                    i,
                    k,
                    (0.5 * base + self.rng.random_range(0.0..0.5 * base.max(1e-9))).min(self.max),
                );
            }
        }
        m
    }
    fn n_rules(&self) -> usize {
        self.n_rules
    }
    fn n_paths(&self) -> usize {
        self.n_paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_in_range() {
        let mut a = StochasticUniform::new(5, 7, 0.01, 1);
        let m = a.reveal(0, &[]);
        for i in 0..5 {
            for k in 0..7 {
                assert!((0.0..0.01).contains(&m.rate(i, k)));
            }
        }
    }

    #[test]
    fn shifting_moves_hot_set() {
        let mut a = Shifting::new(10, 4, 0.01, 1, 2, 3);
        let m0 = a.reveal(0, &[]);
        let m5 = a.reveal(5, &[]);
        // Epoch 0 heats rules {0,1}; epoch 5 heats {10 % 10, 11 % 10} = {0,1}?
        // period=1, hot=2 → phase epoch*2: epoch 5 → rules {0,1}+10 → {0,1}.
        // Use epoch 3: rules {6,7}.
        let m3 = a.reveal(3, &[]);
        assert!(m0.rate(0, 0) > 0.0);
        assert_eq!(m0.rate(5, 0), 0.0);
        assert!(m3.rate(6, 0) > 0.0);
        assert_eq!(m3.rate(0, 0), 0.0);
        let _ = m5;
    }

    #[test]
    fn reactive_targets_uncovered_cells() {
        let mut a = Reactive::new(2, 2, 0.01, 9);
        let dropped = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let m = a.reveal(1, &dropped);
        assert!(m.rate(0, 1) > m.rate(0, 0), "mass should shift to uncovered cells");
        assert!(m.rate(1, 0) > m.rate(1, 1));
    }
}
