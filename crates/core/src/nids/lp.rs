//! The NIDS assignment linear program (paper §2.2, Eqs 1–6).
//!
//! Decision variables `d_ikj` give the fraction of coordination unit
//! `P_ik`'s traffic analyzed at node `R_j`. The LP minimizes
//! `max(CpuLoad, MemLoad)` over all nodes subject to complete coverage:
//!
//! - Eq (1): `Σ_j d_ikj = 1` for every unit (generalized to `= r` for the
//!   §2.5 redundancy extension, with `d_ikj ≤ 1` preserving node
//!   distinctness),
//! - Eqs (2)–(3): per-node memory/CPU load as capacity fractions,
//! - Eqs (4)–(6): the min–max objective and variable bounds.

use crate::units::NidsDeployment;
use nwdp_lp::{solve_warm, Cmp, Problem, Sense, SolverOpts, Status, VarId, WarmStart};
use nwdp_topo::NodeId;

/// Per-node resource capacities (per measurement interval).
#[derive(Debug, Clone, Copy)]
pub struct NodeCaps {
    /// CPU budget: abstract CPU-µs per interval.
    pub cpu: f64,
    /// Memory budget: bytes.
    pub mem: f64,
}

/// Configuration of the NIDS LP.
#[derive(Debug, Clone)]
pub struct NidsLpConfig {
    /// Capacity per node (length = number of nodes). The paper's §2.4
    /// setup uses homogeneous capabilities; heterogeneous values model
    /// mixed hardware (§2.2: "a general model where network elements have
    /// heterogeneous capabilities").
    pub caps: Vec<NodeCaps>,
    /// Coverage multiplicity `r` (§2.5): each point of the hash space must
    /// be analyzed by `r` distinct nodes. Default 1.
    pub redundancy: f64,
    pub solver: SolverOpts,
}

impl NidsLpConfig {
    pub fn homogeneous(num_nodes: usize, caps: NodeCaps) -> Self {
        NidsLpConfig { caps: vec![caps; num_nodes], redundancy: 1.0, solver: SolverOpts::default() }
    }
}

/// Errors from the NIDS optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum NidsError {
    /// LP infeasible: some unit cannot reach coverage `r` (e.g. `r`
    /// exceeds the unit's eligible node count).
    Infeasible,
    /// Solver failure (iteration limit / numerical trouble).
    SolverFailed,
}

impl std::fmt::Display for NidsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NidsError::Infeasible => write!(f, "coverage constraints are infeasible"),
            NidsError::SolverFailed => write!(f, "LP solver failed to converge"),
        }
    }
}

impl std::error::Error for NidsError {}

/// Result of the NIDS LP: the fractional responsibilities plus load stats.
#[derive(Debug, Clone)]
pub struct NidsAssignment {
    /// `d[u]` lists `(node, fraction)` for unit `u`, in the unit's
    /// eligible-node order (fractions sum to the redundancy level).
    pub d: Vec<Vec<(NodeId, f64)>>,
    /// Optimal `max(CpuLoad, MemLoad)` (fraction of capacity).
    pub max_load: f64,
    pub cpu_load: Vec<f64>,
    pub mem_load: Vec<f64>,
    pub lp_iterations: usize,
}

/// Solve the NIDS deployment LP.
pub fn solve_nids_lp(
    dep: &NidsDeployment,
    cfg: &NidsLpConfig,
) -> Result<NidsAssignment, NidsError> {
    solve_nids_lp_warm(dep, cfg, None).map(|(a, _)| a)
}

/// [`solve_nids_lp`] with an optional warm-start basis, returning the
/// final basis for the next solve. What-if sweeps (capacity upgrades,
/// redundancy scans) change only LP coefficients, not the problem shape,
/// so chaining the returned snapshot re-solves in a handful of iterations.
/// Coefficient changes that push the old basis out of primal feasibility
/// (a capacity rescale does) are repaired by the simplex dual phase
/// rather than falling back to a cold solve.
pub fn solve_nids_lp_warm(
    dep: &NidsDeployment,
    cfg: &NidsLpConfig,
    warm: Option<&WarmStart>,
) -> Result<(NidsAssignment, Option<WarmStart>), NidsError> {
    solve_nids_lp_excluding(dep, cfg, &[], warm).map(|(a, w, degraded)| {
        debug_assert!(degraded.is_empty(), "no exclusions, no degraded units");
        (a, w)
    })
}

/// [`solve_nids_lp_warm`] with a set of **excluded** (failed) nodes.
///
/// The failure repair slow path re-optimizes on the surviving node set.
/// Rather than rebuilding a structurally smaller LP — which would
/// invalidate the pre-failure warm basis (the simplex warm-start gate
/// requires an identical variable count) — the full-shape LP is kept and
/// failures are expressed as *data*: excluded nodes' `d` variables are
/// clamped to `[0, 0]`, and a unit whose surviving eligible set is too
/// small for redundancy `r` has its coverage right-hand side relaxed to
/// the surviving count (down to 0 for fully orphaned units) instead of
/// going infeasible. The problem shape is therefore identical across
/// *every* failure what-if on the same deployment, so one basis chains
/// through a whole `N × failure` sweep.
///
/// Returns the assignment, the final basis, and the indices of *degraded*
/// units — those whose coverage RHS was relaxed below `r` and which the
/// caller must account as (partially) uncovered.
pub fn solve_nids_lp_excluding(
    dep: &NidsDeployment,
    cfg: &NidsLpConfig,
    excluded: &[NodeId],
    warm: Option<&WarmStart>,
) -> Result<(NidsAssignment, Option<WarmStart>, Vec<usize>), NidsError> {
    assert_eq!(cfg.caps.len(), dep.num_nodes, "capacity vector size mismatch");
    assert!(cfg.redundancy >= 1.0, "redundancy below 1 abandons coverage");
    let is_excluded = |j: NodeId| excluded.contains(&j);

    let mut p = Problem::new(Sense::Min);
    let load = p.add_var("L", 0.0, f64::INFINITY, 1.0);

    // d variables, coverage rows, and per-node load terms.
    let mut dvars: Vec<Vec<VarId>> = Vec::with_capacity(dep.units.len());
    let mut cpu_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); dep.num_nodes];
    let mut mem_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); dep.num_nodes];
    let mut degraded: Vec<usize> = Vec::new();
    for (u, unit) in dep.units.iter().enumerate() {
        let class = &dep.classes[unit.class];
        let mut vars = Vec::with_capacity(unit.nodes.len());
        for &j in &unit.nodes {
            let hi = if is_excluded(j) { 0.0 } else { 1.0 };
            let v = p.add_var(format!("d_{u}_{}", j.index()), 0.0, hi, 0.0);
            cpu_terms[j.index()].push((v, class.cpu_per_pkt * unit.pkts / cfg.caps[j.index()].cpu));
            mem_terms[j.index()]
                .push((v, class.mem_per_item * unit.items / cfg.caps[j.index()].mem));
            vars.push(v);
        }
        // A unit touched by the exclusion keeps as much coverage as its
        // survivors allow; untouched units keep the strict `= r` row so
        // genuine infeasibility (r beyond the eligible set) still errors.
        let survivors = unit.nodes.iter().filter(|&&j| !is_excluded(j)).count() as f64;
        let rhs = if survivors < (unit.nodes.len() as f64) && survivors < cfg.redundancy {
            degraded.push(u);
            survivors
        } else {
            cfg.redundancy
        };
        let cover: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        p.add_con(format!("cover_{u}"), &cover, Cmp::Eq, rhs);
        dvars.push(vars);
    }
    for j in 0..dep.num_nodes {
        let mut t = cpu_terms[j].clone();
        t.push((load, -1.0));
        p.add_con(format!("cpu_{j}"), &t, Cmp::Le, 0.0);
        let mut t = mem_terms[j].clone();
        t.push((load, -1.0));
        p.add_con(format!("mem_{j}"), &t, Cmp::Le, 0.0);
    }

    let (sol, snapshot) = solve_warm(&p, &cfg.solver, warm);
    match sol.status {
        Status::Optimal => {}
        Status::Infeasible => return Err(NidsError::Infeasible),
        _ => return Err(NidsError::SolverFailed),
    }

    let mut d = Vec::with_capacity(dep.units.len());
    for (u, unit) in dep.units.iter().enumerate() {
        let fr: Vec<(NodeId, f64)> = unit
            .nodes
            .iter()
            .zip(&dvars[u])
            .map(|(&j, &v)| (j, sol.value(v).clamp(0.0, 1.0)))
            .collect();
        d.push(fr);
    }
    let (cpu_load, mem_load) = loads_from_assignment(dep, &cfg.caps, &d);
    let assignment = NidsAssignment {
        d,
        max_load: sol.objective,
        cpu_load,
        mem_load,
        lp_iterations: sol.iterations,
    };
    Ok((assignment, snapshot, degraded))
}

/// Per-node loads induced by a fractional assignment.
pub fn loads_from_assignment(
    dep: &NidsDeployment,
    caps: &[NodeCaps],
    d: &[Vec<(NodeId, f64)>],
) -> (Vec<f64>, Vec<f64>) {
    let mut cpu = vec![0.0; dep.num_nodes];
    let mut mem = vec![0.0; dep.num_nodes];
    for (u, unit) in dep.units.iter().enumerate() {
        let class = &dep.classes[unit.class];
        for &(j, f) in &d[u] {
            cpu[j.index()] += class.cpu_per_pkt * unit.pkts * f / caps[j.index()].cpu;
            mem[j.index()] += class.mem_per_item * unit.items * f / caps[j.index()].mem;
        }
    }
    (cpu, mem)
}

/// Loads of the single-vantage-point baseline: every location independently
/// analyzes all traffic it originates or terminates (the paper's
/// "edge-only" deployment). Per-path units are processed **twice** — once
/// at each endpoint — because neither edge knows the other covers it.
pub fn edge_only_loads(dep: &NidsDeployment, caps: &[NodeCaps]) -> (Vec<f64>, Vec<f64>) {
    let d: Vec<Vec<(NodeId, f64)>> = dep
        .units
        .iter()
        .map(|unit| match unit.key {
            crate::units::UnitKey::Path(s, dst) => vec![(s, 1.0), (dst, 1.0)],
            crate::units::UnitKey::Ingress(n) | crate::units::UnitKey::Egress(n) => {
                vec![(n, 1.0)]
            }
        })
        .collect();
    loads_from_assignment(dep, caps, &d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::AnalysisClass;
    use crate::units::build_units;
    use nwdp_topo::{internet2, PathDb};
    use nwdp_traffic::{TrafficMatrix, VolumeModel};

    fn setup() -> (NidsDeployment, NidsLpConfig) {
        let t = internet2();
        let paths = PathDb::shortest_paths(&t);
        let tm = TrafficMatrix::gravity(&t);
        let vol = VolumeModel::internet2_baseline();
        let dep = build_units(&t, &paths, &tm, &vol, &AnalysisClass::standard_set());
        let caps = NodeCaps { cpu: 2.0e8, mem: 4.0e9 };
        let cfg = NidsLpConfig::homogeneous(dep.num_nodes, caps);
        (dep, cfg)
    }

    #[test]
    fn lp_solves_and_covers() {
        let (dep, cfg) = setup();
        let a = solve_nids_lp(&dep, &cfg).unwrap();
        assert_eq!(a.d.len(), dep.units.len());
        for fr in &a.d {
            let sum: f64 = fr.iter().map(|&(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-6, "coverage violated: {sum}");
        }
        // Load definition consistency: reported loads equal recomputed.
        let worst = a.cpu_load.iter().chain(&a.mem_load).fold(0.0f64, |m, &x| m.max(x));
        assert!((worst - a.max_load).abs() < 1e-5, "{} vs {}", worst, a.max_load);
    }

    #[test]
    fn coordinated_beats_edge_only_max_load() {
        let (dep, cfg) = setup();
        let a = solve_nids_lp(&dep, &cfg).unwrap();
        let (ecpu, emem) = edge_only_loads(&dep, &cfg.caps);
        let edge_max = ecpu.iter().chain(&emem).fold(0.0f64, |m, &x| m.max(x));
        assert!(
            a.max_load < edge_max * 0.8,
            "coordination should cut the max load: {} vs {edge_max}",
            a.max_load
        );
    }

    #[test]
    fn single_node_units_stay_at_their_node() {
        let (dep, cfg) = setup();
        let a = solve_nids_lp(&dep, &cfg).unwrap();
        for (u, unit) in dep.units.iter().enumerate() {
            if unit.nodes.len() == 1 {
                assert_eq!(a.d[u].len(), 1);
                assert!((a.d[u][0].1 - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn heterogeneous_capacity_shifts_load() {
        let (dep, mut cfg) = setup();
        // Give node 0 10x capacity: it should absorb more work than under
        // homogeneous capacities.
        let base = solve_nids_lp(&dep, &cfg).unwrap();
        cfg.caps[0].cpu *= 10.0;
        cfg.caps[0].mem *= 10.0;
        let boosted = solve_nids_lp(&dep, &cfg).unwrap();
        assert!(boosted.max_load <= base.max_load + 1e-9);
    }

    #[test]
    fn redundancy_two_feasible_on_paths() {
        let (dep, mut cfg) = setup();
        // r = 2 requires ≥ 2 eligible nodes per unit; ingress/egress units
        // have only one, so restrict to per-path classes.
        let dep2 = NidsDeployment {
            classes: dep.classes.clone(),
            units: dep.units.iter().filter(|u| u.nodes.len() >= 2).cloned().collect(),
            num_nodes: dep.num_nodes,
        };
        cfg.redundancy = 2.0;
        let a = solve_nids_lp(&dep2, &cfg).unwrap();
        for fr in &a.d {
            let sum: f64 = fr.iter().map(|&(_, f)| f).sum();
            assert!((sum - 2.0).abs() < 1e-6);
            for &(_, f) in fr {
                assert!(f <= 1.0 + 1e-9, "single node over-covers: {f}");
            }
        }
    }

    #[test]
    fn infeasible_redundancy_detected() {
        let (dep, mut cfg) = setup();
        // r = 5 but two-hop paths have only 2 eligible nodes.
        cfg.redundancy = 5.0;
        assert!(matches!(solve_nids_lp(&dep, &cfg), Err(NidsError::Infeasible)));
    }
}
