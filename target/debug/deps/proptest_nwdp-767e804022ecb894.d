/root/repo/target/debug/deps/proptest_nwdp-767e804022ecb894.d: tests/proptest_nwdp.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_nwdp-767e804022ecb894.rmeta: tests/proptest_nwdp.rs Cargo.toml

tests/proptest_nwdp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
