/root/repo/target/debug/deps/nwdp_obs-88b585e0c55a6078.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp_obs-88b585e0c55a6078.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-W__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
