/root/repo/target/debug/examples/routing_change-8943b9531478eb9d.d: examples/routing_change.rs

/root/repo/target/debug/examples/routing_change-8943b9531478eb9d: examples/routing_change.rs

examples/routing_change.rs:
