/root/repo/target/debug/deps/repro-1b7251622edbf46b.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-1b7251622edbf46b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
