//! A small end-to-end pipeline run used to populate the metrics sidecar.
//!
//! Some experiments exercise only one subsystem (fig 5 never solves an
//! LP; opt-time never replays an engine), so a metrics dump taken after
//! such a run would miss whole metric families. When metrics export is
//! requested, `repro` first runs this miniature pipeline — NIDS LP →
//! manifests → coordinated replay → NIPS relaxation → randomized
//! rounding — so every sidecar carries simplex, row-generation, rounding
//! and per-node engine series regardless of which figures were selected.

use crate::scenario::NidsContext;
use nwdp_core::nips::{round_best_of, solve_relaxation, NipsInstance, RoundingOpts, Strategy};
use nwdp_engine::{run_coordinated, run_edge_only, Placement};
use nwdp_hash::KeyedHasher;
use nwdp_lp::rowgen::RowGenOpts;
use nwdp_online::{run_fpl, FplConfig, StochasticUniform};
use nwdp_traffic::MatchRates;

/// Run the miniature pipeline (a few seconds). Failures are reported but
/// non-fatal: the selftest exists only to enrich the metrics dump.
pub fn metrics_selftest() {
    let ctx = NidsContext::internet2();

    // NIDS side: LP + manifests (simplex/rowgen counters), then a short
    // edge-only and coordinated replay (per-node engine counters).
    let dep = ctx.deployment(9);
    let (_assignment, manifest) = ctx.manifests(&dep);
    let trace = ctx.trace(2_000, 77);
    let h = KeyedHasher::with_key(0xC0DE);
    if let Err(e) = run_edge_only(&dep, &trace, h) {
        eprintln!("metrics selftest: edge replay failed: {e:?}");
    }
    if let Err(e) = run_coordinated(&dep, &manifest, &ctx.paths, &trace, Placement::EventEngine, h)
    {
        eprintln!("metrics selftest: coordinated replay failed: {e:?}");
    }

    // NIPS side: relaxation + a handful of rounding trials.
    let n_rules = 8;
    let rates = MatchRates::uniform_001(n_rules, ctx.paths.all_pairs().count(), 77);
    let inst = NipsInstance::evaluation_setup(
        &ctx.topo, &ctx.paths, &ctx.tm, &ctx.vol, n_rules, 0.15, rates,
    );
    match solve_relaxation(&inst, &RowGenOpts::default()) {
        Ok(relax) => {
            let opts = RoundingOpts {
                strategy: Strategy::GreedyLpResolve,
                iterations: 4,
                seed: 77,
                ..Default::default()
            };
            if let Err(e) = round_best_of(&inst, &relax, &opts) {
                eprintln!("metrics selftest: rounding failed: {e}");
            }
        }
        Err(e) => eprintln!("metrics selftest: relaxation failed: {e:?}"),
    }

    // Online side: a few FPL epochs (oracle timers + regret gauge). §3.5
    // drops the TCAM constraint, so the oracle is the pure flow solver.
    let mut fpl_inst = inst;
    fpl_inst.cam_cap = vec![f64::INFINITY; fpl_inst.num_nodes];
    let mut adv = StochasticUniform::new(n_rules, fpl_inst.paths.len(), 0.01, 7);
    let cfg = FplConfig { epochs: 3, seed: 7, ..Default::default() };
    let _ = run_fpl(&fpl_inst, &mut adv, &cfg).expect("valid config");
}
