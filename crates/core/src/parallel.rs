//! Scoped-thread fan-out for embarrassingly parallel workloads.
//!
//! The paper's hot loops — the independent randomized-rounding trials of
//! Fig 9 / §3.4, the per-node engine replays of the network-wide
//! evaluation (§2.4), the perturbed FPL solves (§3.5) and the benchmark
//! sweeps — all share nothing between items, so they fan out across OS
//! threads with [`std::thread::scope`] (no external dependencies).
//!
//! ## Determinism contract
//!
//! Every helper returns results **in input order**, regardless of thread
//! count or completion order, and callers derive any per-item RNG seed
//! from the item index — never from a shared sequential stream. Together
//! these make every parallel call site bit-identical to its serial
//! fallback, which the cross-crate `parallel_equivalence` test enforces.
//!
//! ## Thread-count selection
//!
//! The worker count is, in order of precedence:
//! 1. a scoped [`with_threads`] override (used by tests and callers that
//!    want explicit control),
//! 2. the `NWDP_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! `NWDP_THREADS=1` (or a single-core host) selects a true serial
//! fallback: the closure runs on the calling thread and no worker threads
//! are spawned.

use nwdp_obs as obs;
use std::cell::Cell;
use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Parse a positive-count environment value (`NWDP_THREADS`,
/// `NWDP_SHARDS`, …). Whitespace is trimmed; `0` is floored to `1` (the
/// documented serial fallback). Returns `None` for anything that is not a
/// non-negative integer, so the caller can distinguish "unset/invalid" from
/// a real value.
pub fn parse_count(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().map(|n| n.max(1))
}

/// Env-var config values that already triggered an invalid-value warning,
/// so each misconfigured variable warns exactly once per process.
fn warned_vars() -> &'static Mutex<BTreeSet<String>> {
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Record an invalid env-var value: one-shot stderr warning (first sighting
/// per variable per process) plus a `config.invalid_env` counter when
/// metrics are on. Returns whether this call was the first sighting —
/// tests key off that instead of capturing stderr.
pub fn note_invalid_env(var: &str, raw: &str) -> bool {
    note_invalid_env_expecting(var, raw, "a non-negative integer")
}

/// [`note_invalid_env`] with a caller-supplied description of the expected
/// value shape (non-integer knobs like `NWDP_RELOAD_BLEND` pass e.g.
/// `"a number in [0, 1]"`).
pub fn note_invalid_env_expecting(var: &str, raw: &str, expected: &str) -> bool {
    if obs::enabled() {
        obs::Scope::new("config").counter_with("invalid_env", &[("var", var)]).inc();
    }
    let first = match warned_vars().lock() {
        Ok(mut seen) => seen.insert(var.to_string()),
        Err(_) => false, // a warner panicked mid-insert: stay quiet
    };
    if first {
        // Deliberately user-facing regardless of tracing config: a typo'd
        // knob silently falling back to defaults is how whole benchmark
        // runs get measured under the wrong parallelism.
        use std::io::Write as _;
        let _ = writeln!(
            std::io::stderr(),
            "nwdp: ignoring invalid {var}={raw:?} (expected {expected}); using default"
        );
    }
    first
}

/// Read a count-valued environment variable via [`parse_count`], warning
/// through [`note_invalid_env`] on unparseable values (which then fall back
/// to the caller's default, exactly as if the variable were unset).
pub fn env_count(var: &str) -> Option<usize> {
    let raw = std::env::var_os(var)?;
    let parsed = raw.to_str().and_then(parse_count);
    if parsed.is_none() {
        note_invalid_env(var, &raw.to_string_lossy());
    }
    parsed
}

/// Number of worker threads a fan-out on this thread would use.
pub fn num_threads() -> usize {
    if let Some(n) = OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    if let Some(n) = env_count("NWDP_THREADS") {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `f` with the thread count pinned to `n` on the current thread
/// (nested fan-outs included). Restores the previous setting on exit,
/// including on panic. Primarily for tests asserting parallel == serial.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(n.max(1)))));
    f()
}

/// Map `f` over `0..n`, fanning out across scoped threads; results are in
/// index order. `f` receives the item index (callers derive per-item
/// seeds from it).
pub fn par_map_n<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        if obs::enabled() {
            let s = obs::Scope::new("parallel");
            s.counter("serial_fallbacks").inc();
            s.counter("tasks").add(n as u64);
        }
        return (0..n).map(f).collect();
    }
    // Contiguous index blocks, one per worker; block w covers
    // [w*q + w.min(r), ...) with the first r blocks one longer.
    let (q, r) = (n / workers, n % workers);
    let f = &f;
    let measuring = obs::enabled();
    // Captured before the spawn so worker spans nest under whatever span
    // the calling thread had open (span ancestry is per-thread otherwise).
    let parent = obs::current_span_id();
    let mut blocks: Vec<Vec<R>> = Vec::with_capacity(workers);
    let mut worker_ns: Vec<u64> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * q + w.min(r);
                let hi = lo + q + usize::from(w < r);
                s.spawn(move || {
                    let _span = obs::span_under(
                        parent,
                        "parallel.worker",
                        &[
                            ("w", obs::TraceValue::from(w)),
                            ("lo", obs::TraceValue::from(lo)),
                            ("hi", obs::TraceValue::from(hi)),
                        ],
                    );
                    let t0 = measuring.then(Instant::now);
                    let block = (lo..hi).map(f).collect::<Vec<R>>();
                    let ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    (block, ns)
                })
            })
            .collect();
        for h in handles {
            let (block, ns) = h.join().expect("parallel worker panicked");
            blocks.push(block);
            worker_ns.push(ns);
        }
    });
    if measuring {
        flush_fanout_metrics(n, &worker_ns);
    }
    blocks.into_iter().flatten().collect()
}

/// Publish one fan-out's load-balance profile: per-worker wall time and
/// the max/mean imbalance ratio (1.0 = perfectly balanced blocks).
fn flush_fanout_metrics(tasks: usize, worker_ns: &[u64]) {
    let s = obs::Scope::new("parallel");
    s.counter("fanouts").inc();
    s.counter("tasks").add(tasks as u64);
    s.counter("workers").add(worker_ns.len() as u64);
    let timer = s.timer("worker_ns");
    for &ns in worker_ns {
        timer.observe_ns(ns);
    }
    let max = worker_ns.iter().copied().max().unwrap_or(0) as f64;
    let mean = worker_ns.iter().sum::<u64>() as f64 / worker_ns.len().max(1) as f64;
    if mean > 0.0 {
        s.gauge("imbalance").set_max(max / mean);
    }
}

/// Map `f` over the items of a slice in parallel; results are in input
/// order. `f` receives `(index, &item)`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_n(items.len(), |i| f(i, &items[i]))
}

/// Map `f` over the `rows × cols` grid, fanning all cells out across
/// threads as one flat task pool (so an idle row never strands workers);
/// results come back grouped per row, cells in column order. `f` receives
/// `(row, col)`. The streaming engine uses this for its node × shard
/// fan-out.
pub fn par_map_grid<R, F>(rows: usize, cols: usize, f: F) -> Vec<Vec<R>>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let cols = cols.max(1);
    let flat = par_map_n(rows * cols, |i| f(i / cols, i % cols));
    let mut out: Vec<Vec<R>> = Vec::with_capacity(rows);
    let mut it = flat.into_iter();
    for _ in 0..rows {
        out.push(it.by_ref().take(cols).collect());
    }
    out
}

/// Map `f` over contiguous chunks of `items` (at most `chunk` elements
/// each), fanning the chunks out across threads. Results are one `R` per
/// chunk, in chunk order; `f` receives `(chunk_start_index, chunk)`.
pub fn par_chunks<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = items.len().div_ceil(chunk);
    par_map_n(n_chunks, |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(items.len());
        f(lo, &items[lo..hi])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_n_preserves_order() {
        for threads in [1, 2, 3, 8, 64] {
            let got = with_threads(threads, || par_map_n(17, |i| i * i));
            assert_eq!(got, (0..17).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..101).map(|i| i * 3 + 1).collect();
        let serial: Vec<u64> = items.iter().enumerate().map(|(i, x)| x + i as u64).collect();
        let par = with_threads(4, || par_map(&items, |i, x| x + i as u64));
        assert_eq!(par, serial);
    }

    #[test]
    fn par_chunks_covers_every_item_once() {
        let items: Vec<usize> = (0..1000).collect();
        let sums = with_threads(3, || par_chunks(&items, 64, |_, c| c.iter().sum::<usize>()));
        assert_eq!(sums.len(), 1000usize.div_ceil(64));
        assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
    }

    #[test]
    fn par_map_grid_groups_rows_in_order() {
        for threads in [1, 3, 8] {
            let got = with_threads(threads, || par_map_grid(4, 3, |r, c| 10 * r + c));
            assert_eq!(got.len(), 4, "threads={threads}");
            for (r, row) in got.iter().enumerate() {
                assert_eq!(row, &vec![10 * r, 10 * r + 1, 10 * r + 2], "threads={threads}");
            }
        }
        assert_eq!(par_map_grid(0, 5, |r, c| (r, c)), Vec::<Vec<(usize, usize)>>::new());
        // Zero columns clamp to one cell per row.
        assert_eq!(par_map_grid(2, 0, |r, c| (r, c)), vec![vec![(0, 0)], vec![(1, 0)]]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map_n(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_n(1, |i| i + 5), vec![5]);
        assert_eq!(par_map(&[] as &[u8], |_, &b| b), Vec::<u8>::new());
        assert_eq!(par_chunks(&[] as &[u8], 8, |_, c| c.len()), Vec::<usize>::new());
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let before = num_threads();
        with_threads(2, || assert_eq!(num_threads(), 2));
        assert_eq!(num_threads(), before);
    }

    #[test]
    fn override_floor_is_one() {
        with_threads(0, || assert_eq!(num_threads(), 1));
    }

    #[test]
    fn parse_count_accepts_integers_and_rejects_garbage() {
        assert_eq!(parse_count("4"), Some(4));
        assert_eq!(parse_count(" 8 "), Some(8));
        assert_eq!(parse_count("0"), Some(1), "zero floors to the serial fallback");
        assert_eq!(parse_count("abc"), None);
        assert_eq!(parse_count(""), None);
        assert_eq!(parse_count("-1"), None);
        assert_eq!(parse_count("1.5"), None);
        assert_eq!(parse_count("4 threads"), None);
    }

    #[test]
    fn invalid_env_warns_exactly_once_per_var() {
        assert!(note_invalid_env("NWDP_TEST_BOGUS_A", "abc"), "first sighting warns");
        assert!(!note_invalid_env("NWDP_TEST_BOGUS_A", "abc"), "repeat stays quiet");
        assert!(!note_invalid_env("NWDP_TEST_BOGUS_A", "xyz"), "per-var, not per-value");
        assert!(note_invalid_env("NWDP_TEST_BOGUS_B", "abc"), "other vars warn independently");
    }
}
