//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and the `proptest!` macro surface
//! this workspace uses, backed by deterministic random sampling (no
//! shrinking): each property runs `ProptestConfig::cases` times with
//! inputs drawn from a fixed-seed [`rand::StdRng`], so failures are
//! reproducible run-to-run and across machines.

pub mod collection;
pub mod strategy;

use rand::rngs::StdRng;

/// Per-property configuration (only the `cases` knob is used here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Values with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        rng.next_f64()
    }
}

/// Strategy producing any value of `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Assert a condition inside a property, failing the case (not aborting
/// the process) when it is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!` on equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Define deterministic sampling-based property tests.
///
/// Supported form (the one used across this workspace):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..10, v in proptest::collection::vec(0.0f64..1.0, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Fixed seed: property inputs are reproducible run-to-run.
            // Derive it from the test name so distinct properties explore
            // distinct corners of the input space.
            let mut __rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                0x70726f70u64 ^ stringify!($name)
                    .bytes()
                    .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64)),
            );
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut __rng);)+
                let __dbg = format!(concat!($(stringify!($arg), " = {:?}; ",)+), $(&$arg,)+);
                let __result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = __result {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), __case + 1, config.cases, e, __dbg
                    );
                }
            }
        }
    )*};
}
