//! # nwdp-traffic — workload substrate
//!
//! Reproduces the paper's custom traffic generator and measurement inputs:
//! gravity-model traffic matrices from city populations ([`matrix`]), the
//! published Internet2 volume baseline with linear scaling ([`volume`]),
//! application traffic profiles ([`profile`]), template-based session and
//! packet synthesis with anomaly injection ([`session`], [`generator`]),
//! and NIPS match-rate scenarios ([`matchrate`]).
//!
//! Everything is seeded and bit-reproducible.

pub mod faults;
pub mod generator;
pub mod matchrate;
pub mod matrix;
pub mod profile;
pub mod session;
pub mod volume;

pub use faults::{FaultInjector, NodeBlackout};
pub use generator::{
    generate_trace, host_ip, node_of_ip, AnomalyConfig, NetTrace, SessionStream, TraceConfig,
};
pub use matchrate::{Distribution, MatchRates};
pub use matrix::TrafficMatrix;
pub use profile::{AppProtocol, TrafficProfile};
pub use session::{Packet, Session, SessionKind};
pub use volume::VolumeModel;
