/root/repo/target/debug/examples/nips_isp-50ccf124fc800a33.d: examples/nips_isp.rs

/root/repo/target/debug/examples/nips_isp-50ccf124fc800a33: examples/nips_isp.rs

examples/nips_isp.rs:
