//! Node-level failure scenarios and deterministic injection schedules.
//!
//! The paper's deployment model partitions coverage across on-path nodes,
//! so a *node* failure — not just a lossy capture point — silently opens a
//! gap in every hash range the node owned. This module describes the three
//! failure modes the resilience layer handles and provides a seeded
//! schedule generator so tests and the `repro resilience` harness inject
//! the exact same failures on every run.
//!
//! Time is measured in **replay fractions**: `0.0` is the first session of
//! a trace replay, `1.0` the end. The engine's resilient runner and the
//! detection-window accounting both use this clock, which keeps the whole
//! pipeline independent of wall-clock speed.

use nwdp_topo::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// What went wrong with a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureKind {
    /// The node's monitor dies permanently: it observes nothing from the
    /// failure on and its responsibilities must move to survivors.
    Crash,
    /// The node is unreachable (heartbeats and observations lost) until
    /// the given replay fraction, then returns with its state intact.
    Partition { until: f64 },
    /// The node stays up but its effective capacity is multiplied by
    /// `factor < 1` (throttling, partial hardware failure, co-located
    /// load). Handled by graceful degradation, not repair.
    CapacityDegraded { factor: f64 },
}

/// One failure event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureScenario {
    pub node: NodeId,
    /// Replay fraction at which the failure strikes.
    pub at: f64,
    pub kind: FailureKind,
}

impl FailureScenario {
    /// Is the node blind (observing nothing) at replay fraction `now`?
    pub fn blind_at(&self, now: f64) -> bool {
        match self.kind {
            FailureKind::Crash => now >= self.at,
            FailureKind::Partition { until } => now >= self.at && now < until,
            FailureKind::CapacityDegraded { .. } => false,
        }
    }
}

/// A deterministic set of failure events over one replay.
#[derive(Debug, Clone, Default)]
pub struct FailureSchedule {
    pub events: Vec<FailureScenario>,
}

impl FailureSchedule {
    /// No failures.
    pub fn none() -> Self {
        FailureSchedule { events: Vec::new() }
    }

    /// A single permanent crash.
    pub fn single_crash(node: NodeId, at: f64) -> Self {
        FailureSchedule { events: vec![FailureScenario { node, at, kind: FailureKind::Crash }] }
    }

    /// Seeded random schedule: `events` failures over `num_nodes` nodes
    /// with a fixed kind mix (half crashes, a quarter healing partitions,
    /// a quarter capacity degradations). Deterministic in `seed`.
    pub fn random(num_nodes: usize, events: usize, seed: u64) -> Self {
        assert!(num_nodes > 0, "schedule needs at least one node");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x05ca_1ab1_e0dd_ba11);
        let mut out = Vec::with_capacity(events);
        for _ in 0..events {
            let node = NodeId(rng.random_range(0..num_nodes));
            let at: f64 = rng.random_range(0.0..0.9);
            let kind = match rng.random_range(0u32..4) {
                0 | 1 => FailureKind::Crash,
                2 => FailureKind::Partition { until: at + rng.random_range(0.05..(1.0 - at)) },
                _ => FailureKind::CapacityDegraded { factor: rng.random_range(0.2..0.9) },
            };
            out.push(FailureScenario { node, at, kind });
        }
        out.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.node.cmp(&b.node)));
        FailureSchedule { events: out }
    }

    /// Nodes blind (crashed or partitioned away) at replay fraction `now`,
    /// deduplicated and sorted.
    pub fn blind_nodes(&self, now: f64) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> =
            self.events.iter().filter(|e| e.blind_at(now)).map(|e| e.node).collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Effective capacity multiplier for `node` at replay fraction `now`
    /// (1.0 when undegraded; the worst active degradation otherwise).
    pub fn capacity_factor(&self, node: NodeId, now: f64) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FailureKind::CapacityDegraded { factor } if e.node == node && now >= e.at => {
                    Some(factor)
                }
                _ => None,
            })
            .fold(1.0, f64::min)
    }

    /// The earliest event time, if any.
    pub fn first_at(&self) -> Option<f64> {
        self.events.iter().map(|e| e.at).min_by(f64::total_cmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_schedule_is_deterministic_and_sorted() {
        let a = FailureSchedule::random(11, 16, 42);
        let b = FailureSchedule::random(11, 16, 42);
        assert_eq!(a.events, b.events);
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
        let c = FailureSchedule::random(11, 16, 43);
        assert_ne!(a.events, c.events, "different seeds differ");
        // All three kinds appear in a schedule this size.
        assert!(a.events.iter().any(|e| matches!(e.kind, FailureKind::Crash)));
        assert!(a.events.iter().any(|e| matches!(e.kind, FailureKind::Partition { .. })));
        assert!(a.events.iter().any(|e| matches!(e.kind, FailureKind::CapacityDegraded { .. })));
    }

    #[test]
    fn blindness_windows() {
        let sched = FailureSchedule {
            events: vec![
                FailureScenario { node: NodeId(1), at: 0.2, kind: FailureKind::Crash },
                FailureScenario {
                    node: NodeId(2),
                    at: 0.3,
                    kind: FailureKind::Partition { until: 0.5 },
                },
                FailureScenario {
                    node: NodeId(3),
                    at: 0.1,
                    kind: FailureKind::CapacityDegraded { factor: 0.5 },
                },
            ],
        };
        assert!(sched.blind_nodes(0.0).is_empty());
        assert_eq!(sched.blind_nodes(0.25), vec![NodeId(1)]);
        assert_eq!(sched.blind_nodes(0.4), vec![NodeId(1), NodeId(2)]);
        // The partition heals; the crash does not.
        assert_eq!(sched.blind_nodes(0.9), vec![NodeId(1)]);
        // Degradation never blinds, but scales capacity.
        assert_eq!(sched.capacity_factor(NodeId(3), 0.05), 1.0);
        assert_eq!(sched.capacity_factor(NodeId(3), 0.5), 0.5);
        assert_eq!(sched.capacity_factor(NodeId(1), 0.5), 1.0);
        assert_eq!(sched.first_at(), Some(0.1));
    }
}
