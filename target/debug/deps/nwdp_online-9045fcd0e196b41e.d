/root/repo/target/debug/deps/nwdp_online-9045fcd0e196b41e.d: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp_online-9045fcd0e196b41e.rmeta: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs Cargo.toml

crates/online/src/lib.rs:
crates/online/src/adversary.rs:
crates/online/src/fpl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
