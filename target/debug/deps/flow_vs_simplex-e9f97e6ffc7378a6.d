/root/repo/target/debug/deps/flow_vs_simplex-e9f97e6ffc7378a6.d: crates/lp/tests/flow_vs_simplex.rs

/root/repo/target/debug/deps/flow_vs_simplex-e9f97e6ffc7378a6: crates/lp/tests/flow_vs_simplex.rs

crates/lp/tests/flow_vs_simplex.rs:
