//! Traffic matrices.
//!
//! The paper uses a gravity model based on city populations to set the
//! fraction of traffic between each ingress–egress pair (§2.4, §3.4,
//! following Roughan et al. [30]): the share of (s, d) traffic is
//! proportional to `pop(s) · pop(d)`.

use nwdp_topo::{NodeId, Topology};

/// A normalized ingress–egress traffic matrix: `frac(s, d)` sums to 1 over
/// all ordered pairs with distinct endpoints.
#[derive(Debug, Clone)]
pub struct TrafficMatrix {
    n: usize,
    frac: Vec<f64>,
}

impl TrafficMatrix {
    /// Gravity model from node populations.
    pub fn gravity(topo: &Topology) -> Self {
        let n = topo.num_nodes();
        let mut frac = vec![0.0; n * n];
        let mut total = 0.0;
        for s in topo.nodes() {
            for d in topo.nodes() {
                if s != d {
                    let w = topo.population(s) * topo.population(d);
                    frac[s.index() * n + d.index()] = w;
                    total += w;
                }
            }
        }
        assert!(total > 0.0, "gravity model needs positive populations");
        for f in frac.iter_mut() {
            *f /= total;
        }
        TrafficMatrix { n, frac }
    }

    /// Uniform matrix over distinct ordered pairs.
    pub fn uniform(topo: &Topology) -> Self {
        let n = topo.num_nodes();
        let pairs = (n * (n - 1)) as f64;
        let mut frac = vec![1.0 / pairs; n * n];
        for i in 0..n {
            frac[i * n + i] = 0.0;
        }
        TrafficMatrix { n, frac }
    }

    /// Fraction of total traffic from `s` to `d`.
    pub fn frac(&self, s: NodeId, d: NodeId) -> f64 {
        self.frac[s.index() * self.n + d.index()]
    }

    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Total fraction originating at `s` (row sum).
    pub fn origin_frac(&self, s: NodeId) -> f64 {
        (0..self.n).map(|d| self.frac[s.index() * self.n + d]).sum()
    }

    /// The ordered pair carrying the most traffic. Non-finite entries
    /// (NaN from a degenerate gravity model) compare lowest rather than
    /// panicking.
    pub fn busiest_pair(&self) -> (NodeId, NodeId) {
        let finite_or_min = |v: f64| if v.is_finite() { v } else { f64::NEG_INFINITY };
        let (idx, _) = self
            .frac
            .iter()
            .enumerate()
            .max_by(|a, b| finite_or_min(*a.1).total_cmp(&finite_or_min(*b.1)))
            .expect("empty TM");
        (NodeId(idx / self.n), NodeId(idx % self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwdp_topo::internet2;

    /// Regression: a NaN entry used to trip
    /// `partial_cmp(..).expect("NaN in TM")`; non-finite entries now
    /// compare lowest and the busiest finite pair wins.
    #[test]
    fn busiest_pair_tolerates_nan_entries() {
        let mut tm = TrafficMatrix { n: 2, frac: vec![0.0, f64::NAN, 0.7, 0.0] };
        assert_eq!(tm.busiest_pair(), (NodeId(1), NodeId(0)));
        tm.frac = vec![f64::NAN; 4];
        // Degenerate all-NaN matrix: still answers without panicking.
        let (s, d) = tm.busiest_pair();
        assert!(s.index() < 2 && d.index() < 2);
    }

    #[test]
    fn gravity_sums_to_one() {
        let t = internet2();
        let tm = TrafficMatrix::gravity(&t);
        let total: f64 = t
            .nodes()
            .flat_map(|s| t.nodes().map(move |d| (s, d)))
            .map(|(s, d)| tm.frac(s, d))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
        for n in t.nodes() {
            assert_eq!(tm.frac(n, n), 0.0);
        }
    }

    #[test]
    fn gravity_hotspot_is_new_york() {
        let t = internet2();
        let tm = TrafficMatrix::gravity(&t);
        let nyc = t.find("NewYork").unwrap();
        // New York has the largest origin share (paper Fig 8: node 11).
        for s in t.nodes() {
            assert!(tm.origin_frac(s) <= tm.origin_frac(nyc) + 1e-12);
        }
        let (a, b) = tm.busiest_pair();
        let la = t.find("LosAngeles").unwrap();
        assert!(a == nyc || b == nyc, "busiest pair should involve NYC");
        assert!(a == la || b == la, "busiest pair should involve LA");
    }

    #[test]
    fn uniform_is_flat() {
        let t = internet2();
        let tm = TrafficMatrix::uniform(&t);
        let f = tm.frac(NodeId(0), NodeId(1));
        assert!((f - 1.0 / 110.0).abs() < 1e-12);
        assert_eq!(tm.frac(NodeId(3), NodeId(3)), 0.0);
    }

    use nwdp_topo::NodeId;
}
