/root/repo/target/debug/deps/parallel_equivalence-a6161ccb75c3cb81.d: tests/parallel_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_equivalence-a6161ccb75c3cb81.rmeta: tests/parallel_equivalence.rs Cargo.toml

tests/parallel_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
