/root/repo/target/debug/deps/nwdp-2ac0c0227553e17b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp-2ac0c0227553e17b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
