/root/repo/target/debug/deps/nwdp_obs-3cda2fd6e3b74dc1.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs

/root/repo/target/debug/deps/nwdp_obs-3cda2fd6e3b74dc1: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/registry.rs:
