/root/repo/target/debug/deps/pipeline-3c790ac55f16709b.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-3c790ac55f16709b.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
