/root/repo/target/debug/deps/rand-46a0639249b64b1d.d: crates/rand/src/lib.rs crates/rand/src/rngs.rs

/root/repo/target/debug/deps/rand-46a0639249b64b1d: crates/rand/src/lib.rs crates/rand/src/rngs.rs

crates/rand/src/lib.rs:
crates/rand/src/rngs.rs:
