/root/repo/target/debug/deps/parallel_equivalence-34b7d0d16bfb4e56.d: tests/parallel_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_equivalence-34b7d0d16bfb4e56.rmeta: tests/parallel_equivalence.rs Cargo.toml

tests/parallel_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
