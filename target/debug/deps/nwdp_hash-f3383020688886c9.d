/root/repo/target/debug/deps/nwdp_hash-f3383020688886c9.d: crates/hash/src/lib.rs crates/hash/src/key.rs crates/hash/src/keyed.rs crates/hash/src/lookup3.rs crates/hash/src/range.rs

/root/repo/target/debug/deps/libnwdp_hash-f3383020688886c9.rlib: crates/hash/src/lib.rs crates/hash/src/key.rs crates/hash/src/keyed.rs crates/hash/src/lookup3.rs crates/hash/src/range.rs

/root/repo/target/debug/deps/libnwdp_hash-f3383020688886c9.rmeta: crates/hash/src/lib.rs crates/hash/src/key.rs crates/hash/src/keyed.rs crates/hash/src/lookup3.rs crates/hash/src/range.rs

crates/hash/src/lib.rs:
crates/hash/src/key.rs:
crates/hash/src/keyed.rs:
crates/hash/src/lookup3.rs:
crates/hash/src/range.rs:
