/root/repo/target/release/examples/routing_change-a30b1bccc8779140.d: examples/routing_change.rs

/root/repo/target/release/examples/routing_change-a30b1bccc8779140: examples/routing_change.rs

examples/routing_change.rs:
