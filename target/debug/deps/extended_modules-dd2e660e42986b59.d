/root/repo/target/debug/deps/extended_modules-dd2e660e42986b59.d: crates/engine/tests/extended_modules.rs

/root/repo/target/debug/deps/extended_modules-dd2e660e42986b59: crates/engine/tests/extended_modules.rs

crates/engine/tests/extended_modules.rs:
