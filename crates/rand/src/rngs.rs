//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator (Blackman & Vigna), seeded with
/// SplitMix64. Fast, 256-bit state, exactly specified over `u64` — streams
/// are identical on every platform, which the workspace's determinism
/// guarantees rely on.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        // An all-zero state is the one fixed point of xoshiro; nudge it.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9e3779b97f4a7c15;
        }
        StdRng { s }
    }

    fn seed_from_u64(mut state: u64) -> Self {
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}
