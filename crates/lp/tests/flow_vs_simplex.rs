//! Cross-validation: the min-cost-flow fast path must agree with the
//! simplex on random transportation instances (the structure of the NIPS
//! inner sampling LP with rule placement fixed).

use nwdp_lp::flow::MinCostFlow;
use nwdp_lp::{solve, Cmp, Problem, Sense, SolverOpts, Status};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random transportation instance: `nc` commodities with integer supplies,
/// `nn` nodes with integer capacities, profit per (commodity, node) edge on
/// a random subset of edges.
fn random_instance(
    rng: &mut StdRng,
    nc: usize,
    nn: usize,
) -> (Vec<i64>, Vec<i64>, Vec<Vec<Option<f64>>>) {
    let supplies: Vec<i64> = (0..nc).map(|_| rng.random_range(1..20)).collect();
    let caps: Vec<i64> = (0..nn).map(|_| rng.random_range(1..25)).collect();
    let profit: Vec<Vec<Option<f64>>> = (0..nc)
        .map(|_| {
            (0..nn)
                .map(|_| {
                    if rng.random_bool(0.6) {
                        // Integer-ish profits keep ties deterministic enough.
                        Some(rng.random_range(0..8) as f64 - 1.0)
                    } else {
                        None
                    }
                })
                .collect()
        })
        .collect();
    (supplies, caps, profit)
}

fn solve_by_flow(supplies: &[i64], caps: &[i64], profit: &[Vec<Option<f64>>]) -> f64 {
    let mut g = MinCostFlow::new();
    let s = g.add_node();
    let t = g.add_node();
    let com: Vec<usize> = (0..supplies.len()).map(|_| g.add_node()).collect();
    let nod: Vec<usize> = (0..caps.len()).map(|_| g.add_node()).collect();
    for (k, &sup) in supplies.iter().enumerate() {
        g.add_arc(s, com[k], sup, 0.0);
    }
    for (j, &cap) in caps.iter().enumerate() {
        g.add_arc(nod[j], t, cap, 0.0);
    }
    for (k, row) in profit.iter().enumerate() {
        for (j, p) in row.iter().enumerate() {
            if let Some(w) = p {
                g.add_arc(com[k], nod[j], supplies[k], -w);
            }
        }
    }
    let (_, cost) = g.solve_profitable(s, t);
    -cost
}

fn solve_by_lp(supplies: &[i64], caps: &[i64], profit: &[Vec<Option<f64>>]) -> f64 {
    let mut p = Problem::new(Sense::Max);
    let mut vars = vec![vec![None; caps.len()]; supplies.len()];
    for (k, row) in profit.iter().enumerate() {
        for (j, pr) in row.iter().enumerate() {
            if let Some(w) = pr {
                vars[k][j] = Some(p.add_var(format!("x{k}_{j}"), 0.0, f64::INFINITY, *w));
            }
        }
    }
    for (k, &sup) in supplies.iter().enumerate() {
        let terms: Vec<_> = vars[k].iter().flatten().map(|&v| (v, 1.0)).collect();
        if !terms.is_empty() {
            p.add_con(format!("sup{k}"), &terms, Cmp::Le, sup as f64);
        }
    }
    for (j, &cap) in caps.iter().enumerate() {
        let terms: Vec<_> = vars.iter().filter_map(|row| row[j]).map(|v| (v, 1.0)).collect();
        if !terms.is_empty() {
            p.add_con(format!("cap{j}"), &terms, Cmp::Le, cap as f64);
        }
    }
    let s = solve(&p, &SolverOpts::default());
    assert_eq!(s.status, Status::Optimal);
    s.objective
}

#[test]
fn flow_matches_simplex_on_random_transportation() {
    let mut rng = StdRng::seed_from_u64(0xF10F10);
    for trial in 0..50 {
        let nc = rng.random_range(1..8);
        let nn = rng.random_range(1..6);
        let (sup, caps, profit) = random_instance(&mut rng, nc, nn);
        let f = solve_by_flow(&sup, &caps, &profit);
        let l = solve_by_lp(&sup, &caps, &profit);
        assert!((f - l).abs() < 1e-6 * (1.0 + l.abs()), "trial {trial}: flow {f} vs simplex {l}");
    }
}

#[test]
fn flow_matches_simplex_large_instance() {
    let mut rng = StdRng::seed_from_u64(7777);
    let (sup, caps, profit) = random_instance(&mut rng, 40, 12);
    let f = solve_by_flow(&sup, &caps, &profit);
    let l = solve_by_lp(&sup, &caps, &profit);
    assert!((f - l).abs() < 1e-6 * (1.0 + l.abs()), "flow {f} vs simplex {l}");
}
