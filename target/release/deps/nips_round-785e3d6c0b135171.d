/root/repo/target/release/deps/nips_round-785e3d6c0b135171.d: crates/bench/benches/nips_round.rs

/root/repo/target/release/deps/nips_round-785e3d6c0b135171: crates/bench/benches/nips_round.rs

crates/bench/benches/nips_round.rs:
