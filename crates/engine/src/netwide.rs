//! Network-wide emulation harness (paper §2.4, "Network-wide evaluation").
//!
//! "From a network-wide trace, we generate traces that each node sees. For
//! the coordinated case, this includes both traffic originating/terminating
//! at a node and transit traffic. For the edge-only case, these consist of
//! traffic originating/terminating at each node."
//!
//! Each node's replay is an independent engine over its own slice of the
//! trace, so the per-node fan-out runs on scoped threads (see
//! [`nwdp_core::parallel`]). Per-node [`RunStats`] are merged back in node
//! order after the join, which keeps the result bit-identical to a serial
//! run for any `NWDP_THREADS` setting.

use crate::engine::{CoordContext, Engine, Placement, RunStats};
use crate::modules::{Alert, EngineError};
use nwdp_core::nids::{NodeCaps, SamplingManifest};
use nwdp_core::resilience::{
    distance_weighted_values, greedy_repair, manifest_gap_fraction, shed_overload, FailureKind,
    FailureSchedule, HealthConfig,
};
use nwdp_core::{parallel, NidsDeployment};
use nwdp_hash::KeyedHasher;
use nwdp_obs as obs;
use nwdp_topo::{NodeId, PathDb};
use nwdp_traffic::{FaultInjector, NetTrace};
use std::collections::BTreeSet;

/// Results of running one deployment scenario across all nodes.
#[derive(Debug, Clone)]
pub struct NetworkRun {
    pub per_node: Vec<RunStats>,
    /// Union of alerts across the network (for equivalence checks).
    pub alerts: BTreeSet<Alert>,
}

impl NetworkRun {
    pub fn max_cpu(&self) -> u64 {
        self.per_node.iter().map(|s| s.cpu_cycles).max().unwrap_or(0)
    }

    pub fn max_mem(&self) -> u64 {
        self.per_node.iter().map(|s| s.mem_peak).max().unwrap_or(0)
    }

    pub fn total_cpu(&self) -> u64 {
        self.per_node.iter().map(|s| s.cpu_cycles).sum()
    }
}

fn class_names(dep: &NidsDeployment) -> Vec<String> {
    dep.classes.iter().map(|c| c.name.clone()).collect()
}

/// Replay every node's engine over its trace slice in parallel (one
/// independent engine per node; deterministic node-order merge).
fn replay_nodes(
    mode: &str,
    num_nodes: usize,
    run_node: impl Fn(NodeId) -> Result<RunStats, EngineError> + Sync,
) -> Result<NetworkRun, EngineError> {
    let _span = obs::span!("engine.replay", mode = mode, nodes = num_nodes);
    let per_node = parallel::par_map_n(num_nodes, |j| {
        let _span = obs::span!("engine.replay_node", node = j);
        run_node(NodeId(j))
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    let mut alerts = BTreeSet::new();
    for stats in &per_node {
        alerts.extend(stats.alerts.iter().cloned());
    }
    let run = NetworkRun { per_node, alerts };
    if obs::enabled() {
        flush_metrics(mode, &run);
    }
    Ok(run)
}

/// Publish one replay's per-node load profile to the metrics registry.
pub(crate) fn flush_metrics(mode: &str, run: &NetworkRun) {
    let s = obs::Scope::new("engine");
    s.counter_with("runs", &[("mode", mode)]).inc();
    s.gauge_with("max_cpu_cycles", &[("mode", mode)]).set_max(run.max_cpu() as f64);
    let mut per_class: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for st in &run.per_node {
        let node = st.node.0.to_string();
        let labels = [("mode", mode), ("node", node.as_str())];
        s.counter_with("packets", &labels).add(st.packets);
        s.counter_with("connections", &labels).add(st.connections as u64);
        s.counter_with("cpu_cycles", &labels).add(st.cpu_cycles);
        s.counter_with("fastpath_skipped", &labels).add(st.fastpath_skipped);
        s.counter_with("range_checks", &labels).add(st.range_checks);
        s.counter_with("range_hits", &labels).add(st.range_hits);
        s.gauge_with("range_hit_rate", &labels).set(st.range_hit_rate());
        for (class, cpu) in &st.per_module_cpu {
            *per_class.entry(class.as_str()).or_default() += cpu;
        }
    }
    for (class, cpu) in per_class {
        s.counter_with("class_cpu_cycles", &[("class", class), ("mode", mode)]).add(cpu);
    }
}

/// Edge-only deployment: every node independently runs stock Bro on the
/// traffic it originates or terminates.
pub fn run_edge_only(
    dep: &NidsDeployment,
    trace: &NetTrace,
    hasher: KeyedHasher,
) -> Result<NetworkRun, EngineError> {
    let names = class_names(dep);
    replay_nodes("edge_only", dep.num_nodes, |node| {
        let mut engine = Engine::new(node, Placement::Unmodified, &names, None, hasher)?;
        for s in trace.edge_sessions(node) {
            engine.process_session(s);
        }
        Ok(engine.stats())
    })
}

/// Coordinated network-wide deployment: every node runs the coordinated
/// engine (checks placed per the paper's final configuration) over all
/// on-path traffic, guided by the shared sampling manifest.
pub fn run_coordinated(
    dep: &NidsDeployment,
    manifest: &SamplingManifest,
    paths: &PathDb,
    trace: &NetTrace,
    placement: Placement,
    hasher: KeyedHasher,
) -> Result<NetworkRun, EngineError> {
    assert_ne!(placement, Placement::Unmodified, "coordinated run needs a coordinated placement");
    let names = class_names(dep);
    replay_nodes("coordinated", dep.num_nodes, |node| {
        let coord = CoordContext::new(dep, manifest);
        let mut engine = Engine::new(node, placement, &names, Some(coord), hasher)?;
        for s in trace.onpath_sessions(paths, node) {
            engine.process_session(s);
        }
        Ok(engine.stats())
    })
}

/// Edge-only deployment under fault injection: every node replays its own
/// edge traffic through the (possibly degraded) capture point. With a
/// [`NodeBlackout`](nwdp_traffic::NodeBlackout) this shows the paper's
/// brittleness baseline — nobody covers for a blind edge node.
pub fn run_edge_only_faulty(
    dep: &NidsDeployment,
    trace: &NetTrace,
    hasher: KeyedHasher,
    faults: &FaultInjector,
) -> Result<NetworkRun, EngineError> {
    let names = class_names(dep);
    let n_total = trace.sessions.len().max(1) as f64;
    replay_nodes("edge_only_faulty", dep.num_nodes, |node| {
        let mut engine = Engine::new(node, Placement::Unmodified, &names, None, hasher)?;
        for s in trace.edge_sessions(node) {
            if obs::alert_enabled() {
                obs::set_alert_context(node.0 as u64, s.id);
            }
            let now = s.id as f64 / n_total;
            for pkt in faults.apply_at(s, s.packets(), node, now) {
                engine.process_packet(&pkt);
            }
        }
        Ok(engine.stats())
    })
}

/// Failure handling configuration for [`run_coordinated_resilient`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig<'a> {
    /// Per-node capacities (drives greedy repair placement and shedding).
    pub caps: &'a [NodeCaps],
    /// Failure/overload events on the replay-fraction clock.
    pub schedule: &'a FailureSchedule,
    /// Heartbeat detection parameters.
    pub health: HealthConfig,
}

/// One span of the repaired-manifest timeline: from replay fraction
/// `from` (inclusive) until the next epoch, every node consults
/// `manifest` for new connections.
#[derive(Debug, Clone)]
pub struct ManifestEpoch {
    pub from: f64,
    /// Nodes detected as failed (crashed, or inside a detected partition)
    /// at this epoch's start.
    pub failed: Vec<NodeId>,
    /// Traffic fraction shed to fit degraded capacities in this epoch.
    pub shed_fraction: f64,
    /// Traffic-weighted coverage gap that remains while `failed` nodes
    /// stay blind under this (repaired) manifest.
    pub residual_gap: f64,
    pub manifest: SamplingManifest,
}

/// A coordinated replay under failures, plus the manifest timeline it
/// executed.
#[derive(Debug, Clone)]
pub struct ResilientRun {
    pub run: NetworkRun,
    pub epochs: Vec<ManifestEpoch>,
}

/// Compile a failure schedule into the manifest timeline the network
/// executes: one epoch per detection/recovery boundary, each repaired
/// from the *original* manifest for the then-detected failure set (so
/// epochs are independent of event order) and then value-order shed to
/// fit any capacity degradation in force.
pub fn plan_manifest_epochs(
    dep: &NidsDeployment,
    manifest: &SamplingManifest,
    cfg: &ResilienceConfig,
) -> Vec<ManifestEpoch> {
    let _span = obs::span!("engine.plan_epochs", events = cfg.schedule.events.len());
    let mut bounds = vec![0.0f64];
    for e in &cfg.schedule.events {
        match e.kind {
            FailureKind::Crash => bounds.push(cfg.health.detect_at(e.at)),
            FailureKind::Partition { until } => {
                let d = cfg.health.detect_at(e.at);
                // Partitions shorter than the detection window never
                // trigger a repair; detected ones heal at `until`.
                if d < until {
                    bounds.push(d);
                    bounds.push(until);
                }
            }
            // Degradation is declared, not heartbeat-detected: capacity
            // loss is visible immediately to the control plane.
            FailureKind::CapacityDegraded { .. } => bounds.push(e.at),
        }
    }
    bounds.sort_by(f64::total_cmp);
    bounds.dedup();
    // Boundaries at or past the end of the replay never activate.
    bounds.retain(|&t| t < 1.0);
    let values = distance_weighted_values(dep);
    let mut epochs = Vec::with_capacity(bounds.len());
    for &from in &bounds {
        let mut failed: Vec<NodeId> = cfg
            .schedule
            .events
            .iter()
            .filter(|e| match e.kind {
                FailureKind::Crash => cfg.health.detect_at(e.at) <= from,
                FailureKind::Partition { until } => {
                    cfg.health.detect_at(e.at) <= from && from < until
                }
                FailureKind::CapacityDegraded { .. } => false,
            })
            .map(|e| e.node)
            .collect();
        failed.sort();
        failed.dedup();
        let t0 = obs::now_if_enabled();
        let repaired = if failed.is_empty() {
            None
        } else {
            Some(greedy_repair(dep, manifest, cfg.caps, &failed))
        };
        let base = repaired.as_ref().map_or(manifest, |r| &r.manifest);
        let mut scaled: Vec<NodeCaps> = Vec::new();
        for (j, caps) in cfg.caps.iter().enumerate() {
            let f = cfg.schedule.capacity_factor(NodeId(j), from);
            scaled.push(NodeCaps { cpu: caps.cpu * f, mem: caps.mem * f });
        }
        let shed = shed_overload(dep, base, &scaled, 1.0, &values);
        let residual_gap = manifest_gap_fraction(dep, &shed.manifest, &failed);
        if obs::enabled() {
            let s = obs::Scope::new("resilience");
            s.counter("epochs").inc();
            if repaired.is_some() {
                s.counter("repairs").inc();
                s.timer("repair_ns").observe_since(t0);
            }
            s.gauge("shed_fraction").set_max(shed.shed_fraction);
            s.gauge("residual_gap").set_max(residual_gap);
        }
        epochs.push(ManifestEpoch {
            from,
            failed,
            shed_fraction: shed.shed_fraction,
            residual_gap,
            manifest: shed.manifest,
        });
    }
    epochs
}

/// Coordinated network-wide deployment under a failure schedule: blind
/// nodes skip the sessions they cannot see, and every node swaps to the
/// repaired manifest at each epoch boundary (new connections follow the
/// repaired ranges; connections already enabled keep their engines, the
/// paper's drain semantics).
pub fn run_coordinated_resilient(
    dep: &NidsDeployment,
    manifest: &SamplingManifest,
    paths: &PathDb,
    trace: &NetTrace,
    placement: Placement,
    hasher: KeyedHasher,
    cfg: &ResilienceConfig,
) -> Result<ResilientRun, EngineError> {
    assert_ne!(placement, Placement::Unmodified, "coordinated run needs a coordinated placement");
    let epochs = plan_manifest_epochs(dep, manifest, cfg);
    assert!(!epochs.is_empty() && epochs[0].from == 0.0, "epoch timeline must start at 0");
    let names = class_names(dep);
    let n_total = trace.sessions.len().max(1) as f64;
    // One shared copy of each epoch's manifest; every node's swap is an
    // Arc clone, not a manifest clone.
    let shared: Vec<std::sync::Arc<SamplingManifest>> =
        epochs.iter().map(|e| std::sync::Arc::new(e.manifest.clone())).collect();
    let run = replay_nodes("coordinated_resilient", dep.num_nodes, |node| {
        let coord = CoordContext::with_shared(dep, shared[0].clone());
        let mut engine = Engine::new(node, placement, &names, Some(coord), hasher)?;
        let mut k = 0;
        for s in trace.onpath_sessions(paths, node) {
            let now = s.id as f64 / n_total;
            while k + 1 < epochs.len() && epochs[k + 1].from <= now {
                k += 1;
                engine.set_manifest(shared[k].clone())?;
                obs::trace_event!(
                    "engine.manifest_swap",
                    node = node.0,
                    epoch = k,
                    at = epochs[k].from,
                    residual_gap = epochs[k].residual_gap
                );
            }
            if cfg.schedule.events.iter().any(|e| e.node == node && e.blind_at(now)) {
                continue;
            }
            engine.process_session(s);
        }
        Ok(engine.stats())
    })?;
    Ok(ResilientRun { run, epochs })
}

/// The exact traffic-weighted coverage step function a resilient run
/// executes, on the replay-fraction clock.
///
/// Breakpoints are every instant the covered fraction can change: failure
/// onsets, partition heals, and the epoch boundaries where nodes swap to
/// a repaired manifest. At each breakpoint `t` the covered fraction is
/// `1 − manifest_gap_fraction(dep, active_manifest(t), blind_nodes(t))` —
/// the same quantity the blind-window assertions in the resilience tests
/// check pointwise — and holds until the next breakpoint.
///
/// When metric collection is on, each point is also recorded into the
/// `resilience.coverage` time series (exported to `timeseries.csv` by the
/// `repro` harness).
pub fn coverage_timeline(
    dep: &NidsDeployment,
    cfg: &ResilienceConfig,
    epochs: &[ManifestEpoch],
) -> Vec<(f64, f64)> {
    let mut breakpoints = vec![0.0f64];
    for e in &cfg.schedule.events {
        match e.kind {
            FailureKind::Crash => breakpoints.push(e.at),
            FailureKind::Partition { until } => {
                breakpoints.push(e.at);
                breakpoints.push(until);
            }
            // Degradation sheds analysis but never blinds a vantage; the
            // covered fraction tracked here does not move.
            FailureKind::CapacityDegraded { .. } => {}
        }
    }
    breakpoints.extend(epochs.iter().map(|ep| ep.from));
    breakpoints.sort_by(f64::total_cmp);
    breakpoints.dedup();
    breakpoints.retain(|&t| (0.0..1.0).contains(&t));
    let mut out = Vec::with_capacity(breakpoints.len());
    for &t in &breakpoints {
        let mut blind: Vec<NodeId> =
            cfg.schedule.events.iter().filter(|e| e.blind_at(t)).map(|e| e.node).collect();
        blind.sort();
        blind.dedup();
        let active = epochs.iter().rev().find(|ep| ep.from <= t);
        let gap = active.map_or(0.0, |ep| manifest_gap_fraction(dep, &ep.manifest, &blind));
        let covered = 1.0 - gap;
        if obs::enabled() {
            obs::record_series("resilience.coverage", t, covered);
        }
        out.push((t, covered));
    }
    out
}

/// A single standalone NIDS over the entire trace (the logical reference
/// the network-wide deployment must be equivalent to). One engine, one
/// node: the replay is inherently serial (every session flows through the
/// same connection table).
pub fn run_standalone_reference(
    dep: &NidsDeployment,
    trace: &NetTrace,
    hasher: KeyedHasher,
) -> Result<RunStats, EngineError> {
    let names = class_names(dep);
    let mut engine = Engine::new(NodeId(0), Placement::Unmodified, &names, None, hasher)?;
    for s in &trace.sessions {
        engine.process_session(s);
    }
    Ok(engine.stats())
}
