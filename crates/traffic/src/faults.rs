//! Deterministic fault injection for packet streams.
//!
//! Real capture points drop, duplicate, and reorder packets. The injector
//! transforms a session's packet sequence deterministically per session id,
//! so every node observing the same session sees the *same* degraded
//! stream — which is what end-to-end loss looks like, and what the
//! coordinated-equals-standalone equivalence property must survive.

use crate::session::{Packet, Session};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Fault injection configuration (probabilities per packet).
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    pub drop_p: f64,
    pub dup_p: f64,
    /// Probability that a packet is swapped with its successor.
    pub reorder_p: f64,
    pub seed: u64,
}

impl FaultInjector {
    pub fn new(drop_p: f64, dup_p: f64, reorder_p: f64, seed: u64) -> Self {
        for p in [drop_p, dup_p, reorder_p] {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
        }
        FaultInjector { drop_p, dup_p, reorder_p, seed }
    }

    /// No faults (identity transform).
    pub fn none() -> Self {
        FaultInjector { drop_p: 0.0, dup_p: 0.0, reorder_p: 0.0, seed: 0 }
    }

    /// Apply the faults to a session's packets. Deterministic in
    /// `(self.seed, session.id)`.
    pub fn apply<'a>(&self, session: &Session, packets: Vec<Packet<'a>>) -> Vec<Packet<'a>> {
        if self.drop_p == 0.0 && self.dup_p == 0.0 && self.reorder_p == 0.0 {
            return packets;
        }
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ session.id.wrapping_mul(0x9e3779b97f4a7c15));
        let mut out: Vec<Packet<'a>> = Vec::with_capacity(packets.len() + 2);
        for pkt in packets {
            if rng.random_bool(self.drop_p) {
                continue;
            }
            out.push(pkt);
            if rng.random_bool(self.dup_p) {
                out.push(pkt);
            }
        }
        // Adjacent swaps.
        if self.reorder_p > 0.0 && out.len() >= 2 {
            for i in 0..out.len() - 1 {
                if rng.random_bool(self.reorder_p) {
                    out.swap(i, i + 1);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::AppProtocol;
    use crate::session::SessionKind;
    use nwdp_hash::FiveTuple;
    use nwdp_topo::NodeId;

    fn session(id: u64) -> Session {
        Session {
            id,
            tuple: FiveTuple::new(0x0a000001, 0x0a010001, 40000, 80, 6),
            kind: SessionKind::Normal(AppProtocol::Http),
            src_node: NodeId(0),
            dst_node: NodeId(1),
            exchanges: 2,
        }
    }

    #[test]
    fn identity_when_disabled() {
        let s = session(1);
        let pkts = s.packets();
        let out = FaultInjector::none().apply(&s, s.packets());
        assert_eq!(out.len(), pkts.len());
    }

    #[test]
    fn deterministic_per_session() {
        let s = session(7);
        let f = FaultInjector::new(0.2, 0.1, 0.1, 99);
        let a = f.apply(&s, s.packets());
        let b = f.apply(&s, s.packets());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tuple, y.tuple);
            assert_eq!(x.size, y.size);
        }
        // Different sessions get different fault patterns (almost surely
        // over many sessions).
        let lens: std::collections::HashSet<usize> =
            (0..64).map(|i| f.apply(&session(i), session(i).packets()).len()).collect();
        assert!(lens.len() > 1, "faults should vary across sessions");
    }

    #[test]
    fn drop_rate_roughly_respected() {
        let f = FaultInjector::new(0.3, 0.0, 0.0, 5);
        let mut kept = 0usize;
        let mut total = 0usize;
        for i in 0..500 {
            let s = session(i);
            total += s.packets().len();
            kept += f.apply(&s, s.packets()).len();
        }
        let rate = 1.0 - kept as f64 / total as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed drop rate {rate}");
    }

    #[test]
    fn duplicates_increase_count() {
        let f = FaultInjector::new(0.0, 0.5, 0.0, 5);
        let s = session(3);
        let out = f.apply(&s, s.packets());
        assert!(out.len() > s.packets().len());
    }
}
