//! Dual simplex repair phase: a validated-but-primal-infeasible warm
//! basis that is still dual feasible must be repaired in place (counted
//! as a warm-start hit), not discarded for a cold re-solve.
//!
//! The obs counters these tests assert are process-global, so every test
//! that reads them serializes on one mutex; the delta-based assertions
//! then see only their own solve.

use nwdp_lp::model::{Cmp, Problem, Sense};
use nwdp_lp::simplex::{solve_warm, SolverOpts, WarmStart};
use nwdp_lp::Status;
use nwdp_obs as obs;
use std::sync::Mutex;

static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn ctr(name: &str) -> u64 {
    obs::snapshot()
        .iter()
        .find_map(|(n, v)| match v {
            obs::SnapshotValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
        .unwrap_or(0)
}

/// min x1 + x2  s.t.  x1 + x2 ≥ rhs, with `ub1` capping x1.
fn cover_lp(rhs: f64, ub1: f64) -> Problem {
    let mut p = Problem::new(Sense::Min);
    let x1 = p.add_var("x1", 0.0, ub1, 1.0);
    let x2 = p.add_var("x2", 0.0, 10.0, 1.0);
    p.add_con("cover", &[(x1, 1.0), (x2, 1.0)], Cmp::Ge, rhs);
    p
}

/// A hand-built basis that is dual feasible but primal infeasible for the
/// target problem: `{x1}` basic was optimal for `cover_lp(2.0, 10.0)`
/// (x1 = 2, x2 at lower, Ge-slack at its upper bound 0), but against
/// `cover_lp(5.0, 3.0)` it puts x1 = 5 > 3. The costs are unchanged, so
/// the reduced costs keep their signs — exactly the case the dual phase
/// repairs with one pivot (x2 enters, x1 leaves to its upper bound).
fn stale_optimal_basis() -> WarmStart {
    WarmStart::from_parts(2, 1, vec![3, 0, 1], vec![2.0, 0.0, 0.0])
}

#[test]
fn dual_feasible_primal_infeasible_basis_repaired_without_fallback() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let was = obs::enabled();
    obs::set_enabled(true);

    let p = cover_lp(5.0, 3.0);
    let cold = solve_warm(&p, &SolverOpts::default(), None).0;
    assert_eq!(cold.status, Status::Optimal);

    let hits0 = ctr("simplex.warmstart_hits");
    let falls0 = ctr("simplex.warmstart_fallbacks");
    let runs0 = ctr("simplex.dual_phase_runs");
    let repairs0 = ctr("simplex.dual_repairs");
    let pivots0 = ctr("simplex.dual_pivots");

    let warm = stale_optimal_basis();
    let (sol, snap) = solve_warm(&p, &SolverOpts::default(), Some(&warm));
    obs::set_enabled(was);

    assert_eq!(sol.status, Status::Optimal);
    assert!(
        (sol.objective - cold.objective).abs() <= 1e-9 * (1.0 + cold.objective.abs()),
        "repaired warm solve diverged: {} vs cold {}",
        sol.objective,
        cold.objective
    );
    assert!(snap.is_some(), "optimal solve must produce a snapshot");
    assert_eq!(ctr("simplex.warmstart_hits") - hits0, 1, "repair must count as a hit");
    assert_eq!(ctr("simplex.warmstart_fallbacks") - falls0, 0, "no cold fallback");
    assert_eq!(ctr("simplex.dual_phase_runs") - runs0, 1);
    assert_eq!(ctr("simplex.dual_repairs") - repairs0, 1);
    assert!(ctr("simplex.dual_pivots") - pivots0 >= 1, "repair must pivot");
}

#[test]
fn dual_phase_can_be_disabled_per_solve() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let was = obs::enabled();
    obs::set_enabled(true);

    let p = cover_lp(5.0, 3.0);
    let hits0 = ctr("simplex.warmstart_hits");
    let falls0 = ctr("simplex.warmstart_fallbacks");
    let rej0 = ctr("simplex.warmstart_rejected");

    let opts = SolverOpts { dual_phase: false, ..Default::default() };
    let (sol, _) = solve_warm(&p, &opts, Some(&stale_optimal_basis()));
    obs::set_enabled(was);

    // Same answer, but via the old reject-and-restart path.
    assert_eq!(sol.status, Status::Optimal);
    assert_eq!(ctr("simplex.warmstart_hits") - hits0, 0);
    assert_eq!(ctr("simplex.warmstart_fallbacks") - falls0, 1);
    assert_eq!(ctr("simplex.warmstart_rejected") - rej0, 1);
}

#[test]
fn dimension_mismatch_attributed_as_rejected() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let was = obs::enabled();
    obs::set_enabled(true);

    let p = cover_lp(5.0, 3.0);
    let falls0 = ctr("simplex.warmstart_fallbacks");
    let rej0 = ctr("simplex.warmstart_rejected");
    let sing0 = ctr("simplex.warmstart_singular");

    // Snapshot for a 3-variable problem against a 2-variable one.
    let wrong = WarmStart::from_parts(3, 1, vec![3, 0, 0, 1], vec![2.0, 0.0, 0.0, 0.0]);
    let (sol, _) = solve_warm(&p, &SolverOpts::default(), Some(&wrong));
    obs::set_enabled(was);

    assert_eq!(sol.status, Status::Optimal, "cold retry still solves");
    assert_eq!(ctr("simplex.warmstart_fallbacks") - falls0, 1);
    assert_eq!(ctr("simplex.warmstart_rejected") - rej0, 1);
    assert_eq!(ctr("simplex.warmstart_singular") - sing0, 0);
    // Invariant: the legacy counter stays the sum of the cause split.
    assert_eq!(
        ctr("simplex.warmstart_fallbacks"),
        ctr("simplex.warmstart_rejected") + ctr("simplex.warmstart_singular"),
    );
}
