/root/repo/target/release/deps/criterion-f9f690cdf0752151.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-f9f690cdf0752151.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-f9f690cdf0752151.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
