//! # nwdp-core — network-wide NIDS/NIPS deployment optimization
//!
//! The primary contribution of *Sekar, Krishnaswamy, Gupta, Reiter:
//! "Network-Wide Deployment of Intrusion Detection and Prevention
//! Systems" (ACM CoNEXT 2010)*, reimplemented as a library:
//!
//! - **NIDS** (§2): analysis [`class`]es are partitioned into coordination
//!   [`units`]; the [`nids::lp`] linear program (Eqs 1–6) assigns
//!   fractional responsibilities minimizing the maximum CPU/memory load;
//!   [`nids::manifest`] compiles the solution into hash-range sampling
//!   manifests (Fig 2) consulted by the per-packet check (Fig 3). The
//!   §2.5 redundancy extension covers the hash space `r` times with
//!   wraparound ranges.
//! - **NIPS** (§3): the [`nips::model`] MILP (Eqs 7–14) maximizes the
//!   distance-weighted drop footprint under TCAM/memory/CPU budgets;
//!   [`nips::relax`] solves its LP relaxation with lazy rows;
//!   [`nips::round`] implements the randomized rounding of Fig 9 plus the
//!   LP-re-solve and greedy refinements evaluated in Fig 10;
//!   [`nips::hardness`] witnesses the NP-hardness structure and solves
//!   small instances exactly via branch-and-bound.
//! - [`provision`]: the §5 what-if upgrade analysis;
//! - [`migration`]: the §5 routing-change transition planner (drain vs
//!   state-transfer);
//! - [`resilience`]: node-failure detection windows, manifest repair
//!   (greedy fast path + warm-started LP slow path), and graceful
//!   degradation under overload.

pub mod alertcfg;
pub mod class;
pub mod migration;
pub mod nids;
pub mod nips;
pub mod parallel;
pub mod provision;
pub mod resilience;
pub mod units;

/// Workspace observability layer (metrics + JSON export), re-exported so
/// downstream crates need no direct `nwdp-obs` dependency.
pub use nwdp_obs as obs;

pub use class::{AnalysisClass, ClassScope, ClassSetError};
pub use units::{build_units, CoordUnit, NidsDeployment, UnitKey};
