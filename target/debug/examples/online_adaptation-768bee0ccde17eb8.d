/root/repo/target/debug/examples/online_adaptation-768bee0ccde17eb8.d: examples/online_adaptation.rs

/root/repo/target/debug/examples/online_adaptation-768bee0ccde17eb8: examples/online_adaptation.rs

examples/online_adaptation.rs:
