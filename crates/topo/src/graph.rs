//! Network topology model.
//!
//! A [`Topology`] is an undirected weighted graph of PoPs/routers. Each
//! node carries a city name and a population weight (used by the gravity
//! traffic-matrix model, §2.4/§3.4 of the paper); each link carries a
//! routing weight (fiber distance or configured metric).

/// Index of a node within its topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    pub fn index(&self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub struct Node {
    pub name: String,
    /// Population weight for gravity traffic matrices (arbitrary units).
    pub population: f64,
}

#[derive(Debug, Clone, Copy)]
pub struct Link {
    pub a: NodeId,
    pub b: NodeId,
    /// Routing weight (e.g. fiber distance in km).
    pub weight: f64,
}

/// An undirected weighted network topology.
#[derive(Debug, Clone)]
pub struct Topology {
    pub name: String,
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// adjacency[u] = (neighbor, link weight)
    adj: Vec<Vec<(NodeId, f64)>>,
}

impl Topology {
    pub fn new(name: impl Into<String>) -> Self {
        Topology { name: name.into(), nodes: Vec::new(), links: Vec::new(), adj: Vec::new() }
    }

    pub fn add_node(&mut self, name: impl Into<String>, population: f64) -> NodeId {
        assert!(population >= 0.0, "negative population");
        self.nodes.push(Node { name: name.into(), population });
        self.adj.push(Vec::new());
        NodeId(self.nodes.len() - 1)
    }

    pub fn add_link(&mut self, a: NodeId, b: NodeId, weight: f64) {
        assert!(a != b, "self links not allowed");
        assert!(weight > 0.0, "link weight must be positive");
        assert!(a.0 < self.nodes.len() && b.0 < self.nodes.len(), "unknown node");
        assert!(
            !self.adj[a.0].iter().any(|&(n, _)| n == b),
            "duplicate link {} - {}",
            self.nodes[a.0].name,
            self.nodes[b.0].name
        );
        self.links.push(Link { a, b, weight });
        self.adj[a.0].push((b, weight));
        self.adj[b.0].push((a, weight));
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    pub fn links(&self) -> &[Link] {
        &self.links
    }

    pub fn neighbors(&self, id: NodeId) -> &[(NodeId, f64)] {
        &self.adj[id.0]
    }

    pub fn population(&self, id: NodeId) -> f64 {
        self.nodes[id.0].population
    }

    pub fn total_population(&self) -> f64 {
        self.nodes.iter().map(|n| n.population).sum()
    }

    /// Find a node by name (exact match).
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Is the graph connected? (Traffic/routing models require it.)
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in &self.adj[u] {
                if !seen[v.0] {
                    seen[v.0] = true;
                    count += 1;
                    stack.push(v.0);
                }
            }
        }
        count == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut t = Topology::new("tri");
        let a = t.add_node("a", 1.0);
        let b = t.add_node("b", 2.0);
        let c = t.add_node("c", 3.0);
        t.add_link(a, b, 1.0);
        t.add_link(b, c, 2.0);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_links(), 2);
        assert_eq!(t.neighbors(b).len(), 2);
        assert_eq!(t.total_population(), 6.0);
        assert_eq!(t.find("c"), Some(c));
        assert!(t.is_connected());
    }

    #[test]
    fn disconnected_detected() {
        let mut t = Topology::new("split");
        let a = t.add_node("a", 1.0);
        let b = t.add_node("b", 1.0);
        t.add_node("island", 1.0);
        t.add_link(a, b, 1.0);
        assert!(!t.is_connected());
    }

    #[test]
    #[should_panic]
    fn duplicate_link_panics() {
        let mut t = Topology::new("dup");
        let a = t.add_node("a", 1.0);
        let b = t.add_node("b", 1.0);
        t.add_link(a, b, 1.0);
        t.add_link(b, a, 2.0);
    }
}
