//! Simplex correctness tests: hand-checked LPs, pathological cases, and
//! randomized KKT-certified instances on both basis backends.

use nwdp_lp::simplex::dense::DenseInverse;
use nwdp_lp::simplex::sparse::SparseFactors;
use nwdp_lp::simplex::{solve_with_backend, BasisBackend, SingularBasis};
use nwdp_lp::{solve, verify_kkt, Cmp, KktTol, Problem, Sense, SolverOpts, Status};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn opts() -> SolverOpts {
    SolverOpts::default()
}

#[test]
fn textbook_max() {
    // max 3x + 5y ; x <= 4 ; 2y <= 12 ; 3x + 2y <= 18 ; x,y >= 0
    // optimum (2, 6) with objective 36.
    let mut p = Problem::new(Sense::Max);
    let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
    p.add_con("c1", &[(x, 1.0)], Cmp::Le, 4.0);
    p.add_con("c2", &[(y, 2.0)], Cmp::Le, 12.0);
    p.add_con("c3", &[(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
    let s = solve(&p, &opts());
    assert_eq!(s.status, Status::Optimal);
    assert!((s.objective - 36.0).abs() < 1e-7);
    assert!((s.value(x) - 2.0).abs() < 1e-7);
    assert!((s.value(y) - 6.0).abs() < 1e-7);
    verify_kkt(&p, &s, KktTol::default()).unwrap();
}

#[test]
fn textbook_min_with_ge_rows() {
    // min 2x + 3y ; x + y >= 10 ; x >= 2 ; y >= 3  → x=7, y=3, obj=23.
    let mut p = Problem::new(Sense::Min);
    let x = p.add_var("x", 2.0, f64::INFINITY, 2.0);
    let y = p.add_var("y", 3.0, f64::INFINITY, 3.0);
    p.add_con("cover", &[(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0);
    let s = solve(&p, &opts());
    assert_eq!(s.status, Status::Optimal);
    assert!((s.objective - 23.0).abs() < 1e-7, "obj = {}", s.objective);
    verify_kkt(&p, &s, KktTol::default()).unwrap();
}

#[test]
fn equality_constraints() {
    // min x + 2y + 3z ; x+y+z = 6 ; y - z = 1 ; all in [0, 10].
    // Put weight on cheap x: optimum x=5, y=1, z=0 → 7.
    let mut p = Problem::new(Sense::Min);
    let x = p.add_var("x", 0.0, 10.0, 1.0);
    let y = p.add_var("y", 0.0, 10.0, 2.0);
    let z = p.add_var("z", 0.0, 10.0, 3.0);
    p.add_con("sum", &[(x, 1.0), (y, 1.0), (z, 1.0)], Cmp::Eq, 6.0);
    p.add_con("diff", &[(y, 1.0), (z, -1.0)], Cmp::Eq, 1.0);
    let s = solve(&p, &opts());
    assert_eq!(s.status, Status::Optimal);
    assert!((s.objective - 7.0).abs() < 1e-7);
    verify_kkt(&p, &s, KktTol::default()).unwrap();
}

#[test]
fn infeasible_detected() {
    let mut p = Problem::new(Sense::Min);
    let x = p.add_var("x", 0.0, 1.0, 1.0);
    p.add_con("lo", &[(x, 1.0)], Cmp::Ge, 2.0);
    let s = solve(&p, &opts());
    assert_eq!(s.status, Status::Infeasible);
}

#[test]
fn infeasible_between_rows() {
    let mut p = Problem::new(Sense::Max);
    let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
    p.add_con("a", &[(x, 1.0)], Cmp::Ge, 5.0);
    p.add_con("b", &[(x, 1.0)], Cmp::Le, 4.0);
    let s = solve(&p, &opts());
    assert_eq!(s.status, Status::Infeasible);
}

#[test]
fn unbounded_detected() {
    let mut p = Problem::new(Sense::Max);
    let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 0.0);
    p.add_con("c", &[(x, 1.0), (y, -1.0)], Cmp::Le, 1.0);
    let s = solve(&p, &opts());
    assert_eq!(s.status, Status::Unbounded);
}

#[test]
fn bound_flip_path() {
    // max x + y with x,y in [0,1] and x + y <= 1.5: needs a bound
    // flip or two pivots; optimum 1.5.
    let mut p = Problem::new(Sense::Max);
    let x = p.add_var("x", 0.0, 1.0, 1.0);
    let y = p.add_var("y", 0.0, 1.0, 1.0);
    p.add_con("c", &[(x, 1.0), (y, 1.0)], Cmp::Le, 1.5);
    let s = solve(&p, &opts());
    assert_eq!(s.status, Status::Optimal);
    assert!((s.objective - 1.5).abs() < 1e-7);
    verify_kkt(&p, &s, KktTol::default()).unwrap();
}

#[test]
fn negative_bounds_and_free_vars() {
    // min x + y ; x free ; y in [-5, -1]; x + y >= -3  → x = -3 - y... with
    // y at -1 ... x >= -3 - y = -2 → x = -2, y = -1? obj -3. With y at -5:
    // x >= 2 → obj -3. Degenerate family, optimum -3.
    let mut p = Problem::new(Sense::Min);
    let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
    let y = p.add_var("y", -5.0, -1.0, 1.0);
    p.add_con("c", &[(x, 1.0), (y, 1.0)], Cmp::Ge, -3.0);
    let s = solve(&p, &opts());
    assert_eq!(s.status, Status::Optimal);
    assert!((s.objective + 3.0).abs() < 1e-7, "obj = {}", s.objective);
    verify_kkt(&p, &s, KktTol::default()).unwrap();
}

#[test]
fn fixed_variables_respected() {
    let mut p = Problem::new(Sense::Max);
    let x = p.add_var("x", 2.0, 2.0, 10.0); // fixed at 2
    let y = p.add_var("y", 0.0, 10.0, 1.0);
    p.add_con("c", &[(x, 1.0), (y, 1.0)], Cmp::Le, 5.0);
    let s = solve(&p, &opts());
    assert_eq!(s.status, Status::Optimal);
    assert!((s.value(x) - 2.0).abs() < 1e-9);
    assert!((s.value(y) - 3.0).abs() < 1e-7);
    verify_kkt(&p, &s, KktTol::default()).unwrap();
}

#[test]
fn degenerate_transportation() {
    // Highly degenerate assignment-like LP; exercises anti-cycling.
    let mut p = Problem::new(Sense::Min);
    let n = 4;
    let mut v = vec![];
    for i in 0..n {
        for j in 0..n {
            v.push(p.add_var(format!("x{i}{j}"), 0.0, 1.0, ((i * 7 + j * 3) % 5) as f64));
        }
    }
    for i in 0..n {
        let terms: Vec<_> = (0..n).map(|j| (v[i * n + j], 1.0)).collect();
        p.add_con(format!("r{i}"), &terms, Cmp::Eq, 1.0);
    }
    for j in 0..n {
        let terms: Vec<_> = (0..n).map(|i| (v[i * n + j], 1.0)).collect();
        p.add_con(format!("c{j}"), &terms, Cmp::Eq, 1.0);
    }
    let s = solve(&p, &opts());
    assert_eq!(s.status, Status::Optimal);
    verify_kkt(&p, &s, KktTol::default()).unwrap();
}

#[test]
fn min_max_load_structure() {
    // The NIDS LP shape in miniature: minimize the max load of 2 nodes
    // sharing 3 unit jobs with different weights.
    let mut p = Problem::new(Sense::Min);
    let z = p.add_var("z", 0.0, f64::INFINITY, 1.0);
    let mut share = vec![];
    for k in 0..3 {
        let a = p.add_var(format!("d{k}a"), 0.0, 1.0, 0.0);
        let b = p.add_var(format!("d{k}b"), 0.0, 1.0, 0.0);
        p.add_con(format!("cover{k}"), &[(a, 1.0), (b, 1.0)], Cmp::Eq, 1.0);
        share.push((a, b));
    }
    // node A twice as fast as node B; job weights 1, 2, 3.
    let wa: Vec<_> =
        share.iter().enumerate().map(|(k, &(a, _))| (a, (k + 1) as f64 / 2.0)).collect();
    let mut ta = wa.clone();
    ta.push((z, -1.0));
    p.add_con("loadA", &ta, Cmp::Le, 0.0);
    let mut tb: Vec<_> = share.iter().enumerate().map(|(k, &(_, b))| (b, (k + 1) as f64)).collect();
    tb.push((z, -1.0));
    p.add_con("loadB", &tb, Cmp::Le, 0.0);
    let s = solve(&p, &opts());
    assert_eq!(s.status, Status::Optimal);
    // Total work 6; speeds 2:1 → balanced makespan = 6/3 = 2.
    assert!((s.objective - 2.0).abs() < 1e-6, "obj = {}", s.objective);
    verify_kkt(&p, &s, KktTol::default()).unwrap();
}

/// Build a random LP guaranteed feasible (a random interior point is
/// chosen first; row RHS values are set to make it feasible).
fn random_feasible_lp(rng: &mut StdRng, nv: usize, nc: usize) -> Problem {
    let sense = if rng.random_bool(0.5) { Sense::Min } else { Sense::Max };
    let mut p = Problem::new(sense);
    let mut point = Vec::with_capacity(nv);
    let mut vars = Vec::with_capacity(nv);
    for j in 0..nv {
        let lb = if rng.random_bool(0.8) { rng.random_range(-5.0..0.0) } else { f64::NEG_INFINITY };
        let ub = if rng.random_bool(0.8) { rng.random_range(1.0..6.0) } else { f64::INFINITY };
        let x0 = rng.random_range(0.0..1.0); // inside [lb, ub] by construction
        point.push(x0);
        vars.push(p.add_var(format!("v{j}"), lb, ub, rng.random_range(-3.0..3.0)));
    }
    for i in 0..nc {
        let k = rng.random_range(1..=nv.min(4));
        let mut terms = Vec::new();
        let mut act = 0.0;
        for _ in 0..k {
            let j = rng.random_range(0..nv);
            let c: f64 = rng.random_range(-2.0..2.0);
            act += c * point[j];
            terms.push((vars[j], c));
        }
        let cmp = match rng.random_range(0..3) {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        let rhs = match cmp {
            Cmp::Le => act + rng.random_range(0.0..2.0),
            Cmp::Ge => act - rng.random_range(0.0..2.0),
            Cmp::Eq => act,
        };
        p.add_con(format!("c{i}"), &terms, cmp, rhs);
    }
    p
}

#[test]
fn randomized_lps_kkt_certified_dense() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut optimal = 0;
    for trial in 0..120 {
        let nv = rng.random_range(2..12);
        let nc = rng.random_range(1..14);
        let p = random_feasible_lp(&mut rng, nv, nc);
        let mut backend = DenseInverse::new();
        let s = solve_with_backend(&p, &opts(), &mut backend);
        match s.status {
            Status::Optimal => {
                verify_kkt(&p, &s, KktTol::default())
                    .unwrap_or_else(|e| panic!("trial {trial}: KKT failed: {e}"));
                optimal += 1;
            }
            Status::Unbounded => {} // legitimately possible with free vars
            Status::Infeasible => {
                panic!("trial {trial}: feasible-by-construction LP reported infeasible")
            }
            Status::IterLimit => panic!("trial {trial}: iteration limit"),
            Status::NumericalFailure => panic!("trial {trial}: numerical failure"),
        }
    }
    assert!(optimal > 60, "too few optimal instances: {optimal}");
}

#[test]
fn randomized_lps_dense_vs_sparse_agree() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for trial in 0..60 {
        let nv = rng.random_range(2..10);
        let nc = rng.random_range(1..10);
        let p = random_feasible_lp(&mut rng, nv, nc);
        let mut d = DenseInverse::new();
        let mut sp = SparseFactors::new();
        let sd = solve_with_backend(&p, &opts(), &mut d);
        let ss = solve_with_backend(&p, &opts(), &mut sp);
        assert_eq!(sd.status, ss.status, "trial {trial}: status mismatch");
        if sd.status == Status::Optimal {
            assert!(
                (sd.objective - ss.objective).abs() < 1e-5 * (1.0 + sd.objective.abs()),
                "trial {trial}: obj {} vs {}",
                sd.objective,
                ss.objective
            );
            verify_kkt(&p, &ss, KktTol::default())
                .unwrap_or_else(|e| panic!("trial {trial} sparse KKT: {e}"));
        }
    }
}

#[test]
fn larger_structured_lp_sparse_backend() {
    // A mid-size covering/packing mix solved with the sparse backend
    // explicitly, KKT-verified.
    let mut rng = StdRng::seed_from_u64(7);
    let n = 120;
    let mut p = Problem::new(Sense::Max);
    let vars: Vec<_> =
        (0..n).map(|j| p.add_var(format!("x{j}"), 0.0, 1.0, rng.random_range(0.1..1.0))).collect();
    for g in 0..30 {
        let terms: Vec<_> = (0..4).map(|t| (vars[(g * 4 + t) % n], 1.0)).collect();
        p.add_con(format!("gub{g}"), &terms, Cmp::Le, 1.0);
    }
    for c in 0..8 {
        let terms: Vec<_> =
            (0..n).filter(|j| j % 8 == c).map(|j| (vars[j], rng.random_range(0.5..2.0))).collect();
        p.add_con(format!("cap{c}"), &terms, Cmp::Le, 3.0);
    }
    let mut sp = SparseFactors::new();
    let s = solve_with_backend(&p, &opts(), &mut sp);
    assert_eq!(s.status, Status::Optimal);
    verify_kkt(&p, &s, KktTol::default()).unwrap();
}

#[test]
fn dual_values_match_textbook() {
    // max 3x + 5y ; x <= 4 ; 2y <= 12 ; 3x + 2y <= 18
    // Known optimal duals: (0, 3/2, 1).
    let mut p = Problem::new(Sense::Max);
    let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
    let c1 = p.add_con("c1", &[(x, 1.0)], Cmp::Le, 4.0);
    let c2 = p.add_con("c2", &[(y, 2.0)], Cmp::Le, 12.0);
    let c3 = p.add_con("c3", &[(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
    let s = solve(&p, &opts());
    assert_eq!(s.status, Status::Optimal);
    assert!(s.dual(c1).abs() < 1e-7, "dual c1 = {}", s.dual(c1));
    assert!((s.dual(c2) - 1.5).abs() < 1e-7, "dual c2 = {}", s.dual(c2));
    assert!((s.dual(c3) - 1.0).abs() < 1e-7, "dual c3 = {}", s.dual(c3));
    // Strong duality: b'pi == optimal objective.
    let dual_obj = 4.0 * s.dual(c1) + 12.0 * s.dual(c2) + 18.0 * s.dual(c3);
    assert!((dual_obj - s.objective).abs() < 1e-6);
}

#[test]
fn duals_scale_correctly_under_row_equilibration() {
    // Same LP with one row multiplied by 1e6: the reported dual must be
    // divided by 1e6 accordingly (duals are in original row units).
    let mut p = Problem::new(Sense::Max);
    let x = p.add_var("x", 0.0, 10.0, 1.0);
    let c = p.add_con("big", &[(x, 1.0e6)], Cmp::Le, 3.0e6);
    let s = solve(&p, &opts());
    assert_eq!(s.status, Status::Optimal);
    assert!((s.value(x) - 3.0).abs() < 1e-7);
    // Raising rhs by 1 unit gains 1/1e6 units of x → dual = 1e-6.
    assert!((s.dual(c) - 1.0e-6).abs() < 1e-12, "dual = {}", s.dual(c));
}

#[test]
fn zero_constraint_problem() {
    let mut p = Problem::new(Sense::Max);
    let x = p.add_var("x", 0.0, 7.0, 2.0);
    let s = solve(&p, &opts());
    assert_eq!(s.status, Status::Optimal);
    assert!((s.objective - 14.0).abs() < 1e-9);
    assert_eq!(s.value(x), 7.0);
}

#[test]
fn all_variables_fixed() {
    let mut p = Problem::new(Sense::Min);
    let x = p.add_var("x", 2.0, 2.0, 3.0);
    let y = p.add_var("y", -1.0, -1.0, 1.0);
    p.add_con("c", &[(x, 1.0), (y, 1.0)], Cmp::Le, 5.0);
    let s = solve(&p, &opts());
    assert_eq!(s.status, Status::Optimal);
    assert!((s.objective - 5.0).abs() < 1e-9);
}

// ---- Panic-path regressions: cold-solve iteration limits and singular ----
// ---- refactorizations must surface as statuses, never as panics.      ----

/// Regression: a cold solve that exhausts its iteration budget used to
/// trip `expect("cold solves always complete")`; it must now report
/// `Status::IterLimit`.
#[test]
fn iteration_limited_cold_solve_reports_iterlimit() {
    let mut p = Problem::new(Sense::Min);
    let x = p.add_var("x", 2.0, f64::INFINITY, 2.0);
    let y = p.add_var("y", 3.0, f64::INFINITY, 3.0);
    p.add_con("cover", &[(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0);
    let s = solve(&p, &SolverOpts { max_iters: Some(1), ..SolverOpts::default() });
    assert_eq!(s.status, Status::IterLimit);
    assert!(s.objective.is_nan(), "failed solves carry no objective");
}

/// Backend wrapper whose first refactorization reports a singular basis
/// (and that asks for one immediately via `hint_refactor`), then behaves
/// like a plain [`DenseInverse`]. Models a transiently ill-conditioned
/// basis matrix.
struct FlakySingular {
    inner: DenseInverse,
    failed: std::cell::Cell<bool>,
}

impl BasisBackend for FlakySingular {
    fn reset_identity(&mut self, m: usize) {
        self.inner.reset_identity(m);
    }
    fn refactor(&mut self, m: usize, basis_cols: &[&[(usize, f64)]]) -> Result<(), SingularBasis> {
        if !self.failed.replace(true) {
            return Err(SingularBasis);
        }
        self.inner.refactor(m, basis_cols)
    }
    fn ftran(&self, col: &[(usize, f64)], out: &mut [f64]) {
        self.inner.ftran(col, out);
    }
    fn btran(&self, c: &[f64], out: &mut [f64]) {
        self.inner.btran(c, out);
    }
    fn update(&mut self, pivot_row: usize, y: &[f64]) {
        self.inner.update(pivot_row, y);
    }
    fn hint_refactor(&self) -> bool {
        !self.failed.get()
    }
}

/// Regression: a singular refactorization mid-solve was silently ignored
/// (stale factorization kept drifting); the solver must now restart from
/// the slack basis and still reach the optimum.
#[test]
fn singular_refactor_restarts_and_recovers() {
    let mut p = Problem::new(Sense::Max);
    let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
    let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
    p.add_con("c1", &[(x, 1.0)], Cmp::Le, 4.0);
    p.add_con("c2", &[(y, 2.0)], Cmp::Le, 12.0);
    p.add_con("c3", &[(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
    let mut backend =
        FlakySingular { inner: DenseInverse::new(), failed: std::cell::Cell::new(false) };
    let s = solve_with_backend(&p, &opts(), &mut backend);
    assert!(backend.failed.get(), "the singular path must actually be exercised");
    assert_eq!(s.status, Status::Optimal);
    assert!((s.objective - 36.0).abs() < 1e-7, "obj = {}", s.objective);
    verify_kkt(&p, &s, KktTol::default()).unwrap();
}

/// Backend whose refactorizations are *always* singular: both the primary
/// attempt and the slack-basis restart fail, which must degrade to an
/// explicit `NumericalFailure` result with a finite payload — not a panic
/// and not a NaN objective.
struct AlwaysSingular {
    inner: DenseInverse,
}

impl BasisBackend for AlwaysSingular {
    fn reset_identity(&mut self, m: usize) {
        self.inner.reset_identity(m);
    }
    fn refactor(&mut self, _m: usize, _cols: &[&[(usize, f64)]]) -> Result<(), SingularBasis> {
        Err(SingularBasis)
    }
    fn ftran(&self, col: &[(usize, f64)], out: &mut [f64]) {
        self.inner.ftran(col, out);
    }
    fn btran(&self, c: &[f64], out: &mut [f64]) {
        self.inner.btran(c, out);
    }
    fn update(&mut self, pivot_row: usize, y: &[f64]) {
        self.inner.update(pivot_row, y);
    }
    fn hint_refactor(&self) -> bool {
        true
    }
}

#[test]
fn doubly_singular_solve_reports_numerical_failure() {
    let mut p = Problem::new(Sense::Max);
    let x = p.add_var("x", 0.0, 4.0, 1.0);
    p.add_con("c", &[(x, 1.0)], Cmp::Le, 3.0);
    let mut backend = AlwaysSingular { inner: DenseInverse::new() };
    let s = solve_with_backend(&p, &opts(), &mut backend);
    assert_eq!(s.status, Status::NumericalFailure);
    // Callers rank candidates by objective; the failure payload must never
    // leak a NaN into those comparisons (regression: the old path
    // fabricated `IterLimit` with `objective: f64::NAN`).
    assert!(s.objective.is_finite(), "objective must be finite, got {}", s.objective);
    assert!(s.x.iter().all(|v| v.is_finite()), "primal point must be finite");
    assert!(s.duals.iter().all(|v| v.is_finite()), "duals must be finite");
    assert!(!s.is_optimal());
}
