/root/repo/target/release/deps/proptest-b6e3e1f3b692ec68.d: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs

/root/repo/target/release/deps/libproptest-b6e3e1f3b692ec68.rlib: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs

/root/repo/target/release/deps/libproptest-b6e3e1f3b692ec68.rmeta: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs

crates/proptest/src/lib.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/strategy.rs:
