//! Result output: CSV files plus aligned ASCII tables on stdout.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple results table: named columns, rows of cells.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned ASCII table.
    pub fn ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> =
            self.columns.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Render as CSV.
    pub fn csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.columns.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Write `<name>.csv` under `dir` and print the ASCII table.
    pub fn emit(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{name}.csv")), self.csv())?;
        println!("{}", self.ascii());
        Ok(())
    }
}

/// Format helpers.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_and_csv_render() {
        let mut t = Table::new("demo", &["a", "long_column"]);
        t.row(vec!["1".into(), "x".into()]);
        t.row(vec!["22".into(), "y,z".into()]);
        let a = t.ascii();
        assert!(a.contains("demo"));
        assert!(a.contains("long_column"));
        let c = t.csv();
        assert!(c.contains("\"y,z\""));
        assert_eq!(c.lines().count(), 3);
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
