/root/repo/target/release/deps/repro-c8e970a5cd0c41a5.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-c8e970a5cd0c41a5: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
