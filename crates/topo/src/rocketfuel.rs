//! Rocketfuel-like tier-1 ISP topologies.
//!
//! The paper's NIPS evaluation (§3.4) uses tier-1 ISP topologies inferred
//! by Rocketfuel (Spring et al., SIGCOMM 2002): AS 1221 (Telstra), AS 1239
//! (Sprint), and AS 3257 (Tiscali). The raw inferred maps are not
//! distributable here, so we synthesize PoP-level stand-ins with the
//! published PoP counts and backbone-like degree structure (sparse
//! geographic mesh with a denser core), via a seeded Waxman process. The
//! substitution is documented in `DESIGN.md`: Fig 10 depends on topology
//! scale and path-length distribution, not on exact link identity — the
//! Rocketfuel maps are themselves noisy inferences.

use crate::generate::waxman;
use crate::graph::Topology;

/// AS 1221 (Telstra, Australia) PoP-level stand-in: 44 PoPs.
pub fn as1221() -> Topology {
    let mut t = waxman("AS1221", 44, 0.22, 0.18, 0x1221);
    t.name = "AS1221".to_string();
    t
}

/// AS 1239 (Sprint, US) PoP-level stand-in: 52 PoPs.
pub fn as1239() -> Topology {
    let mut t = waxman("AS1239", 52, 0.25, 0.18, 0x1239);
    t.name = "AS1239".to_string();
    t
}

/// AS 3257 (Tiscali, Europe) PoP-level stand-in: 41 PoPs.
pub fn as3257() -> Topology {
    let mut t = waxman("AS3257", 41, 0.22, 0.18, 0x3257);
    t.name = "AS3257".to_string();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::PathDb;

    #[test]
    fn sizes_match_published_pop_counts() {
        assert_eq!(as1221().num_nodes(), 44);
        assert_eq!(as1239().num_nodes(), 52);
        assert_eq!(as3257().num_nodes(), 41);
    }

    #[test]
    fn backbone_like_properties() {
        for t in [as1221(), as1239(), as3257()] {
            assert!(t.is_connected(), "{} disconnected", t.name);
            let n = t.num_nodes() as f64;
            let avg_degree = 2.0 * t.num_links() as f64 / n;
            assert!(
                (2.0..8.0).contains(&avg_degree),
                "{}: avg degree {avg_degree} outside backbone range",
                t.name
            );
            let db = PathDb::shortest_paths(&t);
            assert!(db.mean_hops() >= 2.5, "{}: paths too short", t.name);
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let a = as1239();
        let b = as1239();
        assert_eq!(a.num_links(), b.num_links());
    }
}
