/root/repo/target/debug/deps/nwdp-7f3ee7014b5090f8.d: src/lib.rs

/root/repo/target/debug/deps/libnwdp-7f3ee7014b5090f8.rlib: src/lib.rs

/root/repo/target/debug/deps/libnwdp-7f3ee7014b5090f8.rmeta: src/lib.rs

src/lib.rs:
