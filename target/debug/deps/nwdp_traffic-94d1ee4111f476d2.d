/root/repo/target/debug/deps/nwdp_traffic-94d1ee4111f476d2.d: crates/traffic/src/lib.rs crates/traffic/src/faults.rs crates/traffic/src/generator.rs crates/traffic/src/matchrate.rs crates/traffic/src/matrix.rs crates/traffic/src/profile.rs crates/traffic/src/session.rs crates/traffic/src/volume.rs

/root/repo/target/debug/deps/nwdp_traffic-94d1ee4111f476d2: crates/traffic/src/lib.rs crates/traffic/src/faults.rs crates/traffic/src/generator.rs crates/traffic/src/matchrate.rs crates/traffic/src/matrix.rs crates/traffic/src/profile.rs crates/traffic/src/session.rs crates/traffic/src/volume.rs

crates/traffic/src/lib.rs:
crates/traffic/src/faults.rs:
crates/traffic/src/generator.rs:
crates/traffic/src/matchrate.rs:
crates/traffic/src/matrix.rs:
crates/traffic/src/profile.rs:
crates/traffic/src/session.rs:
crates/traffic/src/volume.rs:
