/root/repo/target/release/deps/nwdp_hash-29b13d14da2ea5f5.d: crates/hash/src/lib.rs crates/hash/src/key.rs crates/hash/src/keyed.rs crates/hash/src/lookup3.rs crates/hash/src/range.rs

/root/repo/target/release/deps/libnwdp_hash-29b13d14da2ea5f5.rlib: crates/hash/src/lib.rs crates/hash/src/key.rs crates/hash/src/keyed.rs crates/hash/src/lookup3.rs crates/hash/src/range.rs

/root/repo/target/release/deps/libnwdp_hash-29b13d14da2ea5f5.rmeta: crates/hash/src/lib.rs crates/hash/src/key.rs crates/hash/src/keyed.rs crates/hash/src/lookup3.rs crates/hash/src/range.rs

crates/hash/src/lib.rs:
crates/hash/src/key.rs:
crates/hash/src/keyed.rs:
crates/hash/src/lookup3.rs:
crates/hash/src/range.rs:
