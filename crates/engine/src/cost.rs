//! Deterministic resource accounting.
//!
//! The paper measures its Bro prototype with `atop` on a specific Pentium
//! machine; we substitute a **cycle-accounting cost model** so that the
//! relative CPU/memory comparisons of Figs 5–8 are exactly reproducible on
//! any host (see DESIGN.md, substitutions). Every engine operation charges
//! cycles to a [`Meter`]; state allocations charge bytes. Real wall-clock
//! numbers are additionally collected by the Criterion benches.
//!
//! The constants encode the *relative* costs that drive the paper's
//! observations: interpreted policy-script operations are an order of
//! magnitude more expensive than compiled event-engine operations (this is
//! why Fig 5(a) shows large overheads when coordination checks run in the
//! policy engine for HTTP/IRC/Login), and the per-connection hash fields
//! add a few percent of memory (Fig 5(b)).

/// Cycle/byte charges for engine operations.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Packet capture + IP/TCP decode, per packet.
    pub pkt_base: u64,
    /// Connection table lookup, per packet.
    pub conn_lookup: u64,
    /// Creating a connection record.
    pub conn_create: u64,
    /// Base connection record footprint (bytes). Bro-1.4 connection state
    /// is a few hundred bytes.
    pub conn_bytes: u64,
    /// Extra bytes when the record carries coordination hashes (§2.3: "we
    /// modified the connection record to additionally carry hashes of
    /// different combinations of the connection fields").
    pub conn_hash_bytes: u64,
    /// Computing one Bob hash over header fields.
    pub hash_compute: u64,
    /// A compiled (event-engine) range check.
    pub evt_check: u64,
    /// An interpreted (policy-engine) range check on a per-packet protocol
    /// event — Bro policy scripts run in an interpreter, so "doing hash
    /// lookups/checks is quite expensive" (§2.3).
    pub policy_check_pkt: u64,
    /// An interpreted range check on a per-connection event (conn setup /
    /// teardown reports to policy scripts like Scan).
    pub policy_check_conn: u64,
    /// Dispatching one event from the event engine to the policy layer.
    pub event_dispatch: u64,
    /// Interpreter multiplier for module work done in policy scripts
    /// relative to compiled analyzer work.
    pub interp_factor: u64,
    /// Signature matching cost per payload byte (automaton transition).
    pub sig_per_byte: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            pkt_base: 450,
            conn_lookup: 120,
            conn_create: 500,
            conn_bytes: 260,
            conn_hash_bytes: 16, // four 32-bit hash fields
            hash_compute: 35,
            evt_check: 10,
            policy_check_pkt: 350,
            policy_check_conn: 150,
            event_dispatch: 45,
            interp_factor: 10,
            sig_per_byte: 9,
        }
    }
}

/// Accumulated CPU cycles and live/peak memory.
#[derive(Debug, Clone, Default)]
pub struct Meter {
    pub cpu_cycles: u64,
    pub mem_bytes: u64,
    pub mem_peak: u64,
}

impl Meter {
    pub fn new() -> Self {
        Meter::default()
    }

    #[inline]
    pub fn cpu(&mut self, cycles: u64) {
        self.cpu_cycles += cycles;
    }

    #[inline]
    pub fn alloc(&mut self, bytes: u64) {
        self.mem_bytes += bytes;
        if self.mem_bytes > self.mem_peak {
            self.mem_peak = self.mem_bytes;
        }
    }

    #[inline]
    pub fn free(&mut self, bytes: u64) {
        debug_assert!(self.mem_bytes >= bytes, "freeing more than allocated");
        self.mem_bytes = self.mem_bytes.saturating_sub(bytes);
    }

    /// Remove double-charged allocation bytes after a shard merge: per-host
    /// state that two shards both allocated was only allocated once in the
    /// equivalent single-engine run. Shard meters never free (the
    /// fine-grained extension is off on the streaming path), so their peak
    /// equals their total allocation and shrinks with it.
    pub fn refund_alloc(&mut self, bytes: u64) {
        self.mem_bytes = self.mem_bytes.saturating_sub(bytes);
        self.mem_peak = self.mem_peak.saturating_sub(bytes);
    }

    /// Merge another meter (e.g. per-module meters into a node total).
    pub fn absorb(&mut self, other: &Meter) {
        self.cpu_cycles += other.cpu_cycles;
        self.mem_bytes += other.mem_bytes;
        self.mem_peak = self.mem_peak.max(self.mem_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_tracks_peak() {
        let mut m = Meter::new();
        m.alloc(100);
        m.alloc(50);
        m.free(120);
        m.alloc(10);
        assert_eq!(m.mem_bytes, 40);
        assert_eq!(m.mem_peak, 150);
    }

    #[test]
    fn policy_checks_cost_more_than_event_checks() {
        let c = CostModel::default();
        assert!(c.policy_check_pkt >= 5 * c.evt_check);
        assert!(c.policy_check_conn >= 5 * c.evt_check);
        assert!(c.interp_factor >= 5);
    }

    #[test]
    fn hash_fields_are_small_fraction_of_record() {
        let c = CostModel::default();
        let frac = c.conn_hash_bytes as f64 / c.conn_bytes as f64;
        assert!(frac < 0.10, "hash memory overhead must stay under ~10%: {frac}");
    }
}
