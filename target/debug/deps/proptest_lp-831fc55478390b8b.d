/root/repo/target/debug/deps/proptest_lp-831fc55478390b8b.d: crates/lp/tests/proptest_lp.rs

/root/repo/target/debug/deps/proptest_lp-831fc55478390b8b: crates/lp/tests/proptest_lp.rs

crates/lp/tests/proptest_lp.rs:
