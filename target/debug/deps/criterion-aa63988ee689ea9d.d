/root/repo/target/debug/deps/criterion-aa63988ee689ea9d.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-aa63988ee689ea9d: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
