/root/repo/target/debug/deps/nwdp_topo-30480163b219e1b1.d: crates/topo/src/lib.rs crates/topo/src/builtin.rs crates/topo/src/generate.rs crates/topo/src/graph.rs crates/topo/src/io.rs crates/topo/src/rocketfuel.rs crates/topo/src/routing.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp_topo-30480163b219e1b1.rmeta: crates/topo/src/lib.rs crates/topo/src/builtin.rs crates/topo/src/generate.rs crates/topo/src/graph.rs crates/topo/src/io.rs crates/topo/src/rocketfuel.rs crates/topo/src/routing.rs Cargo.toml

crates/topo/src/lib.rs:
crates/topo/src/builtin.rs:
crates/topo/src/generate.rs:
crates/topo/src/graph.rs:
crates/topo/src/io.rs:
crates/topo/src/rocketfuel.rs:
crates/topo/src/routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
