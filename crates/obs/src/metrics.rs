//! Metric primitives: atomic counters, gauges, wall-clock timers, and
//! fixed-bucket histograms.
//!
//! Every primitive is lock-free and safe to hammer from scoped-thread
//! workers. All operations are no-ops in the *semantic* sense when the
//! global gate is off — instrumentation sites are expected to guard with
//! [`crate::enabled`] so the disabled cost is one relaxed atomic load and
//! a predictable branch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Counter { value: AtomicU64::new(0) }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins floating-point value (stored as IEEE-754 bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge { bits: AtomicU64::new(0) }
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Keep the maximum of the current value and `v`.
    pub fn set_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= v {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Atomically add `v` (CAS loop; fine at flush frequency, not per-packet).
    pub fn add(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

/// Wall-clock duration aggregator: count, total, min, max in nanoseconds.
#[derive(Debug)]
pub struct Timer {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Timer {
    fn default() -> Self {
        Self::new()
    }
}

impl Timer {
    pub const fn new() -> Self {
        Timer {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Record one observation of `ns` nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record the elapsed time since `t0` when a start stamp was taken.
    ///
    /// Pairs with `crate::enabled().then(Instant::now)` so the disabled
    /// path never calls the clock.
    #[inline]
    pub fn observe_since(&self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.observe_ns(t0.elapsed().as_nanos() as u64);
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    pub fn min_ns(&self) -> u64 {
        let v = self.min_ns.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_ns() as f64 / n as f64
        }
    }

    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// Fixed-bound histogram: bucket `i` counts observations `<= bounds[i]`,
/// with one implicit overflow bucket at the end.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// `bounds` must be sorted ascending; non-finite bounds are rejected by
    /// truncation at the first bad entry.
    pub fn new(bounds: &[f64]) -> Self {
        let mut clean: Vec<f64> = Vec::with_capacity(bounds.len());
        for &b in bounds {
            if !b.is_finite() || clean.last().is_some_and(|&p| b <= p) {
                break;
            }
            clean.push(b);
        }
        let counts = (0..clean.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram { bounds: clean, counts, count: AtomicU64::new(0), sum_bits: AtomicU64::new(0) }
    }

    /// Geometric bucket bounds: `count` values `start, start·factor, …`.
    /// The natural layout for latency histograms, whose spread covers
    /// orders of magnitude (p99 interpolation error stays a constant
    /// fraction of the value instead of blowing up in the tail).
    /// `start` must be positive and `factor` greater than 1 for the bounds
    /// to be valid ascending input to [`Histogram::new`].
    pub fn exponential_bounds(start: f64, factor: f64, count: usize) -> Vec<f64> {
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        bounds
    }

    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // f64 accumulation via CAS; histogram observes are flush-frequency.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the bucket bounds,
    /// Prometheus-style: find the bucket where the cumulative count
    /// crosses `q·total` and interpolate linearly inside it. The first
    /// bucket interpolates from `min(0, bounds[0])`; observations in the
    /// overflow bucket clamp to the last bound (the histogram does not
    /// track a max). Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if (cum as f64) < rank || c == 0 {
                continue;
            }
            if i >= self.bounds.len() {
                // Overflow bucket: no upper bound to interpolate toward.
                return self.bounds[self.bounds.len() - 1];
            }
            let hi = self.bounds[i];
            let lo = if i == 0 { hi.min(0.0) } else { self.bounds[i - 1] };
            let frac = ((rank - prev as f64) / c as f64).clamp(0.0, 1.0);
            return lo + (hi - lo) * frac;
        }
        self.bounds[self.bounds.len() - 1]
    }

    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_bounds_are_valid_histogram_input() {
        let bounds = Histogram::exponential_bounds(50.0, 2.0, 6);
        assert_eq!(bounds, vec![50.0, 100.0, 200.0, 400.0, 800.0, 1600.0]);
        let h = Histogram::new(&bounds);
        h.observe(75.0);
        h.observe(300.0);
        h.observe(1_000_000.0); // overflow bucket
        assert_eq!(h.count(), 3);
        assert!(h.quantile(0.5) > 50.0);
        assert_eq!(h.quantile(1.0), 1600.0, "overflow clamps to the last bound");
    }

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_set_max_and_add() {
        let g = Gauge::new();
        g.set(2.5);
        g.set_max(1.0);
        assert_eq!(g.get(), 2.5);
        g.set_max(7.0);
        assert_eq!(g.get(), 7.0);
        g.add(0.5);
        assert_eq!(g.get(), 7.5);
    }

    #[test]
    fn timer_tracks_min_max_mean() {
        let t = Timer::new();
        assert_eq!(t.min_ns(), 0); // empty timer reports 0, not u64::MAX
        t.observe_ns(10);
        t.observe_ns(30);
        assert_eq!(t.count(), 2);
        assert_eq!(t.total_ns(), 40);
        assert_eq!(t.min_ns(), 10);
        assert_eq!(t.max_ns(), 30);
        assert_eq!(t.mean_ns(), 20.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(1.0); // boundary lands in the `<= 1.0` bucket
        h.observe(5.0);
        h.observe(100.0);
        h.observe(f64::NAN); // dropped
        assert_eq!(h.bucket_counts(), vec![2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 106.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_rejects_bad_bounds() {
        let h = Histogram::new(&[1.0, 1.0, f64::NAN]);
        assert_eq!(h.bounds(), &[1.0]);
    }

    #[test]
    fn quantiles_of_uniform_distribution() {
        // Unit-width buckets over [0, 100); observe 1..=100 once each so
        // the true quantile of q is ~100q. The bucket estimate must land
        // within one bucket width of the truth.
        let bounds: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let h = Histogram::new(&bounds);
        for i in 1..=100 {
            h.observe(i as f64);
        }
        for (q, expect) in [(0.5, 50.0), (0.95, 95.0), (0.99, 99.0)] {
            let got = h.quantile(q);
            assert!((got - expect).abs() <= 1.0, "q={q}: got {got}, want ~{expect}");
        }
        // Quantiles are monotone in q.
        assert!(h.quantile(0.5) <= h.quantile(0.95));
        assert!(h.quantile(0.95) <= h.quantile(0.99));
    }

    #[test]
    fn quantiles_interpolate_within_a_bucket() {
        // All mass in the (1, 10] bucket: p50 interpolates to its middle.
        let h = Histogram::new(&[1.0, 10.0]);
        for _ in 0..10 {
            h.observe(5.0);
        }
        let p50 = h.quantile(0.5);
        assert!((p50 - 5.5).abs() < 1e-9, "p50 {p50}");
        // p0 pins to the bucket's lower bound, p100 to its upper.
        assert!((h.quantile(0.0) - 1.0).abs() < 1e-9);
        assert!((h.quantile(1.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_overflow_and_empty_edges() {
        let h = Histogram::new(&[1.0, 2.0]);
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        h.observe(100.0); // overflow bucket only
        assert_eq!(h.quantile(0.5), 2.0, "overflow clamps to last bound");
        // Known skewed distribution: 90 small, 10 large.
        let h2 = Histogram::new(&[1.0, 10.0, 100.0]);
        for _ in 0..90 {
            h2.observe(0.5);
        }
        for _ in 0..10 {
            h2.observe(50.0);
        }
        assert!(h2.quantile(0.5) <= 1.0, "p50 stays in the small bucket");
        let p95 = h2.quantile(0.95);
        assert!((10.0..=100.0).contains(&p95), "p95 {p95} lands in the large bucket");
    }
}
