//! Microbenchmark shape tests (paper Fig 5): coordination overhead of the
//! prototype vs unmodified Bro, per module, for both check placements.

use nwdp_core::{build_units, AnalysisClass};
use nwdp_engine::{standalone_coordination, CoordContext, Engine, Placement};
use nwdp_hash::KeyedHasher;
use nwdp_topo::{line, NodeId, PathDb};
use nwdp_traffic::{
    generate_trace, AnomalyConfig, NetTrace, TraceConfig, TrafficMatrix, VolumeModel,
};

/// Bro derives a libpcap capture filter from the loaded analyzers: a
/// module-in-isolation run only receives its own traffic. Protocol
/// modules filter by server port; connection-level modules see everything.
fn capture_filter(class_name: &str, s: &nwdp_traffic::Session) -> bool {
    use nwdp_traffic::AppProtocol as A;
    match class_name {
        "HTTP" => s.tuple.dst_port == A::Http.server_port(),
        "IRC" => s.tuple.dst_port == A::Irc.server_port(),
        "Login" => s.tuple.dst_port == A::Telnet.server_port(),
        "TFTP" => s.tuple.dst_port == A::Tftp.server_port(),
        "Blaster" => s.tuple.dst_port == A::Tftp.server_port() || s.tuple.dst_port == 135,
        _ => true,
    }
}

/// Run a single module in isolation over the trace under a placement.
/// Returns (cpu_cycles, mem_peak).
fn run_module(class_name: &str, placement: Placement, trace: &NetTrace) -> (u64, u64) {
    let topo = line(2);
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::uniform(&topo);
    let vol = VolumeModel::internet2_baseline();
    let all = AnalysisClass::standard_set();
    let classes: Vec<AnalysisClass> = all.into_iter().filter(|c| c.name == class_name).collect();
    assert_eq!(classes.len(), 1, "unknown module {class_name}");
    let dep = build_units(&topo, &paths, &tm, &vol, &classes);
    let (solo_dep, manifest) = standalone_coordination(&dep, NodeId(0));
    let names = vec![class_name.to_string()];
    let h = KeyedHasher::unkeyed();
    let mut engine = match placement {
        Placement::Unmodified => Engine::new(NodeId(0), placement, &names, None, h),
        _ => {
            let coord = CoordContext::new(&solo_dep, &manifest);
            Engine::new(NodeId(0), placement, &names, Some(coord), h)
        }
    }
    .unwrap();
    for s in trace.sessions.iter().filter(|s| capture_filter(class_name, s)) {
        engine.process_session(s);
    }
    let stats = engine.stats();
    (stats.cpu_cycles, stats.mem_peak)
}

fn mixed_trace(sessions: usize) -> NetTrace {
    let topo = line(2);
    let tm = TrafficMatrix::uniform(&topo);
    let mut cfg = TraceConfig::new(sessions, 1234);
    cfg.anomalies = AnomalyConfig::default();
    generate_trace(&topo, &tm, &cfg)
}

const ALL_MODULES: [&str; 9] =
    ["Baseline", "Scan", "IRC", "Login", "TFTP", "HTTP", "Blaster", "Signature", "SYNFlood"];

#[test]
fn standalone_manifest_processes_everything() {
    // With the full-range manifest, the coordinated engine must do the
    // same analysis as the unmodified engine (same alerts, same packets).
    let trace = mixed_trace(3000);
    for placement in [Placement::EventEngine, Placement::PolicyEngine] {
        for module in ALL_MODULES {
            let (cpu_c, _) = run_module(module, placement, &trace);
            let (cpu_u, _) = run_module(module, Placement::Unmodified, &trace);
            assert!(
                cpu_c >= cpu_u,
                "{module} {placement:?}: coordination cannot be free ({cpu_c} < {cpu_u})"
            );
        }
    }
}

#[test]
fn cpu_overhead_small_for_event_engine_placement() {
    // Fig 5(a): with checks as early as possible, overhead stays modest
    // for every module (the paper reports ~2% for the cheap-check modules
    // and ~10% for the policy-heavy Scan/TFTP).
    let trace = mixed_trace(4000);
    for module in ALL_MODULES {
        let (cpu_u, _) = run_module(module, Placement::Unmodified, &trace);
        let (cpu_e, _) = run_module(module, Placement::EventEngine, &trace);
        let overhead = cpu_e as f64 / cpu_u as f64 - 1.0;
        assert!(
            overhead < 0.25,
            "{module}: event-engine overhead {:.1}% too large",
            overhead * 100.0
        );
    }
}

#[test]
fn policy_placement_much_worse_for_per_packet_modules() {
    // Fig 5(a): HTTP, IRC and Login show *significant* overhead when the
    // checks run in the interpreted policy engine, and little when hoisted
    // into the event engine.
    let trace = mixed_trace(4000);
    for module in ["HTTP", "IRC", "Login"] {
        let (cpu_u, _) = run_module(module, Placement::Unmodified, &trace);
        let (cpu_e, _) = run_module(module, Placement::EventEngine, &trace);
        let (cpu_p, _) = run_module(module, Placement::PolicyEngine, &trace);
        let ev = cpu_e as f64 / cpu_u as f64 - 1.0;
        let po = cpu_p as f64 / cpu_u as f64 - 1.0;
        assert!(
            po > 2.0 * ev + 0.02,
            "{module}: policy overhead {:.1}% should dwarf event overhead {:.1}%",
            po * 100.0,
            ev * 100.0
        );
    }
}

#[test]
fn same_place_modules_agree_across_placements() {
    // Fig 5(a): for Scan/TFTP/Signature/Blaster/SYNFlood "both coordinated
    // versions have very similar overhead because the coordination checks
    // occur in the same place".
    let trace = mixed_trace(4000);
    for module in ["Scan", "TFTP", "Signature", "Blaster", "SYNFlood"] {
        let (cpu_e, _) = run_module(module, Placement::EventEngine, &trace);
        let (cpu_p, _) = run_module(module, Placement::PolicyEngine, &trace);
        let rel = (cpu_p as f64 - cpu_e as f64).abs() / cpu_e as f64;
        assert!(
            rel < 0.05,
            "{module}: placements should behave alike, differ by {:.1}%",
            rel * 100.0
        );
    }
}

#[test]
fn memory_overhead_bounded_by_hash_fields() {
    // Fig 5(b): the memory overhead of the coordinated versions is at most
    // ~6% (hash fields added to the connection record).
    let trace = mixed_trace(4000);
    for module in ALL_MODULES {
        let (_, mem_u) = run_module(module, Placement::Unmodified, &trace);
        let (_, mem_c) = run_module(module, Placement::EventEngine, &trace);
        let overhead = mem_c as f64 / mem_u as f64 - 1.0;
        assert!(
            (0.0..0.08).contains(&overhead),
            "{module}: memory overhead {:.1}% out of the Fig 5(b) band",
            overhead * 100.0
        );
    }
}
