//! Wall-clock benches for the Fig 10 pipeline pieces: LP relaxation with
//! lazy rows, one randomized-rounding run per strategy, and the exact
//! min-cost-flow inner solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nwdp_core::nips::{
    round_best_of, round_once, solve_inner_flow, solve_relaxation, NipsInstance, RoundingOpts,
    Strategy,
};
use nwdp_lp::rowgen::RowGenOpts;
use nwdp_topo::{internet2, PathDb};
use nwdp_traffic::{MatchRates, TrafficMatrix, VolumeModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn instance(n_rules: usize) -> NipsInstance {
    let t = internet2();
    let paths = PathDb::shortest_paths(&t);
    let tm = TrafficMatrix::gravity(&t);
    let vol = VolumeModel::internet2_baseline();
    let rates = MatchRates::uniform_001(n_rules, paths.all_pairs().count(), 1);
    NipsInstance::evaluation_setup(&t, &paths, &tm, &vol, n_rules, 0.15, rates)
}

fn bench_relaxation(c: &mut Criterion) {
    let mut g = c.benchmark_group("nips_relaxation");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(12));
    for &rules in &[10usize, 25] {
        let inst = instance(rules);
        g.bench_with_input(BenchmarkId::from_parameter(rules), &inst, |b, inst| {
            b.iter(|| black_box(solve_relaxation(inst, &RowGenOpts::default()).unwrap()))
        });
    }
    g.finish();
}

fn bench_rounding(c: &mut Criterion) {
    let inst = instance(15);
    let relax = solve_relaxation(&inst, &RowGenOpts::default()).unwrap();
    let mut g = c.benchmark_group("nips_round_once");
    g.sample_size(10);
    for strategy in [Strategy::ScaledFig9, Strategy::LpResolve, Strategy::GreedyLpResolve] {
        let opts = RoundingOpts { strategy, iterations: 1, seed: 7, ..Default::default() };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &opts,
            |b, opts| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(3);
                    black_box(round_once(&inst, &relax, opts, &mut rng).unwrap())
                })
            },
        );
    }
    g.finish();
}

fn bench_inner_flow(c: &mut Criterion) {
    let inst = instance(20);
    let ehat: Vec<Vec<bool>> =
        (0..20).map(|i| (0..inst.num_nodes).map(|j| (i + j) % 4 != 0).collect()).collect();
    c.bench_function("inner_flow_20rules", |b| {
        b.iter(|| black_box(solve_inner_flow(&inst, &ehat)))
    });
}

fn bench_round_best_of(c: &mut Criterion) {
    // The tentpole fan-out: independent rounding trials on scoped threads
    // (set NWDP_THREADS=1 for the serial baseline).
    let inst = instance(15);
    let relax = solve_relaxation(&inst, &RowGenOpts::default()).unwrap();
    let opts = RoundingOpts {
        strategy: Strategy::GreedyLpResolve,
        iterations: 8,
        seed: 7,
        ..Default::default()
    };
    let mut g = c.benchmark_group("nips_round_best_of");
    g.sample_size(10);
    g.bench_function("greedy_lp_resolve_x8", |b| {
        b.iter(|| black_box(round_best_of(&inst, &relax, &opts).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_relaxation, bench_rounding, bench_inner_flow, bench_round_best_of);
criterion_main!(benches);
