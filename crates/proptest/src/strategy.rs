//! Strategy trait and combinators (sampling-only, no shrinking).

use crate::Arbitrary;
use rand::rngs::StdRng;
use rand::RngExt;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic sampler over a seeded RNG.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy yielding a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`crate::any`].
pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F2);
