//! What-if provisioning analysis (paper §5, "Provisioning and Upgrades").
//!
//! "We can also extend the formulations to describe what-if provisioning
//! scenarios: where should an administrator add more resources or augment
//! existing deployments with more powerful hardware." This module answers
//! that question by finite differences on the optimization: re-solve with
//! one node's capacity scaled up and report the reduction in the bottleneck
//! load (NIDS) or the gain in dropped-traffic footprint (NIPS TCAM slots).

use crate::nids::lp::{solve_nids_lp_warm, NidsLpConfig};
use crate::nips::model::NipsInstance;
use crate::nips::relax::{solve_relaxation_ctx, RelaxSolution};
use crate::units::NidsDeployment;
use nwdp_lp::rowgen::{RowGenOpts, SolveContext};

/// Index of the largest finite gain (ties resolved as `Iterator::max_by`:
/// last maximal element; NaN/∞ gains compare lowest, so a sweep poisoned
/// by a degenerate re-solve still picks the best well-defined node
/// instead of panicking).
fn best_gain_node(gains: &[f64]) -> usize {
    let finite_or_min = |g: f64| if g.is_finite() { g } else { f64::NEG_INFINITY };
    gains
        .iter()
        .enumerate()
        .max_by(|a, b| finite_or_min(*a.1).total_cmp(&finite_or_min(*b.1)))
        .map(|(j, _)| j)
        .unwrap_or(0)
}

/// Marginal value of upgrading each node's NIDS hardware.
#[derive(Debug, Clone)]
pub struct NidsUpgradePlan {
    /// Baseline optimal max-load.
    pub base_max_load: f64,
    /// `gain[j]` = reduction in optimal max-load when node `j`'s CPU and
    /// memory are both scaled by the upgrade factor.
    pub gain: Vec<f64>,
    /// Node index with the largest gain (ties → lowest index).
    pub best_node: usize,
}

/// Evaluate upgrading each node in turn by `factor` (e.g. 2.0 = double
/// capacity) and re-solving the NIDS LP.
pub fn nids_upgrade_plan(
    dep: &NidsDeployment,
    cfg: &NidsLpConfig,
    factor: f64,
) -> Result<NidsUpgradePlan, crate::nids::lp::NidsError> {
    assert!(factor > 1.0, "an upgrade must increase capacity");
    // Chain the basis through the sweep: each re-solve changes only LP
    // coefficients (one node's capacities), so the previous optimum is an
    // excellent starting basis. The capacity rescale leaves the old basis
    // dual feasible but primal infeasible; the simplex dual phase repairs
    // it in a handful of pivots instead of rejecting it, so every step of
    // the sweep is a warm-start hit.
    let (base, mut warm) = solve_nids_lp_warm(dep, cfg, None)?;
    let mut gain = Vec::with_capacity(dep.num_nodes);
    for j in 0..dep.num_nodes {
        let mut c = cfg.clone();
        c.caps[j].cpu *= factor;
        c.caps[j].mem *= factor;
        let (up, snap) = solve_nids_lp_warm(dep, &c, warm.as_ref())?;
        warm = snap;
        gain.push((base.max_load - up.max_load).max(0.0));
    }
    let best_node = best_gain_node(&gain);
    Ok(NidsUpgradePlan { base_max_load: base.max_load, gain, best_node })
}

/// Marginal value (in LP-bound units) of adding TCAM slots per node.
#[derive(Debug, Clone)]
pub struct NipsUpgradePlan {
    pub base_objective: f64,
    /// `gain[j]` = increase in `OptLP` when node `j` gets `extra_slots`
    /// more TCAM entries.
    pub gain: Vec<f64>,
    pub best_node: usize,
}

/// Evaluate adding `extra_slots` TCAM entries to each node in turn.
///
/// Uses the LP relaxation as the (tight, per Fig 10) proxy for deployment
/// value, keeping the what-if sweep fast.
pub fn nips_tcam_plan(
    inst: &NipsInstance,
    base: &RelaxSolution,
    extra_slots: f64,
    opts: &RowGenOpts,
) -> NipsUpgradePlan {
    let mut gain = Vec::with_capacity(inst.num_nodes);
    // The per-node what-if instances differ only in one TCAM row's
    // right-hand side, so the relaxation context (basis + binding lazy
    // rows) carries across the whole sweep.
    let mut ctx = SolveContext::new();
    for j in 0..inst.num_nodes {
        let mut inst2 = inst.clone();
        inst2.cam_cap[j] += extra_slots;
        let up = solve_relaxation_ctx(&inst2, opts, &mut ctx)
            .map(|s| s.objective)
            .unwrap_or(base.objective);
        gain.push((up - base.objective).max(0.0));
    }
    let best_node = best_gain_node(&gain);
    NipsUpgradePlan { base_objective: base.objective, gain, best_node }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::AnalysisClass;
    use crate::nids::lp::NodeCaps;
    use crate::nips::solve_relaxation;
    use crate::units::build_units;
    use nwdp_topo::{internet2, PathDb};
    use nwdp_traffic::{MatchRates, TrafficMatrix, VolumeModel};

    #[test]
    fn nids_upgrade_prefers_a_bottleneck_node() {
        let t = internet2();
        let paths = PathDb::shortest_paths(&t);
        let tm = TrafficMatrix::gravity(&t);
        let vol = VolumeModel::internet2_baseline();
        let dep = build_units(&t, &paths, &tm, &vol, &AnalysisClass::standard_set());
        let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let plan = nids_upgrade_plan(&dep, &cfg, 2.0).unwrap();
        assert_eq!(plan.gain.len(), 11);
        assert!(plan.gain.iter().all(|&g| g >= 0.0));
        // Upgrading SOME node must help (the LP is capacity-bound).
        assert!(plan.gain[plan.best_node] > 0.0);
    }

    /// Regression: a NaN gain (degenerate what-if re-solve) used to trip
    /// `partial_cmp(..).expect("NaN gain")`; NaN now compares lowest.
    #[test]
    fn best_gain_node_tolerates_nan() {
        assert_eq!(best_gain_node(&[f64::NAN, 2.0, 1.0]), 1);
        assert_eq!(best_gain_node(&[f64::NAN, f64::NAN]), 1);
        assert_eq!(best_gain_node(&[]), 0);
        assert_eq!(best_gain_node(&[f64::INFINITY, 3.0]), 1, "non-finite compares lowest");
    }

    #[test]
    fn nips_tcam_upgrade_monotone() {
        let t = internet2();
        let paths = PathDb::shortest_paths(&t);
        let tm = TrafficMatrix::gravity(&t);
        let vol = VolumeModel::internet2_baseline();
        let rates = MatchRates::uniform_001(6, paths.all_pairs().count(), 2);
        let inst = NipsInstance::evaluation_setup(&t, &paths, &tm, &vol, 6, 0.17, rates);
        let opts = RowGenOpts::default();
        let base = solve_relaxation(&inst, &opts).unwrap();
        let plan = nips_tcam_plan(&inst, &base, 1.0, &opts);
        assert!(plan.gain.iter().all(|&g| g >= 0.0));
        assert!(plan.base_objective > 0.0);
    }
}
