//! `nwdp-obs`: zero-dependency, thread-safe observability for the nwdp
//! workspace.
//!
//! The paper's evaluation (§4) is entirely about *measured* solver and
//! engine behavior — LP solve effort vs. topology size, rounding quality
//! vs. the LP bound, per-node load spread. This crate is the substrate
//! that captures those quantities: atomic [`Counter`]s, [`Gauge`]s,
//! [`Timer`]s and fixed-bucket [`Histogram`]s behind a process-global
//! registry, exported as deterministic JSON.
//!
//! # Cost model
//!
//! Collection is **off by default**. The gate is a single relaxed
//! [`AtomicBool`] load — instrumentation sites guard with
//! [`enabled`], so a disabled build pays one predictable branch per
//! instrumented *region* (not per event; hot loops accumulate into plain
//! locals and flush once per solve/run). Enable with
//! [`set_enabled`]`(true)`, or export automatically by setting
//! `NWDP_METRICS=path.json` and calling [`init_from_env`] +
//! [`flush`] (the `repro` harness does both; see `--metrics-out`).
//!
//! # Naming
//!
//! Metric names are dot-separated `subsystem.event` (e.g.
//! `simplex.pivots`, `round.trials`), with per-entity breakdowns as
//! labels (`engine.packets_analyzed{node="3"}`). Units are suffixes:
//! `_ns` for nanoseconds, `_bytes` for sizes; bare names are event
//! counts or pure ratios.

mod alert;
mod json;
mod metrics;
mod registry;
mod series;
mod trace;

pub use alert::{
    add_alert_writer, alert_class_stats, alert_enabled, alert_stats, alert_top_talkers,
    cef_unescape, clear_alert_writers, emit_alert, emit_latency_bounds, encode_cef, encode_jsonl,
    flush_alerts, reset_alerts, set_alert_clock_scale, set_alert_config, set_alert_context,
    set_alert_enabled, split_cef, AlertConfig, AlertFormat, AlertRecord, AlertStats,
};
pub use json::{parse as parse_json, snapshot_to_json, Json};
pub use metrics::{Counter, Gauge, Histogram, Timer};
pub use registry::{
    counter, counter_with, gauge, gauge_with, histogram, histogram_with, reset, snapshot, timer,
    timer_with, Scope, SnapshotValue,
};
pub use series::{
    record_series, reset_series, series, series_snapshot, series_to_csv, write_series_csv, Series,
};
pub use trace::{
    current_span_id, event, flush_trace, init_trace_from_env, set_trace_enabled, set_trace_writer,
    span, span_under, span_with, trace_enabled, Span, TraceValue,
};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is metric collection on? One relaxed atomic load — cheap enough to
/// guard every instrumented region.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Take a start stamp only when collection is on; pair with
/// [`Timer::observe_since`].
#[inline]
pub fn now_if_enabled() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Destination for an exported snapshot.
pub trait MetricsSink: Send {
    fn write(&mut self, json: &str) -> std::io::Result<()>;
}

/// Sink that (over)writes a file on every flush.
pub struct FileSink {
    path: PathBuf,
}

impl FileSink {
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FileSink { path: path.into() }
    }
}

impl MetricsSink for FileSink {
    fn write(&mut self, json: &str) -> std::io::Result<()> {
        std::fs::write(&self.path, json)
    }
}

fn sink_slot() -> &'static Mutex<Option<Box<dyn MetricsSink>>> {
    static SINK: Mutex<Option<Box<dyn MetricsSink>>> = Mutex::new(None);
    &SINK
}

/// Install (or replace) the process-global export sink.
pub fn set_sink(sink: Box<dyn MetricsSink>) {
    *sink_slot().lock().unwrap_or_else(|e| e.into_inner()) = Some(sink);
}

/// Read `NWDP_METRICS`; when set, enable collection and install a
/// [`FileSink`] at that path. Returns the path when configured.
pub fn init_from_env() -> Option<PathBuf> {
    let path = PathBuf::from(std::env::var_os("NWDP_METRICS")?);
    set_enabled(true);
    set_sink(Box::new(FileSink::new(&path)));
    Some(path)
}

/// Export the current snapshot to the installed sink. Returns `Ok(false)`
/// when no sink is installed.
pub fn flush() -> std::io::Result<bool> {
    let mut slot = sink_slot().lock().unwrap_or_else(|e| e.into_inner());
    match slot.as_mut() {
        None => Ok(false),
        Some(sink) => {
            sink.write(&to_json())?;
            Ok(true)
        }
    }
}

/// Render the current snapshot as a JSON document.
pub fn to_json() -> String {
    snapshot_to_json(&snapshot())
}

/// Write the current snapshot straight to `path` (independent of any
/// installed sink).
pub fn write_json(path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, to_json())
}

/// Chain a panic hook that flushes the metrics sink and the trace
/// journal before the default hook runs, so a mid-run panic still leaves
/// a valid metrics snapshot and a parseable (partial) journal on disk.
/// Idempotent: the hook installs once per process.
///
/// The panicking thread's *open* spans are closed by their guards during
/// the unwind that follows the hook, and its thread-local record buffer
/// flushes when the thread dies — the hook only has to push out whatever
/// other threads already handed to the writer, plus the global metrics
/// snapshot.
pub fn install_panic_flush() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Alerts before metrics: flushing mirrors the final alert
            // deltas into the `alert.*` counters the metrics dump reads.
            let _ = flush_alerts();
            let _ = flush();
            flush_trace();
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggleable() {
        // Don't assert the initial state (other tests may have toggled it);
        // assert the toggle round-trips.
        let before = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(before);
    }

    #[test]
    fn now_if_enabled_tracks_gate() {
        let before = enabled();
        set_enabled(false);
        assert!(now_if_enabled().is_none());
        set_enabled(true);
        assert!(now_if_enabled().is_some());
        set_enabled(before);
    }

    #[test]
    fn to_json_parses() {
        counter("test.lib.flush").add(3);
        let doc = parse_json(&to_json()).expect("export must be valid JSON");
        assert_eq!(doc.get("counters/test.lib.flush").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("version").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn file_sink_writes_snapshot() {
        struct Capture(std::sync::Arc<Mutex<String>>);
        impl MetricsSink for Capture {
            fn write(&mut self, json: &str) -> std::io::Result<()> {
                *self.0.lock().unwrap() = json.to_string();
                Ok(())
            }
        }
        let buf = std::sync::Arc::new(Mutex::new(String::new()));
        set_sink(Box::new(Capture(std::sync::Arc::clone(&buf))));
        counter("test.lib.sink").inc();
        assert!(flush().unwrap());
        let text = buf.lock().unwrap().clone();
        assert!(parse_json(&text).is_ok());
        // Leave no sink behind for other tests.
        *sink_slot().lock().unwrap() = None;
        assert!(!flush().unwrap());
    }
}
