/root/repo/target/debug/deps/robustness-f367f942be1147cb.d: crates/engine/tests/robustness.rs

/root/repo/target/debug/deps/robustness-f367f942be1147cb: crates/engine/tests/robustness.rs

crates/engine/tests/robustness.rs:
