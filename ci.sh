#!/usr/bin/env bash
# Tier-1 gate plus lint checks. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== warm-start equivalence (thread counts 1 and 4) =="
# The warm-start layer must be objective-invariant regardless of the
# parallel fan-out width; the test itself also flips thread counts
# internally, so both env settings double-cover the contract.
NWDP_THREADS=1 cargo test -q --test warmstart_equivalence
NWDP_THREADS=4 cargo test -q --test warmstart_equivalence

echo "== resilience suites (thread counts 1 and 4) =="
# Manifest repair and the resilient replay must be bit-identical under any
# fan-out width: the property suite checks repaired manifests (zero gap,
# no overlap, load within the greedy bound) and the engine suite checks
# end-to-end alert recovery after single-node crashes.
NWDP_THREADS=1 cargo test -q -p nwdp-engine --test resilience
NWDP_THREADS=4 cargo test -q -p nwdp-engine --test resilience
NWDP_THREADS=1 cargo test -q --test proptest_resilience
NWDP_THREADS=4 cargo test -q --test proptest_resilience

# Repair code must never unwrap a hash-range lookup: a missing
# (unit, node) entry is a legal state (node not assigned, node failed),
# not a bug to panic on. Same rule for the resilience library sources
# (test modules below #[cfg(test)] are exempt, as in the NaN lint).
echo "== resilience panic-path grep lint =="
range_hits="$(grep -rnE '\.range\([^)]*\)[[:space:]]*\.(unwrap|expect)\(' crates/ src/ --include='*.rs' | grep -vE '^[^:]*:[0-9]+:[[:space:]]*//' || true)"
if [ -n "$range_hits" ]; then
  echo "found unwrap()/expect() on Option<&RangeSet> lookups:" >&2
  echo "$range_hits" >&2
  exit 1
fi
res_hits="$(for f in crates/core/src/resilience/*.rs; do
  awk '/#\[cfg\(test\)\]/{exit} /\.(unwrap|expect)\(/ && $0 !~ /^[[:space:]]*\/\//{print FILENAME":"FNR": "$0}' "$f"
done)"
if [ -n "$res_hits" ]; then
  echo "found unwrap()/expect() in resilience library code:" >&2
  echo "$res_hits" >&2
  exit 1
fi
echo "resilience lint OK"

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

# Library code must not panic on fallible paths; surface unwrap/expect as
# warnings there. --lib keeps #[cfg(test)] modules, test targets, benches
# and binaries exempt (unwrap in tests is idiomatic).
echo "== clippy (panic-path lint, library crates) =="
cargo clippy --lib -p nwdp -p nwdp-core -p nwdp-lp -p nwdp-engine \
  -p nwdp-online -p nwdp-obs -p nwdp-topo -p nwdp-traffic -p nwdp-hash -- \
  -W clippy::unwrap_used -W clippy::expect_used

# NaN-hostile comparisons must stay purged: no float sort/max may panic on
# a non-finite value. Doc comments may mention the old patterns (the
# regression tests document them), so comment lines are excluded.
echo "== NaN-panic grep lint =="
nan_hits="$(grep -rnE '\.partial_cmp\([^)]*\)[[:space:]]*\.?(unwrap|expect)|\.expect\("[^"]*NaN' crates/ --include='*.rs' | grep -vE '^[^:]*:[0-9]+:[[:space:]]*//' || true)"
if [ -n "$nan_hits" ]; then
  echo "found partial_cmp().unwrap()/NaN-expect in library code:" >&2
  echo "$nan_hits" >&2
  exit 1
fi
echo "NaN lint OK"

# Diagnostics in the solver crates must go through the structured trace
# layer (obs::trace_event!/span!), never bare eprintln!: trace events are
# env-gated (zero output and ~zero cost when off) and machine-parseable.
# Comment lines are exempt (docs may mention the pattern).
echo "== eprintln grep lint (lp, core) =="
eprintln_hits="$(grep -rn 'eprintln!' crates/lp/src crates/core/src --include='*.rs' \
  | grep -vE '^[^:]*:[0-9]+:[[:space:]]*(//|///|//!)' || true)"
if [ -n "$eprintln_hits" ]; then
  echo "found bare eprintln! in solver library code (use obs::trace_event!):" >&2
  echo "$eprintln_hits" >&2
  exit 1
fi
echo "eprintln lint OK"

echo "== metrics + trace smoke =="
metrics_tmp="$(mktemp -d)"
trap 'rm -rf "$metrics_tmp"' EXIT
NWDP_TRACE="$metrics_tmp/trace.jsonl" ./target/release/repro --quick --fig 5 \
  --metrics-out "$metrics_tmp/metrics.json" --out "$metrics_tmp/results" \
  > /dev/null
python3 - "$metrics_tmp/metrics.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["version"] == 1, d.get("version")
c = d["counters"]
for key in ("simplex.solves", "simplex.iterations", "round.trials", "rowgen.solves"):
    assert c.get(key, 0) > 0, f"missing or zero counter: {key}"
assert any(k.startswith("engine.packets{") and v > 0 for k, v in c.items()), \
    "no per-node engine packet counters"
for name, h in d.get("histograms", {}).items():
    for q in ("p50", "p95", "p99"):
        assert q in h, f"histogram {name} lacks {q}"
print(f"metrics smoke OK ({len(c)} counters)")
PY
python3 - "$metrics_tmp/trace.jsonl" <<'PY'
import json, sys
open_ids, spans, events = set(), 0, 0
with open(sys.argv[1]) as f:
    for n, line in enumerate(f, 1):
        rec = json.loads(line)  # every journal line must be valid JSON
        ev = rec["ev"]
        if ev == "B":
            assert rec["id"] not in open_ids, f"line {n}: duplicate span id"
            open_ids.add(rec["id"])
            spans += 1
        elif ev == "E":
            assert rec["id"] in open_ids, f"line {n}: close without open"
            open_ids.discard(rec["id"])
        elif ev == "I":
            events += 1
        else:
            raise AssertionError(f"line {n}: unknown record type {ev!r}")
assert not open_ids, f"unbalanced journal: {len(open_ids)} spans left open"
assert spans > 0, "journal recorded no spans"
print(f"trace journal OK ({spans} spans, {events} events, balanced)")
PY
./target/release/repro report --trace "$metrics_tmp/trace.jsonl" \
  --metrics "$metrics_tmp/metrics.json" > "$metrics_tmp/report.txt"
grep -q "phase breakdown" "$metrics_tmp/report.txt"
grep -q "hottest spans" "$metrics_tmp/report.txt"
grep -q "warm-start hit rates" "$metrics_tmp/report.txt"
echo "repro report OK"

# The NIDS upgrade sweep used to reject all of its warm bases (the 0.96x
# negative row in EXPERIMENTS.md); the dual simplex phase repairs them.
# Guard the repaired behavior: every warm attempt in that loop must be
# accepted, none may fall back cold, and the warm pass must spend fewer
# simplex iterations than cold. The gate parses the per-loop columns of
# the warm-start CSV rather than global counters, so the FPL and rounding
# loops in the same run can't contaminate the assertion.
echo "== dual-phase warm-start gate (NIDS upgrade sweep) =="
./target/release/repro warm --quick --out "$metrics_tmp/results" > /dev/null
python3 - "$metrics_tmp/results/warmstart_cold_vs_warm.csv" <<'PY'
import csv, sys
rows = [r for r in csv.DictReader(open(sys.argv[1])) if r["what"].startswith("NIDS upgrade sweep")]
assert rows, "NIDS upgrade sweep row missing from warm-start CSV"
r = rows[0]
hits, fallbacks = int(r["hits"]), int(r["fallbacks"])
cold_iters, warm_iters = int(r["cold iters"]), int(r["warm iters"])
assert hits > 0, f"NIDS sweep accepted no warm bases: {r}"
assert fallbacks == 0, f"NIDS sweep fell back cold {fallbacks} times: {r}"
assert warm_iters < cold_iters, f"warm pass did not save iterations: {r}"
print(f"dual-phase gate OK ({hits} hits, {fallbacks} fallbacks, "
      f"{cold_iters} -> {warm_iters} iterations)")
PY

# Streaming data plane: the sharded stream must stay bit-identical to the
# batch replay at any thread/shard count (the equivalence suite pins the
# full RunStats, the bench asserts it again internally), and the
# throughput artifacts must parse with a positive rate. The bench runs
# from the temp dir so its trajectory entry lands there, not on the
# committed repo-root BENCH_throughput.json.
echo "== streaming throughput gate =="
NWDP_THREADS=1 cargo test -q --test parallel_equivalence
NWDP_THREADS=4 cargo test -q --test parallel_equivalence
repo_root="$PWD"
(cd "$metrics_tmp" && NWDP_SHARDS=3 "$repo_root/target/release/repro" throughput --quick \
  --out "$metrics_tmp/results" > /dev/null)
python3 - "$metrics_tmp/BENCH_throughput.json" "$metrics_tmp/results/throughput.csv" <<'PY'
import csv, json, sys
d = json.load(open(sys.argv[1]))
assert d["version"] == 1, d.get("version")
runs = d["runs"]
assert runs, "trajectory has no runs"
r = runs[-1]
assert r["sessions_per_sec"] > 0, r
assert r["p99_pkt_ns"] >= r["p50_pkt_ns"] > 0, r
assert r["shards"] == 3, r
rows = list(csv.DictReader(open(sys.argv[2])))
assert rows and float(rows[0]["sessions/s"]) > 0, rows
print(f"throughput gate OK ({r['sessions_per_sec']:.0f} sessions/s, "
      f"p99 {r['p99_pkt_ns']:.0f} ns, {int(r['shards'])} shards)")
PY

# Closed-loop reload: the quick mix-shift scenario must complete its live
# swaps without stopping replay, reject the sabotaged epoch with the old
# manifest still serving, and never let the live manifest's coverage dip
# below full. The bench asserts all of this internally; the gate re-checks
# the *artifacts* (summary CSV, replay-clock coverage series, reload.*
# counters) so a silent emit regression can't pass.
echo "== closed-loop reload gate =="
reload_out="$metrics_tmp/reload"
./target/release/repro reload --quick --out "$reload_out" \
  --metrics-out "$reload_out/metrics.json" > /dev/null
python3 - "$reload_out" <<'PY'
import csv, json, os, sys
out = sys.argv[1]
r = list(csv.DictReader(open(os.path.join(out, "reload_summary.csv"))))[0]
swapped, rejected = int(r["swapped"]), int(r["rejected"])
floor = float(r["coverage_floor"])
assert swapped >= 3, f"need >= 3 live swaps, got {swapped}: {r}"
assert rejected >= 1, f"sabotaged epoch was not rejected: {r}"
assert floor >= 1.0 - 1e-9, f"coverage floor dipped below full: {r}"
cov = list(csv.DictReader(open(os.path.join(out, "reload_coverage_timeseries.csv"))))
assert cov, "coverage timeseries is empty"
assert all(float(p["coverage"]) >= 1.0 - 1e-9 for p in cov), cov
ts = list(csv.DictReader(open(os.path.join(out, "timeseries.csv"))))
series = [p for p in ts if p["series"] == "resilience.coverage"]
assert series, "no resilience.coverage replay-clock series in timeseries.csv"
c = json.load(open(os.path.join(out, "metrics.json")))["counters"]
assert c.get("reload.swaps", 0) >= 3, c.get("reload.swaps")
assert c.get("reload.rejected", 0) >= 1, c.get("reload.rejected")
assert c.get("reload.resolves", 0) == swapped + rejected + \
    int(c.get("reload.solve_failed", 0)), c
print(f"reload gate OK ({swapped} swaps, {rejected} rejected, "
      f"floor {floor:.9f}, {len(series)} coverage points)")
PY

# Distributed control plane: the cluster suites must hold at 1 and 4
# threads (full-run bit-equality incl. the delivery-schedule fingerprint),
# and `repro cluster` must meet the fault-injected convergence criteria at
# 0% and 10% link loss — crash detected from actually missed heartbeats
# near the grid prediction, coverage never below the repair bound, zero
# stale-epoch manifests live. The bench asserts those internally; the gate
# re-checks the artifacts (convergence CSV, net.* counters, replay-clock
# series, BENCH_cluster.json trajectory) so a silent emit regression can't
# pass. Runs from the temp dir so trajectory entries land there.
echo "== distributed control-plane gate =="
NWDP_THREADS=1 cargo test -q -p nwdp-engine --test cluster
NWDP_THREADS=4 cargo test -q -p nwdp-engine --test cluster
NWDP_THREADS=1 cargo test -q --test proptest_cluster
NWDP_THREADS=4 cargo test -q --test proptest_cluster
cluster_out="$metrics_tmp/cluster"
(cd "$metrics_tmp" && NWDP_NET_LOSS=0 "$repo_root/target/release/repro" cluster --quick \
  --out "$cluster_out/loss0" > /dev/null)
(cd "$metrics_tmp" && NWDP_NET_LOSS=0.1 "$repo_root/target/release/repro" cluster --quick \
  --out "$cluster_out/loss10" --metrics-out "$cluster_out/metrics.json" > /dev/null)
python3 - "$cluster_out" "$metrics_tmp/BENCH_cluster.json" <<'PY'
import csv, json, os, sys
out, traj_path = sys.argv[1], sys.argv[2]

def point(sub, loss):
    rows = list(csv.DictReader(open(os.path.join(out, sub, "cluster_convergence.csv"))))
    assert len(rows) == 1, f"{sub}: NWDP_NET_LOSS must pin the sweep to one point"
    r = rows[0]
    assert float(r["loss"]) == loss, r
    assert int(r["detections"]) >= 2, f"{sub}: crash + partition both declared: {r}"
    assert float(r["coverage_floor"]) >= float(r["repair_bound"]) - 1e-9, r
    assert int(r["epochs"]) >= 3, f"{sub}: one repair epoch per scripted fault: {r}"
    epochs = list(csv.DictReader(open(os.path.join(out, sub, "cluster_epochs.csv"))))
    assert len(epochs) >= 2, f"{sub}: epochs CSV too short"
    return r

r0 = point("loss0", 0.0)
assert int(r0["retries"]) == 0 and int(r0["timeouts"]) == 0, r0
r10 = point("loss10", 0.1)
assert int(r10["retries"]) > 0, f"10% loss must exercise the retry path: {r10}"

c = json.load(open(os.path.join(out, "metrics.json")))["counters"]
for key in ("net.sends", "net.delivered", "net.drops_loss", "net.heartbeats",
            "net.installs", "net.retries", "net.repairs"):
    assert c.get(key, 0) > 0, f"missing or zero counter: {key}"
assert c["net.delivered"] < c["net.sends"], "a lossy run must drop something"
ts = list(csv.DictReader(open(os.path.join(out, "loss10", "timeseries.csv"))))
cov = [p for p in ts if p["series"] == "net.coverage"]
assert cov, "no net.coverage replay-clock series in timeseries.csv"

traj = json.load(open(traj_path))
assert traj["version"] == 1 and len(traj["runs"]) == 2, traj.get("version")
last = traj["runs"][-1]
assert last["loss"] == 0.1 and last["detect_latency"] > 0, last
assert 0 < last["coverage_floor"] <= 1, last
print(f"control-plane gate OK (0%: {r0['detections']} detections; "
      f"10%: {r10['retries']} retries, floor {float(r10['coverage_floor']):.9f}, "
      f"{len(cov)} coverage points)")
PY

# Production alert plane: detections must leave the engine only through
# the structured alert pipeline (no direct stdout/stderr writes anywhere
# in the data plane), `repro alerts` must produce sanitized JSONL + CEF
# egress whose accounting balances exactly (emitted == written + deduped
# + dropped_ratelimit, nothing silently lossy), the NWDP_ALERT env path
# must install a working writer, and cluster alert forwarding at 10% loss
# must balance sends == delivered + drops. Benches run from the temp dir
# so trajectory entries land there.
echo "== alert plane gate =="
engine_print_hits="$(grep -rnE '(^|[^a-zA-Z_])(eprintln!|println!|print!)\(' crates/engine/src --include='*.rs' \
  | grep -vE '^[^:]*:[0-9]+:[[:space:]]*(//|///|//!)' || true)"
if [ -n "$engine_print_hits" ]; then
  echo "found direct stdout/stderr writes in the engine (emit structured alerts/trace events):" >&2
  echo "$engine_print_hits" >&2
  exit 1
fi
NWDP_THREADS=1 cargo test -q --test proptest_alerts
NWDP_THREADS=4 cargo test -q --test proptest_alerts
alerts_out="$metrics_tmp/alerts"
(cd "$metrics_tmp" && "$repo_root/target/release/repro" alerts --quick \
  --out "$alerts_out" --metrics-out "$alerts_out/metrics.json" > /dev/null)
python3 - "$alerts_out" <<'PY'
import csv, json, os, sys
out = sys.argv[1]

# Summary CSV: the exact balance the pipeline promises.
r = list(csv.DictReader(open(os.path.join(out, "alerts_summary.csv"))))[0]
emitted, written = int(r["emitted"]), int(r["written"])
deduped, dropped = int(r["deduped"]), int(r["dropped_rl"])
assert emitted == written + deduped + dropped, r
assert written > 0 and dropped > 0, r

# JSONL egress: every line parses, full field set, count == written.
lines = open(os.path.join(out, "alerts.jsonl")).read().splitlines()
assert len(lines) == written, (len(lines), written)
for n, line in enumerate(lines, 1):
    rec = json.loads(line)
    for k in ("ts", "node", "class", "kind", "subject", "severity",
              "src_ip", "dst_ip", "src_port", "dst_port", "proto"):
        assert k in rec, f"jsonl line {n} lacks {k}"

# CEF egress: count == written, exactly 7 unescaped pipes per line.
def unescaped_pipes(s):
    n, i = 0, 0
    while i < len(s):
        if s[i] == "\\":
            i += 2
            continue
        if s[i] == "|":
            n += 1
        i += 1
    return n

cef = open(os.path.join(out, "alerts.cef")).read().splitlines()
assert len(cef) == written, (len(cef), written)
for n, line in enumerate(cef, 1):
    assert line.startswith("CEF:0|"), f"cef line {n}: {line[:40]!r}"
    assert unescaped_pipes(line) == 7, \
        f"cef line {n}: {unescaped_pipes(line)} unescaped pipes"

# Mirrored obs counters and the emission-latency histogram agree.
m = json.load(open(os.path.join(out, "metrics.json")))
c = m["counters"]
assert c.get("alert.emitted", 0) == emitted, c.get("alert.emitted")
assert c["alert.emitted"] == c.get("alert.written", 0) + c.get("alert.deduped", 0) \
    + c.get("alert.dropped_ratelimit", 0), c
h = m["histograms"]["alert.emit_ns"]
assert h["count"] >= emitted and h["sum"] > 0, h
print(f"alert gate OK ({emitted} emitted = {written} written + {deduped} deduped "
      f"+ {dropped} rate-limited)")
PY
# NWDP_ALERT env path: a streaming run must leave a valid JSONL egress.
(cd "$metrics_tmp" && NWDP_ALERT="$metrics_tmp/env_alerts.jsonl" \
  "$repo_root/target/release/repro" throughput --quick \
  --out "$metrics_tmp/results" > /dev/null)
python3 - "$metrics_tmp/env_alerts.jsonl" <<'PY'
import json, sys
lines = open(sys.argv[1]).read().splitlines()
assert lines, "NWDP_ALERT egress is empty"
for n, line in enumerate(lines, 1):
    json.loads(line)
print(f"NWDP_ALERT env path OK ({len(lines)} records)")
PY
# Cluster alert forwarding rides the lossy transport and balances.
(cd "$metrics_tmp" && NWDP_NET_LOSS=0.1 NWDP_ALERT="$metrics_tmp/cluster_alerts.jsonl" \
  "$repo_root/target/release/repro" cluster --quick \
  --out "$alerts_out/cluster" --metrics-out "$alerts_out/cluster_metrics.json" > /dev/null)
python3 - "$alerts_out/cluster_metrics.json" <<'PY'
import json, sys
c = json.load(open(sys.argv[1]))["counters"]
sends = c.get("net.alert_sends", 0)
assert sends > 0, "alert forwarding must run when the alert plane is on"
assert sends == c.get("net.alert_delivered", 0) + c.get("net.alert_drops", 0), c
assert c.get("net.alert_drops", 0) > 0, "10% loss must drop some alert reports"
assert c.get("net.alerts_forwarded", 0) >= c.get("net.alert_delivered", 0), c
print(f"cluster alert forwarding OK ({sends} sends = "
      f"{c['net.alert_delivered']} delivered + {c['net.alert_drops']} dropped)")
PY

echo "CI OK"
