//! Experiments beyond the paper's plots, for the extensions it sketches:
//! the §2.5 fine-grained coordination ablation, the §2.5 redundancy cost,
//! and the §3.5 adversary-model comparison (future-work directions).

use crate::output::{f2, f3, Table};
use crate::scenario::{default_caps, NidsContext, Scale};
use nwdp_core::nids::{solve_nids_lp, NidsLpConfig};
use nwdp_core::nips::NipsInstance;
use nwdp_core::{AnalysisClass, ClassScope, NidsDeployment};
use nwdp_engine::{CoordContext, Engine, Placement};
use nwdp_hash::KeyedHasher;
use nwdp_online::{run_fpl, Adversary, FplConfig, Reactive, Shifting, StochasticUniform};
use nwdp_topo::{internet2, NodeId, PathDb};
use nwdp_traffic::{MatchRates, TrafficMatrix, VolumeModel};

const MB: f64 = 1024.0 * 1024.0;

/// §2.5 fine-grained coordination: per-node memory with and without
/// lightweight connection records, coordinated deployment, 21 modules.
pub fn fine_grained_ablation(scale: Scale) -> Table {
    let ctx = NidsContext::internet2();
    let dep = ctx.deployment(21);
    let (_a, manifest) = ctx.manifests(&dep);
    let trace = ctx.trace(scale.netwide_sessions().min(30_000), 777);
    let names: Vec<String> = dep.classes.iter().map(|c| c.name.clone()).collect();
    let h = KeyedHasher::with_key(0xF1FE);

    let run = |fine: bool| -> Vec<(u64, u64)> {
        nwdp_core::parallel::par_map_n(ctx.topo.num_nodes(), |j| {
            let node = NodeId(j);
            let coord = CoordContext::new(&dep, &manifest);
            let mut e = Engine::new(node, Placement::EventEngine, &names, Some(coord), h)
                .expect("standard analysis classes are registered");
            e.set_fine_grained(fine);
            for s in trace.onpath_sessions(&ctx.paths, node) {
                e.process_session(s);
            }
            let st = e.stats();
            (st.cpu_cycles, st.mem_peak)
        })
    };
    let base = run(false);
    let fine = run(true);

    let mut t = Table::new(
        "Extension (§2.5): fine-grained coordination — lightweight records for conn-event modules",
        &["node", "city", "coord mem (MB)", "fine-grained mem (MB)", "saving", "cpu saving"],
    );
    for j in 0..ctx.topo.num_nodes() {
        let (bc, bm) = base[j];
        let (fc, fm) = fine[j];
        t.row(vec![
            (j + 1).to_string(),
            ctx.topo.node(NodeId(j)).name.clone(),
            f2(bm as f64 / MB),
            f2(fm as f64 / MB),
            format!("{:.1}%", 100.0 * (1.0 - fm as f64 / bm as f64)),
            format!("{:.1}%", 100.0 * (1.0 - fc as f64 / bc as f64)),
        ]);
    }
    t
}

/// §2.5 redundancy: max load at r = 1 vs r = 2 (path-scoped classes).
pub fn redundancy_cost(_scale: Scale) -> Table {
    let ctx = NidsContext::internet2();
    let classes: Vec<AnalysisClass> = AnalysisClass::scaled_set(21)
        .expect("21 is within the paper's range")
        .into_iter()
        .filter(|c| c.scope == ClassScope::PerPath)
        .collect();
    let dep: NidsDeployment =
        nwdp_core::build_units(&ctx.topo, &ctx.paths, &ctx.tm, &ctx.vol, &classes);
    let mut t = Table::new(
        "Extension (§2.5): the load price of r-redundant coverage",
        &["redundancy r", "optimal max load (frac of capacity)", "vs r=1"],
    );
    let mut base = None;
    for r in [1.0f64, 2.0, 3.0] {
        let mut cfg = NidsLpConfig::homogeneous(dep.num_nodes, default_caps());
        cfg.redundancy = r;
        match solve_nids_lp(&dep, &cfg) {
            Ok(a) => {
                let b = *base.get_or_insert(a.max_load);
                t.row(vec![format!("{r}"), f3(a.max_load), format!("{:.2}x", a.max_load / b)]);
            }
            Err(e) => t.row(vec![format!("{r}"), format!("{e}"), "-".into()]),
        }
    }
    t
}

/// §3.5 future work: FPL against stochastic, shifting, and reactive
/// adversaries.
pub fn adversary_comparison(scale: Scale) -> Table {
    let topo = internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let n_rules = 15;
    let rates = MatchRates::zeros(n_rules, paths.all_pairs().count());
    let mut inst = NipsInstance::evaluation_setup(&topo, &paths, &tm, &vol, n_rules, 1.0, rates);
    inst.cam_cap = vec![f64::INFINITY; inst.num_nodes];
    let epochs = (scale.fig11_epochs() / 4).max(50);

    let mut advs: Vec<(&str, Box<dyn Adversary>)> = vec![
        ("stochastic", Box::new(StochasticUniform::new(n_rules, inst.paths.len(), 0.01, 7))),
        ("shifting", Box::new(Shifting::new(n_rules, inst.paths.len(), 0.01, 10, 3, 7))),
        ("reactive", Box::new(Reactive::new(n_rules, inst.paths.len(), 0.01, 7))),
    ];
    let mut t = Table::new(
        "Extension (§3.5): FPL vs adversary models",
        &["adversary", "epochs", "total FPL value", "best static value", "final norm. regret"],
    );
    for (name, adv) in advs.iter_mut() {
        let run =
            run_fpl(&inst, adv.as_mut(), &FplConfig { epochs, seed: 42, ..Default::default() })
                .expect("valid config");
        let total: f64 = run.fpl_value.iter().sum();
        let static_total = *run.static_prefix_value.last().unwrap();
        t.row(vec![
            name.to_string(),
            epochs.to_string(),
            format!("{total:.3e}"),
            format!("{static_total:.3e}"),
            format!("{:+.3}", run.normalized_regret.last().unwrap()),
        ]);
    }
    t
}
