//! Sampling-manifest serialization.
//!
//! The paper's §2.2 envisions "a centralized operations center
//! \[that\] periodically configures the NIDS responsibilities of the
//! different nodes". This module provides the wire artifact for that push:
//! a line-oriented text encoding of one node's manifest, parseable without
//! any dependencies. One line per (unit, segment):
//!
//! ```text
//! manifest node 3
//! range unit 17 class 2 key path 0 10 0.25 0.75
//! range unit 580 class 1 key ingress 3 0 1
//! ```

use super::manifest::{ManifestEntry, SamplingManifest};
use crate::units::UnitKey;
use nwdp_hash::RangeSet;
use nwdp_topo::NodeId;

/// Serialize one node's manifest.
pub fn node_manifest_to_text(manifest: &SamplingManifest, node: NodeId) -> String {
    let mut out = format!("manifest node {}\n", node.index());
    for e in manifest.node_entries(node) {
        let key = match e.key {
            UnitKey::Path(s, d) => format!("path {} {}", s.index(), d.index()),
            UnitKey::Ingress(n) => format!("ingress {}", n.index()),
            UnitKey::Egress(n) => format!("egress {}", n.index()),
        };
        for seg in e.ranges.segments() {
            out.push_str(&format!(
                "range unit {} class {} key {} {} {}\n",
                e.unit, e.class, key, seg.lo, seg.hi
            ));
        }
    }
    out
}

/// A parsed manifest line set for one node (the node-local view used by a
/// remote NIDS instance).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeManifest {
    pub node: NodeId,
    pub entries: Vec<ManifestEntry>,
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ManifestParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ManifestParseError {}

fn err(line: usize, message: impl Into<String>) -> ManifestParseError {
    ManifestParseError { line, message: message.into() }
}

/// Parse one node's manifest text back into entries (merging multiple
/// segments of the same unit into one [`RangeSet`]).
pub fn node_manifest_from_text(text: &str) -> Result<NodeManifest, ManifestParseError> {
    let mut node: Option<NodeId> = None;
    let mut entries: Vec<ManifestEntry> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tok: Vec<&str> = line.split_whitespace().collect();
        match tok.as_slice() {
            ["manifest", "node", n] => {
                let idx: usize = n.parse().map_err(|_| err(lineno, "bad node index"))?;
                node = Some(NodeId(idx));
            }
            ["range", "unit", unit, "class", class, "key", rest @ ..] => {
                let unit: usize = unit.parse().map_err(|_| err(lineno, "bad unit index"))?;
                let class: usize = class.parse().map_err(|_| err(lineno, "bad class index"))?;
                let (key, lo_s, hi_s) = match rest {
                    ["path", s, d, lo, hi] => (
                        UnitKey::Path(
                            NodeId(s.parse().map_err(|_| err(lineno, "bad path src"))?),
                            NodeId(d.parse().map_err(|_| err(lineno, "bad path dst"))?),
                        ),
                        lo,
                        hi,
                    ),
                    ["ingress", n, lo, hi] => (
                        UnitKey::Ingress(NodeId(
                            n.parse().map_err(|_| err(lineno, "bad ingress"))?,
                        )),
                        lo,
                        hi,
                    ),
                    ["egress", n, lo, hi] => (
                        UnitKey::Egress(NodeId(n.parse().map_err(|_| err(lineno, "bad egress"))?)),
                        lo,
                        hi,
                    ),
                    _ => return Err(err(lineno, "bad key clause")),
                };
                let lo: f64 = lo_s.parse().map_err(|_| err(lineno, "bad range lo"))?;
                let hi: f64 = hi_s.parse().map_err(|_| err(lineno, "bad range hi"))?;
                if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || hi < lo {
                    return Err(err(lineno, "range outside the unit interval"));
                }
                // Merge into an existing entry for the same unit if present.
                if let Some(e) = entries.iter_mut().find(|e| e.unit == unit) {
                    if e.class != class || e.key != key {
                        return Err(err(lineno, "conflicting unit metadata"));
                    }
                    e.ranges = e.ranges.clone().union(&RangeSet::interval(lo, hi));
                } else {
                    entries.push(ManifestEntry {
                        class,
                        unit,
                        key,
                        ranges: RangeSet::interval(lo, hi),
                    });
                }
            }
            _ => return Err(err(lineno, "unknown directive")),
        }
    }
    let node = node.ok_or_else(|| err(0, "missing 'manifest node' header"))?;
    Ok(NodeManifest { node, entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::AnalysisClass;
    use crate::nids::{generate_manifests, solve_nids_lp, NidsLpConfig, NodeCaps};
    use crate::units::build_units;
    use nwdp_topo::{internet2, PathDb};
    use nwdp_traffic::{TrafficMatrix, VolumeModel};

    #[test]
    fn round_trip_preserves_every_range() {
        let topo = internet2();
        let paths = PathDb::shortest_paths(&topo);
        let tm = TrafficMatrix::gravity(&topo);
        let vol = VolumeModel::internet2_baseline();
        let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
        let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let a = solve_nids_lp(&dep, &cfg).unwrap();
        let manifest = generate_manifests(&dep, &a.d);
        for node in topo.nodes() {
            let text = node_manifest_to_text(&manifest, node);
            let parsed = node_manifest_from_text(&text).unwrap();
            assert_eq!(parsed.node, node);
            assert_eq!(parsed.entries.len(), manifest.node_entries(node).len());
            for (p, o) in parsed.entries.iter().zip(manifest.node_entries(node)) {
                assert_eq!(p.unit, o.unit);
                assert_eq!(p.class, o.class);
                assert_eq!(p.key, o.key);
                assert!((p.ranges.measure() - o.ranges.measure()).abs() < 1e-12);
                for g in 0..33 {
                    let h = (g as f64 + 0.5) / 33.0;
                    assert_eq!(p.ranges.contains(h), o.ranges.contains(h));
                }
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(node_manifest_from_text("nonsense\n").is_err());
        assert!(node_manifest_from_text("manifest node x\n").is_err());
        assert!(node_manifest_from_text(
            "manifest node 0\nrange unit 1 class 0 key path 0 1 0.5 0.2\n"
        )
        .is_err());
        assert!(node_manifest_from_text("range unit 1 class 0 key ingress 0 0 1\n").is_err());
    }

    #[test]
    fn comments_allowed() {
        let m = node_manifest_from_text(
            "# pushed 2026-07-06\nmanifest node 2\n# unit below\nrange unit 4 class 1 key egress 2 0 1\n",
        )
        .unwrap();
        assert_eq!(m.node, NodeId(2));
        assert_eq!(m.entries.len(), 1);
        assert!(m.entries[0].ranges.contains(0.99));
    }
}
