//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, parameterized
//! benches, throughput annotation) with a straightforward wall-clock
//! sampler: per benchmark it warms up briefly, then collects
//! `sample_size` timed samples within `measurement_time` and reports
//! min / median / mean to stdout. No statistics beyond that — the point
//! is comparable numbers run-to-run on the same host, not criterion's
//! full analysis.

use std::time::{Duration, Instant};

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Measured per-iteration durations, appended by [`Bencher::iter`].
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly; the measured samples feed the report.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: one untimed call (also primes caches/allocations).
        std::hint::black_box(routine());
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// Throughput annotation (recorded in the report line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one parameterized benchmark instance.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(5),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group(name.to_string());
        g.bench_function("default", f);
        g.finish();
        self
    }
}

/// A named group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        self.report(&id.to_string(), &b.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.2} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.2} MiB/s", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!(
            "{}/{id}: min {:?}  median {:?}  mean {:?}  ({} samples){rate}",
            self.name,
            sorted[0],
            median,
            mean,
            sorted.len(),
        );
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
