/root/repo/target/debug/deps/online_fpl-d5c7bd9ba98a410c.d: crates/bench/benches/online_fpl.rs

/root/repo/target/debug/deps/online_fpl-d5c7bd9ba98a410c: crates/bench/benches/online_fpl.rs

crates/bench/benches/online_fpl.rs:
