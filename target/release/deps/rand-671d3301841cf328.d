/root/repo/target/release/deps/rand-671d3301841cf328.d: crates/rand/src/lib.rs crates/rand/src/rngs.rs

/root/repo/target/release/deps/librand-671d3301841cf328.rlib: crates/rand/src/lib.rs crates/rand/src/rngs.rs

/root/repo/target/release/deps/librand-671d3301841cf328.rmeta: crates/rand/src/lib.rs crates/rand/src/rngs.rs

crates/rand/src/lib.rs:
crates/rand/src/rngs.rs:
