//! Failure injection: the engine must stay correct and the
//! coordinated-equals-standalone equivalence must survive lossy capture
//! (drops, duplicates, reordering are end-to-end properties of the trace,
//! seen identically by every on-path node).

use nwdp_core::nids::{generate_manifests, solve_nids_lp, NidsLpConfig, NodeCaps};
use nwdp_core::{build_units, AnalysisClass};
use nwdp_engine::{CoordContext, Engine, Placement};
use nwdp_hash::KeyedHasher;
use nwdp_topo::{internet2, NodeId, PathDb};
use nwdp_traffic::{generate_trace, FaultInjector, TraceConfig, TrafficMatrix, VolumeModel};
use std::collections::BTreeSet;

#[test]
fn equivalence_survives_packet_loss_duplication_and_reordering() {
    let topo = internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let a = solve_nids_lp(&dep, &cfg).unwrap();
    let manifest = generate_manifests(&dep, &a.d);
    let names: Vec<String> = dep.classes.iter().map(|c| c.name.clone()).collect();
    let trace = generate_trace(&topo, &tm, &TraceConfig::new(2500, 404));
    let h = KeyedHasher::with_key(0xFA17);
    // smoltcp-style starting point: ~15% drop chance stresses every path.
    let faults = FaultInjector::new(0.15, 0.05, 0.10, 9);

    // Standalone reference over the faulted trace.
    let mut reference = Engine::new(NodeId(0), Placement::Unmodified, &names, None, h).unwrap();
    for s in &trace.sessions {
        reference.process_session_faulty(s, &faults);
    }
    let ref_alerts = reference.stats().alerts;

    // Coordinated network over the same faulted trace.
    let mut coord_alerts = BTreeSet::new();
    for j in 0..topo.num_nodes() {
        let node = NodeId(j);
        let coord = CoordContext::new(&dep, &manifest);
        let mut engine = Engine::new(node, Placement::EventEngine, &names, Some(coord), h).unwrap();
        for s in trace.onpath_sessions(&paths, node) {
            engine.process_session_faulty(s, &faults);
        }
        coord_alerts.extend(engine.stats().alerts);
    }
    assert!(!ref_alerts.is_empty(), "faulted trace still triggers detections");
    assert_eq!(coord_alerts, ref_alerts);
}

#[test]
fn engine_handles_pathological_streams() {
    // 100% duplication + heavy reordering: nothing panics, state stays
    // bounded (one record per connection).
    let topo = internet2();
    let tm = TrafficMatrix::gravity(&topo);
    let trace = generate_trace(&topo, &tm, &TraceConfig::new(500, 5));
    let names: Vec<String> = AnalysisClass::standard_set().iter().map(|c| c.name.clone()).collect();
    let mut engine =
        Engine::new(NodeId(0), Placement::Unmodified, &names, None, KeyedHasher::unkeyed())
            .unwrap();
    let faults = FaultInjector::new(0.0, 1.0, 0.5, 1);
    for s in &trace.sessions {
        engine.process_session_faulty(s, &faults);
    }
    let stats = engine.stats();
    assert!(stats.connections <= trace.sessions.len());
    assert_eq!(stats.packets as usize, 2 * trace.total_packets());
}

#[test]
fn buffer_reuse_faulty_path_matches_owned_allocation_path() {
    // `process_session_faulty` routes through the engine's reusable
    // buffers (`packets_into` + `apply_into`); every stat must be
    // identical to shaping each session into freshly allocated vectors
    // and feeding the packets through `process_packet` (the
    // pre-buffer-reuse behavior).
    let topo = internet2();
    let tm = TrafficMatrix::gravity(&topo);
    let trace = generate_trace(&topo, &tm, &TraceConfig::new(2000, 99));
    let names: Vec<String> = AnalysisClass::standard_set().iter().map(|c| c.name.clone()).collect();
    let h = KeyedHasher::with_key(7);
    let faults = FaultInjector::new(0.2, 0.15, 0.1, 99);

    let mut reuse = Engine::new(NodeId(0), Placement::Unmodified, &names, None, h).unwrap();
    let mut owned = Engine::new(NodeId(0), Placement::Unmodified, &names, None, h).unwrap();
    for s in &trace.sessions {
        reuse.process_session_faulty(s, &faults);
        for pkt in &faults.apply(s, s.packets()) {
            owned.process_packet(pkt);
        }
    }
    let (a, b) = (reuse.stats(), owned.stats());
    assert_eq!(a.packets, b.packets);
    assert_eq!(a.connections, b.connections);
    assert_eq!(a.cpu_cycles, b.cpu_cycles);
    assert_eq!(a.mem_peak, b.mem_peak);
    assert_eq!(a.per_module_cpu, b.per_module_cpu);
    assert_eq!(a.alerts, b.alerts);
}

#[test]
fn loss_degrades_detection_gracefully_not_catastrophically() {
    // With 30% loss some per-session detections disappear (their packets
    // were dropped) but a healthy fraction must survive.
    let topo = internet2();
    let tm = TrafficMatrix::gravity(&topo);
    let trace = generate_trace(&topo, &tm, &TraceConfig::new(4000, 6));
    let names: Vec<String> = AnalysisClass::standard_set().iter().map(|c| c.name.clone()).collect();
    let run = |faults: FaultInjector| {
        let mut e =
            Engine::new(NodeId(0), Placement::Unmodified, &names, None, KeyedHasher::unkeyed())
                .unwrap();
        for s in &trace.sessions {
            e.process_session_faulty(s, &faults);
        }
        e.stats().alerts.len()
    };
    let clean = run(FaultInjector::none());
    let lossy = run(FaultInjector::new(0.3, 0.0, 0.0, 2));
    assert!(lossy < clean, "loss must cost some detections");
    assert!(
        lossy as f64 > 0.3 * clean as f64,
        "detection should degrade gracefully: {lossy} of {clean}"
    );
}
