//! Heartbeat-based failure detection and detection-window accounting.
//!
//! Two detection models live here, mirroring the repo's evolution:
//!
//! - [`HealthConfig::detect_at`] — the closed-form *grid prediction*:
//!   given a failure instant, where on the beat grid the controller
//!   *would* notice it. Pure arithmetic, used by the single-process
//!   resilience harness and as the reference the distributed cluster is
//!   measured against.
//! - [`HeartbeatMonitor`] — the *message-event* model: the controller
//!   feeds it actual heartbeat **arrivals** (which a lossy transport may
//!   have dropped, delayed, or reordered) and sweeps it on the beat grid;
//!   a node is declared failed after `miss_threshold` intervals with no
//!   arrival, plus a `grace` allowance for transport delay. This is what
//!   the `nwdp-engine::cluster` control plane runs.
//!
//! Between the failure instant and the detection instant the network is
//! **blind** on the failed node's hash ranges — no survivor knows to pick
//! them up. The timeline type turns (failure time, detection delay,
//! repair quality) into exact coverage-over-time accounting for the
//! `repro resilience` harness.
//!
//! All times are replay fractions, matching the scenario clock.

use nwdp_topo::NodeId;

/// Why a [`HealthConfig`] is unusable. Env/config-driven values reach the
/// controller through [`HealthConfig::validate`], so a typo'd knob is a
/// typed error to report, never a panic inside `detect_at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HealthConfigError {
    /// `heartbeat_interval` must be positive (and finite).
    NonPositiveInterval(f64),
    /// `miss_threshold == 0` would declare every node dead instantly.
    ZeroMissThreshold,
    /// `phase` must lie in `[0, 1)` — it is a fraction of one interval.
    PhaseOutOfRange(f64),
}

impl std::fmt::Display for HealthConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthConfigError::NonPositiveInterval(i) => {
                write!(f, "non-positive interval: heartbeat_interval {i} must be > 0 and finite")
            }
            HealthConfigError::ZeroMissThreshold => {
                write!(f, "miss_threshold == 0: at least one missed beat is needed to detect")
            }
            HealthConfigError::PhaseOutOfRange(p) => {
                write!(f, "phase {p} outside [0, 1): the beat grid offset is an interval fraction")
            }
        }
    }
}

impl std::error::Error for HealthConfigError {}

/// Heartbeat/health-check configuration. All times are replay fractions.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Spacing of heartbeats.
    pub heartbeat_interval: f64,
    /// Consecutive missed beats before the node is declared failed.
    pub miss_threshold: u32,
    /// Offset of the beat grid within `[0, 1)` of an interval (beats fire
    /// at `(k + phase) · heartbeat_interval`).
    pub phase: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig { heartbeat_interval: 0.02, miss_threshold: 2, phase: 0.0 }
    }
}

impl HealthConfig {
    /// Build a validated config; the typed error names the offending
    /// field, so env-driven values surface as diagnostics, not panics.
    pub fn validated(
        heartbeat_interval: f64,
        miss_threshold: u32,
        phase: f64,
    ) -> Result<Self, HealthConfigError> {
        let cfg = HealthConfig { heartbeat_interval, miss_threshold, phase };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Check the config without consuming it. [`detect_at`] and the
    /// monitor assume a validated config; controllers call this once at
    /// construction and propagate the error.
    ///
    /// [`detect_at`]: HealthConfig::detect_at
    pub fn validate(&self) -> Result<(), HealthConfigError> {
        if self.heartbeat_interval <= 0.0 || !self.heartbeat_interval.is_finite() {
            return Err(HealthConfigError::NonPositiveInterval(self.heartbeat_interval));
        }
        if self.miss_threshold == 0 {
            return Err(HealthConfigError::ZeroMissThreshold);
        }
        if !(0.0..1.0).contains(&self.phase) {
            return Err(HealthConfigError::PhaseOutOfRange(self.phase));
        }
        Ok(())
    }

    /// When is a failure at replay fraction `fail_at` detected? The first
    /// missed beat is the first grid point at or after the failure; the
    /// node is declared dead `miss_threshold - 1` beats later.
    ///
    /// Assumes a config that passed [`validate`](HealthConfig::validate);
    /// on an invalid one the arithmetic yields non-finite garbage rather
    /// than panicking (callers gate at construction).
    pub fn detect_at(&self, fail_at: f64) -> f64 {
        let i = self.heartbeat_interval;
        let first_missed = ((fail_at - self.phase * i) / i).ceil() * i + self.phase * i;
        first_missed + self.miss_threshold.saturating_sub(1) as f64 * i
    }

    /// Worst-case detection delay (failure lands just after a beat).
    pub fn max_detection_delay(&self) -> f64 {
        self.heartbeat_interval * self.miss_threshold as f64
    }
}

/// Controller-side failure detection from **actually observed** heartbeat
/// arrivals, replacing the closed-form grid of [`HealthConfig::detect_at`]
/// with message events: [`on_heartbeat`] records an arrival (whenever the
/// transport delivered it), [`sweep`] — called on the beat grid — declares
/// every node whose last arrival is older than
/// `miss_threshold · heartbeat_interval + grace` failed.
///
/// `grace` absorbs transport delay: a beat emitted on the grid may
/// legitimately arrive up to the link's maximum delay later, and without
/// the allowance every slow (not lost) beat would count as missed. A
/// heartbeat from a declared-failed node clears the declaration (the node
/// healed or was falsely suspected under loss) and reports the recovery
/// to the caller.
///
/// [`on_heartbeat`]: HeartbeatMonitor::on_heartbeat
/// [`sweep`]: HeartbeatMonitor::sweep
#[derive(Debug, Clone)]
pub struct HeartbeatMonitor {
    cfg: HealthConfig,
    grace: f64,
    /// Last observed arrival per node; primed with the start instant so a
    /// node that never beats at all is still detected `deadline` later.
    last_seen: Vec<f64>,
    /// Declared-failed instant, `None` while considered alive.
    failed: Vec<Option<f64>>,
}

impl HeartbeatMonitor {
    /// `grace` is the transport-delay allowance (≥ 0, typically the
    /// fault plan's maximum link delay); `start` primes every node's
    /// last-seen clock.
    pub fn new(
        cfg: HealthConfig,
        num_nodes: usize,
        grace: f64,
        start: f64,
    ) -> Result<Self, HealthConfigError> {
        cfg.validate()?;
        let grace = if grace.is_finite() { grace.max(0.0) } else { 0.0 };
        Ok(HeartbeatMonitor {
            cfg,
            grace,
            last_seen: vec![start; num_nodes],
            failed: vec![None; num_nodes],
        })
    }

    /// Silence longer than this declares a node failed.
    pub fn deadline(&self) -> f64 {
        self.cfg.miss_threshold as f64 * self.cfg.heartbeat_interval + self.grace
    }

    /// Record a heartbeat arrival. Returns `true` when the node was
    /// declared failed and is now considered recovered.
    pub fn on_heartbeat(&mut self, node: NodeId, now: f64) -> bool {
        let j = node.index();
        if self.last_seen[j] < now {
            self.last_seen[j] = now;
        }
        self.failed[j].take().is_some()
    }

    /// Grid sweep: declare every silent-past-deadline node failed and
    /// return the **newly** declared ones (ascending node id). Nodes
    /// already declared stay declared until a heartbeat arrives.
    pub fn sweep(&mut self, now: f64) -> Vec<NodeId> {
        let deadline = self.deadline();
        let mut newly = Vec::new();
        for j in 0..self.last_seen.len() {
            if self.failed[j].is_none() && now - self.last_seen[j] > deadline {
                self.failed[j] = Some(now);
                newly.push(NodeId(j));
            }
        }
        newly
    }

    /// Is the node currently declared failed?
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed[node.index()].is_some()
    }

    /// When the node was declared failed, if it currently is.
    pub fn failed_at(&self, node: NodeId) -> Option<f64> {
        self.failed[node.index()]
    }

    /// All currently declared-failed nodes, ascending.
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        (0..self.failed.len()).filter(|&j| self.failed[j].is_some()).map(NodeId).collect()
    }
}

/// Coverage-over-time accounting for one failure.
#[derive(Debug, Clone, Copy)]
pub struct FailureTimeline {
    /// Failure instant (replay fraction).
    pub fail_at: f64,
    /// Instant the health check fires.
    pub detected_at: f64,
    /// Instant the repaired manifest takes effect. The greedy fast path
    /// is pure range arithmetic, so this equals `detected_at` on the
    /// replay clock; its wall-clock cost is exported separately as
    /// `resilience.repair_ns`.
    pub repaired_at: f64,
    /// Traffic-weighted coverage gap while blind (= the failed node's
    /// manifest share of observed traffic).
    pub blind_gap: f64,
    /// Gap remaining after repair (unrecoverable units).
    pub residual_gap: f64,
}

impl FailureTimeline {
    /// Traffic-weighted coverage fraction at replay fraction `t`.
    pub fn coverage_at(&self, t: f64) -> f64 {
        if t < self.fail_at {
            1.0
        } else if t < self.repaired_at {
            1.0 - self.blind_gap
        } else {
            1.0 - self.residual_gap
        }
    }

    /// Integral of the coverage *deficit* `1 - coverage(t)` over
    /// `[0, horizon]`: the total traffic-fraction·time lost to the
    /// failure. The paper-style summary number for a resilience run.
    pub fn lost_coverage_time(&self, horizon: f64) -> f64 {
        let blind_end = self.repaired_at.min(horizon);
        let blind = (blind_end - self.fail_at).max(0.0) * self.blind_gap;
        let residual = (horizon - self.repaired_at).max(0.0) * self.residual_gap;
        blind + residual
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_grid_arithmetic() {
        let h = HealthConfig { heartbeat_interval: 0.1, miss_threshold: 3, phase: 0.0 };
        // Failure right on a beat: that beat is missed.
        assert!((h.detect_at(0.2) - 0.4).abs() < 1e-12);
        // Failure just after a beat waits almost a full extra interval.
        let d = h.detect_at(0.201);
        assert!((d - 0.5).abs() < 1e-12, "{d}");
        assert!((h.max_detection_delay() - 0.3).abs() < 1e-12);
        // Delay is always within (0, max].
        for k in 0..50 {
            let t = k as f64 * 0.013;
            let delay = h.detect_at(t) - t;
            assert!(delay > 0.0 - 1e-12 && delay <= h.max_detection_delay() + 1e-12, "{delay}");
        }
    }

    #[test]
    fn phase_shifts_the_grid() {
        let h = HealthConfig { heartbeat_interval: 0.1, miss_threshold: 1, phase: 0.5 };
        // Beats at 0.05, 0.15, ... — a failure at 0.1 is caught at 0.15.
        assert!((h.detect_at(0.1) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_non_positive_interval() {
        for bad in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            let err = HealthConfig::validated(bad, 2, 0.0).unwrap_err();
            assert!(
                matches!(err, HealthConfigError::NonPositiveInterval(_)),
                "interval {bad} gave {err:?}"
            );
        }
        // Display names the field so env diagnostics read well.
        let err = HealthConfig::validated(-1.0, 2, 0.0).unwrap_err();
        assert_eq!(err, HealthConfigError::NonPositiveInterval(-1.0));
        assert!(format!("{err}").contains("non-positive interval"));
    }

    #[test]
    fn validation_rejects_zero_miss_threshold() {
        let err = HealthConfig::validated(0.02, 0, 0.0).unwrap_err();
        assert_eq!(err, HealthConfigError::ZeroMissThreshold);
        assert!(format!("{err}").contains("miss_threshold == 0"));
    }

    #[test]
    fn validation_rejects_phase_outside_unit_interval() {
        for bad in [-0.1, 1.0, 2.5, f64::NAN] {
            let err = HealthConfig::validated(0.02, 2, bad).unwrap_err();
            assert!(
                matches!(err, HealthConfigError::PhaseOutOfRange(_)),
                "phase {bad} gave {err:?}"
            );
        }
        let err = HealthConfig::validated(0.02, 2, 1.5).unwrap_err();
        assert!(format!("{err}").contains("[0, 1)"));
        // The boundary cases that are fine.
        assert!(HealthConfig::validated(0.02, 2, 0.0).is_ok());
        assert!(HealthConfig::validated(0.02, 1, 0.999).is_ok());
        assert!(HealthConfig::default().validate().is_ok());
    }

    #[test]
    fn monitor_keeps_beating_nodes_alive() {
        let cfg = HealthConfig { heartbeat_interval: 0.1, miss_threshold: 2, phase: 0.0 };
        let mut m = HeartbeatMonitor::new(cfg, 3, 0.01, 0.0).unwrap();
        // Beats arrive slightly late (transport delay) but within grace.
        for k in 1..=8 {
            let t = k as f64 * 0.1;
            for j in 0..3 {
                m.on_heartbeat(NodeId(j), t + 0.005);
            }
            assert!(m.sweep(t).is_empty(), "false detection at sweep {t}");
        }
        assert!(m.failed_nodes().is_empty());
    }

    #[test]
    fn monitor_declares_silent_node_within_deadline() {
        let cfg = HealthConfig { heartbeat_interval: 0.1, miss_threshold: 2, phase: 0.0 };
        let mut m = HeartbeatMonitor::new(cfg, 2, 0.0, 0.0).unwrap();
        // Node 0 beats until 0.3 then goes silent; node 1 keeps beating.
        for k in 1..=3 {
            m.on_heartbeat(NodeId(0), k as f64 * 0.1);
        }
        let mut declared = None;
        for k in 1..=10 {
            let t = k as f64 * 0.1;
            m.on_heartbeat(NodeId(1), t);
            let newly = m.sweep(t);
            if !newly.is_empty() {
                assert_eq!(newly, vec![NodeId(0)]);
                declared = Some(t);
                break;
            }
        }
        // Silence starts at 0.3, deadline 0.2 → first strict excess at 0.6.
        let at = declared.expect("silent node never declared");
        assert!((at - 0.6).abs() < 1e-12, "{at}");
        assert!(m.is_failed(NodeId(0)));
        assert!((m.failed_at(NodeId(0)).unwrap() - at).abs() < 1e-12);
        assert!(!m.is_failed(NodeId(1)));
        assert_eq!(m.failed_nodes(), vec![NodeId(0)]);
        // Already-declared nodes are not re-reported on later sweeps.
        assert!(m.sweep(0.7).is_empty());
    }

    #[test]
    fn monitor_recovery_clears_the_declaration() {
        let cfg = HealthConfig { heartbeat_interval: 0.1, miss_threshold: 1, phase: 0.0 };
        let mut m = HeartbeatMonitor::new(cfg, 1, 0.0, 0.0).unwrap();
        assert_eq!(m.sweep(0.2), vec![NodeId(0)]);
        // The late heartbeat reports the recovery exactly once.
        assert!(m.on_heartbeat(NodeId(0), 0.25));
        assert!(!m.is_failed(NodeId(0)));
        assert!(!m.on_heartbeat(NodeId(0), 0.3));
        // An out-of-order (older) arrival never rewinds last-seen.
        m.on_heartbeat(NodeId(0), 0.1);
        assert!(m.sweep(0.35).is_empty());
    }

    #[test]
    fn monitor_rejects_invalid_config() {
        let cfg = HealthConfig { heartbeat_interval: 0.0, ..HealthConfig::default() };
        assert!(matches!(
            HeartbeatMonitor::new(cfg, 4, 0.0, 0.0),
            Err(HealthConfigError::NonPositiveInterval(_))
        ));
    }

    #[test]
    fn timeline_integrates_exactly() {
        let tl = FailureTimeline {
            fail_at: 0.2,
            detected_at: 0.3,
            repaired_at: 0.3,
            blind_gap: 0.4,
            residual_gap: 0.05,
        };
        assert_eq!(tl.coverage_at(0.0), 1.0);
        assert!((tl.coverage_at(0.25) - 0.6).abs() < 1e-12);
        assert!((tl.coverage_at(0.9) - 0.95).abs() < 1e-12);
        // 0.1 blind at gap 0.4 + 0.7 residual at 0.05.
        assert!((tl.lost_coverage_time(1.0) - (0.1 * 0.4 + 0.7 * 0.05)).abs() < 1e-12);
        // Horizon before repair clips the residual term.
        assert!((tl.lost_coverage_time(0.25) - 0.05 * 0.4).abs() < 1e-12);
    }
}
