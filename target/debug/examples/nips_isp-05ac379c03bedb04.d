/root/repo/target/debug/examples/nips_isp-05ac379c03bedb04.d: examples/nips_isp.rs

/root/repo/target/debug/examples/nips_isp-05ac379c03bedb04: examples/nips_isp.rs

examples/nips_isp.rs:
