//! Online NIPS adaptation against changing attack profiles (paper §3.5):
//! Follow-the-Perturbed-Leader vs the best static deployment in hindsight,
//! under three adversary models — stochastic, shifting, and reactive.
//!
//! Run with: `cargo run --release --example online_adaptation [epochs]`

use nwdp::online::{Adversary, Reactive, Shifting, StochasticUniform};
use nwdp::prelude::*;

fn main() {
    let epochs: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(120);

    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let n_rules = 15;
    let rates = MatchRates::zeros(n_rules, paths.all_pairs().count());
    let mut inst = NipsInstance::evaluation_setup(&topo, &paths, &tm, &vol, n_rules, 1.0, rates);
    inst.cam_cap = vec![f64::INFINITY; inst.num_nodes]; // §3.5: no TCAM constraints

    println!("online NIPS adaptation on {}: {n_rules} rules, {epochs} epochs\n", topo.name);

    let mut advs: Vec<(&str, Box<dyn Adversary>)> = vec![
        (
            "stochastic U[0,0.01]",
            Box::new(StochasticUniform::new(n_rules, inst.paths.len(), 0.01, 1)),
        ),
        (
            "shifting (rotates hot rules)",
            Box::new(Shifting::new(n_rules, inst.paths.len(), 0.01, 12, 3, 2)),
        ),
        ("reactive (targets gaps)", Box::new(Reactive::new(n_rules, inst.paths.len(), 0.01, 3))),
    ];

    for (name, adv) in advs.iter_mut() {
        let cfg = FplConfig { epochs, seed: 99, ..Default::default() };
        let run = run_fpl(&inst, adv.as_mut(), &cfg).expect("valid config");
        let total: f64 = run.fpl_value.iter().sum();
        let static_total = *run.static_prefix_value.last().unwrap();
        println!("adversary: {name}");
        println!("  ε = {:.3e}", run.epsilon);
        println!("  FPL total dropped-footprint: {total:.3e}");
        println!("  best static in hindsight:    {static_total:.3e}");
        let sampled: Vec<String> = run
            .normalized_regret
            .iter()
            .step_by((epochs / 8).max(1))
            .map(|r| format!("{r:+.3}"))
            .collect();
        println!("  normalized regret over time: {}", sampled.join(" → "));
        println!(
            "  final regret: {:+.3}  (paper Fig 11: ≤ 0.15 for the stochastic case)\n",
            run.normalized_regret.last().unwrap()
        );
    }
}
