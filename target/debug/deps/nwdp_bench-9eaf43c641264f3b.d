/root/repo/target/debug/deps/nwdp_bench-9eaf43c641264f3b.d: crates/bench/src/lib.rs crates/bench/src/extensions.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig5.rs crates/bench/src/fig678.rs crates/bench/src/opttime.rs crates/bench/src/output.rs crates/bench/src/scenario.rs crates/bench/src/selftest.rs

/root/repo/target/debug/deps/libnwdp_bench-9eaf43c641264f3b.rlib: crates/bench/src/lib.rs crates/bench/src/extensions.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig5.rs crates/bench/src/fig678.rs crates/bench/src/opttime.rs crates/bench/src/output.rs crates/bench/src/scenario.rs crates/bench/src/selftest.rs

/root/repo/target/debug/deps/libnwdp_bench-9eaf43c641264f3b.rmeta: crates/bench/src/lib.rs crates/bench/src/extensions.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig5.rs crates/bench/src/fig678.rs crates/bench/src/opttime.rs crates/bench/src/output.rs crates/bench/src/scenario.rs crates/bench/src/selftest.rs

crates/bench/src/lib.rs:
crates/bench/src/extensions.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig678.rs:
crates/bench/src/opttime.rs:
crates/bench/src/output.rs:
crates/bench/src/scenario.rs:
crates/bench/src/selftest.rs:
