/root/repo/target/release/deps/nwdp_online-4a461b6457faf820.d: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

/root/repo/target/release/deps/libnwdp_online-4a461b6457faf820.rlib: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

/root/repo/target/release/deps/libnwdp_online-4a461b6457faf820.rmeta: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

crates/online/src/lib.rs:
crates/online/src/adversary.rs:
crates/online/src/fpl.rs:
