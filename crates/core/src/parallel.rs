//! Scoped-thread fan-out for embarrassingly parallel workloads.
//!
//! The paper's hot loops — the independent randomized-rounding trials of
//! Fig 9 / §3.4, the per-node engine replays of the network-wide
//! evaluation (§2.4), the perturbed FPL solves (§3.5) and the benchmark
//! sweeps — all share nothing between items, so they fan out across OS
//! threads with [`std::thread::scope`] (no external dependencies).
//!
//! ## Determinism contract
//!
//! Every helper returns results **in input order**, regardless of thread
//! count or completion order, and callers derive any per-item RNG seed
//! from the item index — never from a shared sequential stream. Together
//! these make every parallel call site bit-identical to its serial
//! fallback, which the cross-crate `parallel_equivalence` test enforces.
//!
//! ## Thread-count selection
//!
//! The worker count is, in order of precedence:
//! 1. a scoped [`with_threads`] override (used by tests and callers that
//!    want explicit control),
//! 2. the `NWDP_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! `NWDP_THREADS=1` (or a single-core host) selects a true serial
//! fallback: the closure runs on the calling thread and no worker threads
//! are spawned.

use std::cell::Cell;

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads a fan-out on this thread would use.
pub fn num_threads() -> usize {
    if let Some(n) = OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    if let Some(v) = std::env::var_os("NWDP_THREADS") {
        if let Some(n) = v.to_str().and_then(|s| s.trim().parse::<usize>().ok()) {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `f` with the thread count pinned to `n` on the current thread
/// (nested fan-outs included). Restores the previous setting on exit,
/// including on panic. Primarily for tests asserting parallel == serial.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(n.max(1)))));
    f()
}

/// Map `f` over `0..n`, fanning out across scoped threads; results are in
/// index order. `f` receives the item index (callers derive per-item
/// seeds from it).
pub fn par_map_n<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    // Contiguous index blocks, one per worker; block w covers
    // [w*q + w.min(r), ...) with the first r blocks one longer.
    let (q, r) = (n / workers, n % workers);
    let f = &f;
    let mut blocks: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * q + w.min(r);
                let hi = lo + q + usize::from(w < r);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            blocks.push(h.join().expect("parallel worker panicked"));
        }
    });
    blocks.into_iter().flatten().collect()
}

/// Map `f` over the items of a slice in parallel; results are in input
/// order. `f` receives `(index, &item)`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_n(items.len(), |i| f(i, &items[i]))
}

/// Map `f` over contiguous chunks of `items` (at most `chunk` elements
/// each), fanning the chunks out across threads. Results are one `R` per
/// chunk, in chunk order; `f` receives `(chunk_start_index, chunk)`.
pub fn par_chunks<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = items.len().div_ceil(chunk);
    par_map_n(n_chunks, |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(items.len());
        f(lo, &items[lo..hi])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_n_preserves_order() {
        for threads in [1, 2, 3, 8, 64] {
            let got = with_threads(threads, || par_map_n(17, |i| i * i));
            assert_eq!(got, (0..17).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..101).map(|i| i * 3 + 1).collect();
        let serial: Vec<u64> = items.iter().enumerate().map(|(i, x)| x + i as u64).collect();
        let par = with_threads(4, || par_map(&items, |i, x| x + i as u64));
        assert_eq!(par, serial);
    }

    #[test]
    fn par_chunks_covers_every_item_once() {
        let items: Vec<usize> = (0..1000).collect();
        let sums = with_threads(3, || par_chunks(&items, 64, |_, c| c.iter().sum::<usize>()));
        assert_eq!(sums.len(), 1000usize.div_ceil(64));
        assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map_n(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_n(1, |i| i + 5), vec![5]);
        assert_eq!(par_map(&[] as &[u8], |_, &b| b), Vec::<u8>::new());
        assert_eq!(par_chunks(&[] as &[u8], 8, |_, c| c.len()), Vec::<usize>::new());
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let before = num_threads();
        with_threads(2, || assert_eq!(num_threads(), 2));
        assert_eq!(num_threads(), before);
    }

    #[test]
    fn override_floor_is_one() {
        with_threads(0, || assert_eq!(num_threads(), 1));
    }
}
