//! Network-wide NIPS deployment (paper §3): the NP-hard placement MILP,
//! its LP relaxation, randomized rounding with practical refinements, and
//! exact small-instance machinery.

pub mod hardness;
pub mod model;
pub mod relax;
pub mod round;

pub use hardness::{integrality_gap_instance, solve_exact, to_milp};
pub use model::{DistanceModel, NipsInstance, NipsPath, NipsRule, SolutionD};
pub use relax::{solve_relaxation, solve_relaxation_ctx, Layout, RelaxError, RelaxSolution};
pub use round::{
    round_best_of, round_once, round_once_ctx, solve_inner_flow, solve_inner_flow_weighted,
    solve_inner_simplex, solve_inner_simplex_ctx, InnerFlowOracle, NipsSolution, RoundError,
    RoundingOpts, Strategy,
};
