/root/repo/target/debug/deps/engine_micro-cb5f7f75e88efc76.d: crates/bench/benches/engine_micro.rs

/root/repo/target/debug/deps/engine_micro-cb5f7f75e88efc76: crates/bench/benches/engine_micro.rs

crates/bench/benches/engine_micro.rs:
