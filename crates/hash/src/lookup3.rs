//! Bob Jenkins' lookup3 hash ("Bob hash").
//!
//! The paper (§2.3) uses "the Bob hash function recommended by prior
//! studies" (Molina, Niccolini, Duffield, *A Comparative Experimental Study
//! of Hash Functions Applied to Packet Sampling*, ITC 2005) to map packet
//! header fields onto the unit interval. This module is a faithful port of
//! the public-domain `lookup3.c` (Bob Jenkins, May 2006): [`hashlittle`]
//! (byte-oriented, little-endian semantics) and [`hashword`]
//! (u32-word-oriented).
//!
//! The implementation is verified against the self-test vectors published in
//! `lookup3.c` (see the unit tests at the bottom of this file).

#[inline(always)]
fn rot(x: u32, k: u32) -> u32 {
    x.rotate_left(k)
}

/// The lookup3 `mix` macro: scrambles three 32-bit accumulators.
#[inline(always)]
fn mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 4);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 6);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 8);
    *b = b.wrapping_add(*a);
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 16);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 19);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 4);
    *b = b.wrapping_add(*a);
}

/// The lookup3 `final` macro: final mixing of three 32-bit accumulators.
#[inline(always)]
fn final_mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 14));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 11));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 25));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 16));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 4));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 14));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 24));
}

/// Hash an array of 32-bit words. Port of lookup3's `hashword()`.
///
/// `initval` is the previous hash or an arbitrary seed; different seeds
/// produce independent hash functions over the same key.
pub fn hashword(k: &[u32], initval: u32) -> u32 {
    let mut a: u32 = 0xdeadbeef_u32.wrapping_add((k.len() as u32) << 2).wrapping_add(initval);
    let mut b = a;
    let mut c = a;

    let mut k = k;
    while k.len() > 3 {
        a = a.wrapping_add(k[0]);
        b = b.wrapping_add(k[1]);
        c = c.wrapping_add(k[2]);
        mix(&mut a, &mut b, &mut c);
        k = &k[3..];
    }
    match k.len() {
        3 => {
            c = c.wrapping_add(k[2]);
            b = b.wrapping_add(k[1]);
            a = a.wrapping_add(k[0]);
            final_mix(&mut a, &mut b, &mut c);
        }
        2 => {
            b = b.wrapping_add(k[1]);
            a = a.wrapping_add(k[0]);
            final_mix(&mut a, &mut b, &mut c);
        }
        1 => {
            a = a.wrapping_add(k[0]);
            final_mix(&mut a, &mut b, &mut c);
        }
        _ => {}
    }
    c
}

/// Hash an array of 32-bit words, returning two 32-bit results
/// (`(c, b)` in lookup3 terms). Port of `hashword2()`.
///
/// Useful to derive a 64-bit value from one pass.
pub fn hashword2(k: &[u32], initval_c: u32, initval_b: u32) -> (u32, u32) {
    let mut a: u32 = 0xdeadbeef_u32.wrapping_add((k.len() as u32) << 2).wrapping_add(initval_c);
    let mut b = a;
    let mut c = a.wrapping_add(initval_b);

    let mut k = k;
    while k.len() > 3 {
        a = a.wrapping_add(k[0]);
        b = b.wrapping_add(k[1]);
        c = c.wrapping_add(k[2]);
        mix(&mut a, &mut b, &mut c);
        k = &k[3..];
    }
    match k.len() {
        3 => {
            c = c.wrapping_add(k[2]);
            b = b.wrapping_add(k[1]);
            a = a.wrapping_add(k[0]);
            final_mix(&mut a, &mut b, &mut c);
        }
        2 => {
            b = b.wrapping_add(k[1]);
            a = a.wrapping_add(k[0]);
            final_mix(&mut a, &mut b, &mut c);
        }
        1 => {
            a = a.wrapping_add(k[0]);
            final_mix(&mut a, &mut b, &mut c);
        }
        _ => {}
    }
    (c, b)
}

#[inline]
fn le_word(bytes: &[u8], at: usize, len: usize) -> u32 {
    // Load up to 4 bytes starting at `at`, little-endian, zero-padded.
    let mut w = 0u32;
    for i in 0..4 {
        if at + i < len {
            w |= (bytes[at + i] as u32) << (8 * i);
        }
    }
    w
}

/// Hash a byte slice. Port of lookup3's `hashlittle()` (the portable
/// byte-at-a-time variant; identical output to the aligned variants on
/// little-endian machines).
pub fn hashlittle(data: &[u8], initval: u32) -> u32 {
    let length = data.len();
    let mut a: u32 = 0xdeadbeef_u32.wrapping_add(length as u32).wrapping_add(initval);
    let mut b = a;
    let mut c = a;

    let mut off = 0usize;
    let mut len = length;
    while len > 12 {
        a = a.wrapping_add(le_word(data, off, length));
        b = b.wrapping_add(le_word(data, off + 4, length));
        c = c.wrapping_add(le_word(data, off + 8, length));
        mix(&mut a, &mut b, &mut c);
        off += 12;
        len -= 12;
    }

    if len == 0 {
        return c;
    }
    // Tail: len is 1..=12. The masked little-endian loads implement the
    // byte-wise switch of lookup3.c exactly (high bytes zero).
    let mut ta = 0u32;
    let mut tb = 0u32;
    let mut tc = 0u32;
    for i in 0..len {
        let byte = (data[off + i] as u32) << (8 * (i % 4));
        match i / 4 {
            0 => ta |= byte,
            1 => tb |= byte,
            _ => tc |= byte,
        }
    }
    a = a.wrapping_add(ta);
    b = b.wrapping_add(tb);
    c = c.wrapping_add(tc);
    final_mix(&mut a, &mut b, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    // Self-test vectors from the driver code / comments in lookup3.c.
    #[test]
    fn hashlittle_published_vectors() {
        let s = b"Four score and seven years ago";
        assert_eq!(hashlittle(s, 0), 0x17770551);
        assert_eq!(hashlittle(s, 1), 0xcd628161);
        assert_eq!(hashlittle(b"", 0), 0xdeadbeef);
        assert_eq!(hashlittle(b"", 0xdeadbeef), 0xbd5b7dde);
    }

    #[test]
    fn hashword_matches_hashlittle_on_word_aligned_input() {
        // lookup3 documents that hashword() and hashlittle() agree on
        // little-endian machines for word-multiples *is not* guaranteed
        // (length is counted in words vs bytes), so we only check
        // self-consistency and seed sensitivity here.
        let words = [0x01020304u32, 0x05060708, 0x090a0b0c];
        let h0 = hashword(&words, 0);
        let h1 = hashword(&words, 1);
        assert_ne!(h0, h1);
        assert_eq!(h0, hashword(&words, 0));
    }

    #[test]
    fn hashword2_first_result_matches_hashword() {
        let words = [7u32, 77, 777, 7777, 77777];
        let (c, b) = hashword2(&words, 42, 0);
        assert_eq!(c, hashword(&words, 42));
        assert_ne!(c, b);
    }

    #[test]
    fn incremental_chaining_changes_result() {
        let w = [1u32, 2, 3, 4];
        let h1 = hashword(&w, 0);
        let h2 = hashword(&w, h1);
        assert_ne!(h1, h2);
    }

    #[test]
    fn tail_lengths_all_distinct() {
        // Exercise every tail length 0..=12 plus a multi-block input.
        let data: Vec<u8> = (0u8..64).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=25 {
            assert!(seen.insert(hashlittle(&data[..len], 0)), "collision at len {len}");
        }
    }
}
