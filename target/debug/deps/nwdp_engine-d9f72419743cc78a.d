/root/repo/target/debug/deps/nwdp_engine-d9f72419743cc78a.d: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs

/root/repo/target/debug/deps/libnwdp_engine-d9f72419743cc78a.rlib: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs

/root/repo/target/debug/deps/libnwdp_engine-d9f72419743cc78a.rmeta: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs

crates/engine/src/lib.rs:
crates/engine/src/ac.rs:
crates/engine/src/conn.rs:
crates/engine/src/cost.rs:
crates/engine/src/engine.rs:
crates/engine/src/modules.rs:
crates/engine/src/netwide.rs:
