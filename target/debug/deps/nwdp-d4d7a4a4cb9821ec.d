/root/repo/target/debug/deps/nwdp-d4d7a4a4cb9821ec.d: src/lib.rs

/root/repo/target/debug/deps/nwdp-d4d7a4a4cb9821ec: src/lib.rs

src/lib.rs:
