//! Cross-crate integration tests through the public facade: the full NIDS
//! and NIPS pipelines end to end, exactly as a downstream user would drive
//! them.

use nwdp::prelude::*;

#[test]
fn nids_pipeline_end_to_end() {
    // Topology → routing → traffic model → units → LP → manifests →
    // engine runs → equivalence and load reduction. The load claim uses
    // the paper's 21-module configuration (Figs 7–8), where analysis work
    // clearly dominates base packet processing.
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::scaled_set(21).unwrap());

    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let assignment = solve_nids_lp(&dep, &cfg).unwrap();
    assert!(assignment.max_load > 0.0);
    let manifest = generate_manifests(&dep, &assignment.d);
    assert_eq!(manifest.verify_coverage(&dep, 64), (1, 1));

    // Enough volume for coordination's balancing to dominate its (small)
    // per-connection overhead at the hotspot.
    let trace = generate_trace(&topo, &tm, &TraceConfig::new(8000, 3));
    let h = KeyedHasher::with_key(77);
    let reference = run_standalone_reference(&dep, &trace, h).unwrap();
    let coord =
        run_coordinated(&dep, &manifest, &paths, &trace, Placement::EventEngine, h).unwrap();
    assert_eq!(coord.alerts, reference.alerts);

    // The coordinated max engine load must beat edge-only.
    let edge = run_edge_only(&dep, &trace, h).unwrap();
    assert!(coord.max_cpu() < edge.max_cpu());
}

#[test]
fn nips_pipeline_end_to_end() {
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let rates = MatchRates::uniform_001(8, paths.all_pairs().count(), 5);
    let inst = NipsInstance::evaluation_setup(&topo, &paths, &tm, &vol, 8, 0.25, rates);

    let relax = solve_relaxation(&inst, &RowGenOpts::default()).unwrap();
    let opts = RoundingOpts {
        strategy: Strategy::GreedyLpResolve,
        iterations: 4,
        seed: 9,
        ..Default::default()
    };
    let sol = round_best_of(&inst, &relax, &opts).unwrap();
    inst.check_feasible(&sol.e, &sol.d, 1e-6).unwrap();
    assert!(sol.objective > 0.5 * relax.objective, "rounding quality collapsed");
    assert!(sol.objective <= relax.objective * (1.0 + 1e-9), "OptLP must upper-bound");
}

#[test]
fn online_pipeline_end_to_end() {
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let rates = MatchRates::zeros(5, paths.all_pairs().count());
    let mut inst = NipsInstance::evaluation_setup(&topo, &paths, &tm, &vol, 5, 1.0, rates);
    inst.cam_cap = vec![f64::INFINITY; inst.num_nodes];

    let mut adv = StochasticUniform::new(5, inst.paths.len(), 0.01, 4);
    let run = run_fpl(&inst, &mut adv, &FplConfig { epochs: 25, seed: 8, ..Default::default() })
        .expect("valid config");
    assert_eq!(run.normalized_regret.len(), 25);
    assert!(run.normalized_regret.iter().all(|r| r.is_finite()));
    assert!(run.fpl_value.iter().sum::<f64>() > 0.0);
}

#[test]
fn heterogeneous_hardware_respected_end_to_end() {
    // A site with crippled capacity must receive proportionally less work.
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());

    let mut cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let weak = topo.find("KansasCity").unwrap();
    cfg.caps[weak.index()] = NodeCaps { cpu: 2e6, mem: 4e7 }; // 1% of the others
    let a = solve_nids_lp(&dep, &cfg).unwrap();
    // Load expressed as a capacity fraction is balanced, so absolute work
    // at the weak node must be tiny. Compare its absolute CPU-work share
    // against the strongest node's.
    let weak_work = a.cpu_load[weak.index()] * cfg.caps[weak.index()].cpu;
    let max_work =
        (0..dep.num_nodes).map(|j| a.cpu_load[j] * cfg.caps[j].cpu).fold(0.0f64, f64::max);
    assert!(weak_work < max_work / 10.0, "weak node got {weak_work} work vs max {max_work}");
}

#[test]
fn redundancy_survives_single_node_failure() {
    // §2.5 motivation: with r = 2, knocking out any single node leaves
    // every hash point still covered at least once.
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let classes: Vec<AnalysisClass> = AnalysisClass::standard_set()
        .into_iter()
        .filter(|c| c.scope == ClassScope::PerPath)
        .collect();
    let dep = build_units(&topo, &paths, &tm, &vol, &classes);
    let mut cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    cfg.redundancy = 2.0;
    let a = solve_nids_lp(&dep, &cfg).unwrap();
    let manifest = generate_manifests(&dep, &a.d);

    for dead in topo.nodes() {
        for (u, unit) in dep.units.iter().enumerate() {
            for g in 0..21 {
                let h = (g as f64 + 0.5) / 21.0;
                let survivors = unit
                    .nodes
                    .iter()
                    .filter(|&&n| n != dead && manifest.should_analyze(u, n, h))
                    .count();
                assert!(survivors >= 1, "unit {u} hash {h} uncovered after losing node {dead:?}");
            }
        }
    }
}
