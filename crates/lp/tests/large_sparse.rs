//! Scale stress for the sparse backend: deployment-LP-shaped instances
//! (few capacity rows, tens of thousands of bounded columns, mixed row
//! scales), KKT-certified. This shape once exposed a silent
//! feasibility-loss bug that only appeared beyond ~10k columns with
//! badly-scaled rows — keep it covered.

use nwdp_lp::simplex::{solve_warm, SolverOpts};
use nwdp_lp::{verify_kkt, Cmp, KktTol, Problem, Sense, Status};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn build(trial: u64, ncols: usize, nrows: usize) -> Problem {
    let mut rng = StdRng::seed_from_u64(trial);
    let mut p = Problem::new(Sense::Max);
    let mut rows: Vec<Vec<(nwdp_lp::VarId, f64)>> = vec![Vec::new(); nrows];
    for j in 0..ncols {
        let v = p.add_var(format!("x{j}"), 0.0, 1.0, rng.random_range(0.0..2000.0));
        let r1 = rng.random_range(0..nrows / 2);
        let r2 = nrows / 2 + rng.random_range(0..nrows / 2);
        // Mixed scales: volume-like coefficients vs unit coefficients.
        rows[r1].push((v, rng.random_range(1.0e3..1.0e5)));
        rows[r2].push((v, rng.random_range(0.5..2.0)));
    }
    for (i, terms) in rows.iter().enumerate() {
        let rhs = if i < nrows / 2 {
            rng.random_range(1.0e6..4.0e8)
        } else {
            rng.random_range(50.0..5000.0)
        };
        p.add_con(format!("cap{i}"), terms, Cmp::Le, rhs);
    }
    p
}

#[test]
fn sparse_backend_survives_mixed_scale_wide_lps() {
    let opts = SolverOpts { dense_row_limit: 0, ..Default::default() };
    for trial in 1..=2u64 {
        let p = build(trial, 18_000, 50);
        let (s, warm) = solve_warm(&p, &opts, None);
        assert_eq!(s.status, Status::Optimal, "trial {trial}");
        verify_kkt(&p, &s, KktTol::default()).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        assert!(warm.is_some());
    }
}
