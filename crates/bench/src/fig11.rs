//! Fig 11 — online adaptation: normalized regret over time for five
//! independent runs of FPL on the Internet2 setup (uniform match rates
//! revealed only at the end of each epoch; no TCAM constraints).

use crate::output::{f4, Table};
use crate::scenario::Scale;
use nwdp_core::nips::NipsInstance;
use nwdp_online::{run_fpl, FplConfig, StochasticUniform};
use nwdp_topo::{internet2, PathDb};
use nwdp_traffic::{MatchRates, TrafficMatrix, VolumeModel};

#[derive(Debug, Clone)]
pub struct Fig11Run {
    pub run: usize,
    /// Normalized regret sampled over the epochs.
    pub regret: Vec<f64>,
}

pub fn instance(n_rules: usize) -> NipsInstance {
    let t = internet2();
    let paths = PathDb::shortest_paths(&t);
    let tm = TrafficMatrix::gravity(&t);
    let vol = VolumeModel::internet2_baseline();
    let rates = MatchRates::zeros(n_rules, paths.all_pairs().count());
    let mut inst = NipsInstance::evaluation_setup(&t, &paths, &tm, &vol, n_rules, 1.0, rates);
    inst.cam_cap = vec![f64::INFINITY; inst.num_nodes]; // §3.5 drops TCAM
    inst
}

pub fn run(scale: Scale) -> Vec<Fig11Run> {
    let inst = instance(20);
    (0..scale.fig11_runs())
        .map(|r| {
            let mut adv =
                StochasticUniform::new(inst.rules.len(), inst.paths.len(), 0.01, 500 + r as u64);
            let cfg = FplConfig {
                epochs: scale.fig11_epochs(),
                seed: 900 + r as u64,
                ..Default::default()
            };
            let out = run_fpl(&inst, &mut adv, &cfg).expect("valid config");
            Fig11Run { run: r + 1, regret: out.normalized_regret }
        })
        .collect()
}

/// Sample each run's trajectory at ~20 points for the table/CSV.
pub fn table(runs: &[Fig11Run]) -> Table {
    let epochs = runs.first().map_or(0, |r| r.regret.len());
    let mut cols: Vec<String> = vec!["epoch".to_string()];
    cols.extend(runs.iter().map(|r| format!("run {}", r.run)));
    let mut t = Table::new(
        "Fig 11: normalized regret of FPL online adaptation over time",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let step = (epochs / 20).max(1);
    let mut e = step - 1;
    while e < epochs {
        let mut row = vec![(e + 1).to_string()];
        for r in runs {
            row.push(f4(r.regret[e]));
        }
        t.row(row);
        e += step;
    }
    t
}

/// Worst regret across runs at the final epoch (the paper: ≤ 15% of the
/// best static solution).
pub fn final_worst_regret(runs: &[Fig11Run]) -> f64 {
    runs.iter().filter_map(|r| r.regret.last()).fold(f64::NEG_INFINITY, |m, &x| m.max(x))
}
