//! The coordinated NIDS engine (paper §2.3, Figs 3–4).
//!
//! Emulates the two-stage Bro architecture: packets flow through basic
//! connection processing (event engine), protocol analyzers, and policy
//! scripts. Three configurations reproduce the paper's comparison:
//!
//! - [`Placement::Unmodified`] — stock Bro: no coordination state, every
//!   packet analyzed by every interested module;
//! - [`Placement::EventEngine`] — approach 2: coordination checks hoisted
//!   into the event engine where possible (analyzer instantiation time),
//!   falling back to policy checks for policy-only modules;
//! - [`Placement::PolicyEngine`] — approach 1: all checks delayed into the
//!   interpreted policy layer (cheap to build, expensive at runtime for
//!   per-packet modules — the Fig 5(a) HTTP/IRC/Login spikes).
//!
//! The engine also implements the §2.3 fast path: "we add a check in the
//! basic connection processing step to avoid creating session state for
//! traffic that falls outside the sampling manifest for this Bro
//! instance".

use crate::conn::ConnTable;
use crate::cost::{CostModel, Meter};
use crate::modules::{module_for_class, Alert, Analyzer, EngineError, Granularity, Stage};
use nwdp_core::nids::{generate_manifests, SamplingManifest};
use nwdp_core::{ClassScope, NidsDeployment, UnitKey};
use nwdp_hash::{FlowKeyKind, KeyedHasher};
use nwdp_topo::NodeId;
use nwdp_traffic::{node_of_ip, Packet, Session};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Where coordination checks are implemented (§2.3's two alternatives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Stock Bro: no coordination at all.
    Unmodified,
    /// Checks as early as possible (event engine when the module allows).
    EventEngine,
    /// All checks delayed to the policy engine.
    PolicyEngine,
}

/// Coordination context shared by all nodes of a deployment. The manifest
/// is held behind an [`Arc`] so the reload controller can mint a fresh
/// manifest mid-replay and hot-swap it into live engines
/// ([`Engine::set_manifest`]) without the engines borrowing storage that
/// outlives the run.
pub struct CoordContext<'a> {
    pub dep: &'a NidsDeployment,
    pub manifest: Arc<SamplingManifest>,
    /// `(class index, unit key)` → unit index.
    unit_of: HashMap<(usize, UnitKey), usize>,
}

impl<'a> CoordContext<'a> {
    /// Build a context from a borrowed manifest (cloned into shared
    /// ownership). Call sites that already hold an `Arc` — the reload
    /// runner swaps manifests per epoch — use
    /// [`CoordContext::with_shared`] to avoid the clone.
    pub fn new(dep: &'a NidsDeployment, manifest: &SamplingManifest) -> Self {
        Self::with_shared(dep, Arc::new(manifest.clone()))
    }

    /// Build a context around an already-shared manifest.
    pub fn with_shared(dep: &'a NidsDeployment, manifest: Arc<SamplingManifest>) -> Self {
        let mut unit_of = HashMap::with_capacity(dep.units.len());
        for (u, unit) in dep.units.iter().enumerate() {
            unit_of.insert((unit.class, unit.key), u);
        }
        CoordContext { dep, manifest, unit_of }
    }

    /// Resolve the unit a connection belongs to for a class.
    fn unit_for(&self, class: usize, src_node: NodeId, dst_node: NodeId) -> Option<usize> {
        let key = match self.dep.classes[class].scope {
            ClassScope::PerPath => UnitKey::Path(src_node, dst_node),
            ClassScope::PerIngress => UnitKey::Ingress(src_node),
            ClassScope::PerEgress => UnitKey::Egress(dst_node),
        };
        self.unit_of.get(&(class, key)).copied()
    }
}

/// A standalone single-instance coordination setup for microbenchmarks:
/// every unit's eligible set becomes `{node}` with a full-range
/// assignment — "the sampling manifests … specify that this standalone
/// node needs to process all the traffic" (§2.4).
pub fn standalone_coordination(
    dep: &NidsDeployment,
    node: NodeId,
) -> (NidsDeployment, SamplingManifest) {
    let mut solo = dep.clone();
    for unit in solo.units.iter_mut() {
        unit.nodes = vec![node];
    }
    let d: Vec<Vec<(NodeId, f64)>> = solo.units.iter().map(|_| vec![(node, 1.0)]).collect();
    let manifest = generate_manifests(&solo, &d);
    (solo, manifest)
}

/// Per-run statistics.
#[derive(Debug, Clone)]
pub struct RunStats {
    pub node: NodeId,
    /// Total CPU cycles (event engine + all modules + checks).
    pub cpu_cycles: u64,
    /// Peak resident memory (bytes): connection table + module state.
    pub mem_peak: u64,
    pub packets: u64,
    pub connections: usize,
    /// Packets dropped by the §2.3 fast path before any state was built.
    pub fastpath_skipped: u64,
    /// Hash-range membership tests against the sampling manifest.
    pub range_checks: u64,
    /// How many of those tests fell inside this node's assigned range.
    pub range_hits: u64,
    pub per_module_cpu: Vec<(String, u64)>,
    pub alerts: BTreeSet<Alert>,
}

impl RunStats {
    /// Fraction of manifest range checks that hit (0 when none ran).
    pub fn range_hit_rate(&self) -> f64 {
        if self.range_checks == 0 {
            0.0
        } else {
            self.range_hits as f64 / self.range_checks as f64
        }
    }
}

/// One NIDS instance at one network node.
pub struct Engine<'a> {
    pub node: NodeId,
    placement: Placement,
    costs: CostModel,
    hasher: KeyedHasher,
    coord: Option<CoordContext<'a>>,
    conns: ConnTable,
    modules: Vec<Box<dyn Analyzer>>,
    base_meter: Meter,
    module_meters: Vec<Meter>,
    packets: u64,
    fastpath_skipped: u64,
    range_checks: u64,
    range_hits: u64,
    /// §2.5 fine-grained coordination: connections whose interested
    /// modules all consume only connection-level events are tracked in
    /// lightweight records and skip per-packet analysis.
    fine_grained: bool,
    /// Reusable packet-synthesis buffer: `process_session` refills it in
    /// place instead of allocating a fresh `Vec<Packet>` per session.
    pkt_buf: Vec<Packet<'static>>,
    /// Reusable fault-shaping buffer for `process_session_faulty`.
    fault_buf: Vec<Packet<'static>>,
    /// Connections counted in shard engines merged into this one.
    absorbed_conns: usize,
    /// Highest session id fed to this engine; maintained only while the
    /// alert plane is on, and used to give merge-time re-detections in
    /// [`Engine::absorb_shard`] a deterministic replay-clock label
    /// (thread-local context would otherwise leak whatever the merging
    /// thread last processed — a thread-count-dependent timestamp).
    last_sid: u64,
}

impl<'a> Engine<'a> {
    /// Build an engine running the given classes. For coordinated
    /// placements pass the shared [`CoordContext`]; `None` with
    /// [`Placement::Unmodified`] is stock Bro (edge-only / baseline runs).
    ///
    /// Fails with [`EngineError::UnknownClass`] when a class name has no
    /// registered analyzer module (instead of aborting the process).
    pub fn new(
        node: NodeId,
        placement: Placement,
        class_names: &[String],
        coord: Option<CoordContext<'a>>,
        hasher: KeyedHasher,
    ) -> Result<Self, EngineError> {
        if placement == Placement::Unmodified {
            assert!(coord.is_none(), "unmodified Bro cannot consume manifests");
        } else {
            assert!(coord.is_some(), "coordinated placements need a manifest context");
        }
        let modules: Vec<Box<dyn Analyzer>> =
            class_names.iter().map(|n| module_for_class(n)).collect::<Result<_, _>>()?;
        let with_hashes = placement != Placement::Unmodified;
        let n_modules = modules.len();
        Ok(Engine {
            node,
            placement,
            costs: CostModel::default(),
            hasher,
            coord,
            conns: ConnTable::new(with_hashes, n_modules),
            module_meters: vec![Meter::new(); n_modules],
            modules,
            base_meter: Meter::new(),
            packets: 0,
            fastpath_skipped: 0,
            range_checks: 0,
            range_hits: 0,
            fine_grained: false,
            pkt_buf: Vec::new(),
            fault_buf: Vec::new(),
            absorbed_conns: 0,
            last_sid: 0,
        })
    }

    pub fn set_costs(&mut self, costs: CostModel) {
        self.costs = costs;
    }

    /// Swap the live sampling manifest mid-replay (coordinated placements
    /// only). This is how the resilience runner applies a repaired
    /// manifest once a failure is detected: connections whose module
    /// enablement was already decided keep their old decisions — the
    /// paper's drain semantics, where existing assignments persist until
    /// the connections expire — while new connections consult the
    /// repaired ranges. An engine running without coordination has no
    /// manifest to replace; that is reported as
    /// [`EngineError::NotCoordinated`] instead of panicking.
    pub fn set_manifest(&mut self, manifest: Arc<SamplingManifest>) -> Result<(), EngineError> {
        match self.coord.as_mut() {
            Some(coord) => {
                coord.manifest = manifest;
                Ok(())
            }
            None => Err(EngineError::NotCoordinated),
        }
    }

    /// Enable the §2.5 fine-grained coordination extension (effective
    /// under [`Placement::EventEngine`]): modules that only need
    /// connection-level events (Scan, SYNFlood) no longer force full
    /// per-packet connection tracking at their nodes.
    pub fn set_fine_grained(&mut self, on: bool) {
        self.fine_grained = on;
    }

    /// Feed one session's packets through the engine. Packets are
    /// synthesized into a reusable buffer — no per-session allocation.
    pub fn process_session(&mut self, session: &Session) {
        if nwdp_obs::alert_enabled() {
            nwdp_obs::set_alert_context(self.node.0 as u64, session.id);
            self.last_sid = self.last_sid.max(session.id);
        }
        let mut buf = std::mem::take(&mut self.pkt_buf);
        session.packets_into(&mut buf);
        for pkt in &buf {
            self.process_packet(pkt);
        }
        self.pkt_buf = buf;
    }

    /// Feed a session through a fault injector (drops / duplicates /
    /// reordering), as seen at a lossy capture point. Both the raw and the
    /// degraded packet sequences live in reusable buffers.
    pub fn process_session_faulty(
        &mut self,
        session: &Session,
        faults: &nwdp_traffic::FaultInjector,
    ) {
        if nwdp_obs::alert_enabled() {
            nwdp_obs::set_alert_context(self.node.0 as u64, session.id);
            self.last_sid = self.last_sid.max(session.id);
        }
        let mut raw = std::mem::take(&mut self.pkt_buf);
        let mut shaped = std::mem::take(&mut self.fault_buf);
        session.packets_into(&mut raw);
        faults.apply_into(session, &raw, &mut shaped);
        for pkt in &shaped {
            self.process_packet(pkt);
        }
        self.pkt_buf = raw;
        self.fault_buf = shaped;
    }

    /// Feed one session through the engine with the batched §2.3 fast
    /// path: when no module's manifest range covers the session and no
    /// connection state exists yet, the per-packet skip charges are
    /// committed in bulk from [`Session::packet_count`] without
    /// synthesizing a single packet. Bit-identical to
    /// [`Engine::process_session`] — every packet of a session
    /// canonicalizes to the session's tuple, so the per-packet fast-path
    /// outcome is the same for all of them.
    pub fn process_session_fast(&mut self, session: &Session) {
        if self.try_skip_session(session) {
            return;
        }
        self.process_session(session);
    }

    /// The batched membership check behind
    /// [`Engine::process_session_fast`]. Returns `true` when the whole
    /// session was skipped (bulk charges committed); `false` leaves the
    /// engine untouched — the trial scan uses only locals, so a session
    /// that turns out to be covered is processed normally with no
    /// double-charging (its first packet re-runs the fast path itself).
    fn try_skip_session(&mut self, session: &Session) -> bool {
        let tuple = session.tuple;
        let Some(coord) = self.coord.as_ref().filter(|_| self.conns.find(&tuple).is_none()) else {
            return false;
        };
        let (src_node, dst_node) = (node_of_ip(tuple.src_ip), node_of_ip(tuple.dst_ip));
        let mut hash_cache: [Option<f64>; 4] = [None; 4];
        let mut hashed = 0u64;
        let mut checks = 0u64;
        for m in 0..self.modules.len() {
            if let Some(unit) = coord.unit_for(m, src_node, dst_node) {
                let kind = self.modules[m].key_kind();
                let slot = kind_slot(kind);
                let h = *hash_cache[slot].get_or_insert_with(|| {
                    hashed += 1;
                    self.hasher.unit_hash(&tuple, kind)
                });
                checks += 1;
                if coord.manifest.should_analyze(unit, self.node, h) {
                    return false; // some module wants it: process normally
                }
            }
        }
        // Every packet of the session takes the skip path; commit its
        // per-packet charges in bulk.
        let np = session.packet_count() as u64;
        self.packets += np;
        self.fastpath_skipped += np;
        self.range_checks += np * checks;
        self.base_meter.cpu(
            np * (self.costs.pkt_base
                + self.costs.evt_check * checks
                + self.costs.hash_compute * hashed),
        );
        true
    }

    /// The per-packet pipeline (paper Fig 3 embedded in the Bro stages).
    pub fn process_packet(&mut self, pkt: &Packet<'_>) {
        self.packets += 1;
        self.base_meter.cpu(self.costs.pkt_base);

        let tuple = canonical_tuple(pkt);
        let (src_node, dst_node) = (node_of_ip(tuple.src_ip), node_of_ip(tuple.dst_ip));

        // --- §2.3 fast path: for traffic with no existing state, skip
        // connection creation when no module's manifest range covers it.
        if let Some(coord) = self.coord.as_ref().filter(|_| self.conns.find(&tuple).is_none()) {
            // Each needed hash kind is computed once per packet.
            let mut hash_cache: [Option<f64>; 4] = [None; 4];
            let mut hashed = 0u64;
            let mut any = false;
            for m in 0..self.modules.len() {
                let class = m; // modules are built 1:1 from the class list
                if let Some(unit) = coord.unit_for(class, src_node, dst_node) {
                    let kind = self.modules[m].key_kind();
                    let slot = kind_slot(kind);
                    let h = *hash_cache[slot].get_or_insert_with(|| {
                        hashed += 1;
                        self.hasher.unit_hash(&tuple, kind)
                    });
                    self.base_meter.cpu(self.costs.evt_check);
                    self.range_checks += 1;
                    if coord.manifest.should_analyze(unit, self.node, h) {
                        self.range_hits += 1;
                        any = true;
                        break;
                    }
                }
            }
            self.base_meter.cpu(self.costs.hash_compute * hashed);
            if !any {
                self.fastpath_skipped += 1;
                return; // transit fast path: no state, no analysis
            }
        }

        // --- Basic connection processing. ---
        let (idx, is_new) =
            self.conns.upsert(&tuple, &self.hasher, &self.costs, &mut self.base_meter);
        {
            let rec = self.conns.get_mut(idx);
            rec.pkts += 1;
            rec.bytes += pkt.size as u64;
            rec.saw_syn |= pkt.syn;
            rec.saw_fin |= pkt.fin;
        }

        // Event-engine checks: decide module enablement once per
        // connection, at analyzer-instantiation time. This covers all
        // modules under approach 2, and the event-only modules (e.g. the
        // Signature engine) under *both* approaches.
        if let Some(coord) = self.coord.as_ref().filter(|_| is_new) {
            let rec = self.conns.get(idx);
            let (sn, dn) = (node_of_ip(rec.orig.src_ip), node_of_ip(rec.orig.dst_ip));
            let mut enabled = vec![false; self.modules.len()];
            let mut checks = 0u64;
            for (m, module) in self.modules.iter().enumerate() {
                if !self.decided_in_event_engine(module.stage()) {
                    enabled[m] = true; // the policy layer decides later
                    continue;
                }
                checks += 1;
                enabled[m] = match coord.unit_for(m, sn, dn) {
                    Some(unit) => {
                        let h = rec.hashes.get(module.key_kind());
                        self.range_checks += 1;
                        let hit = coord.manifest.should_analyze(unit, self.node, h);
                        self.range_hits += hit as u64;
                        hit
                    }
                    None => false,
                };
            }
            self.base_meter.cpu(self.costs.evt_check * checks);
            // §2.5 fine-grained extension: if every module interested in
            // this connection consumes only connection-level events, track
            // it in a lightweight record.
            if self.fine_grained && self.placement == Placement::EventEngine {
                let rec = self.conns.get(idx);
                let mut any_interested = false;
                let mut needs_full = false;
                for (m, module) in self.modules.iter().enumerate() {
                    if !module.wants(rec) {
                        continue;
                    }
                    let interested = if self.decided_in_event_engine(module.stage()) {
                        enabled[m]
                    } else {
                        // Policy-side decision is per-connection too;
                        // resolve it now from the record's hashes.
                        match coord.unit_for(m, sn, dn) {
                            Some(unit) => {
                                let h = rec.hashes.get(module.key_kind());
                                self.range_checks += 1;
                                let hit = coord.manifest.should_analyze(unit, self.node, h);
                                self.range_hits += hit as u64;
                                hit
                            }
                            None => false,
                        }
                    };
                    if interested {
                        any_interested = true;
                        if module.needs_all_packets() {
                            needs_full = true;
                            break;
                        }
                    }
                }
                if any_interested && !needs_full {
                    self.conns.make_light(idx, &self.costs, &mut self.base_meter);
                }
            }
            self.conns.get_mut(idx).enabled = enabled;
        }

        // Lightweight connections skip mid-stream per-packet analysis
        // entirely (their modules only consume connection-level events).
        if self.conns.get(idx).light && !is_new && !pkt.fin && (!pkt.syn || pkt.ack) {
            return;
        }

        // --- Per-module analysis (Fig 3 loop). ---
        for m in 0..self.modules.len() {
            let rec = self.conns.get(idx);
            if !self.modules[m].wants(rec) {
                continue;
            }
            let event_decided = self.decided_in_event_engine(self.modules[m].stage());
            let run = match (&self.coord, event_decided) {
                (None, _) => true,
                (Some(_), true) => rec.enabled[m],
                (Some(coord), false) => {
                    // Interpreted policy-layer check (Fig 3 line 5 as a
                    // policy predicate), charged per delivered event:
                    // every packet for per-packet modules, setup/teardown
                    // events for connection-level modules.
                    let (sn, dn) = (node_of_ip(rec.orig.src_ip), node_of_ip(rec.orig.dst_ip));
                    match coord.unit_for(m, sn, dn) {
                        None => false,
                        Some(unit) => {
                            let charge = match self.modules[m].granularity() {
                                Granularity::PerPacket => self.costs.policy_check_pkt,
                                Granularity::PerConnection if rec.pkts <= 1 || pkt.fin => {
                                    self.costs.policy_check_conn
                                }
                                Granularity::PerConnection => 0,
                            };
                            self.module_meters[m].cpu(charge);
                            let h = rec.hashes.get(self.modules[m].key_kind());
                            self.range_checks += 1;
                            let hit = coord.manifest.should_analyze(unit, self.node, h);
                            self.range_hits += hit as u64;
                            hit
                        }
                    }
                }
            };
            if run {
                let rec = self.conns.get(idx);
                self.modules[m].on_packet(
                    pkt,
                    rec,
                    is_new,
                    &self.costs,
                    &mut self.module_meters[m],
                );
            }
        }
    }

    /// Is this module's coordination check resolved at analyzer
    /// instantiation time in the event engine (as opposed to per-event in
    /// the interpreted policy layer)?
    fn decided_in_event_engine(&self, stage: Stage) -> bool {
        match stage {
            Stage::EventOnly => true,
            Stage::EventCapable => self.placement == Placement::EventEngine,
            Stage::PolicyOnly => false,
        }
    }

    /// Fold another shard's engine — same node, same module list, disjoint
    /// connections — into this one, so that `stats()` afterwards equals a
    /// single engine having processed the union of both shards' sessions.
    ///
    /// Sound because shards split sessions by the keyed `BiSession` hash
    /// (no two shards share a connection record) and all cross-connection
    /// module state is monotone (see [`Analyzer::absorb`]). Peak memory is
    /// additive only when meters never free, so the fine-grained extension
    /// must be off on both sides; per-host state both shards allocated is
    /// refunded via [`Meter::refund_alloc`].
    pub fn absorb_shard(&mut self, mut other: Engine<'a>) {
        assert!(
            !self.fine_grained && !other.fine_grained,
            "shard merge requires coarse connection records (fine_grained off)"
        );
        assert_eq!(self.node, other.node, "shards must belong to one node");
        assert_eq!(self.modules.len(), other.modules.len(), "shards must run the same modules");
        if nwdp_obs::alert_enabled() {
            // Merge re-detections (a threshold only the combined shard
            // counts cross) emit below via `Analyzer::absorb`. Pin their
            // context to this node and the last session either shard
            // processed — the moment the detection became knowable —
            // instead of whatever the merging thread's thread-local
            // context happens to hold.
            self.last_sid = self.last_sid.max(other.last_sid);
            nwdp_obs::set_alert_context(self.node.0 as u64, self.last_sid);
        }
        self.packets += other.packets;
        self.fastpath_skipped += other.fastpath_skipped;
        self.range_checks += other.range_checks;
        self.range_hits += other.range_hits;
        self.absorbed_conns += other.conns.len() + other.absorbed_conns;
        self.base_meter.cpu_cycles += other.base_meter.cpu_cycles;
        self.base_meter.mem_bytes += other.base_meter.mem_bytes;
        self.base_meter.mem_peak += other.base_meter.mem_peak;
        for m in 0..self.modules.len() {
            self.module_meters[m].cpu_cycles += other.module_meters[m].cpu_cycles;
            self.module_meters[m].mem_bytes += other.module_meters[m].mem_bytes;
            self.module_meters[m].mem_peak += other.module_meters[m].mem_peak;
            let state = other.modules[m].take_state();
            let refund = self.modules[m].absorb(state, other.modules[m].alerts());
            self.module_meters[m].refund_alloc(refund);
        }
    }

    /// Collected statistics.
    pub fn stats(&self) -> RunStats {
        let mut cpu = self.base_meter.cpu_cycles;
        let mut mem_peak = self.base_meter.mem_peak;
        let mut per_module_cpu = Vec::with_capacity(self.modules.len());
        let mut alerts = BTreeSet::new();
        for (m, module) in self.modules.iter().enumerate() {
            cpu += self.module_meters[m].cpu_cycles;
            mem_peak += self.module_meters[m].mem_peak;
            per_module_cpu
                .push((module.class_name().to_string(), self.module_meters[m].cpu_cycles));
            alerts.extend(module.alerts().iter().cloned());
        }
        RunStats {
            node: self.node,
            cpu_cycles: cpu,
            mem_peak,
            packets: self.packets,
            connections: self.conns.len() + self.absorbed_conns,
            fastpath_skipped: self.fastpath_skipped,
            range_checks: self.range_checks,
            range_hits: self.range_hits,
            per_module_cpu,
            alerts,
        }
    }
}

/// Recover the originator-oriented tuple from a packet (forward packets
/// already are; reverse packets get flipped back — the event engine knows
/// direction from SYN/first-packet state).
fn canonical_tuple(pkt: &Packet<'_>) -> nwdp_hash::FiveTuple {
    if pkt.forward {
        pkt.tuple
    } else {
        pkt.tuple.reversed()
    }
}

fn kind_slot(kind: FlowKeyKind) -> usize {
    match kind {
        FlowKeyKind::UniFlow => 0,
        FlowKeyKind::BiSession | FlowKeyKind::HostPair => 1,
        FlowKeyKind::Source => 2,
        FlowKeyKind::Destination => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwdp_core::{build_units, AnalysisClass};
    use nwdp_topo::{line, PathDb};
    use nwdp_traffic::{generate_trace, TraceConfig, TrafficMatrix, VolumeModel};

    fn small_setup() -> (nwdp_topo::Topology, NidsDeployment) {
        let topo = line(3);
        let paths = PathDb::shortest_paths(&topo);
        let tm = TrafficMatrix::uniform(&topo);
        let vol = VolumeModel::internet2_baseline();
        let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
        (topo, dep)
    }

    #[test]
    fn standalone_coordination_covers_everything_at_one_node() {
        let (_topo, dep) = small_setup();
        let (solo, manifest) = standalone_coordination(&dep, NodeId(1));
        for (u, unit) in solo.units.iter().enumerate() {
            assert_eq!(unit.nodes, vec![NodeId(1)]);
            for g in 0..11 {
                let h = (g as f64 + 0.5) / 11.0;
                assert!(manifest.should_analyze(u, NodeId(1), h));
            }
        }
    }

    #[test]
    fn fast_path_skips_state_for_unassigned_traffic() {
        // All units assigned to node 1; an engine at node 0 must create
        // no connection state at all.
        let (topo, dep) = small_setup();
        let (solo, manifest) = standalone_coordination(&dep, NodeId(1));
        let names: Vec<String> = solo.classes.iter().map(|c| c.name.clone()).collect();
        let tm = TrafficMatrix::uniform(&topo);
        let trace = generate_trace(&topo, &tm, &TraceConfig::new(200, 3));
        let coord = CoordContext::new(&solo, &manifest);
        let mut bystander = Engine::new(
            NodeId(0),
            Placement::EventEngine,
            &names,
            Some(coord),
            KeyedHasher::unkeyed(),
        )
        .unwrap();
        for s in &trace.sessions {
            bystander.process_session(s);
        }
        let st = bystander.stats();
        assert_eq!(st.connections, 0, "no responsibilities ⇒ no state");
        assert!(st.alerts.is_empty());
        assert!(st.packets > 0);
        // The responsible node tracks everything instead.
        let coord = CoordContext::new(&solo, &manifest);
        let mut owner = Engine::new(
            NodeId(1),
            Placement::EventEngine,
            &names,
            Some(coord),
            KeyedHasher::unkeyed(),
        )
        .unwrap();
        for s in &trace.sessions {
            owner.process_session(s);
        }
        assert!(owner.stats().connections > 0);
    }

    #[test]
    #[should_panic]
    fn unmodified_engine_rejects_manifests() {
        let (_topo, dep) = small_setup();
        let (solo, manifest) = standalone_coordination(&dep, NodeId(0));
        let names = vec!["HTTP".to_string()];
        let coord = CoordContext::new(&solo, &manifest);
        let _ = Engine::new(
            NodeId(0),
            Placement::Unmodified,
            &names,
            Some(coord),
            KeyedHasher::unkeyed(),
        );
    }

    #[test]
    #[should_panic]
    fn coordinated_engine_requires_manifests() {
        let names = vec!["HTTP".to_string()];
        let _ =
            Engine::new(NodeId(0), Placement::EventEngine, &names, None, KeyedHasher::unkeyed());
    }

    #[test]
    fn set_manifest_on_edge_only_engine_is_an_error_not_a_panic() {
        let (_topo, dep) = small_setup();
        let (_solo, manifest) = standalone_coordination(&dep, NodeId(0));
        let names = vec!["HTTP".to_string()];
        let mut edge =
            Engine::new(NodeId(0), Placement::Unmodified, &names, None, KeyedHasher::unkeyed())
                .unwrap();
        assert_eq!(edge.set_manifest(Arc::new(manifest)), Err(EngineError::NotCoordinated));
        // A coordinated engine accepts the swap.
        let (solo, manifest2) = standalone_coordination(&dep, NodeId(1));
        let names: Vec<String> = solo.classes.iter().map(|c| c.name.clone()).collect();
        let coord = CoordContext::new(&solo, &manifest2);
        let mut owner = Engine::new(
            NodeId(1),
            Placement::EventEngine,
            &names,
            Some(coord),
            KeyedHasher::unkeyed(),
        )
        .unwrap();
        assert_eq!(owner.set_manifest(Arc::new(manifest2)), Ok(()));
    }

    #[test]
    fn stats_attribute_per_module_cpu() {
        let (topo, dep) = small_setup();
        let names: Vec<String> = dep.classes.iter().map(|c| c.name.clone()).collect();
        let tm = TrafficMatrix::uniform(&topo);
        let trace = generate_trace(&topo, &tm, &TraceConfig::new(300, 9));
        let mut e =
            Engine::new(NodeId(0), Placement::Unmodified, &names, None, KeyedHasher::unkeyed())
                .unwrap();
        for s in &trace.sessions {
            e.process_session(s);
        }
        let st = e.stats();
        assert_eq!(st.per_module_cpu.len(), 9);
        // Signature (scans every payload byte) must be among the most
        // expensive modules.
        let sig = st.per_module_cpu.iter().find(|(n, _)| n == "Signature").unwrap().1;
        let median = {
            let mut v: Vec<u64> = st.per_module_cpu.iter().map(|(_, c)| *c).collect();
            v.sort();
            v[v.len() / 2]
        };
        assert!(sig >= median, "signature {sig} vs median {median}");
    }
}
