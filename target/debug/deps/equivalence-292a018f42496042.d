/root/repo/target/debug/deps/equivalence-292a018f42496042.d: crates/engine/tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-292a018f42496042: crates/engine/tests/equivalence.rs

crates/engine/tests/equivalence.rs:
