/root/repo/target/debug/deps/lp_solvers-8e5658eb8ab03585.d: crates/bench/benches/lp_solvers.rs

/root/repo/target/debug/deps/lp_solvers-8e5658eb8ab03585: crates/bench/benches/lp_solvers.rs

crates/bench/benches/lp_solvers.rs:
