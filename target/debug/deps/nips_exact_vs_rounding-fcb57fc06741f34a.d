/root/repo/target/debug/deps/nips_exact_vs_rounding-fcb57fc06741f34a.d: tests/nips_exact_vs_rounding.rs

/root/repo/target/debug/deps/nips_exact_vs_rounding-fcb57fc06741f34a: tests/nips_exact_vs_rounding.rs

tests/nips_exact_vs_rounding.rs:
