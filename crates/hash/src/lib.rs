//! # nwdp-hash — coordination hashing substrate
//!
//! Hash-based packet selection is the mechanism that turns a fractional
//! optimization solution into a concrete, coordination-free division of
//! labor: every node hashes the same packet header fields onto the unit
//! interval with the same function, and analyzes the packet only if the
//! hash lands in the node's assigned range. Because the ranges partition
//! `[0, 1)`, exactly one node (or exactly `r` nodes, with redundancy)
//! handles each item, with **no inter-node communication**.
//!
//! This crate provides:
//! - [`lookup3`]: a verified port of Bob Jenkins' lookup3 ("Bob hash"), the
//!   function recommended for packet sampling by Molina et al. (ITC 2005)
//!   and used by the paper's Bro prototype;
//! - [`key`]: flow-key encodings for the aggregation levels the paper's
//!   analysis classes need (unidirectional flow, bidirectional session,
//!   per-source, per-destination, host pair);
//! - [`keyed`]: a keyed hasher (§3.2: private keys defeat adversarial
//!   evasion of the sampling checks);
//! - [`range`]: unit-interval range sets, including the wraparound ranges
//!   produced by the redundancy-`r` extension (§2.5).

pub mod key;
pub mod keyed;
pub mod lookup3;
pub mod range;

pub use key::{FiveTuple, FlowKeyKind};
pub use keyed::KeyedHasher;
pub use range::{unit, RangeSet, Segment};
