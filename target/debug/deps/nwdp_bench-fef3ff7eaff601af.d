/root/repo/target/debug/deps/nwdp_bench-fef3ff7eaff601af.d: crates/bench/src/lib.rs crates/bench/src/extensions.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig5.rs crates/bench/src/fig678.rs crates/bench/src/opttime.rs crates/bench/src/output.rs crates/bench/src/scenario.rs

/root/repo/target/debug/deps/libnwdp_bench-fef3ff7eaff601af.rlib: crates/bench/src/lib.rs crates/bench/src/extensions.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig5.rs crates/bench/src/fig678.rs crates/bench/src/opttime.rs crates/bench/src/output.rs crates/bench/src/scenario.rs

/root/repo/target/debug/deps/libnwdp_bench-fef3ff7eaff601af.rmeta: crates/bench/src/lib.rs crates/bench/src/extensions.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig5.rs crates/bench/src/fig678.rs crates/bench/src/opttime.rs crates/bench/src/output.rs crates/bench/src/scenario.rs

crates/bench/src/lib.rs:
crates/bench/src/extensions.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig678.rs:
crates/bench/src/opttime.rs:
crates/bench/src/output.rs:
crates/bench/src/scenario.rs:
