/root/repo/target/release/examples/whatif_provisioning-870d675e97233572.d: examples/whatif_provisioning.rs

/root/repo/target/release/examples/whatif_provisioning-870d675e97233572: examples/whatif_provisioning.rs

examples/whatif_provisioning.rs:
