/root/repo/target/debug/deps/robustness-61f38b76f1c78093.d: crates/engine/tests/robustness.rs

/root/repo/target/debug/deps/robustness-61f38b76f1c78093: crates/engine/tests/robustness.rs

crates/engine/tests/robustness.rs:
