/root/repo/target/debug/deps/nwdp_online-f959c0e5550670ab.d: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp_online-f959c0e5550670ab.rmeta: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs Cargo.toml

crates/online/src/lib.rs:
crates/online/src/adversary.rs:
crates/online/src/fpl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
