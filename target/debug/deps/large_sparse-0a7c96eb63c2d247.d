/root/repo/target/debug/deps/large_sparse-0a7c96eb63c2d247.d: crates/lp/tests/large_sparse.rs

/root/repo/target/debug/deps/large_sparse-0a7c96eb63c2d247: crates/lp/tests/large_sparse.rs

crates/lp/tests/large_sparse.rs:
