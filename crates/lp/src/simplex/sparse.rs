//! Sparse product-form-of-the-inverse (PFI) basis backend.
//!
//! The basis inverse is represented as `B⁻¹ = E'_j · … · E'_1 · Pᵀ · E_k · … · E_1`:
//! a refactorization eta file `E_*` with a row permutation `P` (pivot rows
//! are chosen for numerical stability, so positions and rows need not
//! align), followed by update etas `E'_*` appended at each pivot.
//!
//! Each refactorization eta has a distinct pivot row, so applying the file
//! to a sparse vector can skip irrelevant etas entirely: an eta fires only
//! if the vector is nonzero at its pivot row *at its turn*, and the only
//! candidates are etas seeded by the vector's support or by earlier
//! firings. FTRAN therefore walks a min-heap of candidate eta indices
//! (Gilbert–Peierls-style topological order) at cost `O(fill · log fill)`
//! instead of scanning the whole file — the difference between hours and
//! seconds on the 40k-row deployment LPs.

use super::{BasisBackend, SingularBasis};

/// One eta transformation: identity except column `pivot_row`.
struct Eta {
    pivot_row: usize,
    inv_pivot: f64,
    /// Off-pivot entries `(row, -y_row / y_pivot)`.
    off: Vec<(usize, f64)>,
}

impl Eta {
    /// Build the eta that realizes replacing basis position `pivot_row` by
    /// a column whose FTRAN image is `y` (dense).
    fn from_dense(pivot_row: usize, y: &[f64]) -> Eta {
        let yr = y[pivot_row];
        let inv = 1.0 / yr;
        let mut off = Vec::new();
        for (i, &yi) in y.iter().enumerate() {
            if i != pivot_row && yi.abs() > 1e-13 {
                off.push((i, -yi * inv));
            }
        }
        Eta { pivot_row, inv_pivot: inv, off }
    }

    fn is_identity(&self) -> bool {
        self.off.is_empty() && (self.inv_pivot - 1.0).abs() < 1e-14
    }

    /// `v ← E v` (dense variant for the update file).
    #[inline]
    fn apply(&self, v: &mut [f64]) {
        let t = v[self.pivot_row];
        if t == 0.0 {
            return;
        }
        v[self.pivot_row] = t * self.inv_pivot;
        for &(i, e) in &self.off {
            v[i] += e * t;
        }
    }

    /// `v ← Eᵀ v`.
    #[inline]
    fn apply_transposed(&self, v: &mut [f64]) {
        let mut acc = self.inv_pivot * v[self.pivot_row];
        for &(i, e) in &self.off {
            acc += e * v[i];
        }
        v[self.pivot_row] = acc;
    }
}

const NONE: u32 = u32::MAX;

pub struct SparseFactors {
    m: usize,
    /// Etas from the last refactorization (applied first in FTRAN).
    etas_pre: Vec<Eta>,
    /// `eta_of_row[r]` = index into `etas_pre` whose pivot row is `r`
    /// (`NONE` if the row never needed a non-trivial eta).
    eta_of_row: Vec<u32>,
    /// `perm[pos]` = pivot row used for basis position `pos`; `None` when
    /// the permutation is the identity.
    perm: Option<Vec<usize>>,
    /// `inv_perm[row]` = basis position whose pivot row is `row`.
    inv_perm: Option<Vec<usize>>,
    /// Update etas appended since the last refactorization.
    etas_post: Vec<Eta>,
    /// Update-eta growth budget before hinting a refactor.
    update_budget: usize,
    /// Visited stamps per pre-eta for the heap traversal.
    stamp: std::cell::RefCell<(u32, Vec<u32>)>,
}

impl SparseFactors {
    pub fn new() -> Self {
        SparseFactors {
            m: 0,
            etas_pre: Vec::new(),
            eta_of_row: Vec::new(),
            perm: None,
            inv_perm: None,
            etas_post: Vec::new(),
            update_budget: 96,
            stamp: std::cell::RefCell::new((0, Vec::new())),
        }
    }

    /// Apply the pre-eta file to a sparse vector held in `(v, touched)`:
    /// only etas reachable from the support fire, in index order.
    fn apply_pre_sparse(&self, v: &mut [f64], touched: &mut Vec<usize>) {
        let mut stamp_ref = self.stamp.borrow_mut();
        let (counter, stamps) = &mut *stamp_ref;
        *counter = counter.wrapping_add(1);
        if *counter == 0 {
            stamps.fill(0);
            *counter = 1;
        }
        let cur = *counter;
        stamps.resize(self.etas_pre.len(), 0);

        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<u32>> =
            std::collections::BinaryHeap::new();
        for &r in touched.iter() {
            let e = self.eta_of_row[r];
            if e != NONE && stamps[e as usize] != cur {
                stamps[e as usize] = cur;
                heap.push(std::cmp::Reverse(e));
            }
        }
        while let Some(std::cmp::Reverse(idx)) = heap.pop() {
            let eta = &self.etas_pre[idx as usize];
            let t = v[eta.pivot_row];
            if t == 0.0 {
                continue; // cancelled before its turn
            }
            v[eta.pivot_row] = t * eta.inv_pivot;
            for &(i, e) in &eta.off {
                if v[i] == 0.0 {
                    touched.push(i);
                }
                v[i] += e * t;
                // A later eta pivoting on a newly nonzero row may now fire.
                let cand = self.eta_of_row[i];
                if cand != NONE && cand > idx && stamps[cand as usize] != cur {
                    stamps[cand as usize] = cur;
                    heap.push(std::cmp::Reverse(cand));
                }
            }
        }
    }
}

impl Default for SparseFactors {
    fn default() -> Self {
        Self::new()
    }
}

impl BasisBackend for SparseFactors {
    fn reset_identity(&mut self, m: usize) {
        self.m = m;
        self.etas_pre.clear();
        self.etas_post.clear();
        self.eta_of_row = vec![NONE; m];
        self.perm = None;
        self.inv_perm = None;
        self.stamp.borrow_mut().1.clear();
        // Amortize refactorization against problem size: refactor cost is
        // O(m log m + fill), so the budget grows with m. Sparse FTRAN
        // skips dead update etas in O(1), keeping long files cheap.
        self.update_budget = (m / 16).clamp(96, 2048);
    }

    fn hint_refactor(&self) -> bool {
        self.etas_post.len() > self.update_budget
    }

    fn refactor(&mut self, m: usize, basis_cols: &[&[(usize, f64)]]) -> Result<(), SingularBasis> {
        self.m = m;
        self.etas_pre.clear();
        self.etas_post.clear();
        self.eta_of_row = vec![NONE; m];
        self.perm = None;
        self.inv_perm = None;
        self.stamp.borrow_mut().1.clear();
        // Process columns by ascending nonzero count: unit/slack columns
        // yield identity or trivial etas and go first.
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&p| basis_cols[p].len());

        let mut assigned_row = vec![false; m];
        let mut pos_pivot_row = vec![usize::MAX; m];
        // Sparse workspace: dense value array plus a touched list, so a
        // column costs O(fill · log fill), not O(m · file).
        let mut y = vec![0.0f64; m];
        let mut touched: Vec<usize> = Vec::with_capacity(64);
        for &pos in &order {
            for &(r, a) in basis_cols[pos] {
                if y[r] == 0.0 {
                    touched.push(r);
                }
                y[r] += a;
            }
            self.apply_pre_sparse(&mut y, &mut touched);
            // Exact cancellations can re-push an index: dedupe before the
            // support is used to build the eta (duplicate off-entries
            // would corrupt the factorization).
            touched.sort_unstable();
            touched.dedup();
            // Pivot: largest magnitude among unassigned touched rows.
            let mut pr = usize::MAX;
            let mut best = 1e-10;
            for &i in &touched {
                if !assigned_row[i] && y[i].abs() > best {
                    best = y[i].abs();
                    pr = i;
                }
            }
            if pr == usize::MAX {
                // Reset workspace before bailing.
                for &i in &touched {
                    y[i] = 0.0;
                }
                return Err(SingularBasis);
            }
            assigned_row[pr] = true;
            pos_pivot_row[pos] = pr;
            // Build the eta from the touched entries only.
            let inv = 1.0 / y[pr];
            let mut off = Vec::new();
            for &i in &touched {
                if i != pr && y[i].abs() > 1e-13 {
                    off.push((i, -y[i] * inv));
                }
            }
            let eta = Eta { pivot_row: pr, inv_pivot: inv, off };
            if !eta.is_identity() {
                self.eta_of_row[pr] = self.etas_pre.len() as u32;
                self.etas_pre.push(eta);
            }
            for &i in &touched {
                y[i] = 0.0;
            }
            touched.clear();
        }
        if pos_pivot_row.iter().enumerate().any(|(pos, &pr)| pr != pos) {
            let mut inv = vec![0usize; m];
            for (pos, &pr) in pos_pivot_row.iter().enumerate() {
                inv[pr] = pos;
            }
            self.perm = Some(pos_pivot_row);
            self.inv_perm = Some(inv);
        }
        Ok(())
    }

    fn ftran(&self, col: &[(usize, f64)], out: &mut [f64]) {
        out[..self.m].fill(0.0);
        let mut touched: Vec<usize> = Vec::with_capacity(col.len() * 4);
        for &(r, a) in col {
            if out[r] == 0.0 {
                touched.push(r);
            }
            out[r] += a;
        }
        self.apply_pre_sparse(out, &mut touched);
        if let Some(perm) = &self.perm {
            // out'[pos] = out[perm[pos]]  (apply Pᵀ)
            let tmp: Vec<f64> = (0..self.m).map(|pos| out[perm[pos]]).collect();
            out[..self.m].copy_from_slice(&tmp);
        }
        for eta in &self.etas_post {
            eta.apply(out);
        }
    }

    fn btran(&self, c: &[f64], out: &mut [f64]) {
        out[..self.m].copy_from_slice(&c[..self.m]);
        for eta in self.etas_post.iter().rev() {
            eta.apply_transposed(out);
        }
        if let Some(perm) = &self.perm {
            // v ← P v : (P v)[perm[pos]] = v[pos]
            let mut tmp = vec![0.0f64; self.m];
            for (pos, &pr) in perm.iter().enumerate() {
                tmp[pr] = out[pos];
            }
            out[..self.m].copy_from_slice(&tmp);
        }
        for eta in self.etas_pre.iter().rev() {
            eta.apply_transposed(out);
        }
    }

    fn btran_unit(&self, r: usize, out: &mut [f64]) {
        // Same pass as `btran` but seeded with eᵣ in place — no
        // materialized unit vector, and the transposed eta file starts
        // from a single nonzero.
        out[..self.m].fill(0.0);
        out[r] = 1.0;
        for eta in self.etas_post.iter().rev() {
            eta.apply_transposed(out);
        }
        if let Some(perm) = &self.perm {
            let mut tmp = vec![0.0f64; self.m];
            for (pos, &pr) in perm.iter().enumerate() {
                tmp[pr] = out[pos];
            }
            out[..self.m].copy_from_slice(&tmp);
        }
        for eta in self.etas_pre.iter().rev() {
            eta.apply_transposed(out);
        }
    }

    fn update(&mut self, pivot_row: usize, y: &[f64]) {
        self.etas_post.push(Eta::from_dense(pivot_row, y));
    }

    fn ftran_sparse(&self, col: &[(usize, f64)], out: &mut [f64], touched: &mut Vec<usize>) {
        touched.clear();
        for &(r, a) in col {
            if out[r] == 0.0 {
                touched.push(r);
            }
            out[r] += a;
        }
        self.apply_pre_sparse(out, touched);
        if self.perm.is_some() {
            // Permute sparsely: move values from rows to positions.
            let inv = self.inv_perm.as_ref().expect("inv_perm built with perm");
            let vals: Vec<(usize, f64)> = touched
                .iter()
                .map(|&r| {
                    let v = out[r];
                    out[r] = 0.0;
                    (inv[r], v)
                })
                .collect();
            touched.clear();
            for (pos, v) in vals {
                if v != 0.0 {
                    if out[pos] == 0.0 {
                        touched.push(pos);
                    }
                    out[pos] += v;
                }
            }
        }
        for eta in &self.etas_post {
            let t = out[eta.pivot_row];
            if t == 0.0 {
                continue;
            }
            out[eta.pivot_row] = t * eta.inv_pivot;
            for &(i, e) in &eta.off {
                if out[i] == 0.0 {
                    touched.push(i);
                }
                out[i] += e * t;
            }
        }
        // Exact cancellations can re-push indices; callers (ratio test,
        // basic-value updates, eta construction) need a duplicate-free
        // support.
        touched.sort_unstable();
        touched.dedup();
    }

    fn update_sparse(&mut self, pivot_row: usize, y: &[f64], touched: &[usize]) {
        let yr = y[pivot_row];
        let inv = 1.0 / yr;
        let mut off = Vec::with_capacity(touched.len());
        for &i in touched {
            if i != pivot_row && y[i].abs() > 1e-13 {
                off.push((i, -y[i] * inv));
            }
        }
        self.etas_post.push(Eta { pivot_row, inv_pivot: inv, off });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::dense::DenseInverse;
    use crate::simplex::BasisBackend;

    /// Pseudo-random sparse basis columns (diagonally dominated so the
    /// matrix is comfortably nonsingular).
    fn random_basis(m: usize, seed: u64) -> Vec<Vec<(usize, f64)>> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..m)
            .map(|pos| {
                let mut col = vec![(pos, 2.0 + (next() % 7) as f64)];
                for _ in 0..(next() % 3) {
                    let r = (next() as usize) % m;
                    if r != pos {
                        col.push((r, ((next() % 9) as f64 - 4.0) / 3.0));
                    }
                }
                col.sort_by_key(|&(r, _)| r);
                col.dedup_by_key(|&mut (r, _)| r);
                col
            })
            .collect()
    }

    #[test]
    fn sparse_matches_dense_after_refactor() {
        for seed in 1..6u64 {
            let m = 17;
            let cols = random_basis(m, seed);
            let refs: Vec<&[(usize, f64)]> = cols.iter().map(|c| c.as_slice()).collect();
            let mut sp = SparseFactors::new();
            let mut de = DenseInverse::new();
            sp.refactor(m, &refs).unwrap();
            de.refactor(m, &refs).unwrap();

            let probe: Vec<(usize, f64)> = vec![(0, 1.5), (m / 2, -2.0), (m - 1, 0.75)];
            let mut ys = vec![0.0; m];
            let mut yd = vec![0.0; m];
            sp.ftran(&probe, &mut ys);
            de.ftran(&probe, &mut yd);
            for i in 0..m {
                assert!((ys[i] - yd[i]).abs() < 1e-9, "ftran mismatch at {i} (seed {seed})");
            }

            let c: Vec<f64> = (0..m).map(|i| (i as f64) - 3.0).collect();
            let mut ps = vec![0.0; m];
            let mut pd = vec![0.0; m];
            sp.btran(&c, &mut ps);
            de.btran(&c, &mut pd);
            for i in 0..m {
                assert!((ps[i] - pd[i]).abs() < 1e-9, "btran mismatch at {i} (seed {seed})");
            }
        }
    }

    #[test]
    fn sparse_matches_dense_after_updates() {
        let m = 11;
        let cols = random_basis(m, 42);
        let refs: Vec<&[(usize, f64)]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut sp = SparseFactors::new();
        let mut de = DenseInverse::new();
        sp.refactor(m, &refs).unwrap();
        de.refactor(m, &refs).unwrap();

        // Run a few synchronized pivots.
        for step in 0..5usize {
            let entering: Vec<(usize, f64)> =
                vec![(step % m, 1.0 + step as f64), ((step * 3 + 1) % m, -0.5)];
            let mut ys = vec![0.0; m];
            let mut yd = vec![0.0; m];
            sp.ftran(&entering, &mut ys);
            de.ftran(&entering, &mut yd);
            // Pick the same well-conditioned pivot row for both.
            let r = (0..m).max_by(|&a, &b| ys[a].abs().total_cmp(&ys[b].abs())).unwrap();
            sp.update(r, &ys);
            de.update(r, &yd);

            let probe: Vec<(usize, f64)> = vec![(1, 1.0), (m - 2, 2.0)];
            let mut a = vec![0.0; m];
            let mut b = vec![0.0; m];
            sp.ftran(&probe, &mut a);
            de.ftran(&probe, &mut b);
            for i in 0..m {
                assert!((a[i] - b[i]).abs() < 1e-8, "step {step} row {i}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn btran_unit_matches_dense_rows() {
        // Row extraction must agree with the dense backend across a
        // permuted refactorization plus a few update etas.
        let m = 13;
        let cols = random_basis(m, 7);
        let refs: Vec<&[(usize, f64)]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut sp = SparseFactors::new();
        let mut de = DenseInverse::new();
        sp.refactor(m, &refs).unwrap();
        de.refactor(m, &refs).unwrap();
        for step in 0..3usize {
            let entering: Vec<(usize, f64)> = vec![(step, 2.0), ((step + 5) % m, 0.5)];
            let mut ys = vec![0.0; m];
            let mut yd = vec![0.0; m];
            sp.ftran(&entering, &mut ys);
            de.ftran(&entering, &mut yd);
            let r = (0..m).max_by(|&a, &b| ys[a].abs().total_cmp(&ys[b].abs())).unwrap();
            sp.update(r, &ys);
            de.update(r, &yd);
        }
        for r in 0..m {
            let mut rs = vec![0.0; m];
            let mut rd = vec![0.0; m];
            sp.btran_unit(r, &mut rs);
            de.btran_unit(r, &mut rd);
            for i in 0..m {
                assert!((rs[i] - rd[i]).abs() < 1e-9, "row {r} col {i}: {rs:?} vs {rd:?}");
            }
        }
    }

    #[test]
    fn identity_roundtrip() {
        let mut sp = SparseFactors::new();
        sp.reset_identity(4);
        let mut y = vec![0.0; 4];
        sp.ftran(&[(2, 3.0)], &mut y);
        assert_eq!(y, vec![0.0, 0.0, 3.0, 0.0]);
        let mut p = vec![0.0; 4];
        sp.btran(&[1.0, 2.0, 3.0, 4.0], &mut p);
        assert_eq!(p, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn larger_random_bases_roundtrip() {
        // FTRAN of B's own columns must recover unit vectors.
        for seed in [3u64, 9, 27] {
            let m = 200;
            let cols = random_basis(m, seed);
            let refs: Vec<&[(usize, f64)]> = cols.iter().map(|c| c.as_slice()).collect();
            let mut sp = SparseFactors::new();
            sp.refactor(m, &refs).unwrap();
            let mut y = vec![0.0; m];
            for pos in (0..m).step_by(17) {
                sp.ftran(&cols[pos], &mut y);
                for (i, &v) in y.iter().enumerate() {
                    let want = if i == pos { 1.0 } else { 0.0 };
                    assert!(
                        (v - want).abs() < 1e-8,
                        "seed {seed}: B^-1 B e_{pos} wrong at {i}: {v}"
                    );
                }
            }
        }
    }
}
