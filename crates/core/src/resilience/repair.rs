//! Manifest repair after node failures.
//!
//! Two paths, mirroring the paper's split between the offline optimization
//! and the zero-coordination runtime:
//!
//! - **Fast path** ([`greedy_repair`]): pure hash-range arithmetic. The
//!   failed nodes' ranges are decomposed into elementary pieces and handed
//!   to the least-loaded surviving on-path node piece by piece. No LP, no
//!   state outside the manifest; survivors only *gain* ranges, so live
//!   connection state never moves and repair can ship immediately upon
//!   detection. Comes with a provable load-blowup bound (below).
//! - **Slow path** ([`lp_repair`]): re-run the NIDS LP on the surviving
//!   node set via [`solve_nids_lp_excluding`], warm-started from the
//!   pre-failure basis, and plan the state migration with
//!   [`plan_transition`]. Optimal, but requires a solve and a drain/
//!   transfer period; the intended sequence is greedy now, LP repair at
//!   the next reconfiguration point.
//!
//! # The greedy load bound
//!
//! Let `φ_j = CpuLoad_j + MemLoad_j` (capacity fractions). The greedy
//! assigns each orphaned elementary piece to the eligible survivor with
//! minimum `φ` (restricted list scheduling). When a piece `p` of unit `u`
//! is placed on node `j`, `φ_j ≤ (Σ_{k ∈ S_u} φ_k(t)) / e_u` where `S_u`
//! is the unit's surviving eligible set and `e_u` the minimum number of
//! eligible targets over `u`'s pieces (eligibility is static — it is
//! computed against the *pre-repair* manifest). The running sum over
//! `S_u` can only have grown by pieces of units `v` sharing a survivor
//! with `u`, each contributing at most its worst-case repair cost
//! `c_v^max`. Hence every survivor ends with
//!
//! `φ_j ≤ max(φ^init_max, max_u [(Σ_{S_u} φ^init + Σ_{v ~ u} c_v^max) / e_u + c_u^max])`
//!
//! and since `max(CpuLoad, MemLoad) ≤ φ`, the post-repair max load is
//! bounded by the same quantity — computed a priori and returned as
//! [`RepairOutcome::load_bound`]. The workspace property suite checks the
//! achieved max load against it on random topologies and failure sets.

use crate::migration::{plan_transition, TransitionPlan};
use crate::nids::lp::{solve_nids_lp_excluding, NidsAssignment, NidsError, NidsLpConfig, NodeCaps};
use crate::nids::manifest::{generate_manifests, ManifestEntry, SamplingManifest, SWEEP_EPS};
use crate::units::NidsDeployment;
use nwdp_hash::{RangeSet, Segment};
use nwdp_lp::WarmStart;
use nwdp_topo::NodeId;
use std::collections::HashMap;

/// Per-node (CPU, memory) capacity fractions induced by a manifest.
///
/// The LP reports loads for its fractional assignment; this recomputes
/// them from actual hash shares, which is what repair manipulates.
pub fn manifest_loads(
    dep: &NidsDeployment,
    caps: &[NodeCaps],
    manifest: &SamplingManifest,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(caps.len(), dep.num_nodes, "capacity vector size mismatch");
    let mut cpu = vec![0.0; dep.num_nodes];
    let mut mem = vec![0.0; dep.num_nodes];
    for (u, unit) in dep.units.iter().enumerate() {
        let class = &dep.classes[unit.class];
        for &j in &unit.nodes {
            let share = manifest.share(u, j);
            if share > 0.0 {
                cpu[j.index()] += class.cpu_per_pkt * unit.pkts * share / caps[j.index()].cpu;
                mem[j.index()] += class.mem_per_item * unit.items * share / caps[j.index()].mem;
            }
        }
    }
    (cpu, mem)
}

/// Result of the greedy fast-path repair.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The repaired manifest: failed nodes hold nothing, survivors keep
    /// their old ranges plus reassigned pieces.
    pub manifest: SamplingManifest,
    /// Units that had at least one orphaned piece reassigned.
    pub repaired_units: usize,
    /// Total hash measure moved to survivors (summed over units and,
    /// under redundancy, over multiplicity).
    pub moved_measure: f64,
    /// Units left with *some* coverage multiplicity permanently lost —
    /// e.g. the ingress/egress units of a crashed node, whose only
    /// eligible node is gone.
    pub unrecoverable: Vec<usize>,
    /// Traffic-weighted fraction of coverage lost to unrecoverable
    /// pieces: `Σ_u lost_measure(u)·pkts_u / Σ_u pkts_u`.
    pub unrecoverable_traffic_fraction: f64,
    /// Max `max(CpuLoad, MemLoad)` over survivors before repair.
    pub max_load_before: f64,
    /// Same, after repair.
    pub max_load_after: f64,
    /// The a-priori greedy bound (module docs); always ≥ `max_load_after`.
    pub load_bound: f64,
}

/// One orphaned elementary piece awaiting reassignment.
struct Piece {
    unit: usize,
    seg: Segment,
    /// How many replacement owners the piece needs (multiplicity of
    /// *failed* coverage — more than 1 only under redundancy when several
    /// covering nodes failed at once).
    replicas: usize,
    /// Survivors on the unit's path not already covering the piece
    /// (assigning to a coverer would collapse two of the `r` distinct
    /// owners into one). Static: judged against the pre-repair manifest.
    eligible: Vec<NodeId>,
}

/// Fast-path repair: redistribute the failed nodes' hash ranges to
/// surviving on-path nodes, least-loaded first.
///
/// The result is exact `RangeSet` arithmetic: every orphaned elementary
/// interval wider than [`SWEEP_EPS`] is reassigned (or counted as
/// unrecoverable when no eligible survivor exists), so the repaired
/// manifest passes `verify_coverage_exact` on every recoverable unit.
pub fn greedy_repair(
    dep: &NidsDeployment,
    manifest: &SamplingManifest,
    caps: &[NodeCaps],
    failed: &[NodeId],
) -> RepairOutcome {
    assert_eq!(caps.len(), dep.num_nodes, "capacity vector size mismatch");
    let is_failed = |j: NodeId| failed.contains(&j);

    let (cpu0, mem0) = manifest_loads(dep, caps, manifest);
    let mut phi: Vec<f64> = cpu0.iter().zip(&mem0).map(|(c, m)| c + m).collect();
    let max_load_before = (0..dep.num_nodes)
        .filter(|&j| !is_failed(NodeId(j)))
        .map(|j| cpu0[j].max(mem0[j]))
        .fold(0.0, f64::max);

    // φ-cost per unit of hash measure when unit `u` lands on node `j`.
    let piece_cost = |u: usize, j: NodeId| -> f64 {
        let unit = &dep.units[u];
        let class = &dep.classes[unit.class];
        class.cpu_per_pkt * unit.pkts / caps[j.index()].cpu
            + class.mem_per_item * unit.items / caps[j.index()].mem
    };

    // ---- Pass 1: decompose orphaned ranges into elementary pieces. ----
    let mut pieces: Vec<Piece> = Vec::new();
    let mut unrecoverable: Vec<usize> = Vec::new();
    let mut lost_traffic = 0.0;
    let mut total_traffic = 0.0;
    // Per orphaned-unit bound inputs: (survivors, min effective eligible
    // count, worst-case total repair cost c_u^max).
    let mut bound_units: HashMap<usize, (Vec<NodeId>, usize, f64)> = HashMap::new();
    let mut cuts: Vec<f64> = Vec::new();
    for (u, unit) in dep.units.iter().enumerate() {
        total_traffic += unit.pkts;
        if !unit.nodes.iter().any(|&j| is_failed(j) && manifest.share(u, j) > 0.0) {
            continue;
        }
        let survivors: Vec<NodeId> =
            unit.nodes.iter().copied().filter(|&j| !is_failed(j)).collect();
        cuts.clear();
        cuts.push(0.0);
        cuts.push(1.0);
        for &j in &unit.nodes {
            if let Some(ranges) = manifest.range(u, j) {
                for seg in ranges.segments() {
                    cuts.push(seg.lo.clamp(0.0, 1.0));
                    cuts.push(seg.hi.clamp(0.0, 1.0));
                }
            }
        }
        cuts.sort_by(f64::total_cmp);
        let mut lost_measure = 0.0;
        let mut min_eff_elig = usize::MAX;
        let mut assignable_measure = 0.0;
        for w in 0..cuts.len() - 1 {
            let (a, b) = (cuts[w], cuts[w + 1]);
            if b - a <= SWEEP_EPS {
                continue;
            }
            let h = 0.5 * (a + b);
            let orphaned = unit
                .nodes
                .iter()
                .filter(|&&j| is_failed(j) && manifest.should_analyze(u, j, h))
                .count();
            if orphaned == 0 {
                continue;
            }
            let eligible: Vec<NodeId> =
                survivors.iter().copied().filter(|&j| !manifest.should_analyze(u, j, h)).collect();
            let replicas = orphaned.min(eligible.len());
            if orphaned > eligible.len() {
                lost_measure += (b - a) * (orphaned - eligible.len()) as f64;
            }
            if replicas > 0 {
                // When the i-th replica of a piece is placed, at least
                // `|eligible| - (replicas - 1)` targets remain.
                min_eff_elig = min_eff_elig.min(eligible.len() - (replicas - 1));
                assignable_measure += (b - a) * replicas as f64;
                pieces.push(Piece { unit: u, seg: Segment::new(a, b), replicas, eligible });
            }
        }
        if lost_measure > 0.0 {
            unrecoverable.push(u);
            lost_traffic += lost_measure * unit.pkts;
        }
        if assignable_measure > 0.0 {
            let c_max = assignable_measure
                * survivors.iter().map(|&j| piece_cost(u, j)).fold(0.0, f64::max);
            bound_units.insert(u, (survivors, min_eff_elig, c_max));
        }
    }

    // ---- A-priori load bound (see module docs). ----
    // Φ_add(u): worst-case cost every unit sharing a survivor with `u`
    // could pile onto S_u during the repair, including `u` itself.
    let mut node_units: Vec<Vec<usize>> = vec![Vec::new(); dep.num_nodes];
    for (&u, (survivors, _, _)) in &bound_units {
        for &j in survivors {
            node_units[j.index()].push(u);
        }
    }
    let survivor_phi_max =
        (0..dep.num_nodes).filter(|&j| !is_failed(NodeId(j))).map(|j| phi[j]).fold(0.0, f64::max);
    let mut load_bound = survivor_phi_max;
    let mut seen = vec![usize::MAX; dep.units.len()];
    for (&u, (survivors, min_eff_elig, c_max)) in &bound_units {
        let sum_phi: f64 = survivors.iter().map(|&j| phi[j.index()]).sum();
        let mut phi_add = 0.0;
        for &j in survivors {
            for &v in &node_units[j.index()] {
                if seen[v] != u {
                    seen[v] = u;
                    phi_add += bound_units[&v].2;
                }
            }
        }
        load_bound = load_bound.max((sum_phi + phi_add) / *min_eff_elig as f64 + c_max);
    }

    // ---- Pass 2: greedy least-loaded assignment, deterministic order. ----
    pieces.sort_by(|a, b| a.unit.cmp(&b.unit).then(a.seg.lo.total_cmp(&b.seg.lo)));
    let mut added: HashMap<(usize, usize), Vec<Segment>> = HashMap::new();
    let mut moved_measure = 0.0;
    let mut repaired: Vec<usize> = Vec::new();
    for p in &pieces {
        let mut taken: Vec<NodeId> = Vec::with_capacity(p.replicas);
        for _ in 0..p.replicas {
            // Min-φ eligible target not already holding this piece;
            // ties break to the smaller node id.
            let Some(&j) = p
                .eligible
                .iter()
                .filter(|j| !taken.contains(j))
                .min_by(|a, b| phi[a.index()].total_cmp(&phi[b.index()]).then(a.cmp(b)))
            else {
                break;
            };
            phi[j.index()] += p.seg.len() * piece_cost(p.unit, j);
            added.entry((p.unit, j.index())).or_default().push(p.seg);
            moved_measure += p.seg.len();
            taken.push(j);
        }
        repaired.push(p.unit);
    }
    repaired.dedup();

    // ---- Rebuild the manifest: survivors' old ranges + added pieces. ----
    let mut entries: Vec<(NodeId, ManifestEntry)> = Vec::new();
    for (u, unit) in dep.units.iter().enumerate() {
        for &j in &unit.nodes {
            if is_failed(j) {
                continue;
            }
            let old = manifest.range(u, j);
            let extra = added.get(&(u, j.index()));
            if old.is_none() && extra.is_none() {
                continue;
            }
            let mut segs: Vec<Segment> = old.map(|r| r.segments().to_vec()).unwrap_or_default();
            if let Some(extra) = extra {
                segs.extend_from_slice(extra);
            }
            entries.push((
                j,
                ManifestEntry {
                    class: unit.class,
                    unit: u,
                    key: unit.key,
                    ranges: RangeSet::from_segments(segs),
                },
            ));
        }
    }
    let manifest2 = SamplingManifest::from_entries(dep.num_nodes, entries);

    let (cpu1, mem1) = manifest_loads(dep, caps, &manifest2);
    let max_load_after = (0..dep.num_nodes)
        .filter(|&j| !is_failed(NodeId(j)))
        .map(|j| cpu1[j].max(mem1[j]))
        .fold(0.0, f64::max);
    debug_assert!(
        max_load_after <= load_bound + 1e-9,
        "greedy exceeded its bound: {max_load_after} > {load_bound}"
    );

    RepairOutcome {
        manifest: manifest2,
        repaired_units: repaired.len(),
        moved_measure,
        unrecoverable,
        unrecoverable_traffic_fraction: if total_traffic > 0.0 {
            lost_traffic / total_traffic
        } else {
            0.0
        },
        max_load_before,
        max_load_after,
        load_bound,
    }
}

/// Result of the slow-path LP repair.
#[derive(Debug, Clone)]
pub struct LpRepair {
    /// Re-optimized assignment over the surviving node set.
    pub assignment: NidsAssignment,
    /// Manifest compiled from the re-optimized assignment.
    pub manifest: SamplingManifest,
    /// Units whose coverage the reduced node set cannot fully provide
    /// (their LP coverage row was relaxed below the redundancy level).
    pub degraded_units: Vec<usize>,
    /// Migration plan from the pre-failure manifest. A failed node listed
    /// in `transfer_from` cannot actually ship its state — its live
    /// connections are lost, which is exactly the detection-window gap
    /// the timeline accounts for.
    pub plan: TransitionPlan,
    /// Final basis, for chaining across a failure sweep.
    pub warm: Option<WarmStart>,
}

/// Slow-path repair: re-solve the NIDS LP with the failed nodes excluded
/// (full problem shape retained, so `warm` — typically the pre-failure
/// basis — applies) and plan the migration from the old manifest. Losing
/// a node clamps its variables to zero, which usually leaves the old
/// basis dual feasible; the simplex dual phase then repairs it in place
/// instead of re-solving cold.
pub fn lp_repair(
    dep: &NidsDeployment,
    old_manifest: &SamplingManifest,
    cfg: &NidsLpConfig,
    failed: &[NodeId],
    warm: Option<&WarmStart>,
) -> Result<LpRepair, NidsError> {
    let (assignment, warm2, degraded_units) = solve_nids_lp_excluding(dep, cfg, failed, warm)?;
    let manifest = generate_manifests(dep, &assignment.d);
    // For drain/transfer classification the failed nodes are *off* every
    // unit's path: a crashed node can neither drain in place nor keep
    // analyzing, so any responsibility it held is a transfer (of which the
    // state part is lost — see `plan` docs).
    let mut reduced = dep.clone();
    for unit in &mut reduced.units {
        unit.nodes.retain(|j| !failed.contains(j));
    }
    let plan = plan_transition(dep, old_manifest, &reduced, &manifest, 0);
    Ok(LpRepair { assignment, manifest, degraded_units, plan, warm: warm2 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::AnalysisClass;
    use crate::nids::lp::{solve_nids_lp, solve_nids_lp_warm};
    use crate::units::{build_units, UnitKey};
    use nwdp_topo::{internet2, PathDb};
    use nwdp_traffic::{TrafficMatrix, VolumeModel};

    fn setup() -> (NidsDeployment, NidsLpConfig, SamplingManifest) {
        let t = internet2();
        let paths = PathDb::shortest_paths(&t);
        let tm = TrafficMatrix::gravity(&t);
        let vol = VolumeModel::internet2_baseline();
        let dep = build_units(&t, &paths, &tm, &vol, &AnalysisClass::standard_set());
        let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let a = solve_nids_lp(&dep, &cfg).unwrap();
        let m = generate_manifests(&dep, &a.d);
        (dep, cfg, m)
    }

    /// Exact-sweep multiplicity over every unit except the listed ones
    /// (the units a failure makes unrecoverable).
    fn coverage_excluding(
        manifest: &SamplingManifest,
        dep: &NidsDeployment,
        skip: &[usize],
    ) -> (usize, usize) {
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for u in 0..dep.units.len() {
            if skip.contains(&u) {
                continue;
            }
            let (ulo, uhi) = manifest.unit_coverage_exact(dep, u);
            lo = lo.min(ulo);
            hi = hi.max(uhi);
        }
        (lo, hi)
    }

    #[test]
    fn greedy_repair_restores_exact_coverage_for_every_single_crash() {
        let (dep, cfg, m) = setup();
        for f in 0..dep.num_nodes {
            let failed = NodeId(f);
            let out = greedy_repair(&dep, &m, &cfg.caps, &[failed]);
            // Unrecoverable = exactly the units whose whole path is the
            // failed node (its ingress/egress classes).
            for &u in &out.unrecoverable {
                assert_eq!(dep.units[u].nodes, vec![failed], "unit {u} is single-node");
            }
            assert!(!out.unrecoverable.is_empty(), "ingress/egress of {failed:?} must be lost");
            // Every other unit is back to exact single coverage — the
            // sweep proves there is no gap and no overlap anywhere else.
            let cov = coverage_excluding(&out.manifest, &dep, &out.unrecoverable);
            assert_eq!(cov, (1, 1), "crash {failed:?}");
            // The failed node holds nothing afterwards.
            assert!(out.manifest.node_entries(failed).is_empty());
            // Moved measure equals the failed node's recoverable share.
            let share: f64 = (0..dep.units.len()).map(|u| m.share(u, failed)).sum::<f64>();
            let lost: f64 = out.unrecoverable.iter().map(|&u| m.share(u, failed)).sum::<f64>();
            assert!(
                (out.moved_measure - (share - lost)).abs() < 1e-6,
                "crash {failed:?}: moved {} vs share {share} - lost {lost}",
                out.moved_measure
            );
            assert!(out.repaired_units > 0);
            assert!(out.max_load_after <= out.load_bound + 1e-9);
            assert!(out.max_load_after >= out.max_load_before - 1e-9);
        }
    }

    #[test]
    fn greedy_repair_under_redundancy_keeps_distinct_owners() {
        let (dep0, mut cfg, _) = setup();
        // Redundancy 2 on the multi-node (per-path) units only.
        let dep = NidsDeployment {
            classes: dep0.classes.clone(),
            units: dep0.units.iter().filter(|u| u.nodes.len() >= 2).cloned().collect(),
            num_nodes: dep0.num_nodes,
        };
        cfg.redundancy = 2.0;
        let a = solve_nids_lp(&dep, &cfg).unwrap();
        let m = generate_manifests(&dep, &a.d);
        let failed = NodeId(4);
        let out = greedy_repair(&dep, &m, &cfg.caps, &[failed]);
        // Two-hop paths through the failed node drop to one surviving
        // owner: multiplicity 2 is unrecoverable there (a node may not
        // cover the same point twice).
        for &u in &out.unrecoverable {
            let survivors = dep.units[u].nodes.iter().filter(|&&j| j != failed).count();
            assert_eq!(survivors, 1, "unit {u} lost multiplicity with 1 survivor");
        }
        let (lo, hi) = coverage_excluding(&out.manifest, &dep, &out.unrecoverable);
        assert_eq!((lo, hi), (2, 2), "distinct double coverage restored");
    }

    #[test]
    fn lp_repair_reoptimizes_and_plans_migration() {
        let (dep, cfg, m) = setup();
        let (_, warm) = solve_nids_lp_warm(&dep, &cfg, None).unwrap();
        let failed = NodeId(2);
        let rep = lp_repair(&dep, &m, &cfg, &[failed], warm.as_ref()).unwrap();
        // Degraded = the failed node's single-node units.
        for &u in &rep.degraded_units {
            assert!(matches!(
                dep.units[u].key,
                UnitKey::Ingress(n) | UnitKey::Egress(n) if n == failed
            ));
        }
        assert!(!rep.degraded_units.is_empty());
        // The re-optimized manifest gives the failed node nothing and
        // covers everything else exactly once.
        assert!(rep.manifest.node_entries(failed).is_empty());
        assert_eq!(coverage_excluding(&rep.manifest, &dep, &rep.degraded_units), (1, 1));
        // Every unit the failed node served must flag it for transfer
        // (its state is lost, not drained).
        for t in &rep.plan.units {
            if m.share(t.new_unit, failed) > 0.0 {
                assert!(t.transfer_from.contains(&failed), "unit {}: {t:?}", t.new_unit);
                assert!(!t.drain_at.contains(&failed));
            }
        }
        // The basis chains: a second failure what-if re-solves warm
        // without error and with the same exclusion semantics.
        let rep2 = lp_repair(&dep, &m, &cfg, &[NodeId(7)], rep.warm.as_ref()).unwrap();
        assert!(rep2.manifest.node_entries(NodeId(7)).is_empty());
    }

    #[test]
    fn greedy_repair_of_nothing_is_identity() {
        let (dep, cfg, m) = setup();
        let out = greedy_repair(&dep, &m, &cfg.caps, &[]);
        assert_eq!(out.repaired_units, 0);
        assert_eq!(out.moved_measure, 0.0);
        assert!(out.unrecoverable.is_empty());
        assert_eq!(out.manifest.verify_coverage_exact(&dep), (1, 1));
        assert!((out.max_load_after - out.max_load_before).abs() < 1e-12);
    }
}
