/root/repo/target/debug/examples/nips_isp-e7bd388e03e910bb.d: examples/nips_isp.rs Cargo.toml

/root/repo/target/debug/examples/libnips_isp-e7bd388e03e910bb.rmeta: examples/nips_isp.rs Cargo.toml

examples/nips_isp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
