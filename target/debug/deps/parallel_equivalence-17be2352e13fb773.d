/root/repo/target/debug/deps/parallel_equivalence-17be2352e13fb773.d: tests/parallel_equivalence.rs

/root/repo/target/debug/deps/parallel_equivalence-17be2352e13fb773: tests/parallel_equivalence.rs

tests/parallel_equivalence.rs:
