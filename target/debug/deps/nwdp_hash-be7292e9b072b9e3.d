/root/repo/target/debug/deps/nwdp_hash-be7292e9b072b9e3.d: crates/hash/src/lib.rs crates/hash/src/key.rs crates/hash/src/keyed.rs crates/hash/src/lookup3.rs crates/hash/src/range.rs

/root/repo/target/debug/deps/nwdp_hash-be7292e9b072b9e3: crates/hash/src/lib.rs crates/hash/src/key.rs crates/hash/src/keyed.rs crates/hash/src/lookup3.rs crates/hash/src/range.rs

crates/hash/src/lib.rs:
crates/hash/src/key.rs:
crates/hash/src/keyed.rs:
crates/hash/src/lookup3.rs:
crates/hash/src/range.rs:
