/root/repo/target/debug/deps/nwdp_lp-03f3155d1613b7a2.d: crates/lp/src/lib.rs crates/lp/src/check.rs crates/lp/src/flow.rs crates/lp/src/milp.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/rowgen.rs crates/lp/src/simplex/mod.rs crates/lp/src/simplex/dense.rs crates/lp/src/simplex/sparse.rs crates/lp/src/solution.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp_lp-03f3155d1613b7a2.rmeta: crates/lp/src/lib.rs crates/lp/src/check.rs crates/lp/src/flow.rs crates/lp/src/milp.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/rowgen.rs crates/lp/src/simplex/mod.rs crates/lp/src/simplex/dense.rs crates/lp/src/simplex/sparse.rs crates/lp/src/solution.rs Cargo.toml

crates/lp/src/lib.rs:
crates/lp/src/check.rs:
crates/lp/src/flow.rs:
crates/lp/src/milp.rs:
crates/lp/src/model.rs:
crates/lp/src/presolve.rs:
crates/lp/src/rowgen.rs:
crates/lp/src/simplex/mod.rs:
crates/lp/src/simplex/dense.rs:
crates/lp/src/simplex/sparse.rs:
crates/lp/src/solution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-W__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
