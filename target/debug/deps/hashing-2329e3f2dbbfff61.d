/root/repo/target/debug/deps/hashing-2329e3f2dbbfff61.d: crates/bench/benches/hashing.rs

/root/repo/target/debug/deps/hashing-2329e3f2dbbfff61: crates/bench/benches/hashing.rs

crates/bench/benches/hashing.rs:
