//! Optimization-time measurements (the paper's §2.4 and §3.4 timing
//! claims: 0.42 s for the 50-node NIDS LP with CPLEX; ≈220 s for the
//! 50-node NIPS rounding pipeline).
//!
//! Our solver is a from-scratch simplex, so absolute numbers differ; the
//! claim that matters — reconfiguration is fast enough to rerun every few
//! minutes — is what these measurements check.

use crate::output::{f2, Table};
use nwdp_core::nids::{solve_nids_lp, NidsLpConfig, NodeCaps};
use nwdp_core::nips::{round_best_of, solve_relaxation, NipsInstance, RoundingOpts, Strategy};
use nwdp_core::{build_units, AnalysisClass};
use nwdp_lp::rowgen::RowGenOpts;
use nwdp_topo::{waxman, PathDb};
use nwdp_traffic::{MatchRates, TrafficMatrix, VolumeModel};
use std::time::Instant;

#[derive(Debug, Clone)]
pub struct OptTime {
    pub what: String,
    pub nodes: usize,
    pub seconds: f64,
    pub detail: String,
}

/// Time the NIDS LP on an n-node topology with 21 classes.
pub fn nids_lp_time(n: usize, seed: u64) -> OptTime {
    let topo = waxman(format!("synth{n}"), n, 0.25, 0.2, seed);
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::scaled_for(&topo);
    let classes = AnalysisClass::scaled_set(21).expect("21 is within the paper's range");
    let dep = build_units(&topo, &paths, &tm, &vol, &classes);
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let start = Instant::now();
    let a = solve_nids_lp(&dep, &cfg).expect("solves");
    let secs = start.elapsed().as_secs_f64();
    OptTime {
        what: "NIDS LP (21 classes)".into(),
        nodes: n,
        seconds: secs,
        detail: format!("{} units, {} simplex iterations", dep.units.len(), a.lp_iterations),
    }
}

/// Time the full NIPS pipeline (relaxation + 10 rounding iterations with
/// greedy + LP re-solve) on an n-node topology.
pub fn nips_pipeline_time(n: usize, n_rules: usize, seed: u64) -> OptTime {
    let topo = waxman(format!("synth{n}"), n, 0.25, 0.2, seed);
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::scaled_for(&topo);
    let rates = MatchRates::uniform_001(n_rules, paths.all_pairs().count(), seed);
    let inst = NipsInstance::evaluation_setup(&topo, &paths, &tm, &vol, n_rules, 0.15, rates);
    let start = Instant::now();
    let relax = solve_relaxation(&inst, &RowGenOpts::default()).expect("relaxation solves");
    let relax_secs = start.elapsed().as_secs_f64();
    let opts = RoundingOpts {
        strategy: Strategy::GreedyLpResolve,
        iterations: 10,
        seed,
        ..Default::default()
    };
    let sol = round_best_of(&inst, &relax, &opts).expect("rounding failed");
    let secs = start.elapsed().as_secs_f64();
    OptTime {
        what: format!("NIPS pipeline ({n_rules} rules)"),
        nodes: n,
        seconds: secs,
        detail: format!(
            "relaxation {relax_secs:.2}s ({} lazy rows, {} rounds), best {:.0}% of OptLP",
            relax.rowgen.0,
            relax.rowgen.1,
            100.0 * sol.objective / relax.objective.max(1e-12)
        ),
    }
}

pub fn table(results: &[OptTime]) -> Table {
    let mut t = Table::new(
        "Optimization time (paper: 0.42s NIDS LP / ~220s NIPS, 50 nodes, CPLEX)",
        &["what", "nodes", "seconds", "detail"],
    );
    for r in results {
        t.row(vec![r.what.clone(), r.nodes.to_string(), f2(r.seconds), r.detail.clone()]);
    }
    t
}
