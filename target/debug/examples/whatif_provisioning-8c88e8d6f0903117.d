/root/repo/target/debug/examples/whatif_provisioning-8c88e8d6f0903117.d: examples/whatif_provisioning.rs Cargo.toml

/root/repo/target/debug/examples/libwhatif_provisioning-8c88e8d6f0903117.rmeta: examples/whatif_provisioning.rs Cargo.toml

examples/whatif_provisioning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
