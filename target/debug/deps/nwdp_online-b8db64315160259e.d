/root/repo/target/debug/deps/nwdp_online-b8db64315160259e.d: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

/root/repo/target/debug/deps/nwdp_online-b8db64315160259e: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

crates/online/src/lib.rs:
crates/online/src/adversary.rs:
crates/online/src/fpl.rs:
