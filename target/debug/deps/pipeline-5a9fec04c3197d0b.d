/root/repo/target/debug/deps/pipeline-5a9fec04c3197d0b.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-5a9fec04c3197d0b: tests/pipeline.rs

tests/pipeline.rs:
