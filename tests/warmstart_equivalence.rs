//! Warm starting is a pure performance optimization: every re-solve loop
//! that reuses a basis, a row-generation context, or a pre-built flow
//! network must land on the same objective as solving cold from scratch
//! (≤ 1e-9 relative), and must do so under any thread-count override.
//!
//! Covers the four reuse sites of the warm-start layer:
//! - `solve_nids_lp_warm` basis chaining (provisioning sweep pattern),
//! - `solve_relaxation_ctx` row-generation context reuse (TCAM sweep),
//! - `RoundingOpts::warm_start` shared-baseline inner-LP starts,
//! - `FplConfig::reuse_oracle` flow-network re-pricing across epochs.

use nwdp::core::nids::solve_nids_lp_warm;
use nwdp::core::nips::solve_relaxation_ctx;
use nwdp::core::parallel;
use nwdp::lp::SolveContext;
use nwdp::prelude::*;

fn close(a: f64, b: f64, what: &str) {
    assert!(
        (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
        "{what}: cold {a} vs warm {b} diverged beyond 1e-9"
    );
}

/// Run `f` under 1-thread and 4-thread overrides; both must agree.
fn under_thread_counts(f: impl Fn()) {
    parallel::with_threads(1, &f);
    parallel::with_threads(4, &f);
}

fn nids_setup() -> (NidsDeployment, NidsLpConfig) {
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    (dep, cfg)
}

fn nips_setup(n_rules: usize, cap_frac: f64, seed: u64) -> NipsInstance {
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let rates = MatchRates::uniform_001(n_rules, paths.all_pairs().count(), seed);
    NipsInstance::evaluation_setup(&topo, &paths, &tm, &vol, n_rules, cap_frac, rates)
}

/// NIDS LP: chaining the basis through a capacity sweep must reproduce the
/// cold per-instance optima exactly (the LP has a unique optimal value).
#[test]
fn nids_lp_warm_chain_matches_cold() {
    let (dep, cfg) = nids_setup();
    under_thread_counts(|| {
        let (cold_base, _) = solve_nids_lp_warm(&dep, &cfg, None).unwrap();
        let mut warm = None;
        for j in 0..dep.num_nodes {
            let mut c = cfg.clone();
            c.caps[j].cpu *= 2.0;
            c.caps[j].mem *= 2.0;
            let (cold, _) = solve_nids_lp_warm(&dep, &c, None).unwrap();
            let (hot, snap) = solve_nids_lp_warm(&dep, &c, warm.as_ref()).unwrap();
            warm = snap;
            close(cold.max_load, hot.max_load, &format!("NIDS upgrade node {j}"));
        }
        let (cold_again, _) = solve_nids_lp_warm(&dep, &cfg, warm.as_ref()).unwrap();
        close(cold_base.max_load, cold_again.max_load, "NIDS baseline re-solve");
    });
}

/// Coefficient-rescaled LP family (the dual-phase stress case): a
/// miniature load-balancing LP in the NIDS shape — minimize the max load
/// `L`, each node row carrying `-cap_k · L`. Doubling a node's capacity
/// rescales that coefficient, which leaves the chained basis dual
/// feasible but knocks its basic values out of range; the dual phase
/// must repair it, and warm objectives must match cold to 1e-9 at every
/// step and thread count.
#[test]
fn rescaled_family_dual_warm_matches_cold() {
    use nwdp::lp::{solve_warm, Cmp, Problem, Sense, SolverOpts};

    let nodes = 5usize;
    let units = 12usize;
    // Deterministic pseudo-random weights and capacities (xorshift).
    let mut s = 0x2458_71d3_9e37_79b9u64;
    let mut r = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 40) as f64 / (1u64 << 24) as f64
    };
    let w: Vec<f64> = (0..units).map(|_| 1.0 + 4.0 * r()).collect();
    let caps0: Vec<f64> = (0..nodes).map(|_| 4.0 + 2.0 * r()).collect();

    // Unit `u` splits its weight between two nodes: fraction `d_u` on
    // `u % nodes`, the rest on `(u + 3) % nodes`. Node row k:
    //   Σ±w_u d_u − cap_k · L ≤ −(weight parked on k when all d_u = 0).
    let build = |caps: &[f64]| {
        let mut p = Problem::new(Sense::Min);
        let l = p.add_var("L", 0.0, 1e9, 1.0);
        let d: Vec<_> = (0..units).map(|u| p.add_var(format!("d{u}"), 0.0, 1.0, 0.0)).collect();
        for (k, &cap) in caps.iter().enumerate() {
            let mut terms = vec![(l, -cap)];
            let mut parked = 0.0;
            for u in 0..units {
                if u % nodes == k {
                    terms.push((d[u], w[u]));
                }
                if (u + 3) % nodes == k {
                    parked += w[u];
                    terms.push((d[u], -w[u]));
                }
            }
            p.add_con(format!("load{k}"), &terms, Cmp::Le, -parked);
        }
        p
    };

    under_thread_counts(|| {
        let opts = SolverOpts::default();
        let (base, mut warm) = solve_warm(&build(&caps0), &opts, None);
        assert!(base.is_optimal());
        for k in 0..nodes {
            let mut caps = caps0.clone();
            caps[k] *= 2.0; // upgrade node k, as the NIDS sweep does
            let p = build(&caps);
            let cold = solve_warm(&p, &opts, None).0;
            let (hot, snap) = solve_warm(&p, &opts, warm.as_ref());
            warm = snap;
            assert!(cold.is_optimal() && hot.is_optimal(), "step {k} must solve");
            close(cold.objective, hot.objective, &format!("rescaled family node {k}"));
        }
    });
}

/// NIPS relaxation: reusing one `SolveContext` across a TCAM what-if sweep
/// (rhs-only changes) must match fresh row generation per instance.
#[test]
fn relaxation_ctx_reuse_matches_cold() {
    let inst = nips_setup(5, 0.3, 7);
    let opts = RowGenOpts::default();
    under_thread_counts(|| {
        let mut ctx = SolveContext::new();
        for extra in [0.0, 1.0, 2.0, 4.0] {
            let mut inst2 = inst.clone();
            for c in inst2.cam_cap.iter_mut() {
                *c += extra;
            }
            let cold = solve_relaxation(&inst2, &opts).unwrap();
            let warm = solve_relaxation_ctx(&inst2, &opts, &mut ctx).unwrap();
            close(cold.objective, warm.objective, &format!("relaxation cam+{extra}"));
        }
    });
}

/// Rounding refinements: `warm_start` on/off must pick the same best
/// placement (same trials, same inner optima, same tie-breaks).
#[test]
fn rounding_warm_start_matches_cold() {
    let mut inst = nips_setup(5, 0.4, 11);
    // Heterogeneous requirements force the simplex inner path (the
    // proportional fast path never touches the warm-start machinery).
    for (i, r) in inst.rules.iter_mut().enumerate() {
        r.cpu_per_pkt *= 1.0 + 0.15 * i as f64;
        r.mem_per_item *= 1.0 + 0.10 * i as f64;
    }
    let relax = solve_relaxation(&inst, &RowGenOpts::default()).unwrap();
    for strategy in [Strategy::LpResolve, Strategy::GreedyLpResolve] {
        under_thread_counts(|| {
            let run = |warm: bool| {
                let opts = RoundingOpts {
                    strategy,
                    iterations: 4,
                    seed: 23,
                    warm_start: warm,
                    ..Default::default()
                };
                round_best_of(&inst, &relax, &opts).unwrap()
            };
            let cold = run(false);
            let warm = run(true);
            close(cold.objective, warm.objective, &format!("rounding {strategy:?}"));
            assert_eq!(cold.e, warm.e, "same placement chosen ({strategy:?})");
        });
    }
}

/// FPL epochs: re-pricing one flow network per epoch is bit-identical to
/// rebuilding it from scratch, so every reported series must match.
#[test]
fn fpl_oracle_reuse_matches_cold_over_50_epochs() {
    let mut inst = nips_setup(4, 1.0, 3);
    inst.cam_cap = vec![f64::INFINITY; inst.num_nodes];
    under_thread_counts(|| {
        let run = |reuse: bool| {
            let mut adv = StochasticUniform::new(4, inst.paths.len(), 0.01, 0xfee1);
            let cfg = FplConfig { epochs: 50, seed: 29, reuse_oracle: reuse, ..Default::default() };
            run_fpl(&inst, &mut adv, &cfg).expect("valid config")
        };
        let cold = run(false);
        let warm = run(true);
        assert_eq!(cold.fpl_value, warm.fpl_value, "per-epoch FPL values must be bit-identical");
        assert_eq!(cold.static_prefix_value, warm.static_prefix_value);
        let cold_total: f64 = cold.fpl_value.iter().sum();
        let warm_total: f64 = warm.fpl_value.iter().sum();
        close(cold_total, warm_total, "FPL 50-epoch total");
    });
}
