/root/repo/target/debug/deps/proptest_nwdp-57a240c0c916c678.d: tests/proptest_nwdp.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_nwdp-57a240c0c916c678.rmeta: tests/proptest_nwdp.rs Cargo.toml

tests/proptest_nwdp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
