/root/repo/target/release/examples/quickstart-8b03ed08c0623279.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8b03ed08c0623279: examples/quickstart.rs

examples/quickstart.rs:
