/root/repo/target/release/deps/nwdp_online-902b510e80ebe8e3.d: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

/root/repo/target/release/deps/libnwdp_online-902b510e80ebe8e3.rlib: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

/root/repo/target/release/deps/libnwdp_online-902b510e80ebe8e3.rmeta: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

crates/online/src/lib.rs:
crates/online/src/adversary.rs:
crates/online/src/fpl.rs:
