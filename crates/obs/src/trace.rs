//! Structured tracing: nestable, thread-aware spans and instant events,
//! journaled as JSONL.
//!
//! # Model
//!
//! A [`Span`] is a scoped region of work (`span!("rounding.trial",
//! trial = i)`); dropping the guard closes it. Spans nest per thread via
//! a thread-local stack, and compose with the `nwdp_core::parallel`
//! scoped-thread fan-outs: the spawning thread's current span id is
//! captured before the spawn and handed to [`span_under`], so a worker's
//! spans hang off the fan-out span that launched them even though they
//! live on another thread. An [`event`] is a zero-duration record (the
//! structured replacement for ad-hoc `eprintln!` diagnostics).
//!
//! # Journal
//!
//! Records are serialized as one JSON object per line:
//!
//! ```text
//! {"ev":"B","name":"rounding.trial","id":7,"parent":3,"tid":2,"ts":123,"f":{"trial":4}}
//! {"ev":"E","id":7,"tid":2,"ts":456,"dur":333}
//! {"ev":"I","name":"simplex.warm_diag","parent":7,"tid":2,"ts":200,"f":{...}}
//! ```
//!
//! `ts`/`dur` are nanoseconds since the process's trace epoch. Open (`B`)
//! and close (`E`) records are paired by `id`; the `repro report` tooling
//! re-joins them and can export Chrome-trace JSON for flamegraphs.
//!
//! # Cost model
//!
//! Tracing is **off by default**; the gate is one relaxed atomic load
//! ([`trace_enabled`]), and a disabled [`span`]/[`event`] call does
//! nothing else. When on, records are serialized into a per-thread
//! `String` buffer (no lock) and flushed to the global writer under a
//! mutex only when the buffer fills, when the thread exits (scoped
//! workers flush on join; a panicking thread flushes during unwind), or
//! on an explicit [`flush_trace`].
//!
//! # Configuration
//!
//! - `NWDP_TRACE=path.jsonl` — journal to a file (read lazily on the
//!   first gate check, or eagerly via [`init_trace_from_env`]).
//! - `NWDP_LP_TRACE=1` — no journal path, but tracing is enabled with a
//!   stderr writer: the historical simplex diagnostic env var now emits
//!   the same structured records, one JSON line each, to stderr.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

macro_rules! trace_value_from {
    ($($ty:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$ty> for TraceValue {
            fn from(v: $ty) -> Self {
                TraceValue::$variant(v as $conv)
            }
        })*
    };
}

trace_value_from! {
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    f32 => F64 as f64, f64 => F64 as f64,
}

impl From<bool> for TraceValue {
    fn from(v: bool) -> Self {
        TraceValue::Bool(v)
    }
}

impl From<&str> for TraceValue {
    fn from(v: &str) -> Self {
        TraceValue::Str(v.to_string())
    }
}

impl From<String> for TraceValue {
    fn from(v: String) -> Self {
        TraceValue::Str(v)
    }
}

// Gate: 0 = uninitialized (read env on first check), 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn writer_slot() -> &'static Mutex<Option<Box<dyn Write + Send>>> {
    static WRITER: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);
    &WRITER
}

/// Is span/event collection on? One relaxed atomic load on the hot path;
/// the first call reads `NWDP_TRACE` / `NWDP_LP_TRACE` from the
/// environment.
#[inline]
pub fn trace_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_trace_from_env().is_some() || STATE.load(Ordering::Relaxed) == 2,
    }
}

/// Turn tracing on or off process-wide (tests and explicit harness
/// control; overrides whatever the environment said).
pub fn set_trace_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Install (or replace) the journal writer. Callers normally pair this
/// with [`set_trace_enabled`]`(true)`.
pub fn set_trace_writer(w: Box<dyn Write + Send>) {
    *writer_slot().lock().unwrap_or_else(|e| e.into_inner()) = Some(w);
}

/// Read the environment: `NWDP_TRACE=path` installs a buffered file
/// writer at that path and enables tracing (returns the path);
/// `NWDP_LP_TRACE` (any value) enables tracing with a stderr writer.
/// Neither set ⇒ tracing stays off. Idempotent: an explicit
/// [`set_trace_enabled`] beats a later lazy init.
pub fn init_trace_from_env() -> Option<PathBuf> {
    let path = std::env::var_os("NWDP_TRACE").map(PathBuf::from);
    if let Some(p) = &path {
        match std::fs::File::create(p) {
            Ok(f) => {
                set_trace_writer(Box::new(std::io::BufWriter::new(f)));
                let _ = STATE.compare_exchange(0, 2, Ordering::Relaxed, Ordering::Relaxed);
                epoch();
                return path;
            }
            Err(e) => {
                eprintln!("nwdp-obs: cannot create NWDP_TRACE file {}: {e}", p.display());
            }
        }
    } else if std::env::var_os("NWDP_LP_TRACE").is_some() {
        set_trace_writer(Box::new(std::io::stderr()));
        let _ = STATE.compare_exchange(0, 2, Ordering::Relaxed, Ordering::Relaxed);
        epoch();
        return None;
    }
    let _ = STATE.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
    None
}

// Per-thread record buffer and span stack. The buffer drains to the
// global writer when it crosses `FLUSH_AT` and when the thread exits
// (the `Drop` impl runs during unwinding too, so a panicking worker
// still lands its records in the journal).
const FLUSH_AT: usize = 32 * 1024;

struct ThreadBuf {
    tid: u64,
    buf: String,
    stack: Vec<u64>,
}

impl ThreadBuf {
    fn new() -> Self {
        ThreadBuf {
            tid: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            buf: String::new(),
            stack: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut slot = writer_slot().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(w) = slot.as_mut() {
            let _ = w.write_all(self.buf.as_bytes());
            let _ = w.flush();
        }
        self.buf.clear();
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fields_into(out: &mut String, fields: &[(&str, TraceValue)]) {
    if fields.is_empty() {
        return;
    }
    out.push_str(",\"f\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(out, k);
        out.push(':');
        match v {
            TraceValue::U64(x) => {
                let _ = write!(out, "{x}");
            }
            TraceValue::I64(x) => {
                let _ = write!(out, "{x}");
            }
            TraceValue::F64(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            TraceValue::Bool(x) => {
                let _ = write!(out, "{x}");
            }
            TraceValue::Str(x) => escape_into(out, x),
        }
    }
    out.push('}');
}

/// RAII guard for an open span; dropping it writes the close record.
/// Spans must be dropped in LIFO order on their own thread (the natural
/// behavior of a scoped guard).
#[must_use = "a span closes when dropped; binding it to `_` closes it immediately"]
#[derive(Debug)]
pub struct Span {
    id: u64,
}

impl Span {
    /// A disabled no-op span (what the constructors return when tracing
    /// is off).
    pub const fn none() -> Span {
        Span { id: 0 }
    }

    /// The span's journal id (0 when disabled).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let ts = now_ns();
        TLS.with(|tls| {
            let Ok(mut t) = tls.try_borrow_mut() else { return };
            // LIFO pop; tolerate out-of-order drops by removing by value.
            match t.stack.last() {
                Some(&top) if top == self.id => {
                    t.stack.pop();
                }
                _ => t.stack.retain(|&x| x != self.id),
            }
            let (tid, root) = (t.tid, t.stack.is_empty());
            let _ =
                writeln!(t.buf, "{{\"ev\":\"E\",\"id\":{},\"tid\":{tid},\"ts\":{ts}}}", self.id);
            // Root spans mark a completed unit of work: land it in the
            // journal so a later crash cannot lose it.
            if root || t.buf.len() >= FLUSH_AT {
                t.flush();
            }
        });
    }
}

/// Open a span named `name` under the current thread's innermost open
/// span. Returns a no-op guard when tracing is off.
pub fn span(name: &str) -> Span {
    span_with(name, &[])
}

/// [`span`] with key/value fields recorded on the open record.
pub fn span_with(name: &str, fields: &[(&str, TraceValue)]) -> Span {
    if !trace_enabled() {
        return Span::none();
    }
    open_span(name, fields, None)
}

/// Open a span whose parent is an *explicit* span id — the bridge for
/// cross-thread nesting: a fan-out captures [`current_span_id`] before
/// spawning and each worker opens its root span under it.
pub fn span_under(parent: Option<u64>, name: &str, fields: &[(&str, TraceValue)]) -> Span {
    if !trace_enabled() {
        return Span::none();
    }
    open_span(name, fields, Some(parent))
}

fn open_span(name: &str, fields: &[(&str, TraceValue)], parent: Option<Option<u64>>) -> Span {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let ts = now_ns();
    TLS.with(|tls| {
        let Ok(mut t) = tls.try_borrow_mut() else { return };
        let parent = match parent {
            Some(explicit) => explicit,
            None => t.stack.last().copied(),
        };
        let tid = t.tid;
        let _ = write!(t.buf, "{{\"ev\":\"B\",\"name\":");
        escape_into(&mut t.buf, name);
        let _ = write!(t.buf, ",\"id\":{id}");
        if let Some(p) = parent {
            let _ = write!(t.buf, ",\"parent\":{p}");
        }
        let _ = write!(t.buf, ",\"tid\":{tid},\"ts\":{ts}");
        // Move the buffer out to satisfy the borrow checker on `fields_into`.
        let mut buf = std::mem::take(&mut t.buf);
        fields_into(&mut buf, fields);
        buf.push('}');
        buf.push('\n');
        t.buf = buf;
        t.stack.push(id);
        if t.buf.len() >= FLUSH_AT {
            t.flush();
        }
    });
    Span { id }
}

/// Record an instant event under the current span. The structured
/// replacement for `eprintln!` diagnostics: off ⇒ one atomic load, zero
/// output.
pub fn event(name: &str, fields: &[(&str, TraceValue)]) {
    if !trace_enabled() {
        return;
    }
    let ts = now_ns();
    TLS.with(|tls| {
        let Ok(mut t) = tls.try_borrow_mut() else { return };
        let parent = t.stack.last().copied();
        let tid = t.tid;
        let _ = write!(t.buf, "{{\"ev\":\"I\",\"name\":");
        escape_into(&mut t.buf, name);
        if let Some(p) = parent {
            let _ = write!(t.buf, ",\"parent\":{p}");
        }
        let _ = write!(t.buf, ",\"tid\":{tid},\"ts\":{ts}");
        let mut buf = std::mem::take(&mut t.buf);
        fields_into(&mut buf, fields);
        buf.push('}');
        buf.push('\n');
        t.buf = buf;
        if t.buf.len() >= FLUSH_AT {
            t.flush();
        }
    });
}

/// Innermost open span id on this thread, if any (and tracing is on).
/// Capture this before a fan-out and hand it to [`span_under`] in each
/// worker.
pub fn current_span_id() -> Option<u64> {
    if !trace_enabled() {
        return None;
    }
    TLS.with(|tls| tls.try_borrow().ok().and_then(|t| t.stack.last().copied()))
}

/// Flush this thread's record buffer and the underlying writer. Worker
/// threads flush automatically on exit; the main thread (and the panic
/// hook installed by [`crate::install_panic_flush`]) should call this
/// before the process ends.
pub fn flush_trace() {
    TLS.with(|tls| {
        if let Ok(mut t) = tls.try_borrow_mut() {
            t.flush();
        }
    });
    let mut slot = writer_slot().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(w) = slot.as_mut() {
        let _ = w.flush();
    }
}

/// Open a span with `field = value` sugar:
/// `span!("rounding.trial", trial = i, seed = s)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::span_with(
            $name,
            &[$((stringify!($k), $crate::TraceValue::from($v))),+],
        )
    };
}

/// Record an instant event with `field = value` sugar:
/// `trace_event!("simplex.warm_diag", drifted = n, max_drift = d)`.
#[macro_export]
macro_rules! trace_event {
    ($name:expr) => {
        $crate::event($name, &[])
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::event(
            $name,
            &[$((stringify!($k), $crate::TraceValue::from($v))),+],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use std::sync::Arc;

    /// Shared writer capturing journal bytes for assertions.
    #[derive(Clone)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn with_capture<R>(f: impl FnOnce() -> R) -> (R, Vec<String>) {
        // Tests in this module share the global writer; serialize them.
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let cap = Capture(Arc::new(Mutex::new(Vec::new())));
        set_trace_writer(Box::new(cap.clone()));
        set_trace_enabled(true);
        let r = f();
        flush_trace();
        set_trace_enabled(false);
        *writer_slot().lock().unwrap_or_else(|e| e.into_inner()) = None;
        let bytes = cap.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("journal is UTF-8");
        (r, text.lines().map(str::to_string).collect())
    }

    fn parsed(lines: &[String]) -> Vec<Json> {
        lines.iter().map(|l| parse(l).expect("journal line is valid JSON")).collect()
    }

    #[test]
    fn spans_nest_and_balance() {
        let ((), lines) = with_capture(|| {
            let _outer = span!("outer", k = 1u64);
            {
                let _inner = span!("inner");
            }
            trace_event!("ping", x = 2.5f64);
        });
        let docs = parsed(&lines);
        let evs: Vec<&str> = docs
            .iter()
            .map(|d| match d.get("ev") {
                Some(Json::Str(s)) => s.as_str(),
                _ => "?",
            })
            .collect();
        assert_eq!(evs, ["B", "B", "E", "I", "E"]);
        // inner's parent is outer's id.
        let outer_id = docs[0].get("id").and_then(Json::as_f64).unwrap();
        assert_eq!(docs[1].get("parent").and_then(Json::as_f64), Some(outer_id));
        assert_eq!(docs[3].get("parent").and_then(Json::as_f64), Some(outer_id));
        assert_eq!(docs[0].get("f/k").and_then(Json::as_f64), Some(1.0));
        assert_eq!(docs[3].get("f/x").and_then(Json::as_f64), Some(2.5));
    }

    #[test]
    fn disabled_tracing_is_inert() {
        set_trace_enabled(false);
        let s = span!("nope", a = 1u64);
        assert_eq!(s.id(), 0);
        trace_event!("nope");
        assert_eq!(current_span_id(), None);
    }

    #[test]
    fn cross_thread_parent_links_via_span_under() {
        let ((), lines) = with_capture(|| {
            let outer = span!("fanout");
            let parent = current_span_id();
            assert_eq!(parent, Some(outer.id()));
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _w = span_under(parent, "worker", &[("w", TraceValue::U64(0))]);
                });
            });
        });
        let docs = parsed(&lines);
        let fanout = docs
            .iter()
            .find(|d| d.get("name") == Some(&Json::Str("fanout".into())))
            .expect("fanout span journaled");
        let worker = docs
            .iter()
            .find(|d| d.get("name") == Some(&Json::Str("worker".into())))
            .expect("worker span journaled");
        assert_eq!(
            worker.get("parent").and_then(Json::as_f64),
            fanout.get("id").and_then(Json::as_f64)
        );
        // Worker ran on a different thread.
        assert_ne!(worker.get("tid"), fanout.get("tid"));
    }

    #[test]
    fn strings_with_quotes_escape() {
        let ((), lines) = with_capture(|| {
            trace_event!("weird", msg = "a\"b\\c\nd");
        });
        let docs = parsed(&lines);
        assert_eq!(docs[0].get("f/msg"), Some(&Json::Str("a\"b\\c\nd".into())));
    }
}
