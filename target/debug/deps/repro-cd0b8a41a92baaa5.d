/root/repo/target/debug/deps/repro-cd0b8a41a92baaa5.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-cd0b8a41a92baaa5: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
