/root/repo/target/debug/deps/pipeline-4455c576d31a8a1b.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-4455c576d31a8a1b: tests/pipeline.rs

tests/pipeline.rs:
