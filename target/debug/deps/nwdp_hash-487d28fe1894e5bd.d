/root/repo/target/debug/deps/nwdp_hash-487d28fe1894e5bd.d: crates/hash/src/lib.rs crates/hash/src/key.rs crates/hash/src/keyed.rs crates/hash/src/lookup3.rs crates/hash/src/range.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp_hash-487d28fe1894e5bd.rmeta: crates/hash/src/lib.rs crates/hash/src/key.rs crates/hash/src/keyed.rs crates/hash/src/lookup3.rs crates/hash/src/range.rs Cargo.toml

crates/hash/src/lib.rs:
crates/hash/src/key.rs:
crates/hash/src/keyed.rs:
crates/hash/src/lookup3.rs:
crates/hash/src/range.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-W__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
