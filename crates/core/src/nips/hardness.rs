//! NP-hardness evidence and exact small-instance solving.
//!
//! The paper proves (via reduction from MAX-CUT, in its technical report)
//! that the discrete `e_ij` variables make the NIPS deployment problem
//! NP-hard. This module provides the machinery to *witness* the hardness
//! structure on small instances:
//!
//! - [`to_milp`] encodes a [`NipsInstance`] exactly as a mixed
//!   integer-linear program (Eqs 7–14 verbatim) for the branch-and-bound
//!   solver, giving the true integer optimum `OptNIPS`;
//! - [`integrality_gap_instance`] constructs a family where
//!   `OptLP > OptNIPS` strictly — the relaxation is genuinely fractional,
//!   so no LP-rounding scheme can be lossless (this is the phenomenon that
//!   forces the `O(1/log N)` guarantee rather than exactness).

use super::model::{DistanceModel, NipsInstance, NipsPath, NipsRule, SolutionD};
use nwdp_lp::milp::{solve_milp, MilpOpts, MilpResult};
use nwdp_lp::{Cmp, Problem, Sense, VarId};
use nwdp_topo::NodeId;
use nwdp_traffic::MatchRates;

/// Encode the instance as the exact MILP of Eqs (7)–(14).
///
/// Returns the problem plus the variable handles `(e_vars[i][j],
/// d_vars[(i,k,pos)])` needed to decode a solution.
/// Variable handles for `e_ij`, indexed `[rule][node]`.
pub type EVarGrid = Vec<Vec<VarId>>;
/// Variable handles for `d`, as `(rule, path, pos, var)`.
pub type DVarList = Vec<(usize, usize, usize, VarId)>;

pub fn to_milp(inst: &NipsInstance) -> (Problem, EVarGrid, DVarList) {
    let mut p = Problem::new(Sense::Max);
    let nr = inst.rules.len();
    let nn = inst.num_nodes;
    let e: Vec<Vec<VarId>> = (0..nr)
        .map(|i| (0..nn).map(|j| p.add_bin_var(format!("e_{i}_{j}"), 0.0)).collect())
        .collect();
    let mut d = Vec::new();
    let mut mem_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); nn];
    let mut cpu_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); nn];
    for (i, ei) in e.iter().enumerate().take(nr) {
        for (k, path) in inst.paths.iter().enumerate() {
            let mut cover = Vec::new();
            for (pos, &node) in path.nodes.iter().enumerate() {
                let v = p.add_var(format!("d_{i}_{k}_{pos}"), 0.0, 1.0, inst.weight(i, k, pos));
                mem_terms[node.index()].push((v, path.items * inst.rules[i].mem_per_item));
                cpu_terms[node.index()].push((v, path.pkts * inst.rules[i].cpu_per_pkt));
                // Eq 12: d ≤ e.
                p.add_con(
                    format!("vub_{i}_{k}_{pos}"),
                    &[(v, 1.0), (ei[node.index()], -1.0)],
                    Cmp::Le,
                    0.0,
                );
                cover.push((v, 1.0));
                d.push((i, k, pos, v));
            }
            p.add_con(format!("cov_{i}_{k}"), &cover, Cmp::Le, 1.0); // Eq 11
        }
    }
    for j in 0..nn {
        // Infinite capacities mean the constraint is absent.
        if inst.cam_cap[j].is_finite() {
            let cam: Vec<_> = (0..nr).map(|i| (e[i][j], inst.rules[i].cam_req)).collect();
            p.add_con(format!("cam_{j}"), &cam, Cmp::Le, inst.cam_cap[j]); // Eq 8
        }
        if inst.mem_cap[j].is_finite() {
            p.add_con(format!("mem_{j}"), &mem_terms[j], Cmp::Le, inst.mem_cap[j]);
            // Eq 9
        }
        if inst.cpu_cap[j].is_finite() {
            p.add_con(format!("cpu_{j}"), &cpu_terms[j], Cmp::Le, inst.cpu_cap[j]);
            // Eq 10
        }
    }
    (p, e, d)
}

/// Solve a small instance to proven integer optimality.
/// A decoded integral solution: `e[rule][node]` plus sampling fractions.
pub type ExactSolution = (Vec<Vec<bool>>, SolutionD);

pub fn solve_exact(inst: &NipsInstance, opts: &MilpOpts) -> (MilpResult, Option<ExactSolution>) {
    let (p, evars, dvars) = to_milp(inst);
    let res = solve_milp(&p, opts);
    let decoded = res.incumbent.as_ref().map(|inc| {
        let e: Vec<Vec<bool>> =
            evars.iter().map(|row| row.iter().map(|&v| inc.x[v.index()] > 0.5).collect()).collect();
        let mut d: SolutionD = SolutionD::new();
        for &(i, k, pos, v) in &dvars {
            let f = inc.x[v.index()];
            if f > 1e-9 {
                d.entry((i, k)).or_default().push((pos, f.min(1.0)));
            }
        }
        (e, d)
    });
    (res, decoded)
}

/// A tiny instance with a strict integrality gap.
///
/// One node, one path, two rules that each need **two** TCAM slots, and a
/// TCAM capacity of three: the relaxation enables each rule at level 3/4
/// and drops 75% of both rules' traffic (`OptLP = 15`), while any integral
/// placement fits only one rule (`OptNIPS = 10`) — the knapsack structure
/// hidden in Eq (8). Gap = 1.5.
pub fn integrality_gap_instance() -> NipsInstance {
    let path = NipsPath { nodes: vec![NodeId(0)], items: 1000.0, pkts: 5000.0 };
    let mut rates = MatchRates::zeros(2, 1);
    rates.set_rate(0, 0, 0.01);
    rates.set_rate(1, 0, 0.01);
    let rule = |name: &str| NipsRule {
        name: name.to_string(),
        cam_req: 2.0,
        cpu_per_pkt: 1.0,
        mem_per_item: 1.0,
    };
    NipsInstance {
        rules: vec![rule("r0"), rule("r1")],
        paths: vec![path],
        num_nodes: 1,
        cam_cap: vec![3.0],
        mem_cap: vec![f64::INFINITY],
        cpu_cap: vec![f64::INFINITY],
        dist: DistanceModel::Hops,
        match_rates: rates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nips::relax::solve_relaxation;
    use crate::nips::round::{round_best_of, RoundingOpts, Strategy};
    use nwdp_lp::rowgen::RowGenOpts;

    #[test]
    fn milp_encoding_solves_tiny_instance() {
        let inst = integrality_gap_instance();
        let (res, decoded) = solve_exact(&inst, &MilpOpts::default());
        assert!(res.proved);
        let (e, d) = decoded.expect("feasible incumbent");
        inst.check_feasible(&e, &d, 1e-6).unwrap();
    }

    #[test]
    fn strict_integrality_gap_exists() {
        let inst = integrality_gap_instance();
        let relax = solve_relaxation(&inst, &RowGenOpts::default()).unwrap();
        let (res, _) = solve_exact(&inst, &MilpOpts::default());
        let opt_ip = res.incumbent.as_ref().unwrap().objective;
        assert!(
            relax.objective > opt_ip * 1.02,
            "expected a strict gap: OptLP {} vs OptNIPS {opt_ip}",
            relax.objective
        );
    }

    #[test]
    fn rounding_respects_integer_optimum() {
        // Rounded solutions can never beat the exact integer optimum.
        let inst = integrality_gap_instance();
        let relax = solve_relaxation(&inst, &RowGenOpts::default()).unwrap();
        let (res, _) = solve_exact(&inst, &MilpOpts::default());
        let opt_ip = res.incumbent.as_ref().unwrap().objective;
        let sol = round_best_of(
            &inst,
            &relax,
            &RoundingOpts {
                strategy: Strategy::GreedyLpResolve,
                iterations: 10,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(sol.objective <= opt_ip * (1.0 + 1e-6));
        // And with the greedy refinement it should land near it here.
        assert!(sol.objective >= 0.9 * opt_ip, "{} vs {opt_ip}", sol.objective);
    }
}
