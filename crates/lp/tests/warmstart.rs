//! Warm-start correctness: resuming from an optimal snapshot after adding
//! rows must reach the same optimum as a cold solve, on both backends,
//! certified by KKT.

use nwdp_lp::simplex::{solve_warm, SolverOpts};
use nwdp_lp::{verify_kkt, Cmp, KktTol, Problem, Sense, Status};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_growing_lp(trial: u64) -> (Problem, Vec<nwdp_lp::VarId>, StdRng) {
    let mut rng = StdRng::seed_from_u64(trial * 7 + 1);
    let nv = rng.random_range(3..12);
    let mut p = Problem::new(Sense::Max);
    let vars: Vec<_> =
        (0..nv).map(|j| p.add_var(format!("x{j}"), 0.0, 1.0, rng.random_range(0.1..2.0))).collect();
    for c in 0..rng.random_range(1..4) {
        let terms: Vec<_> = vars.iter().map(|&v| (v, rng.random_range(0.2..1.5))).collect();
        p.add_con(format!("base{c}"), &terms, Cmp::Le, rng.random_range(1.0..3.0));
    }
    (p, vars, rng)
}

#[test]
fn warm_matches_cold_across_row_additions() {
    for trial in 0..120u64 {
        let (mut p, vars, mut rng) = random_growing_lp(trial);
        let mut opts = SolverOpts::default();
        if trial % 2 == 0 {
            opts.dense_row_limit = 0; // force the sparse backend half the time
        }
        let (s0, mut warm) = solve_warm(&p, &opts, None);
        assert_eq!(s0.status, Status::Optimal, "trial {trial} base");
        // Grow the problem in 2 stages, warm-starting each time.
        for stage in 0..2 {
            for c in 0..rng.random_range(1..4) {
                let k = rng.random_range(1..=vars.len());
                let terms: Vec<_> =
                    (0..k).map(|t| (vars[(t * 3 + c + stage) % vars.len()], 1.0)).collect();
                p.add_con(format!("cut{stage}_{c}"), &terms, Cmp::Le, rng.random_range(0.3..1.2));
            }
            let (sw, w2) = solve_warm(&p, &opts, warm.as_ref());
            let (sc, _) = solve_warm(&p, &opts, None);
            assert_eq!(sw.status, Status::Optimal, "trial {trial} stage {stage} warm");
            assert_eq!(sc.status, Status::Optimal, "trial {trial} stage {stage} cold");
            assert!(
                (sw.objective - sc.objective).abs() < 1e-6 * (1.0 + sc.objective.abs()),
                "trial {trial} stage {stage}: warm {} vs cold {}",
                sw.objective,
                sc.objective
            );
            verify_kkt(&p, &sw, KktTol::default())
                .unwrap_or_else(|e| panic!("trial {trial} stage {stage}: {e}"));
            warm = w2;
        }
    }
}

#[test]
fn warm_start_with_equality_and_ge_rows() {
    let mut p = Problem::new(Sense::Min);
    let x = p.add_var("x", 0.0, 10.0, 1.0);
    let y = p.add_var("y", 0.0, 10.0, 2.0);
    p.add_con("sum", &[(x, 1.0), (y, 1.0)], Cmp::Eq, 6.0);
    let opts = SolverOpts::default();
    let (s0, warm) = solve_warm(&p, &opts, None);
    assert_eq!(s0.status, Status::Optimal);
    assert!((s0.objective - 6.0).abs() < 1e-7); // all on cheap x

    // New ≥ row forces y up.
    p.add_con("force_y", &[(y, 1.0)], Cmp::Ge, 2.0);
    let (s1, _) = solve_warm(&p, &opts, warm.as_ref());
    assert_eq!(s1.status, Status::Optimal);
    assert!((s1.objective - 8.0).abs() < 1e-7, "obj {}", s1.objective);
    verify_kkt(&p, &s1, KktTol::default()).unwrap();
}

#[test]
fn mismatched_snapshot_falls_back_to_cold() {
    // Snapshot from a DIFFERENT problem (wrong n) must be ignored safely.
    let mut p1 = Problem::new(Sense::Max);
    let a = p1.add_var("a", 0.0, 1.0, 1.0);
    p1.add_con("c", &[(a, 1.0)], Cmp::Le, 1.0);
    let opts = SolverOpts::default();
    let (_, warm) = solve_warm(&p1, &opts, None);

    let mut p2 = Problem::new(Sense::Max);
    let x = p2.add_var("x", 0.0, 1.0, 1.0);
    let y = p2.add_var("y", 0.0, 1.0, 1.0);
    p2.add_con("c", &[(x, 1.0), (y, 1.0)], Cmp::Le, 1.5);
    let (s, _) = solve_warm(&p2, &opts, warm.as_ref());
    assert_eq!(s.status, Status::Optimal);
    assert!((s.objective - 1.5).abs() < 1e-7);
}

#[test]
fn warm_start_detects_new_infeasibility() {
    let mut p = Problem::new(Sense::Max);
    let x = p.add_var("x", 0.0, 5.0, 1.0);
    p.add_con("hi", &[(x, 1.0)], Cmp::Le, 4.0);
    let opts = SolverOpts::default();
    let (_, warm) = solve_warm(&p, &opts, None);
    p.add_con("impossible", &[(x, 1.0)], Cmp::Ge, 9.0);
    let (s, snap) = solve_warm(&p, &opts, warm.as_ref());
    assert_eq!(s.status, Status::Infeasible);
    assert!(snap.is_none(), "no snapshot from a failed solve");
}
