/root/repo/target/debug/deps/nwdp_lp-05b3ba9c85589c87.d: crates/lp/src/lib.rs crates/lp/src/check.rs crates/lp/src/flow.rs crates/lp/src/milp.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/rowgen.rs crates/lp/src/simplex/mod.rs crates/lp/src/simplex/dense.rs crates/lp/src/simplex/sparse.rs crates/lp/src/solution.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp_lp-05b3ba9c85589c87.rmeta: crates/lp/src/lib.rs crates/lp/src/check.rs crates/lp/src/flow.rs crates/lp/src/milp.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/rowgen.rs crates/lp/src/simplex/mod.rs crates/lp/src/simplex/dense.rs crates/lp/src/simplex/sparse.rs crates/lp/src/solution.rs Cargo.toml

crates/lp/src/lib.rs:
crates/lp/src/check.rs:
crates/lp/src/flow.rs:
crates/lp/src/milp.rs:
crates/lp/src/model.rs:
crates/lp/src/presolve.rs:
crates/lp/src/rowgen.rs:
crates/lp/src/simplex/mod.rs:
crates/lp/src/simplex/dense.rs:
crates/lp/src/simplex/sparse.rs:
crates/lp/src/solution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
