/root/repo/target/debug/deps/criterion-5abfc534deff2211.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-5abfc534deff2211.rlib: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-5abfc534deff2211.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
