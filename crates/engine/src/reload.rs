//! Closed-loop live reconfiguration: validated hot manifest reload under
//! streaming traffic.
//!
//! The batch pipeline optimizes once against a *forecast* traffic matrix
//! and replays against it. This module closes the loop: the streaming
//! data plane counts what it actually carries, and at epoch boundaries a
//! [`ReloadController`] folds those observations into the deployment's
//! unit volumes, re-solves the LP through the warm-start + dual-repair
//! chain ([`solve_nids_lp_warm`]), and swaps the freshly generated
//! manifest into every live engine — without stopping replay.
//!
//! Every candidate manifest passes through the [`validate_manifests`]
//! gate before it reaches [`Engine::set_manifest`]: coverage gaps or
//! overlaps, redundancy shortfalls, structural corruption, and capacity
//! ceiling violations are all rejected *before* the swap, and the old
//! manifest keeps serving. The [`Sabotage`] hook deliberately corrupts a
//! candidate so tests and the `repro reload` scenario can pin the
//! rejection path end to end.
//!
//! Because engines only consult the manifest (unit structure never
//! changes — re-solves alter volumes, not units), a swap is a single
//! `Arc` pointer exchange per engine between epochs; the per-connection
//! state, per-host aggregates, and meters all survive the reload. With
//! every swap rejected ([`Sabotage::Every`]) the run is bit-identical to
//! [`run_coordinated_stream`](crate::stream::run_coordinated_stream) —
//! `tests/parallel_equivalence.rs` pins that equivalence.

use crate::engine::{CoordContext, Engine, Placement};
use crate::modules::EngineError;
use crate::netwide::{flush_metrics, NetworkRun};
use crate::stream::shard_of;
use nwdp_core::migration::plan_transition;
use nwdp_core::nids::{
    generate_manifests, solve_nids_lp_warm, validate_manifests, CapacityCeiling, ManifestEntry,
    ManifestValidationError, NidsError, NidsLpConfig, NodeCaps, SamplingManifest, WarmStart,
};
use nwdp_core::resilience::covered_fraction;
use nwdp_core::{parallel, NidsDeployment, UnitKey};
use nwdp_hash::KeyedHasher;
use nwdp_obs as obs;
use nwdp_topo::{NodeId, PathDb};
use nwdp_traffic::Session;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// When (if ever) the controller corrupts its own candidate manifest
/// before validation. Used to exercise the rejection path: a sabotaged
/// candidate must be rejected by the validation gate and the previous
/// manifest must keep serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// Never corrupt: every feasible re-solve swaps.
    None,
    /// Corrupt the candidate produced at this epoch boundary (1-based,
    /// like the boundary index).
    AtEpoch(usize),
    /// Corrupt every candidate: no swap ever lands, the run must be
    /// bit-identical to a plain streaming run.
    Every,
}

/// Configuration for [`run_coordinated_stream_reload`].
#[derive(Debug, Clone)]
pub struct ReloadConfig<'a> {
    /// Number of equal traffic segments; the controller re-solves at the
    /// `epochs - 1` interior boundaries.
    pub epochs: usize,
    /// Total sessions the source yields (`Session::id` in
    /// `0..total_sessions`); boundaries split this range evenly.
    pub total_sessions: u64,
    /// Per-node capacities for the re-solve LP and the validation gate's
    /// capacity ceiling.
    pub caps: &'a [NodeCaps],
    /// Redundancy level `r` for the re-solve and the coverage check.
    pub redundancy: f64,
    /// Validation ceiling: a candidate manifest whose implied load
    /// exceeds this fraction of any node's capacity is rejected.
    pub max_load: f64,
    /// EWMA weight of the observed mix when folding it into the unit
    /// volumes (`0.0` = ignore observations, `1.0` = trust them fully).
    pub blend: f64,
    pub sabotage: Sabotage,
}

/// What happened at one epoch boundary.
#[derive(Debug, Clone)]
pub enum ReloadOutcome {
    /// Candidate validated; the new manifest is live.
    Swapped {
        /// Mean hash-space fraction that changed owners (drain cost).
        moved_fraction: f64,
    },
    /// Validation gate rejected the candidate; old manifest kept serving.
    Rejected(ManifestValidationError),
    /// The warm re-solve itself failed; old manifest kept serving.
    SolveFailed(NidsError),
}

/// One epoch-boundary decision with its bookkeeping.
#[derive(Debug, Clone)]
pub struct ReloadDecision {
    /// Boundary index (1-based: boundary `e` separates epoch `e` from
    /// `e + 1`).
    pub epoch: usize,
    /// Replay-clock position of the boundary in `[0, 1]`.
    pub at: f64,
    pub outcome: ReloadOutcome,
    /// Wall time of re-solve + manifest generation + validation.
    pub resolve_micros: u64,
    /// LP iterations the (warm) re-solve took, 0 if the solve failed.
    pub lp_iterations: usize,
    /// Network-wide covered fraction of the manifest serving *after*
    /// this boundary (the new one if swapped, the old one otherwise).
    pub coverage_after: f64,
}

/// Result of a closed-loop streaming run.
#[derive(Debug)]
pub struct ReloadRun {
    pub run: NetworkRun,
    /// One decision per interior epoch boundary.
    pub decisions: Vec<ReloadDecision>,
    /// `(replay position, covered fraction)` of the live manifest —
    /// sampled at start-of-run and after every boundary decision.
    pub coverage: Vec<(f64, f64)>,
}

impl ReloadRun {
    /// Number of boundaries whose candidate swapped in.
    pub fn swaps(&self) -> usize {
        self.decisions.iter().filter(|d| matches!(d.outcome, ReloadOutcome::Swapped { .. })).count()
    }

    /// Number of boundaries whose candidate was rejected by validation.
    pub fn rejected(&self) -> usize {
        self.decisions.iter().filter(|d| matches!(d.outcome, ReloadOutcome::Rejected(_))).count()
    }

    /// Minimum of the coverage series (the floor the repair bound is
    /// asserted against).
    pub fn coverage_floor(&self) -> f64 {
        self.coverage.iter().map(|&(_, c)| c).fold(f64::INFINITY, f64::min)
    }
}

/// Per-`(src, dst)` packet and session counts observed by the data plane
/// over one epoch. Counted once per session (at its ingress node, on the
/// owning shard), merged across workers in deterministic worker order.
#[derive(Debug, Clone, Default)]
pub struct ObservedMix {
    /// `(src, dst) → (packets, sessions)`.
    pairs: BTreeMap<(usize, usize), (u64, u64)>,
}

impl ObservedMix {
    pub fn record(&mut self, src: NodeId, dst: NodeId, pkts: u64) {
        let e = self.pairs.entry((src.index(), dst.index())).or_insert((0, 0));
        e.0 += pkts;
        e.1 += 1;
    }

    pub fn merge(&mut self, other: &ObservedMix) {
        for (&k, &(p, f)) in &other.pairs {
            let e = self.pairs.entry(k).or_insert((0, 0));
            e.0 += p;
            e.1 += f;
        }
    }

    /// Total observed `(packets, sessions)`.
    pub fn totals(&self) -> (f64, f64) {
        let (p, f) = self.pairs.values().fold((0u64, 0u64), |(ap, af), &(p, f)| (ap + p, af + f));
        (p as f64, f as f64)
    }

    /// Observed `(packets, sessions)` matching a coordination-unit key.
    fn for_key(&self, key: &UnitKey) -> (f64, f64) {
        let (p, f) = match *key {
            UnitKey::Path(s, d) => {
                self.pairs.get(&(s.index(), d.index())).copied().unwrap_or((0, 0))
            }
            UnitKey::Ingress(s) => self
                .pairs
                .iter()
                .filter(|((src, _), _)| *src == s.index())
                .fold((0, 0), |(ap, af), (_, &(p, f))| (ap + p, af + f)),
            UnitKey::Egress(d) => self
                .pairs
                .iter()
                .filter(|((_, dst), _)| *dst == d.index())
                .fold((0, 0), |(ap, af), (_, &(p, f))| (ap + p, af + f)),
        };
        (p as f64, f as f64)
    }
}

/// The closed-loop controller: owns the live deployment volumes, the
/// live manifest, and the chained warm-start basis.
pub struct ReloadController {
    dep: NidsDeployment,
    manifest: Arc<SamplingManifest>,
    basis: Option<WarmStart>,
    /// `(pkts, items)` totals per class at construction — blending
    /// re-normalizes observed shapes to these magnitudes so the LP stays
    /// in the regime the capacities were provisioned for.
    class_totals: Vec<(f64, f64)>,
    caps: Vec<NodeCaps>,
    redundancy: f64,
    max_load: f64,
    blend: f64,
}

impl ReloadController {
    pub fn new(
        dep: &NidsDeployment,
        manifest: Arc<SamplingManifest>,
        caps: &[NodeCaps],
        redundancy: f64,
        max_load: f64,
        blend: f64,
    ) -> Self {
        assert_eq!(caps.len(), dep.num_nodes, "capacity vector size mismatch");
        assert!((0.0..=1.0).contains(&blend), "blend must be in [0, 1]");
        let mut class_totals = vec![(0.0f64, 0.0f64); dep.classes.len()];
        for u in &dep.units {
            class_totals[u.class].0 += u.pkts;
            class_totals[u.class].1 += u.items;
        }
        ReloadController {
            dep: dep.clone(),
            manifest,
            basis: None,
            class_totals,
            caps: caps.to_vec(),
            redundancy,
            max_load,
            blend,
        }
    }

    /// The manifest currently serving.
    pub fn manifest(&self) -> Arc<SamplingManifest> {
        self.manifest.clone()
    }

    /// The deployment (with blended volumes) the live manifest was
    /// generated for.
    pub fn deployment(&self) -> &NidsDeployment {
        &self.dep
    }

    /// Fold `observed` into the unit volumes: each unit's new volume is
    /// an EWMA of its current volume and the *observed traffic shape*
    /// re-scaled to the class's baseline magnitude. Re-normalizing keeps
    /// the LP coefficients in the provisioned-capacity regime — the
    /// optimum is invariant to uniform volume scaling, so only the shape
    /// matters.
    fn blended_deployment(&self, observed: &ObservedMix) -> NidsDeployment {
        let (tp, tf) = observed.totals();
        let mut next = self.dep.clone();
        if tp <= 0.0 {
            return next; // no traffic observed: nothing to learn
        }
        for unit in &mut next.units {
            let (op, of) = observed.for_key(&unit.key);
            let (base_p, base_i) = self.class_totals[unit.class];
            unit.pkts = (1.0 - self.blend) * unit.pkts + self.blend * (op / tp) * base_p;
            if tf > 0.0 {
                unit.items = (1.0 - self.blend) * unit.items + self.blend * (of / tf) * base_i;
            }
        }
        next
    }

    /// Re-solve against the blended volumes, generate + validate a
    /// candidate manifest, and swap it in if (and only if) it passes the
    /// gate. On rejection or solve failure the previous manifest (and
    /// deployment) stay live.
    pub fn resolve(
        &mut self,
        epoch: usize,
        at: f64,
        observed: &ObservedMix,
        sabotage: bool,
    ) -> ReloadDecision {
        let t0 = std::time::Instant::now();
        let metrics = obs::enabled();
        if metrics {
            obs::Scope::new("reload").counter("resolves").inc();
        }
        let next_dep = self.blended_deployment(observed);
        let mut lp = NidsLpConfig::homogeneous(next_dep.num_nodes, self.caps[0]);
        lp.caps = self.caps.clone();
        lp.redundancy = self.redundancy;

        let mut lp_iterations = 0usize;
        let outcome = match solve_nids_lp_warm(&next_dep, &lp, self.basis.as_ref()) {
            Err(e) => {
                if metrics {
                    obs::Scope::new("reload").counter("solve_failed").inc();
                }
                ReloadOutcome::SolveFailed(e)
            }
            Ok((assignment, basis)) => {
                // Chain the basis even if validation later rejects the
                // candidate: the *solve* was sound, only the manifest is
                // discarded.
                self.basis = basis;
                lp_iterations = assignment.lp_iterations;
                let mut candidate = generate_manifests(&next_dep, &assignment.d);
                if sabotage {
                    candidate = sabotage_manifest(&candidate);
                }
                let ceiling = CapacityCeiling { caps: &self.caps, max_load: self.max_load };
                match validate_manifests(&next_dep, &candidate, self.redundancy, Some(&ceiling)) {
                    Err(e) => {
                        if metrics {
                            obs::Scope::new("reload").counter("rejected").inc();
                        }
                        ReloadOutcome::Rejected(e)
                    }
                    Ok(()) => {
                        let plan =
                            plan_transition(&self.dep, &self.manifest, &next_dep, &candidate, 0);
                        self.dep = next_dep;
                        self.manifest = Arc::new(candidate);
                        if metrics {
                            let s = obs::Scope::new("reload");
                            s.counter("swaps").inc();
                            s.gauge("moved_fraction").set_max(plan.mean_moved_fraction);
                        }
                        ReloadOutcome::Swapped { moved_fraction: plan.mean_moved_fraction }
                    }
                }
            }
        };
        let resolve_micros = t0.elapsed().as_micros() as u64;
        if metrics {
            obs::Scope::new("reload").counter("resolve_us").add(resolve_micros);
        }
        let coverage_after = covered_fraction(&self.dep, &self.manifest, &[]);
        ReloadDecision { epoch, at, outcome, resolve_micros, lp_iterations, coverage_after }
    }
}

/// Corrupt a manifest the way a buggy reconfiguration would: truncate the
/// widest entry's hash range to half its measure, opening a coverage gap
/// the validation gate must catch.
fn sabotage_manifest(m: &SamplingManifest) -> SamplingManifest {
    let mut victim: Option<(usize, usize, f64)> = None; // (node, pos, measure)
    for j in 0..m.num_nodes() {
        for (pos, e) in m.node_entries(NodeId(j)).iter().enumerate() {
            let measure = e.ranges.measure();
            if victim.is_none_or(|(_, _, best)| measure > best) {
                victim = Some((j, pos, measure));
            }
        }
    }
    let Some((vj, vpos, measure)) = victim else {
        return m.clone(); // empty manifest: nothing to corrupt
    };
    let mut entries: Vec<(NodeId, ManifestEntry)> = Vec::new();
    for j in 0..m.num_nodes() {
        for (pos, e) in m.node_entries(NodeId(j)).iter().enumerate() {
            let mut entry = e.clone();
            if j == vj && pos == vpos {
                entry.ranges = entry.ranges.take_measure(measure * 0.5);
            }
            entries.push((NodeId(j), entry));
        }
    }
    SamplingManifest::from_entries(m.num_nodes(), entries)
}

struct Worker<'a, I: Iterator<Item = Session>> {
    engine: Engine<'a>,
    it: std::iter::Peekable<I>,
}

fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// [`run_coordinated_stream`](crate::stream::run_coordinated_stream) with
/// a closed reconfiguration loop.
///
/// The trace is split into `cfg.epochs` equal segments by session id. At
/// each interior boundary the runner pauses the fan-out (workers park at
/// the boundary, engines and iterators stay live), hands the epoch's
/// [`ObservedMix`] to a [`ReloadController`], and — if the re-solved
/// candidate passes [`validate_manifests`] — swaps the new manifest into
/// every engine via [`Engine::set_manifest`]. Per-connection state and
/// meters survive every swap; a rejected candidate leaves the old
/// manifest serving.
///
/// Records the live manifest's covered fraction into the
/// `resilience.coverage` replay-clock series (when metrics are enabled)
/// and returns the full coverage/decision history in [`ReloadRun`].
// Mirrors `run_coordinated_stream`'s signature plus the reload config.
#[allow(clippy::too_many_arguments)]
pub fn run_coordinated_stream_reload<I, S>(
    dep: &NidsDeployment,
    manifest: &SamplingManifest,
    paths: &PathDb,
    source: S,
    placement: Placement,
    hasher: KeyedHasher,
    shards: usize,
    cfg: &ReloadConfig<'_>,
) -> Result<ReloadRun, EngineError>
where
    I: Iterator<Item = Session> + Send,
    S: Fn() -> I,
{
    assert_ne!(placement, Placement::Unmodified, "reload run needs a coordinated placement");
    let shards = shards.max(1);
    let epochs = cfg.epochs.max(1);
    let names: Vec<String> = dep.classes.iter().map(|c| c.name.clone()).collect();
    let _span = obs::span!("engine.reload", nodes = dep.num_nodes, shards = shards);

    let mut controller = ReloadController::new(
        dep,
        Arc::new(manifest.clone()),
        cfg.caps,
        cfg.redundancy,
        cfg.max_load,
        cfg.blend,
    );

    // Persistent per-(node, shard) workers: engines and iterators live
    // across epochs so connection state survives every swap.
    let mut cells: Vec<Mutex<Option<Worker<'_, I>>>> = Vec::with_capacity(dep.num_nodes * shards);
    for j in 0..dep.num_nodes {
        for _shard in 0..shards {
            let coord = CoordContext::with_shared(dep, controller.manifest());
            let engine = Engine::new(NodeId(j), placement, &names, Some(coord), hasher)?;
            cells.push(Mutex::new(Some(Worker { engine, it: source().peekable() })));
        }
    }

    let mut decisions = Vec::with_capacity(epochs.saturating_sub(1));
    let mut coverage = Vec::with_capacity(epochs);
    coverage.push((0.0, covered_fraction(controller.deployment(), &controller.manifest(), &[])));

    for e in 1..=epochs {
        // Exclusive session-id bound of this epoch; the final epoch
        // drains whatever the source still holds.
        let hi = if e == epochs { u64::MAX } else { cfg.total_sessions * e as u64 / epochs as u64 };
        let mixes = parallel::par_map_n(cells.len(), |i| {
            let node = NodeId(i / shards);
            let shard = i % shards;
            let mut cell = locked(&cells[i]);
            let Some(worker) = cell.as_mut() else { return ObservedMix::default() };
            let mut mix = ObservedMix::default();
            while worker.it.peek().is_some_and(|s| s.id < hi) {
                let Some(session) = worker.it.next() else { break };
                if paths.path(session.src_node, session.dst_node).position(node).is_none() {
                    continue;
                }
                if shards > 1 && shard_of(&hasher, &session, shards) != shard {
                    continue;
                }
                // Count the mix once per session: at its ingress node,
                // on the shard that owns it.
                if node == session.src_node {
                    mix.record(session.src_node, session.dst_node, session.packet_count() as u64);
                }
                worker.engine.process_session_fast(&session);
            }
            mix
        });

        if e == epochs {
            break;
        }
        let mut observed = ObservedMix::default();
        for m in &mixes {
            observed.merge(m);
        }
        let sabotage = match cfg.sabotage {
            Sabotage::None => false,
            Sabotage::AtEpoch(k) => e == k,
            Sabotage::Every => true,
        };
        let at = e as f64 / epochs as f64;
        let decision = controller.resolve(e, at, &observed, sabotage);
        if matches!(decision.outcome, ReloadOutcome::Swapped { .. }) {
            let live = controller.manifest();
            for cell in &cells {
                if let Some(worker) = locked(cell).as_mut() {
                    worker.engine.set_manifest(live.clone())?;
                }
            }
        }
        if obs::enabled() {
            obs::record_series("resilience.coverage", at, decision.coverage_after);
        }
        coverage.push((at, decision.coverage_after));
        decisions.push(decision);
    }

    // Deterministic merge, identical to the plain streaming runner:
    // shards fold into shard 0's engine in ascending order per node.
    let mut per_node = Vec::with_capacity(dep.num_nodes);
    for j in 0..dep.num_nodes {
        let mut acc: Option<Engine<'_>> = None;
        for shard in 0..shards {
            let Some(worker) = locked(&cells[j * shards + shard]).take() else {
                unreachable!("worker cells are taken exactly once");
            };
            acc = Some(match acc {
                None => worker.engine,
                Some(mut merged) => {
                    merged.absorb_shard(worker.engine);
                    merged
                }
            });
        }
        match acc {
            Some(merged) => per_node.push(merged.stats()),
            None => unreachable!("shards >= 1: every node row has an engine"),
        }
    }
    let mut alerts = BTreeSet::new();
    for st in &per_node {
        alerts.extend(st.alerts.iter().cloned());
    }
    let run = NetworkRun { per_node, alerts };
    if obs::enabled() {
        flush_metrics("reload", &run);
    }
    Ok(ReloadRun { run, decisions, coverage })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::run_coordinated_stream;
    use nwdp_core::nids::{solve_nids_lp, NidsLpConfig, NodeCaps};
    use nwdp_core::{build_units, AnalysisClass};
    use nwdp_topo::internet2;
    use nwdp_traffic::{SessionStream, TraceConfig, TrafficMatrix, VolumeModel};

    fn setup() -> (NidsDeployment, SamplingManifest, nwdp_topo::PathDb, TrafficMatrix) {
        let topo = internet2();
        let paths = nwdp_topo::PathDb::shortest_paths(&topo);
        let tm = TrafficMatrix::gravity(&topo);
        let vol = VolumeModel::internet2_baseline();
        let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
        let lp = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let assignment = solve_nids_lp(&dep, &lp).expect("lp solves");
        let manifest = generate_manifests(&dep, &assignment.d);
        (dep, manifest, paths, tm)
    }

    fn synthetic_mix(dep: &NidsDeployment) -> ObservedMix {
        // A lopsided mix: pair (s, d) weight grows with s + 2 d.
        let mut mix = ObservedMix::default();
        for s in 0..dep.num_nodes {
            for d in 0..dep.num_nodes {
                if s == d {
                    continue;
                }
                mix.record(NodeId(s), NodeId(d), (10 + s + 2 * d) as u64);
            }
        }
        mix
    }

    #[test]
    fn controller_swaps_clean_candidates_and_rejects_sabotaged_ones() {
        let (dep, manifest, _paths, _tm) = setup();
        let caps = vec![NodeCaps { cpu: 2e8, mem: 4e9 }; dep.num_nodes];
        let mut ctl = ReloadController::new(&dep, Arc::new(manifest), &caps, 1.0, 1.0, 0.5);
        let mix = synthetic_mix(&dep);

        let d1 = ctl.resolve(1, 0.25, &mix, false);
        assert!(matches!(d1.outcome, ReloadOutcome::Swapped { .. }), "clean resolve must swap");
        assert!(d1.coverage_after > 1.0 - 1e-9, "validated manifest covers everything");
        let live = ctl.manifest();

        let d2 = ctl.resolve(2, 0.5, &mix, true);
        match d2.outcome {
            ReloadOutcome::Rejected(ManifestValidationError::CoverageGap { .. }) => {}
            other => panic!("sabotaged candidate must be rejected with a gap, got {other:?}"),
        }
        // Old manifest still serving after the rejection.
        assert!(Arc::ptr_eq(&live, &ctl.manifest()), "rejection must keep the old manifest");
        assert!(d2.coverage_after > 1.0 - 1e-9);

        // The basis chains across resolves: the second clean solve should
        // be warm (few iterations relative to a cold solve).
        let d3 = ctl.resolve(3, 0.75, &mix, false);
        assert!(matches!(d3.outcome, ReloadOutcome::Swapped { .. }));
    }

    #[test]
    fn reload_run_with_all_swaps_rejected_matches_plain_stream() {
        let (dep, manifest, paths, tm) = setup();
        let caps = vec![NodeCaps { cpu: 2e8, mem: 4e9 }; dep.num_nodes];
        let cfg = TraceConfig::new(1200, 23);
        let hasher = KeyedHasher::with_key(5);
        let topo = internet2();

        let plain = run_coordinated_stream(
            &dep,
            &manifest,
            &paths,
            || SessionStream::new(&topo, &tm, &cfg),
            Placement::EventEngine,
            hasher,
            3,
        )
        .expect("stream runs");

        let reload_cfg = ReloadConfig {
            epochs: 4,
            total_sessions: 1200,
            caps: &caps,
            redundancy: 1.0,
            max_load: 1.0,
            blend: 0.5,
            sabotage: Sabotage::Every,
        };
        let reload = run_coordinated_stream_reload(
            &dep,
            &manifest,
            &paths,
            || SessionStream::new(&topo, &tm, &cfg),
            Placement::EventEngine,
            hasher,
            3,
            &reload_cfg,
        )
        .expect("reload runs");

        assert_eq!(reload.swaps(), 0, "Sabotage::Every must reject every candidate");
        assert_eq!(reload.rejected(), 3);
        assert_eq!(plain.alerts, reload.run.alerts);
        for (a, b) in plain.per_node.iter().zip(&reload.run.per_node) {
            assert_eq!(a.packets, b.packets, "node {}", a.node.0);
            assert_eq!(a.connections, b.connections, "node {}", a.node.0);
            assert_eq!(a.cpu_cycles, b.cpu_cycles, "node {}", a.node.0);
            assert_eq!(a.mem_peak, b.mem_peak, "node {}", a.node.0);
        }
        // Coverage never dropped: the old (full-coverage) manifest kept
        // serving through every rejection.
        assert!(reload.coverage_floor() > 1.0 - 1e-9);
    }

    #[test]
    fn reload_run_completes_live_swaps_without_stopping_replay() {
        let (dep, manifest, paths, tm) = setup();
        let caps = vec![NodeCaps { cpu: 2e8, mem: 4e9 }; dep.num_nodes];
        let cfg = TraceConfig::new(1600, 31);
        let hasher = KeyedHasher::with_key(5);
        let topo = internet2();

        let reload_cfg = ReloadConfig {
            epochs: 5,
            total_sessions: 1600,
            caps: &caps,
            redundancy: 1.0,
            max_load: 1.0,
            blend: 0.5,
            sabotage: Sabotage::AtEpoch(2),
        };
        let reload = run_coordinated_stream_reload(
            &dep,
            &manifest,
            &paths,
            || SessionStream::new(&topo, &tm, &cfg),
            Placement::EventEngine,
            hasher,
            2,
            &reload_cfg,
        )
        .expect("reload runs");

        assert_eq!(reload.decisions.len(), 4);
        assert_eq!(reload.swaps(), 3, "three boundaries swap, the sabotaged one is rejected");
        assert_eq!(reload.rejected(), 1);
        assert!(reload.coverage_floor() > 1.0 - 1e-9, "coverage never dips below the bound");
        // The data plane processed the whole trace despite the swaps:
        // every node saw exactly its on-path packets.
        let trace = nwdp_traffic::generate_trace(&topo, &tm, &cfg);
        for st in &reload.run.per_node {
            let expect: u64 =
                trace.onpath_sessions(&paths, st.node).map(|s| s.packet_count() as u64).sum();
            assert_eq!(st.packets, expect, "node {}", st.node.0);
        }
    }
}
