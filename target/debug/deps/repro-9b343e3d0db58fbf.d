/root/repo/target/debug/deps/repro-9b343e3d0db58fbf.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-9b343e3d0db58fbf: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
