/root/repo/target/debug/deps/pipeline-f18fdac0860a1f6e.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-f18fdac0860a1f6e.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
