//! Bounded-variable two-phase revised simplex.
//!
//! The driver is generic over a [`BasisBackend`] that maintains the basis
//! factorization: [`dense::DenseInverse`] keeps an explicit dense `B⁻¹`
//! (best for up to a few thousand rows); [`sparse::SparseFactors`] keeps a
//! sparse LU with eta updates for large structured problems such as the
//! NIPS relaxations.
//!
//! Design notes:
//! - **Standard form.** Every row gets a slack with bounds encoding the
//!   comparison (`≤` → `[0, ∞)`, `≥` → `(-∞, 0]`, `=` → `[0, 0]`).
//! - **Crash basis.** Rows whose initial residual fits in the slack's
//!   bounds start with the slack basic; only the remaining rows receive
//!   phase-1 artificials, keeping phase 1 short.
//! - **Bounded ratio test** with bound flips, tie-breaking on pivot
//!   magnitude, and Bland's rule engaged after a run of degenerate pivots
//!   (anti-cycling).
//! - **Self-checking.** Basic values are recomputed periodically; a
//!   residual alarm triggers refactorization.
//!
//! # Warm starts
//!
//! Every optimal solve emits a [`WarmStart`] snapshot — the final basis
//! (variable states plus values). A later solve can restart from it via
//! [`solve_from`] / [`solve_warm`] when the variable count is unchanged
//! and rows were only appended (`w.n == n`, `w.m <= m`). Within that
//! shape, *anything else may change*: objective costs (the FPL oracle's
//! perturbed weights), variable bounds (rules rounded on/off), right-hand
//! sides (capacity what-ifs) and even matrix coefficients (hardware
//! upgrades) — the snapshot is only a starting-basis guess, re-validated
//! against the new problem before any pivoting happens.
//!
//! ## Fallback semantics
//!
//! A warm start is **never trusted blindly**; it falls back to a cold
//! solve (and bumps `simplex.warmstart_fallbacks`, attributed to
//! `simplex.warmstart_rejected` or `simplex.warmstart_singular`) when
//!
//! 1. the dimensions changed (`n` differs, or rows were removed),
//! 2. the snapshot is internally inconsistent (basic-variable count does
//!    not match the basis size),
//! 3. the restored basis matrix is singular under the new coefficients,
//! 4. the recomputed basic values are non-finite or violate the new
//!    bounds beyond tolerance **and** the basis is not dual feasible
//!    either (see below) — feasible in neither sense, nothing to repair.
//!
//! Case 4 used to cover every primal-infeasible restart; since the dual
//! phase landed it is the last resort only. A validated basis that is
//! primal infeasible under the new bounds/rhs/coefficients but *dual
//! feasible* under the new costs (possibly after flipping boxed nonbasic
//! variables to the bound their reduced cost points at) is **repaired in
//! place by dual simplex pivots**: leaving-variable pricing picks the
//! most-violating basic variable, a BTRAN row extraction
//! ([`BasisBackend::btran_unit`]) prices the pivot row, and the dual
//! ratio test picks the entering column that preserves dual feasibility.
//! A bounded anti-cycling rule mirrors the primal one (Bland-style
//! smallest-index selection after a run of degenerate dual pivots). The
//! repair is observable as `simplex.dual_phase_runs` / `dual_repairs` /
//! `dual_pivots` / `dual_flips`; a dual phase that stalls (iteration
//! limit, no admissible pivot, singular basis) falls back cold like any
//! other rejection. `NWDP_NO_DUAL=1` (or `SolverOpts::dual_phase =
//! false`) disables the phase entirely, restoring the old reject-to-cold
//! behavior.
//!
//! Accepted restarts bump `simplex.warmstart_hits` and report their
//! pivot count under `simplex.warmstart_iterations`, so the
//! iteration-savings of a warm-started loop are directly readable from a
//! metrics snapshot (`simplex.iterations` minus the warm share). When
//! only costs changed the old basis is still primal feasible, phase 1 is
//! skipped entirely, and the solve resumes as if the objective had been
//! swapped mid-run; when only new rows arrived the extended basis is
//! block-triangular and phase 1 repairs just the new rows; when
//! bounds/rhs/coefficients shifted the optimum away from the old vertex,
//! the dual phase walks there without ever discarding the basis.

pub mod dense;
pub mod sparse;

use crate::model::{Cmp, Problem, Sense};
use crate::solution::{Solution, Status};
use nwdp_obs as obs;
use std::time::Instant;

/// The basis matrix handed to [`BasisBackend::refactor`] was singular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularBasis;

/// Abstraction over the basis factorization.
pub trait BasisBackend {
    /// Reset to the identity basis of size `m`.
    fn reset_identity(&mut self, m: usize);
    /// Rebuild the factorization from the given basis columns (sparse, in
    /// basis-position order). `Err` means the matrix is singular.
    fn refactor(&mut self, m: usize, basis_cols: &[&[(usize, f64)]]) -> Result<(), SingularBasis>;
    /// `out = B⁻¹ a` for a sparse column `a`.
    fn ftran(&self, col: &[(usize, f64)], out: &mut [f64]);
    /// `out = B⁻ᵀ c` for a dense vector `c`.
    fn btran(&self, c: &[f64], out: &mut [f64]);
    /// Rank-one replace: basis position `pivot_row` is replaced by the
    /// entering column whose FTRAN image is `y`.
    fn update(&mut self, pivot_row: usize, y: &[f64]);
    /// Sparse FTRAN: `out` must be all zeros on entry; on return `touched`
    /// lists (a superset of) the indices of `out`'s nonzeros. The default
    /// delegates to the dense [`Self::ftran`] and scans.
    fn ftran_sparse(&self, col: &[(usize, f64)], out: &mut [f64], touched: &mut Vec<usize>) {
        self.ftran(col, out);
        touched.clear();
        for (i, &v) in out.iter().enumerate() {
            if v != 0.0 {
                touched.push(i);
            }
        }
    }
    /// [`Self::update`] with the nonzero support of `y` known.
    fn update_sparse(&mut self, pivot_row: usize, y: &[f64], _touched: &[usize]) {
        self.update(pivot_row, y);
    }
    /// `out = B⁻ᵀ eᵣ` — row `r` of `B⁻¹`. The dual phase uses it to
    /// extract the pivot row of the tableau (`αⱼ = out · aⱼ`). The
    /// default BTRANs a materialized unit vector; backends override it
    /// with a cheaper direct extraction.
    fn btran_unit(&self, r: usize, out: &mut [f64]) {
        let mut e = vec![0.0; out.len()];
        e[r] = 1.0;
        self.btran(&e, out);
    }
    /// Backend suggests a refactorization would be worthwhile (e.g. the
    /// eta file grew past its budget).
    fn hint_refactor(&self) -> bool {
        false
    }
}

/// Solver options.
#[derive(Debug, Clone)]
pub struct SolverOpts {
    /// Hard iteration cap (per phase). `None` derives one from problem size.
    pub max_iters: Option<usize>,
    /// Feasibility tolerance.
    pub tol_feas: f64,
    /// Reduced-cost (optimality) tolerance.
    pub tol_dj: f64,
    /// Use the dense backend when the row count is at most this.
    pub dense_row_limit: usize,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub bland_trigger: usize,
    /// Recompute basic values every this many iterations.
    pub refresh_every: usize,
    /// Repair dual-feasible/primal-infeasible warm bases with dual
    /// simplex pivots instead of falling back cold. Defaults to on;
    /// `NWDP_NO_DUAL=1` flips the default off (emergency escape hatch —
    /// objectives are unaffected either way, only the pivot path).
    pub dual_phase: bool,
    /// Pivot budget for the dual repair phase. `None` derives
    /// `4m + 100` from the row count: worthwhile repairs land well under
    /// it (measured worst case ~2.6m pivots on the NIDS upgrade sweep,
    /// most need a handful), while a degenerate crawl that would run past
    /// it costs more than the cold solve it falls back to — and without a
    /// budget such a crawl burns the full `max_iters` cap, which is sized
    /// for complete cold solves and can be two orders of magnitude
    /// larger (a ~100 s stall observed in the reload loop's re-solves).
    pub dual_budget: Option<usize>,
}

/// `NWDP_NO_DUAL` read once per process (same pattern as the trace env
/// gates): set to any value to disable the dual repair phase by default.
fn dual_phase_default() -> bool {
    static NO_DUAL: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    !*NO_DUAL.get_or_init(|| std::env::var_os("NWDP_NO_DUAL").is_some())
}

impl Default for SolverOpts {
    fn default() -> Self {
        SolverOpts {
            max_iters: None,
            tol_feas: 1e-7,
            tol_dj: 1e-9,
            dense_row_limit: 1500,
            bland_trigger: 80,
            refresh_every: 500,
            dual_phase: dual_phase_default(),
            dual_budget: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum VState {
    Basic(usize),
    AtLower,
    AtUpper,
    FreeZero,
}

struct Core<'a, B: BasisBackend> {
    m: usize,
    ncols: usize,
    n_struct: usize,
    cols: Vec<Vec<(usize, f64)>>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    cost: Vec<f64>,
    state: Vec<VState>,
    basis: Vec<usize>,
    xb: Vec<f64>,
    rhs: Vec<f64>,
    backend: &'a mut B,
    opts: &'a SolverOpts,
    iterations: usize,
    // scratch
    y: Vec<f64>,
    y_touched: Vec<usize>,
    pi: Vec<f64>,
    cb: Vec<f64>,
    /// BTRAN image of the leaving row's unit vector (dual pricing).
    rho: Vec<f64>,
    degen_run: usize,
    bland: bool,
    /// Keep Bland's rule on for the whole solve (singular-restart mode).
    force_bland: bool,
    /// Partial-pricing cursor (section index).
    price_section: usize,
    trace: bool,
    /// A refactorization failed mid-solve; the factorization is stale and
    /// the phase must abort (the driver restarts from the slack basis).
    singular: bool,
    // Plain-local metric tallies, flushed once per solve when the obs
    // gate is on (never an atomic op per pivot).
    n_pivots: u64,
    n_bound_flips: u64,
    n_degen: u64,
    n_refactor: u64,
    n_dual_pivots: u64,
    n_dual_flips: u64,
    dual_attempted: bool,
    dual_repaired: bool,
}

enum PhaseEnd {
    Optimal,
    Unbounded,
    IterLimit,
    /// Basis factorization went singular; restart from the slack basis.
    Singular,
}

/// Outcome of the dual repair phase.
enum DualEnd {
    /// Every basic value is back inside its bounds; hand off to phase 2.
    PrimalFeasible,
    /// Pivot budget exhausted before feasibility was restored.
    IterLimit,
    /// A violated row admits no entering column (dual unbounded — the
    /// problem is primal infeasible, or the numerics drifted). The cold
    /// retry delivers the authoritative verdict either way.
    NoPivot,
    /// Basis factorization went singular; restart from the slack basis.
    Singular,
}

impl<'a, B: BasisBackend> Core<'a, B> {
    fn var_value(&self, j: usize) -> f64 {
        match self.state[j] {
            VState::Basic(r) => self.xb[r],
            VState::AtLower => self.lb[j],
            VState::AtUpper => self.ub[j],
            VState::FreeZero => 0.0,
        }
    }

    /// Recompute all basic values from nonbasic values (error flush), and
    /// refactorize on residual alarm.
    fn refresh(&mut self) {
        let mut v = self.rhs.clone();
        for j in 0..self.ncols {
            let xj = match self.state[j] {
                VState::Basic(_) => continue,
                VState::AtLower => self.lb[j],
                VState::AtUpper => self.ub[j],
                VState::FreeZero => 0.0,
            };
            if xj != 0.0 {
                for &(row, a) in &self.cols[j] {
                    v[row] -= a * xj;
                }
            }
        }
        // xb = B^{-1} v
        let vcol: Vec<(usize, f64)> =
            v.iter().enumerate().filter(|(_, x)| **x != 0.0).map(|(i, x)| (i, *x)).collect();
        let mut newxb = vec![0.0; self.m];
        self.backend.ftran(&vcol, &mut newxb);
        // Residual alarm: || B newxb - v || should be tiny.
        let mut resid = vec![0.0; self.m];
        for (pos, &bj) in self.basis.iter().enumerate() {
            let xv = newxb[pos];
            if xv != 0.0 {
                for &(row, a) in &self.cols[bj] {
                    resid[row] += a * xv;
                }
            }
        }
        let mut worst = 0.0f64;
        for i in 0..self.m {
            worst = worst.max((resid[i] - v[i]).abs());
        }
        if worst > 1e-6 || self.backend.hint_refactor() {
            let basis_cols: Vec<&[(usize, f64)]> =
                self.basis.iter().map(|&j| self.cols[j].as_slice()).collect();
            self.n_refactor += 1;
            match self.backend.refactor(self.m, &basis_cols) {
                Ok(()) => self.backend.ftran(&vcol, &mut newxb),
                Err(SingularBasis) => {
                    // The current basis matrix is numerically singular; any
                    // further pivoting on the stale factorization would only
                    // drift. Flag it so the phase driver aborts and restarts
                    // from the (always nonsingular) slack basis.
                    self.singular = true;
                }
            }
        }
        self.xb = newxb;
    }

    /// Price nonbasic columns and choose an entering variable, using
    /// rotating-section partial pricing: scan sections of columns until
    /// one yields an improving candidate (Dantzig within the section);
    /// declare optimality only after a full rotation finds nothing. Bland
    /// mode falls back to a full smallest-index scan (anti-cycling needs
    /// it).
    fn price(&mut self, banned: &[usize]) -> Option<(usize, f64)> {
        for (pos, &j) in self.basis.iter().enumerate() {
            self.cb[pos] = self.cost[j];
        }
        let (pi, cb) = (&mut self.pi, &self.cb);
        self.backend.btran(cb, pi);

        const SECTION: usize = 16 * 1024;
        let nsec = self.ncols.div_ceil(SECTION).max(1);
        let sections: Vec<usize> = if self.bland {
            (0..nsec).collect() // full scan in index order
        } else {
            (0..nsec).map(|o| (self.price_section + o) % nsec).collect()
        };
        for s in sections {
            let lo = s * SECTION;
            let hi = ((s + 1) * SECTION).min(self.ncols);
            let mut best: Option<(usize, f64, f64)> = None; // (var, dj, score)
            for j in lo..hi {
                if matches!(self.state[j], VState::Basic(_)) {
                    continue;
                }
                if self.lb[j] == self.ub[j] {
                    continue; // fixed: can never move
                }
                if !banned.is_empty() && banned.contains(&j) {
                    continue;
                }
                let mut dj = self.cost[j];
                for &(row, a) in &self.cols[j] {
                    dj -= self.pi[row] * a;
                }
                let improving = match self.state[j] {
                    VState::AtLower => dj < -self.opts.tol_dj,
                    VState::AtUpper => dj > self.opts.tol_dj,
                    VState::FreeZero => dj.abs() > self.opts.tol_dj,
                    VState::Basic(_) => unreachable!(),
                };
                if !improving {
                    continue;
                }
                if self.bland {
                    return Some((j, dj));
                }
                let score = dj.abs();
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((j, dj, score));
                }
            }
            if let Some((j, dj, _)) = best {
                self.price_section = s;
                return Some((j, dj));
            }
        }
        None
    }

    /// One simplex phase with the current `cost` vector.
    fn iterate(&mut self, max_iters: usize, allow_unbounded: bool) -> PhaseEnd {
        let mut banned: Vec<usize> = Vec::new();
        let mut local_iters = 0usize;
        loop {
            if local_iters >= max_iters {
                return PhaseEnd::IterLimit;
            }
            let Some((q, dj)) = self.price(&banned) else {
                return PhaseEnd::Optimal;
            };
            let dir = match self.state[q] {
                VState::AtLower => 1.0,
                VState::AtUpper => -1.0,
                VState::FreeZero => {
                    if dj < 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                }
                VState::Basic(_) => unreachable!(),
            };
            // Zero the previous iteration's support, then sparse FTRAN.
            for &i in &self.y_touched {
                self.y[i] = 0.0;
            }
            let mut touched = std::mem::take(&mut self.y_touched);
            self.backend.ftran_sparse(&self.cols[q], &mut self.y, &mut touched);
            self.y_touched = touched;

            // Ratio test (over the FTRAN support only).
            let gap = self.ub[q] - self.lb[q]; // inf for free/one-sided vars
            let mut best_t = if gap.is_finite() { gap } else { f64::INFINITY };
            let mut leaving: Option<(usize, VState)> = None; // (row, state var takes)
            let mut best_pivot_abs = 0.0f64;
            for ti_idx in 0..self.y_touched.len() {
                let i = self.y_touched[ti_idx];
                let yi = self.y[i];
                if yi.abs() <= 1e-11 {
                    continue;
                }
                let bi = self.basis[i];
                let delta = -dir * yi; // d x_B[i] / d t
                let (ti, hits) = if delta > 0.0 {
                    if self.ub[bi].is_finite() {
                        (((self.ub[bi] - self.xb[i]) / delta).max(0.0), VState::AtUpper)
                    } else {
                        continue;
                    }
                } else {
                    if self.lb[bi].is_finite() {
                        (((self.xb[i] - self.lb[bi]) / -delta).max(0.0), VState::AtLower)
                    } else {
                        continue;
                    }
                };
                let better = if self.bland {
                    // Bland: among blocking rows (ti <= best_t), smallest var index.
                    ti < best_t - 1e-12
                        || (ti <= best_t + 1e-12 && leaving.is_none_or(|(r, _)| bi < self.basis[r]))
                } else {
                    ti < best_t - 1e-9 || (ti <= best_t + 1e-9 && yi.abs() > best_pivot_abs)
                };
                if better {
                    best_t = best_t.min(ti);
                    leaving = Some((i, hits));
                    best_pivot_abs = yi.abs();
                }
            }

            if best_t.is_infinite() {
                return if allow_unbounded {
                    PhaseEnd::Unbounded
                } else {
                    // Phase 1 objective is bounded below by 0; this signals
                    // numerical trouble. Treat as iteration failure.
                    PhaseEnd::IterLimit
                };
            }

            // Reject numerically bad pivots and retry pricing without q.
            if let Some((r, _)) = leaving {
                if self.y[r].abs() < 1e-9 && banned.len() < 16 {
                    banned.push(q);
                    continue;
                }
            }
            banned.clear();

            let t = best_t;
            // Move basics (support only).
            if t != 0.0 {
                for idx in 0..self.y_touched.len() {
                    let i = self.y_touched[idx];
                    let yi = self.y[i];
                    if yi != 0.0 {
                        self.xb[i] -= dir * t * yi;
                    }
                }
            }

            match leaving {
                None => {
                    // Bound flip: q jumps to its other bound.
                    self.n_bound_flips += 1;
                    self.state[q] = match self.state[q] {
                        VState::AtLower => VState::AtUpper,
                        VState::AtUpper => VState::AtLower,
                        s => s, // free vars have infinite gap; unreachable
                    };
                }
                Some((r, hit)) if t < gap - 1e-12 || !gap.is_finite() => {
                    let old = self.basis[r];
                    self.state[old] =
                        if self.lb[old] == self.ub[old] { VState::AtLower } else { hit };
                    let start = match self.state[q] {
                        VState::AtLower => self.lb[q],
                        VState::AtUpper => self.ub[q],
                        VState::FreeZero => 0.0,
                        VState::Basic(_) => unreachable!(),
                    };
                    self.xb[r] = start + dir * t;
                    self.basis[r] = q;
                    self.state[q] = VState::Basic(r);
                    self.n_pivots += 1;
                    self.backend.update_sparse(r, &self.y, &self.y_touched);
                }
                Some(_) => {
                    // t == gap exactly: prefer the bound flip (no basis change).
                    self.n_bound_flips += 1;
                    self.state[q] = match self.state[q] {
                        VState::AtLower => VState::AtUpper,
                        VState::AtUpper => VState::AtLower,
                        s => s,
                    };
                }
            }

            self.iterations += 1;
            local_iters += 1;
            if t <= 1e-10 {
                self.degen_run += 1;
                self.n_degen += 1;
                if self.degen_run >= self.opts.bland_trigger {
                    self.bland = true;
                }
            } else {
                self.degen_run = 0;
                self.bland = self.force_bland;
            }
            // Refresh basic values periodically, and refactor eagerly when
            // the backend's update file has grown past its budget (critical
            // for the sparse PFI backend: FTRAN/BTRAN cost scales with the
            // eta file length).
            if self.iterations.is_multiple_of(self.opts.refresh_every)
                || self.backend.hint_refactor()
            {
                self.refresh();
                if self.singular {
                    return PhaseEnd::Singular;
                }
            }
            if self.trace && self.iterations.is_multiple_of(1000) {
                obs::trace_event!(
                    "simplex.progress",
                    iter = self.iterations,
                    m = self.m,
                    ncols = self.ncols,
                    degen_run = self.degen_run,
                    bland = self.bland
                );
            }
        }
    }

    /// Classify the current basis for dual feasibility under `self.cost`
    /// (which must already hold the phase-2 objective). Boxed nonbasic
    /// variables whose reduced cost points at their other bound are
    /// *flipped* there — a legal dual-simplex move that restores their
    /// sign condition exactly. Returns `false` when an unflippable
    /// variable (one finite bound, or free) violates its sign condition
    /// beyond a small absolute slack: that basis is dual infeasible and
    /// not worth a dual phase. Flipped variables change the primal point,
    /// so the caller must `refresh()` before pivoting when this reports
    /// any flips.
    fn dual_classify_and_flip(&mut self) -> bool {
        for (pos, &j) in self.basis.iter().enumerate() {
            self.cb[pos] = self.cost[j];
        }
        let (pi, cb) = (&mut self.pi, &self.cb);
        self.backend.btran(cb, pi);
        for j in 0..self.ncols {
            if matches!(self.state[j], VState::Basic(_)) || self.lb[j] == self.ub[j] {
                continue; // basic rows price themselves; fixed vars never move
            }
            let mut dj = self.cost[j];
            for &(row, a) in &self.cols[j] {
                dj -= self.pi[row] * a;
            }
            // Tolerated drift for violations nothing can fix: the primal
            // phase 2 after the repair mops up reduced costs this small.
            let slack = 1e-6 * (1.0 + self.cost[j].abs());
            match self.state[j] {
                VState::AtLower if dj < -self.opts.tol_dj => {
                    if self.ub[j].is_finite() {
                        self.state[j] = VState::AtUpper;
                        self.n_dual_flips += 1;
                    } else if dj < -slack {
                        return false;
                    }
                }
                VState::AtUpper if dj > self.opts.tol_dj => {
                    if self.lb[j].is_finite() {
                        self.state[j] = VState::AtLower;
                        self.n_dual_flips += 1;
                    } else if dj > slack {
                        return false;
                    }
                }
                VState::FreeZero if dj.abs() > slack => return false,
                _ => {}
            }
        }
        true
    }

    /// Dual simplex phase: restore primal feasibility while preserving
    /// dual feasibility. Each pivot picks the most-violating basic
    /// variable (leaving-variable pricing; Bland mode switches to the
    /// smallest-index violated row), BTRANs that row out of the basis
    /// ([`BasisBackend::btran_unit`]), and runs the bounded dual ratio
    /// test over the nonbasic columns: among columns whose tableau entry
    /// moves the leaving variable toward its violated bound, the one with
    /// the smallest |d_j|/|α_j| keeps every other reduced cost on the
    /// right side of zero. Degenerate dual steps (ratio ≈ 0) trip the
    /// same bounded anti-cycling rule as the primal phase: after
    /// `bland_trigger` of them in a row, both the row choice and the
    /// ratio-test tie-break turn into smallest-index (Bland) selection,
    /// which cannot cycle.
    fn iterate_dual(&mut self, max_iters: usize) -> DualEnd {
        let mut local_iters = 0usize;
        let mut degen_run = 0usize;
        let mut bland = self.force_bland;
        let mut stale_retry = false;
        loop {
            if local_iters >= max_iters {
                return DualEnd::IterLimit;
            }
            // ---- Leaving-variable pricing. ----
            let mut r = usize::MAX;
            let mut worst = self.opts.tol_feas;
            for pos in 0..self.m {
                let bi = self.basis[pos];
                let x = self.xb[pos];
                if !x.is_finite() {
                    return DualEnd::NoPivot; // poisoned values: bail cold
                }
                let v = (self.lb[bi] - x).max(x - self.ub[bi]);
                if bland {
                    if v > self.opts.tol_feas && (r == usize::MAX || bi < self.basis[r]) {
                        r = pos;
                    }
                } else if v > worst {
                    worst = v;
                    r = pos;
                }
            }
            if r == usize::MAX {
                return DualEnd::PrimalFeasible;
            }
            let bi = self.basis[r];
            let below = self.xb[r] < self.lb[bi];
            let target = if below { self.lb[bi] } else { self.ub[bi] };

            // ---- Price the pivot row: ρ = B⁻ᵀ eᵣ, π = B⁻ᵀ c_B. ----
            self.backend.btran_unit(r, &mut self.rho);
            for (pos, &j) in self.basis.iter().enumerate() {
                self.cb[pos] = self.cost[j];
            }
            let (pi, cb) = (&mut self.pi, &self.cb);
            self.backend.btran(cb, pi);

            // ---- Dual ratio test. ----
            let mut q = usize::MAX;
            let mut best_ratio = f64::INFINITY;
            let mut best_mag = 0.0f64;
            for j in 0..self.ncols {
                let (can_inc, can_dec) = match self.state[j] {
                    VState::Basic(_) => continue,
                    VState::AtLower => (true, false),
                    VState::AtUpper => (false, true),
                    VState::FreeZero => (true, true),
                };
                if self.lb[j] == self.ub[j] {
                    continue;
                }
                let mut alpha = 0.0;
                let mut dj = self.cost[j];
                for &(row, a) in &self.cols[j] {
                    alpha += self.rho[row] * a;
                    dj -= self.pi[row] * a;
                }
                if alpha.abs() <= 1e-9 {
                    continue;
                }
                // dx_B[r]/dx_j = -α_j: to move x_B[r] up (below) we need
                // α < 0 on an increasing x_j or α > 0 on a decreasing
                // one; the mirror for moving down.
                let admissible = if below {
                    (can_inc && alpha < 0.0) || (can_dec && alpha > 0.0)
                } else {
                    (can_inc && alpha > 0.0) || (can_dec && alpha < 0.0)
                };
                if !admissible {
                    continue;
                }
                // |d_j| measured in the feasible direction, clamped at 0
                // so tolerated drift never yields a negative ratio.
                let num = match self.state[j] {
                    VState::AtLower => dj.max(0.0),
                    VState::AtUpper => (-dj).max(0.0),
                    VState::FreeZero => dj.abs(),
                    VState::Basic(_) => unreachable!(),
                };
                let ratio = num / alpha.abs();
                let better = if bland {
                    ratio < best_ratio - 1e-12
                        || (ratio <= best_ratio + 1e-12 && (q == usize::MAX || j < q))
                } else {
                    ratio < best_ratio - 1e-9
                        || (ratio <= best_ratio + 1e-9 && alpha.abs() > best_mag)
                };
                if better {
                    best_ratio = best_ratio.min(ratio);
                    best_mag = alpha.abs();
                    q = j;
                }
            }
            if q == usize::MAX {
                return DualEnd::NoPivot;
            }

            // ---- Pivot: FTRAN the entering column, step, update. ----
            for &i in &self.y_touched {
                self.y[i] = 0.0;
            }
            let mut touched = std::mem::take(&mut self.y_touched);
            self.backend.ftran_sparse(&self.cols[q], &mut self.y, &mut touched);
            self.y_touched = touched;
            let yr = self.y[r];
            if yr.abs() < 1e-9 {
                // BTRAN said the entry was usable, FTRAN disagrees: the
                // factorization is stale. Refactorize once and re-price;
                // a second disagreement gives up on the repair.
                if stale_retry {
                    return DualEnd::NoPivot;
                }
                stale_retry = true;
                self.refresh();
                if self.singular {
                    return DualEnd::Singular;
                }
                continue;
            }
            stale_retry = false;
            let dxq = (self.xb[r] - target) / yr;
            for idx in 0..self.y_touched.len() {
                let i = self.y_touched[idx];
                let yi = self.y[i];
                if yi != 0.0 {
                    self.xb[i] -= dxq * yi;
                }
            }
            let xq_new = self.var_value(q) + dxq;
            self.state[bi] =
                if self.lb[bi] == self.ub[bi] || below { VState::AtLower } else { VState::AtUpper };
            self.basis[r] = q;
            self.state[q] = VState::Basic(r);
            self.xb[r] = xq_new;
            self.n_pivots += 1;
            self.n_dual_pivots += 1;
            self.backend.update_sparse(r, &self.y, &self.y_touched);

            self.iterations += 1;
            local_iters += 1;
            if best_ratio <= 1e-10 {
                degen_run += 1;
                self.n_degen += 1;
                if degen_run >= self.opts.bland_trigger {
                    bland = true;
                }
            } else {
                degen_run = 0;
                bland = self.force_bland;
            }
            if self.iterations.is_multiple_of(self.opts.refresh_every)
                || self.backend.hint_refactor()
            {
                self.refresh();
                if self.singular {
                    return DualEnd::Singular;
                }
            }
            if self.trace && self.n_dual_pivots.is_multiple_of(100) {
                obs::trace_event!(
                    "simplex.dual_progress",
                    pivots = self.n_dual_pivots,
                    m = self.m,
                    bland = bland
                );
            }
        }
    }

    /// Flush the dual-phase tallies alone. The fallback paths (dual phase
    /// failed → cold retry builds a fresh `Core`) call this so failed
    /// repairs still show up in the metrics; successful solves get the
    /// same numbers through [`Self::flush_metrics`].
    fn flush_dual_metrics(&self) {
        if !obs::enabled() || !self.dual_attempted {
            return;
        }
        let s = obs::Scope::new("simplex");
        s.counter("dual_phase_runs").inc();
        if self.dual_repaired {
            s.counter("dual_repairs").inc();
        }
        s.counter("dual_pivots").add(self.n_dual_pivots);
        s.counter("dual_flips").add(self.n_dual_flips);
    }

    /// Flush the solve's locally-tallied metrics to the global registry.
    /// Called once per terminal solve; the hot loop itself never touches
    /// an atomic.
    fn flush_metrics(&self, phase1_iters: usize, t0: Option<Instant>) {
        if !obs::enabled() {
            return;
        }
        let s = obs::Scope::new("simplex");
        s.counter("solves").inc();
        s.counter("iterations").add(self.iterations as u64);
        s.counter("phase1_iterations").add(phase1_iters as u64);
        s.counter("phase2_iterations").add((self.iterations - phase1_iters) as u64);
        s.counter("pivots").add(self.n_pivots);
        s.counter("bound_flips").add(self.n_bound_flips);
        s.counter("degenerate_steps").add(self.n_degen);
        s.counter("refactorizations").add(self.n_refactor);
        s.timer("solve_ns").observe_since(t0);
        self.flush_dual_metrics();
    }
}

/// A reusable starting basis, produced by an optimal solve and consumed by
/// a later solve of the *same problem with extra rows* (the row-generation
/// loop). Structural variables keep their states; each old row's slack
/// keeps its state; new rows start with their slack (or a phase-1
/// artificial) basic — the extended basis matrix is block-triangular, so
/// it is always nonsingular and phase 1 only has to repair the new rows.
#[derive(Debug, Clone)]
pub struct WarmStart {
    n: usize,
    m: usize,
    /// `0` AtLower, `1` AtUpper, `2` FreeZero, `3` Basic; indexed
    /// structural-then-slack.
    states: Vec<u8>,
    /// Variable values at save time (same indexing).
    values: Vec<f64>,
}

impl WarmStart {
    /// Build a snapshot from raw parts. Test hook: lets equivalence tests
    /// hand-craft a dual-feasible/primal-infeasible basis without running
    /// a solve first. `states` and `values` are indexed
    /// structural-then-slack and must have length `n + m`.
    #[doc(hidden)]
    pub fn from_parts(n: usize, m: usize, states: Vec<u8>, values: Vec<f64>) -> Self {
        assert_eq!(states.len(), n + m, "states must cover n + m variables");
        assert_eq!(values.len(), n + m, "values must cover n + m variables");
        WarmStart { n, m, states, values }
    }
}

/// Solve `p` with the given backend.
pub fn solve_with_backend<B: BasisBackend>(
    p: &Problem,
    opts: &SolverOpts,
    backend: &mut B,
) -> Solution {
    solve_warm_with_backend(p, opts, backend, None).0
}

/// Outcome of one [`try_solve`] attempt.
enum SolveAttempt {
    /// The solve ran to a terminal [`Status`].
    Done(Solution, Option<WarmStart>),
    /// The supplied warm start failed numerical validation; retry cold.
    WarmRejected,
    /// The basis factorization went singular mid-solve; retry from the
    /// slack basis (with Bland pricing, so the restart takes a different
    /// pivot trajectory than the one that produced the singular basis).
    Singular,
}

/// Record a warm-start fallback plus its cause. `warmstart_fallbacks`
/// stays the sum of the two cause counters so existing dashboards keep
/// their totals; `warmstart_rejected` (basis failed validation, dual
/// repair included) and `warmstart_singular` (factorization died) split
/// the blame.
fn count_fallback(cause: &'static str) {
    if obs::enabled() {
        obs::counter("simplex.warmstart_fallbacks").inc();
        obs::counter(cause).inc();
    }
}

/// [`solve_with_backend`] with warm-start support. Returns the solution
/// plus a [`WarmStart`] snapshot when the solve ended `Optimal`.
///
/// Infallible by construction: a failed warm start retries cold, a
/// singular basis retries cold from the slack basis under Bland's rule,
/// and if even that attempt degrades the result is an explicit
/// [`Status::NumericalFailure`] solution with a finite payload — never a
/// panic, never a NaN.
pub fn solve_warm_with_backend<B: BasisBackend>(
    p: &Problem,
    opts: &SolverOpts,
    backend: &mut B,
    warm: Option<&WarmStart>,
) -> (Solution, Option<WarmStart>) {
    // Dimension gate: the snapshot must describe this problem minus some
    // appended rows. A mismatch is a fallback, not an error.
    let attempted = warm.is_some();
    let warm = warm.filter(|w| w.n == p.num_vars() && w.m <= p.num_cons());
    if attempted && warm.is_none() {
        count_fallback("simplex.warmstart_rejected");
    }
    if warm.is_some() {
        match try_solve(p, opts, backend, warm, false) {
            SolveAttempt::Done(sol, snap) => {
                if obs::enabled() {
                    obs::counter("simplex.warmstart_hits").inc();
                    obs::counter("simplex.warmstart_iterations").add(sol.iterations as u64);
                }
                return (sol, snap);
            }
            // The warm basis failed validation (and the dual phase could
            // not repair it), or went singular; redo cold.
            SolveAttempt::WarmRejected => count_fallback("simplex.warmstart_rejected"),
            SolveAttempt::Singular => count_fallback("simplex.warmstart_singular"),
        }
    }
    match try_solve(p, opts, backend, None, false) {
        SolveAttempt::Done(sol, snap) => (sol, snap),
        _ => {
            if obs::enabled() {
                obs::counter("simplex.singular_restarts").inc();
            }
            match try_solve(p, opts, backend, None, true) {
                SolveAttempt::Done(sol, snap) => (sol, snap),
                // Even the Bland restart hit a singular basis: report the
                // numerical failure explicitly. The payload is the origin
                // point with its true (finite) objective so callers that
                // compare objectives never ingest a NaN.
                _ => {
                    if obs::enabled() {
                        obs::counter("simplex.numerical_failures").inc();
                    }
                    let x = vec![0.0; p.num_vars()];
                    let objective = p.objective_value(&x);
                    (
                        Solution {
                            status: Status::NumericalFailure,
                            objective,
                            x,
                            duals: vec![0.0; p.num_cons()],
                            iterations: 0,
                        },
                        None,
                    )
                }
            }
        }
    }
}

fn try_solve<B: BasisBackend>(
    p: &Problem,
    opts: &SolverOpts,
    backend: &mut B,
    warm: Option<&WarmStart>,
    start_bland: bool,
) -> SolveAttempt {
    let t0 = obs::now_if_enabled();
    let m = p.num_cons();
    let n = p.num_vars();

    // ---- Standardize: structural | slack | artificial columns. ----
    let mut cols: Vec<Vec<(usize, f64)>> = p.cols.clone();
    let mut lb: Vec<f64> = p.vars.iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = p.vars.iter().map(|v| v.ub).collect();
    let sign = match p.sense {
        Sense::Min => 1.0,
        Sense::Max => -1.0,
    };
    let mut obj2: Vec<f64> = p.vars.iter().map(|v| sign * v.obj).collect();

    // Row equilibration: scale every row so its largest structural
    // coefficient has magnitude ~1. Deployment LPs mix O(1) rule-count
    // rows with O(1e6) volume rows; without scaling the factorization
    // conditioning degrades enough to silently lose primal feasibility.
    // Scales are a deterministic function of the row's contents, so warm
    // starts across row-generation rounds stay consistent. Duals are
    // un-scaled on the way out.
    let mut row_scale = vec![1.0f64; m];
    for col in cols.iter() {
        for &(row, a) in col {
            let aa = a.abs();
            if aa > row_scale[row] {
                row_scale[row] = aa;
            }
        }
    }
    for s in row_scale.iter_mut() {
        // row_scale currently holds max |a| (>= 1.0 floor): divide by it.
        *s = 1.0 / *s;
    }
    for col in cols.iter_mut() {
        for e in col.iter_mut() {
            e.1 *= row_scale[e.0];
        }
    }
    let rhs: Vec<f64> = p.cons.iter().enumerate().map(|(i, c)| c.rhs * row_scale[i]).collect();

    for (i, con) in p.cons.iter().enumerate() {
        cols.push(vec![(i, 1.0)]);
        let (slo, shi) = match con.cmp {
            Cmp::Le => (0.0, f64::INFINITY),
            Cmp::Ge => (f64::NEG_INFINITY, 0.0),
            Cmp::Eq => (0.0, 0.0),
        };
        lb.push(slo);
        ub.push(shi);
        obj2.push(0.0);
    }

    // A usable warm start must describe this problem minus some new rows.
    let warm = warm.filter(|w| w.n == n && w.m <= m);
    let m_old = warm.map_or(0, |w| w.m);

    // Initial nonbasic states for structural + slack vars.
    let mut state: Vec<VState> = (0..n + m)
        .map(|j| {
            if let Some(w) = warm {
                // Structural vars and old-row slacks restore their state;
                // Basic is resolved to a position later.
                let widx = if j < n {
                    Some(j)
                } else if j - n < w.m {
                    Some(n + (j - n))
                } else {
                    None
                };
                if let Some(wi) = widx {
                    return match w.states[wi] {
                        0 => VState::AtLower,
                        1 => VState::AtUpper,
                        2 => VState::FreeZero,
                        _ => VState::Basic(usize::MAX), // placeholder
                    };
                }
            }
            if lb[j].is_finite() {
                VState::AtLower
            } else if ub[j].is_finite() {
                VState::AtUpper
            } else {
                VState::FreeZero
            }
        })
        .collect();

    // Residuals at the starting point (nonbasic at bounds; with a warm
    // start, basic vars at their saved values).
    let mut resid = rhs.clone();
    for j in 0..n {
        let xj = match state[j] {
            VState::AtLower => lb[j],
            VState::AtUpper => ub[j],
            VState::FreeZero => 0.0,
            VState::Basic(_) => warm.map_or(0.0, |w| w.values[j]),
        };
        if xj != 0.0 {
            for &(row, a) in &cols[j] {
                resid[row] -= a * xj;
            }
        }
    }
    // Old-row slacks contribute too (each touches only its own row).
    if let Some(w) = warm {
        for (i, r) in resid.iter_mut().enumerate().take(w.m) {
            let sj = n + i;
            let xj = match state[sj] {
                VState::AtLower => lb[sj],
                VState::AtUpper => ub[sj],
                VState::FreeZero => 0.0,
                VState::Basic(_) => w.values[sj],
            };
            *r -= xj;
        }
    }

    // ---- Build the starting basis. ----
    let mut basis = vec![usize::MAX; m];
    let mut xb = vec![0.0; m];
    let mut phase1_cost = vec![0.0; n + m];
    let mut n_art = 0usize;
    let mut warm_ok = true;

    if let Some(w) = warm {
        // Positions: old-row slacks that were basic sit on their own row;
        // structural basics fill the remaining old positions; new rows get
        // their slack or an artificial.
        let mut free_pos: Vec<usize> = Vec::new();
        for (i, b) in basis.iter_mut().enumerate().take(w.m) {
            let sj = n + i;
            if matches!(state[sj], VState::Basic(_)) {
                *b = sj;
                state[sj] = VState::Basic(i);
            } else {
                free_pos.push(i);
            }
        }
        let struct_basics: Vec<usize> =
            (0..n).filter(|&j| matches!(state[j], VState::Basic(_))).collect();
        if struct_basics.len() != free_pos.len() {
            warm_ok = false; // inconsistent snapshot; fall back
        } else {
            for (&j, &pos) in struct_basics.iter().zip(&free_pos) {
                basis[pos] = j;
                state[j] = VState::Basic(pos);
            }
            // New rows: slack basic when the residual fits, else artificial.
            for i in w.m..m {
                let sj = n + i;
                let v = resid[i];
                let fits = v >= lb[sj] - opts.tol_feas && v <= ub[sj] + opts.tol_feas;
                if fits {
                    basis[i] = sj;
                    xb[i] = v;
                    state[sj] = VState::Basic(i);
                } else {
                    state[sj] = if lb[sj] == 0.0 { VState::AtLower } else { VState::AtUpper };
                    let aj = cols.len();
                    cols.push(vec![(i, 1.0)]);
                    if v > 0.0 {
                        lb.push(0.0);
                        ub.push(f64::INFINITY);
                        phase1_cost.push(1.0);
                    } else {
                        lb.push(f64::NEG_INFINITY);
                        ub.push(0.0);
                        phase1_cost.push(-1.0);
                    }
                    obj2.push(0.0);
                    basis[i] = aj;
                    xb[i] = v;
                    state.push(VState::Basic(i));
                    n_art += 1;
                }
            }
            // Factorize the warm basis; block-triangular, so this succeeds
            // unless the snapshot was corrupt (or the matrix coefficients
            // changed enough to make the old basis singular).
            let basis_cols: Vec<&[(usize, f64)]> =
                basis.iter().map(|&j| cols[j].as_slice()).collect();
            if backend.refactor(m, &basis_cols).is_err() {
                warm_ok = false;
            }
        }
        if !warm_ok {
            // Inconsistent snapshot or singular warm basis: the caller
            // retries cold (and records the fallback).
            return SolveAttempt::WarmRejected;
        }
    }

    let use_warm = warm.is_some();
    if !use_warm {
        // Cold crash: slack basic where its bounds admit the residual;
        // else artificial.
        for i in 0..m {
            let sj = n + i;
            let v = resid[i];
            let fits = v >= lb[sj] - opts.tol_feas && v <= ub[sj] + opts.tol_feas;
            if fits {
                basis[i] = sj;
                xb[i] = v;
                state[sj] = VState::Basic(i);
            } else {
                // slack stays nonbasic at 0 (both slack kinds have 0 as a bound)
                state[sj] = if lb[sj] == 0.0 { VState::AtLower } else { VState::AtUpper };
                let aj = cols.len();
                cols.push(vec![(i, 1.0)]);
                if v > 0.0 {
                    lb.push(0.0);
                    ub.push(f64::INFINITY);
                    phase1_cost.push(1.0);
                } else {
                    lb.push(f64::NEG_INFINITY);
                    ub.push(0.0);
                    phase1_cost.push(-1.0);
                }
                obj2.push(0.0);
                basis[i] = aj;
                xb[i] = v;
                state.push(VState::Basic(i));
                n_art += 1;
            }
        }
        backend.reset_identity(m);
    }
    let ncols = cols.len();
    phase1_cost.resize(ncols, 0.0);
    let max_iters = opts.max_iters.unwrap_or(200 * (m + n) + 20_000);
    let _ = m_old;

    let mut core = Core {
        m,
        ncols,
        n_struct: n,
        cols,
        lb,
        ub,
        cost: phase1_cost,
        state,
        basis,
        xb,
        rhs,
        backend,
        opts,
        iterations: 0,
        y: vec![0.0; m],
        y_touched: Vec::new(),
        pi: vec![0.0; m],
        cb: vec![0.0; m],
        rho: vec![0.0; m],
        degen_run: 0,
        bland: start_bland,
        force_bland: start_bland,
        price_section: 0,
        trace: obs::trace_enabled(),
        singular: false,
        n_pivots: 0,
        n_bound_flips: 0,
        n_degen: 0,
        n_refactor: 0,
        n_dual_pivots: 0,
        n_dual_flips: 0,
        dual_attempted: false,
        dual_repaired: false,
    };

    let fail = |core: &Core<B>, status: Status| Solution {
        status,
        objective: f64::NAN,
        x: (0..core.n_struct).map(|j| core.var_value(j)).collect(),
        duals: vec![0.0; core.m],
        iterations: core.iterations,
    };

    if use_warm {
        // Compute exact basic values under the warm factorization.
        core.refresh();
        if core.singular {
            return SolveAttempt::Singular;
        }
        // Sanity: old basics must still be feasible (they were optimal for
        // the old rows, which are untouched). A violation means the
        // snapshot didn't match; phase 1 would misbehave, so bail to a
        // cold solve.
        let mut worst = 0.0f64;
        let mut worst_pos = usize::MAX;
        for pos in 0..core.m {
            let j = core.basis[pos];
            if j >= n + m {
                continue; // artificials repair themselves in phase 1
            }
            // Changed bounds can leave a restored nonbasic state pointing
            // at an infinite bound; the resulting residual poisons the
            // basic values with non-finite garbage. NaN compares false
            // with `>`, so guard explicitly instead of relying on `worst`.
            if !core.xb[pos].is_finite() {
                worst = f64::INFINITY;
                worst_pos = pos;
                break;
            }
            let v = (core.lb[j] - core.xb[pos]).max(core.xb[pos] - core.ub[j]);
            if v > worst {
                worst = v;
                worst_pos = pos;
            }
        }
        if core.trace {
            // How many old basics drifted from their snapshot values?
            let mut drifted = 0;
            let mut maxdrift = 0.0f64;
            if let Some(w) = warm {
                for pos in 0..core.m {
                    let j = core.basis[pos];
                    if j < n + w.m {
                        let dv = (core.xb[pos] - w.values[j]).abs();
                        if dv > 1e-7 {
                            drifted += 1;
                            maxdrift = maxdrift.max(dv);
                        }
                    }
                }
            }
            obs::trace_event!("simplex.warm_diag", drifted = drifted, max_drift = maxdrift);
        }
        let broken = worst > 1e-6;
        let mut repaired = false;
        // Primal-infeasible warm basis: before discarding it, try a dual
        // simplex repair. The old basis was optimal for the previous
        // instance, so its reduced costs under the *phase-2* objective are
        // usually still sign-correct (dual feasible) even after the
        // coefficient or bound change knocked the basic values out of
        // range — exactly the case the dual ratio test fixes in a handful
        // of pivots. Only meaningful when the warm build needed no
        // artificials (artificial columns carry phase-1 costs, which would
        // poison the classification).
        if broken && worst.is_finite() && n_art == 0 && opts.dual_phase {
            core.dual_attempted = true;
            core.cost = obj2.clone();
            if core.dual_classify_and_flip() {
                if core.n_dual_flips > 0 {
                    // Bound flips moved nonbasic values; recompute x_B.
                    core.refresh();
                }
                if core.singular {
                    core.flush_dual_metrics();
                    return SolveAttempt::Singular;
                }
                if core.trace {
                    obs::trace_event!(
                        "simplex.dual_start",
                        m = m,
                        viol = worst,
                        flips = core.n_dual_flips
                    );
                }
                // A bounded budget, not `max_iters`: a repair still
                // crawling past ~4m pivots is slower than redoing the
                // solve cold, and a stalled (degenerate-crawling) repair
                // would otherwise burn the whole cold-solve-sized cap
                // before falling back.
                let dual_budget = opts.dual_budget.unwrap_or(4 * m + 100).min(max_iters);
                match core.iterate_dual(dual_budget) {
                    DualEnd::PrimalFeasible => {
                        repaired = true;
                        core.dual_repaired = true;
                        if core.trace {
                            obs::trace_event!(
                                "simplex.dual_repaired",
                                pivots = core.n_dual_pivots,
                                flips = core.n_dual_flips
                            );
                        }
                    }
                    DualEnd::Singular => {
                        core.flush_dual_metrics();
                        return SolveAttempt::Singular;
                    }
                    DualEnd::IterLimit | DualEnd::NoPivot => {
                        if core.trace {
                            obs::trace_event!("simplex.dual_failed", pivots = core.n_dual_pivots);
                        }
                    }
                }
            }
        }
        if broken && !repaired {
            if core.trace {
                let j = core.basis[worst_pos];
                obs::trace_event!(
                    "simplex.warm_rejected",
                    m = m,
                    m_old = m_old,
                    pos = worst_pos,
                    var = j,
                    n = n,
                    xb = core.xb[worst_pos],
                    lb = core.lb[j],
                    ub = core.ub[j]
                );
            }
            core.flush_dual_metrics();
            return SolveAttempt::WarmRejected;
        }
        if core.trace && !repaired {
            obs::trace_event!("simplex.warm_accepted", m = m, m_old = m_old, n_art = n_art);
        }
    }

    // ---- Phase 1 ----
    if n_art > 0 {
        match core.iterate(max_iters, false) {
            PhaseEnd::Optimal => {}
            PhaseEnd::Singular => return SolveAttempt::Singular,
            PhaseEnd::Unbounded | PhaseEnd::IterLimit => {
                core.flush_metrics(core.iterations, t0);
                return SolveAttempt::Done(fail(&core, Status::IterLimit), None);
            }
        }
        let infeas: f64 = (n + m..ncols).map(|j| core.var_value(j).abs()).sum();
        if infeas > opts.tol_feas * 10.0 {
            core.flush_metrics(core.iterations, t0);
            return SolveAttempt::Done(fail(&core, Status::Infeasible), None);
        }
        // Freeze artificials at zero.
        for j in n + m..ncols {
            core.lb[j] = 0.0;
            core.ub[j] = 0.0;
            if !matches!(core.state[j], VState::Basic(_)) {
                core.state[j] = VState::AtLower;
            }
        }
    }

    // ---- Phase 2 ----
    let phase1_iters = core.iterations;
    core.cost = obj2;
    core.refresh();
    if core.singular {
        return SolveAttempt::Singular;
    }
    let status = match core.iterate(max_iters, true) {
        PhaseEnd::Optimal => Status::Optimal,
        PhaseEnd::Unbounded => Status::Unbounded,
        PhaseEnd::IterLimit => Status::IterLimit,
        PhaseEnd::Singular => return SolveAttempt::Singular,
    };
    core.refresh();
    if core.singular {
        return SolveAttempt::Singular;
    }
    core.flush_metrics(phase1_iters, t0);

    let x: Vec<f64> = (0..n).map(|j| core.var_value(j)).collect();
    if status != Status::Optimal {
        let mut s = fail(&core, status);
        s.x = x;
        return SolveAttempt::Done(s, None);
    }
    // Never report an infeasible point as Optimal: numerical trouble is
    // surfaced as IterLimit instead of a silently wrong answer.
    if p.max_violation(&x) > opts.tol_feas.max(1e-6) * 100.0 {
        let mut s = fail(&core, Status::IterLimit);
        s.x = x;
        return SolveAttempt::Done(s, None);
    }

    // Duals from the final basis.
    for (pos, &bj) in core.basis.iter().enumerate() {
        core.cb[pos] = core.cost[bj];
    }
    let mut pi = vec![0.0; m];
    core.backend.btran(&core.cb, &mut pi);
    for (i, d) in pi.iter_mut().enumerate() {
        // Dual of the original row = dual of the scaled row x scale.
        *d *= row_scale[i];
        if p.sense == Sense::Max {
            *d = -*d;
        }
    }

    // ---- Snapshot for future warm starts. ----
    let mut wstates = vec![0u8; n + m];
    let mut wvalues = vec![0.0f64; n + m];
    for j in 0..n + m {
        wstates[j] = match core.state[j] {
            VState::Basic(_) => 3,
            VState::AtLower => 0,
            VState::AtUpper => 1,
            VState::FreeZero => 2,
        };
        wvalues[j] = core.var_value(j);
    }
    // A basic artificial (degenerate, at zero) is replaced by the slack of
    // its row — an identical column, so the basis stays nonsingular.
    for pos in 0..m {
        let j = core.basis[pos];
        if j >= n + m {
            let row = core.cols[j][0].0;
            wstates[n + row] = 3;
            wvalues[n + row] = core.xb[pos];
        }
    }
    let snapshot = WarmStart { n, m, states: wstates, values: wvalues };

    SolveAttempt::Done(
        Solution {
            status,
            objective: p.objective_value(&x),
            x,
            duals: pi,
            iterations: core.iterations,
        },
        Some(snapshot),
    )
}

/// Solve `p` as a pure LP with automatically chosen backend (integer
/// markers are ignored; use [`crate::milp`] to enforce integrality).
pub fn solve(p: &Problem, opts: &SolverOpts) -> Solution {
    solve_warm(p, opts, None).0
}

/// [`solve`] with warm-start support (see [`WarmStart`]).
pub fn solve_warm(
    p: &Problem,
    opts: &SolverOpts,
    warm: Option<&WarmStart>,
) -> (Solution, Option<WarmStart>) {
    if p.num_cons() <= opts.dense_row_limit {
        let mut b = dense::DenseInverse::new();
        solve_warm_with_backend(p, opts, &mut b, warm)
    } else {
        let mut b = sparse::SparseFactors::new();
        solve_warm_with_backend(p, opts, &mut b, warm)
    }
}

/// Re-solve `p` starting from a prior optimal basis (see the module-level
/// "Warm starts" section for validity and fallback semantics). Costs,
/// bounds, right-hand sides and matrix coefficients may all differ from
/// the solve that produced `warm`; rows may have been appended but not
/// removed, and the variable count must match — otherwise the solve
/// silently falls back to a cold start (`simplex.warmstart_fallbacks`).
pub fn solve_from(
    p: &Problem,
    opts: &SolverOpts,
    warm: &WarmStart,
) -> (Solution, Option<WarmStart>) {
    solve_warm(p, opts, Some(warm))
}
