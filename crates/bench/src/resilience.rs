//! `repro resilience` — coverage under node failure vs. detection delay.
//!
//! For every single-node crash on Internet2 and a sweep of heartbeat
//! detection windows, run the detect → greedy-repair pipeline
//! ([`nwdp_core::resilience::simulate_node_failure`]) and account for the
//! exact traffic-weighted coverage over the replay: the gap while the
//! crash is undetected, the residual gap after repair (the crashed node's
//! own ingress/egress units), and the integrated coverage-time lost. The
//! CSV shows the paper-style trade-off: detection delay buys blindness
//! linearly, repair caps the damage at the unrecoverable share.

use crate::output::{f2, f3, f4, Table};
use crate::scenario::{default_caps, NidsContext, Scale};
use nwdp_core::nids::NidsLpConfig;
use nwdp_core::resilience::{simulate_node_failure, HealthConfig};
use nwdp_topo::NodeId;

/// One (detection window, crashed node) measurement.
#[derive(Debug, Clone)]
pub struct ResiliencePoint {
    /// Worst-case detection delay (heartbeat interval × miss threshold),
    /// in replay fractions.
    pub detection_window: f64,
    pub node: usize,
    /// The coverage step function over the replay clock, sampled at its
    /// breakpoints (start, failure, repair, end of replay).
    pub coverage: Vec<(f64, f64)>,
    /// Traffic-weighted coverage gap while the crash is undetected.
    pub blind_gap: f64,
    /// Gap remaining after greedy repair (unrecoverable units).
    pub residual_gap: f64,
    /// Integral of lost coverage over the whole replay.
    pub lost_coverage_time: f64,
    /// Measure moved onto survivors by the repair.
    pub moved_measure: f64,
    /// Worst surviving-node load after repair / its greedy bound.
    pub load_after: f64,
    pub load_bound: f64,
}

/// Sweep detection windows × all single-node Internet2 crashes.
pub fn run(scale: Scale) -> Vec<ResiliencePoint> {
    let ctx = NidsContext::internet2();
    let dep = ctx.deployment(9);
    let (_assignment, manifest) = ctx.manifests(&dep);
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, default_caps());
    let fail_at = 0.25;
    let windows: &[f64] = match scale {
        Scale::Quick => &[0.01, 0.05, 0.2],
        Scale::Full => &[0.005, 0.01, 0.02, 0.05, 0.1, 0.2],
    };
    let mut points = Vec::new();
    for &w in windows {
        // Two missed beats of interval w/2 = a worst-case window of w.
        let health = HealthConfig { heartbeat_interval: w / 2.0, miss_threshold: 2, phase: 0.0 };
        for j in 0..dep.num_nodes {
            let report =
                simulate_node_failure(&dep, &manifest, &cfg.caps, NodeId(j), fail_at, &health);
            // Sample the coverage step function at its breakpoints: the
            // run's start, the failure, the repair, and the end of replay.
            let tl = &report.timeline;
            let mut breaks = vec![0.0, tl.fail_at, tl.repaired_at, 1.0];
            breaks.sort_by(f64::total_cmp);
            breaks.dedup();
            breaks.retain(|&t| (0.0..=1.0).contains(&t));
            let coverage: Vec<(f64, f64)> =
                breaks.iter().map(|&t| (t, tl.coverage_at(t))).collect();
            points.push(ResiliencePoint {
                detection_window: w,
                node: j,
                coverage,
                blind_gap: report.timeline.blind_gap,
                residual_gap: report.timeline.residual_gap,
                lost_coverage_time: report.timeline.lost_coverage_time(1.0),
                moved_measure: report.repair.moved_measure,
                load_after: report.repair.max_load_after,
                load_bound: report.repair.load_bound,
            });
        }
    }
    points
}

/// Per-crash CSV: one row per (window, node).
pub fn table(points: &[ResiliencePoint]) -> Table {
    let mut t = Table::new(
        "Coverage under single-node crash vs detection delay (Internet2, crash at t=0.25)",
        &[
            "detect_window",
            "node",
            "blind_gap",
            "residual_gap",
            "lost_cov_time",
            "moved_measure",
            "load_after",
            "load_bound",
        ],
    );
    for p in points {
        t.row(vec![
            f3(p.detection_window),
            p.node.to_string(),
            f4(p.blind_gap),
            f4(p.residual_gap),
            f4(p.lost_coverage_time),
            f3(p.moved_measure),
            f2(p.load_after),
            f2(p.load_bound),
        ]);
    }
    t
}

/// Replay-clock coverage time series: one row per breakpoint of each
/// (window, node) crash's coverage step function — the CSV counterpart of
/// the `resilience.coverage` obs series.
pub fn coverage_timeseries(points: &[ResiliencePoint]) -> Table {
    let mut t = Table::new(
        "Coverage over the replay clock per crash (step-function breakpoints)",
        &["detect_window", "node", "t", "coverage"],
    );
    for p in points {
        for &(at, cov) in &p.coverage {
            t.row(vec![f3(p.detection_window), p.node.to_string(), f4(at), f4(cov)]);
        }
    }
    t
}

/// Summary CSV: worst and mean lost coverage-time per detection window.
pub fn summary(points: &[ResiliencePoint]) -> Table {
    let mut t = Table::new(
        "Lost coverage-time vs detection window (summary over crashed nodes)",
        &["detect_window", "mean_lost_cov_time", "max_lost_cov_time", "max_residual_gap"],
    );
    let mut windows: Vec<f64> = points.iter().map(|p| p.detection_window).collect();
    windows.sort_by(f64::total_cmp);
    windows.dedup();
    for w in windows {
        let group: Vec<&ResiliencePoint> =
            points.iter().filter(|p| p.detection_window == w).collect();
        let mean = group.iter().map(|p| p.lost_coverage_time).sum::<f64>() / group.len() as f64;
        let max = group.iter().map(|p| p.lost_coverage_time).fold(0.0f64, f64::max);
        let res = group.iter().map(|p| p.residual_gap).fold(0.0f64, f64::max);
        t.row(vec![f3(w), f4(mean), f4(max), f4(res)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_monotone_in_detection_window() {
        let pts = run(Scale::Quick);
        assert_eq!(pts.len(), 3 * 11, "3 windows x 11 Internet2 nodes");
        for p in &pts {
            assert!(p.blind_gap > 0.0 && p.blind_gap < 1.0);
            assert!(p.residual_gap <= p.blind_gap + 1e-12);
            assert!(p.load_after <= p.load_bound + 1e-9);
        }
        // Longer detection windows can only lose more coverage-time for
        // the same crash.
        for j in 0..11 {
            let series: Vec<f64> =
                pts.iter().filter(|p| p.node == j).map(|p| p.lost_coverage_time).collect();
            assert_eq!(series.len(), 3);
            assert!(series[0] <= series[1] + 1e-12 && series[1] <= series[2] + 1e-12);
        }
        let s = summary(&pts);
        assert_eq!(s.rows.len(), 3);
    }

    #[test]
    fn coverage_series_reproduces_the_blind_window() {
        let pts = run(Scale::Quick);
        for p in &pts {
            // Breakpoints: 0, fail (0.25), repair, 1 — repair may merge
            // with fail for an instant detector, never with the ends.
            assert!(p.coverage.len() >= 3 && p.coverage.len() <= 4, "{:?}", p.coverage);
            assert_eq!(p.coverage.first().unwrap(), &(0.0, 1.0), "full coverage before crash");
            let blind = p.coverage.iter().find(|(t, _)| *t == 0.25).expect("crash breakpoint");
            assert!((blind.1 - (1.0 - p.blind_gap)).abs() < 1e-12);
            let end = p.coverage.last().unwrap();
            assert_eq!(end.0, 1.0);
            assert!((end.1 - (1.0 - p.residual_gap)).abs() < 1e-12, "repair holds to the end");
            // The step function only moves at breakpoints and never dips
            // below the repaired level.
            for w in p.coverage.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
        }
        let t = coverage_timeseries(&pts);
        assert_eq!(t.rows.len(), pts.iter().map(|p| p.coverage.len()).sum::<usize>());
    }
}
