/root/repo/target/debug/deps/overhead-7999ed64ac00db57.d: crates/engine/tests/overhead.rs

/root/repo/target/debug/deps/overhead-7999ed64ac00db57: crates/engine/tests/overhead.rs

crates/engine/tests/overhead.rs:
