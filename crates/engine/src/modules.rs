//! Analysis modules (the Bro policy scripts / analyzers of Fig 4–5).
//!
//! Each module mirrors one of the paper's nine benchmark modules:
//! Baseline, Scan, IRC, Login, TFTP, HTTP, Blaster, Signature, SYNFlood.
//! A module declares where its coordination check *can* live
//! ([`Stage::EventCapable`] vs [`Stage::PolicyOnly`]) — the paper found
//! that HTTP/IRC/Login checks can move into the event engine, while
//! Scan/TFTP/Blaster/SYNFlood inherently run in policy scripts — and at
//! what granularity it receives events (per packet vs per connection).

use crate::ac::AhoCorasick;
use crate::conn::ConnRecord;
use crate::cost::{CostModel, Meter};
use nwdp_hash::FlowKeyKind;
use nwdp_traffic::session::templates;
use nwdp_traffic::{AppProtocol, Packet};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Where the module's work (and hence its coordination check) can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The check occurs solely in the event engine in *both* approaches
    /// (e.g. the Signature engine, which only exists there).
    EventOnly,
    /// Analyzer instantiation happens in the event engine; the check can
    /// be hoisted there (approach 2 of §2.3).
    EventCapable,
    /// The module only exists as a policy script over a raw event stream;
    /// the check must stay in the (interpreted) policy engine.
    PolicyOnly,
}

/// How often the policy layer receives events for this module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    PerPacket,
    PerConnection,
}

/// A deterministic, comparable alert.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Alert {
    pub module: String,
    pub kind: &'static str,
    /// Deterministic subject (host address, connection originator, …).
    pub subject: u64,
}

/// Mergeable cross-connection module state, moved between shards of the
/// streaming data plane. Connections are shard-disjoint (sessions shard by
/// the keyed `BiSession` hash), so per-connection state never needs
/// merging; only *cross-connection* aggregates (per-host counters and
/// sets) can straddle shards and travel through this enum.
#[derive(Debug)]
pub enum ModuleState {
    /// No cross-connection state (per-connection state only).
    Stateless,
    /// Connection counter (Baseline).
    ConnCount(u64),
    /// Distinct destinations per source host (Scan).
    ScanDests(HashMap<u32, HashSet<u32>>),
    /// Bare-SYN counts per destination host (SYNFlood).
    SynCounts(HashMap<u32, usize>),
    /// Alert-dedup subjects (the app-layer analyzers).
    Subjects(HashSet<u64>),
}

/// One analysis module.
pub trait Analyzer: Send {
    /// Must match the corresponding `AnalysisClass` name (duplicates use
    /// the duplicate class name).
    fn class_name(&self) -> &str;
    fn stage(&self) -> Stage;
    fn granularity(&self) -> Granularity;
    fn key_kind(&self) -> FlowKeyKind;
    /// The module's traffic specification `T_i`.
    fn wants(&self, conn: &ConnRecord) -> bool;
    /// Does the module need every packet of a connection, or only the
    /// connection-level events (first packet / teardown)? §2.5 of the
    /// paper: Scan "needs to observe only the first packet in a
    /// connection" — modules that return `false` here enable the
    /// fine-grained coordination extension (lightweight connection state).
    fn needs_all_packets(&self) -> bool {
        true
    }
    /// Analyze one packet (already coordination-approved).
    fn on_packet(
        &mut self,
        pkt: &Packet<'_>,
        conn: &ConnRecord,
        is_new_conn: bool,
        costs: &CostModel,
        meter: &mut Meter,
    );
    fn alerts(&self) -> &BTreeSet<Alert>;
    /// Extract the module's mergeable cross-connection state, leaving the
    /// module empty of it. Modules without such state return
    /// [`ModuleState::Stateless`].
    fn take_state(&mut self) -> ModuleState {
        ModuleState::Stateless
    }
    /// Fold another shard's state and alerts into this module, emitting
    /// any alerts whose thresholds are only crossed by the merged totals
    /// (counters are monotone, so `>= threshold` after the merge
    /// reproduces the batch `== threshold` firing exactly). Returns the
    /// state bytes double-charged across shards — per-host entries both
    /// shards allocated — which the caller refunds from the merged meter.
    fn absorb(&mut self, state: ModuleState, alerts: &BTreeSet<Alert>) -> u64;
}

fn conn_subject(conn: &ConnRecord) -> u64 {
    ((conn.orig.src_ip as u64) << 32)
        | ((conn.orig.src_port as u64) << 16)
        | conn.orig.dst_port as u64
}

/// CEF-convention severity (1 informational ..= 10 critical) for each
/// detection kind the modules can fire.
pub fn severity_for(kind: &str) -> u8 {
    match kind {
        "blaster_worm" => 9,
        "syn_flood" => 8,
        "signature_match" => 7,
        "address_scan" => 5,
        "login_attempt" | "ftp_anonymous_login" => 4,
        "irc_join" | "tftp_rrq" => 3,
        "http_request" | "smtp_sender" | "ssh_session" => 2,
        _ => 1,
    }
}

/// Forward one *new* detection to the structured alert plane. No-op (one
/// relaxed atomic load) when `NWDP_ALERT` is off, so outputs stay
/// bit-identical. The module's `BTreeSet<Alert>` and all counters are
/// unchanged — the plane is an additional egress, not a replacement.
/// Merge re-detections (shard `absorb`) have no triggering connection and
/// pass `None`.
fn emit_structured(module: &str, kind: &str, subject: u64, conn: Option<&ConnRecord>) {
    if !nwdp_obs::alert_enabled() {
        return;
    }
    let tuple = conn
        .map(|c| (c.orig.src_ip, c.orig.dst_ip, c.orig.src_port, c.orig.dst_port, c.orig.proto));
    nwdp_obs::emit_alert(module, kind, subject, severity_for(kind), tuple);
}

// ---------------------------------------------------------------- Baseline

/// Connection accounting: the work every Bro instance does for every
/// connection (setup, state updates, logging at the policy layer).
pub struct Baseline {
    alerts: BTreeSet<Alert>,
    conns_seen: u64,
}

impl Baseline {
    pub fn new() -> Self {
        Baseline { alerts: BTreeSet::new(), conns_seen: 0 }
    }
}

impl Default for Baseline {
    fn default() -> Self {
        Self::new()
    }
}

impl Analyzer for Baseline {
    fn class_name(&self) -> &str {
        "Baseline"
    }
    fn stage(&self) -> Stage {
        Stage::EventCapable
    }
    fn granularity(&self) -> Granularity {
        Granularity::PerConnection
    }
    fn key_kind(&self) -> FlowKeyKind {
        FlowKeyKind::BiSession
    }
    fn wants(&self, _conn: &ConnRecord) -> bool {
        true
    }
    fn on_packet(
        &mut self,
        _pkt: &Packet<'_>,
        _conn: &ConnRecord,
        is_new_conn: bool,
        costs: &CostModel,
        meter: &mut Meter,
    ) {
        meter.cpu(25); // state update per packet
        if is_new_conn {
            self.conns_seen += 1;
            // connection_established → policy logging.
            meter.cpu(costs.event_dispatch + 12 * costs.interp_factor);
        }
    }
    fn alerts(&self) -> &BTreeSet<Alert> {
        &self.alerts
    }
    fn take_state(&mut self) -> ModuleState {
        ModuleState::ConnCount(std::mem::take(&mut self.conns_seen))
    }
    fn absorb(&mut self, state: ModuleState, alerts: &BTreeSet<Alert>) -> u64 {
        self.alerts.extend(alerts.iter().cloned());
        if let ModuleState::ConnCount(c) = state {
            self.conns_seen += c;
        }
        0
    }
}

// -------------------------------------------------------------------- Scan

/// Outbound scan detection: tracks distinct destinations per source over
/// a raw connection-event stream (policy-only, per the paper).
pub struct Scan {
    threshold: usize,
    dests: HashMap<u32, HashSet<u32>>,
    alerts: BTreeSet<Alert>,
}

impl Scan {
    pub fn new(threshold: usize) -> Self {
        Scan { threshold, dests: HashMap::new(), alerts: BTreeSet::new() }
    }
}

impl Analyzer for Scan {
    fn class_name(&self) -> &str {
        "Scan"
    }
    fn stage(&self) -> Stage {
        Stage::PolicyOnly
    }
    fn granularity(&self) -> Granularity {
        Granularity::PerConnection
    }
    fn key_kind(&self) -> FlowKeyKind {
        FlowKeyKind::Source
    }
    fn needs_all_packets(&self) -> bool {
        false // §2.5: only the first packet of each connection
    }
    fn wants(&self, _conn: &ConnRecord) -> bool {
        true
    }
    fn on_packet(
        &mut self,
        _pkt: &Packet<'_>,
        conn: &ConnRecord,
        is_new_conn: bool,
        costs: &CostModel,
        meter: &mut Meter,
    ) {
        if !is_new_conn {
            return;
        }
        // Interpreted per-connection bookkeeping (Scan is among the
        // heavier policy scripts).
        meter.cpu(30 * costs.interp_factor);
        let src = conn.orig.src_ip;
        let set = self.dests.entry(src).or_insert_with(|| {
            meter.alloc(72);
            HashSet::new()
        });
        if set.insert(conn.orig.dst_ip) {
            meter.alloc(8);
        }
        if set.len() == self.threshold
            && self.alerts.insert(Alert {
                module: "Scan".to_string(),
                kind: "address_scan",
                subject: src as u64,
            })
        {
            emit_structured("Scan", "address_scan", src as u64, Some(conn));
        }
    }
    fn alerts(&self) -> &BTreeSet<Alert> {
        &self.alerts
    }
    fn take_state(&mut self) -> ModuleState {
        ModuleState::ScanDests(std::mem::take(&mut self.dests))
    }
    fn absorb(&mut self, state: ModuleState, alerts: &BTreeSet<Alert>) -> u64 {
        self.alerts.extend(alerts.iter().cloned());
        let ModuleState::ScanDests(dests) = state else { return 0 };
        let threshold = self.threshold;
        let mut refund = 0u64;
        for (src, incoming) in dests {
            match self.dests.entry(src) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    refund += 72; // both shards allocated this source's set
                    let set = e.get_mut();
                    for d in incoming {
                        if !set.insert(d) {
                            refund += 8; // destination seen by both shards
                        }
                    }
                    if set.len() >= threshold
                        && self.alerts.insert(Alert {
                            module: "Scan".to_string(),
                            kind: "address_scan",
                            subject: src as u64,
                        })
                    {
                        emit_structured("Scan", "address_scan", src as u64, None);
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(incoming);
                }
            }
        }
        refund
    }
}

// --------------------------------------------------------- App-layer trio

/// Shared implementation for the HTTP / IRC / Login (Telnet) analyzers:
/// event-engine protocol parsing plus policy-layer events.
pub struct AppAnalyzer {
    name: String,
    app: AppProtocol,
    /// Byte pattern that triggers the module's "activity" alert.
    trigger: &'static [u8],
    alert_kind: &'static str,
    /// Per-connection parser state bytes.
    state_bytes: u64,
    /// Compiled parse cost per payload byte (×2 fixed point: 1 = 0.5
    /// cycles/byte).
    parse_cost_half_cycles: u64,
    tracked: HashSet<u64>,
    alerts: BTreeSet<Alert>,
}

impl AppAnalyzer {
    pub fn http(name: &str) -> Self {
        AppAnalyzer {
            name: name.to_string(),
            app: AppProtocol::Http,
            trigger: b"GET ",
            alert_kind: "http_request",
            state_bytes: 176,
            parse_cost_half_cycles: 16,
            tracked: HashSet::new(),
            alerts: BTreeSet::new(),
        }
    }

    pub fn irc(name: &str) -> Self {
        AppAnalyzer {
            name: name.to_string(),
            app: AppProtocol::Irc,
            trigger: b"JOIN ",
            alert_kind: "irc_join",
            state_bytes: 112,
            parse_cost_half_cycles: 12,
            tracked: HashSet::new(),
            alerts: BTreeSet::new(),
        }
    }

    pub fn login(name: &str) -> Self {
        AppAnalyzer {
            name: name.to_string(),
            app: AppProtocol::Telnet,
            trigger: b"login:",
            alert_kind: "login_attempt",
            state_bytes: 144,
            parse_cost_half_cycles: 18,
            tracked: HashSet::new(),
            alerts: BTreeSet::new(),
        }
    }

    pub fn tftp(name: &str) -> Self {
        AppAnalyzer {
            name: name.to_string(),
            app: AppProtocol::Tftp,
            trigger: b"\x00\x01",
            alert_kind: "tftp_rrq",
            state_bytes: 96,
            parse_cost_half_cycles: 10,
            tracked: HashSet::new(),
            alerts: BTreeSet::new(),
        }
    }

    /// DNS analyzer (extension beyond the paper's nine benchmark modules).
    pub fn dns(name: &str) -> Self {
        AppAnalyzer {
            name: name.to_string(),
            app: AppProtocol::Dns,
            trigger: b"\x07example",
            alert_kind: "dns_query",
            state_bytes: 80,
            parse_cost_half_cycles: 8,
            tracked: HashSet::new(),
            alerts: BTreeSet::new(),
        }
    }

    /// FTP control-channel analyzer (extension).
    pub fn ftp(name: &str) -> Self {
        AppAnalyzer {
            name: name.to_string(),
            app: AppProtocol::Ftp,
            trigger: b"USER anonymous",
            alert_kind: "ftp_anonymous_login",
            state_bytes: 128,
            parse_cost_half_cycles: 10,
            tracked: HashSet::new(),
            alerts: BTreeSet::new(),
        }
    }

    /// SMTP analyzer (extension).
    pub fn smtp(name: &str) -> Self {
        AppAnalyzer {
            name: name.to_string(),
            app: AppProtocol::Smtp,
            trigger: b"MAIL FROM:",
            alert_kind: "smtp_sender",
            state_bytes: 144,
            parse_cost_half_cycles: 12,
            tracked: HashSet::new(),
            alerts: BTreeSet::new(),
        }
    }

    /// SSH banner tracker (extension).
    pub fn ssh(name: &str) -> Self {
        AppAnalyzer {
            name: name.to_string(),
            app: AppProtocol::Ssh,
            trigger: b"SSH-2.0-",
            alert_kind: "ssh_session",
            state_bytes: 96,
            parse_cost_half_cycles: 6,
            tracked: HashSet::new(),
            alerts: BTreeSet::new(),
        }
    }

    fn is_tftp(&self) -> bool {
        self.app == AppProtocol::Tftp
    }
}

impl Analyzer for AppAnalyzer {
    fn class_name(&self) -> &str {
        &self.name
    }
    fn stage(&self) -> Stage {
        // §2.3/§2.4: HTTP, IRC and Login instantiation can be checked in
        // the event engine; TFTP only gets a raw policy event stream.
        if self.is_tftp() {
            Stage::PolicyOnly
        } else {
            Stage::EventCapable
        }
    }
    fn granularity(&self) -> Granularity {
        // TFTP's policy script consumes connection-level request events;
        // the interactive protocols deliver per-packet protocol events.
        if self.is_tftp() {
            Granularity::PerConnection
        } else {
            Granularity::PerPacket
        }
    }
    fn key_kind(&self) -> FlowKeyKind {
        FlowKeyKind::BiSession
    }
    fn wants(&self, conn: &ConnRecord) -> bool {
        conn.app == Some(self.app)
    }
    fn on_packet(
        &mut self,
        pkt: &Packet<'_>,
        conn: &ConnRecord,
        is_new_conn: bool,
        costs: &CostModel,
        meter: &mut Meter,
    ) {
        if is_new_conn {
            meter.alloc(self.state_bytes);
        }
        if pkt.payload.is_empty() {
            meter.cpu(8);
            return;
        }
        // Event-engine protocol parse.
        meter.cpu(40 + (pkt.payload.len() as u64 * self.parse_cost_half_cycles) / 2);
        if self.is_tftp() {
            // Policy-script processing of the raw event (interpreted).
            meter.cpu(22 * costs.interp_factor);
        }
        let hit = pkt.payload.windows(self.trigger.len()).any(|w| w == self.trigger);
        if hit {
            // Deliver a protocol event to the policy layer.
            meter.cpu(costs.event_dispatch + 8 * costs.interp_factor);
            let subj = conn_subject(conn);
            if self.tracked.insert(subj) {
                self.alerts.insert(Alert {
                    module: self.name.clone(),
                    kind: self.alert_kind,
                    subject: subj,
                });
                emit_structured(&self.name, self.alert_kind, subj, Some(conn));
            }
        }
    }
    fn alerts(&self) -> &BTreeSet<Alert> {
        &self.alerts
    }
    fn take_state(&mut self) -> ModuleState {
        ModuleState::Subjects(std::mem::take(&mut self.tracked))
    }
    fn absorb(&mut self, state: ModuleState, alerts: &BTreeSet<Alert>) -> u64 {
        self.alerts.extend(alerts.iter().cloned());
        if let ModuleState::Subjects(s) = state {
            // Subject dedup is alert-level only; `tracked` carries no
            // metered allocation, so nothing is refunded.
            self.tracked.extend(s);
        }
        0
    }
}

// ----------------------------------------------------------------- Blaster

/// Blaster worm detector: a policy script watching for the worm's
/// propagation pattern (exploit payload naming `msblast.exe`).
pub struct Blaster {
    ac: AhoCorasick,
    alerts: BTreeSet<Alert>,
}

impl Blaster {
    pub fn new() -> Self {
        Blaster { ac: AhoCorasick::new(&[b"msblast.exe"]), alerts: BTreeSet::new() }
    }
}

impl Default for Blaster {
    fn default() -> Self {
        Self::new()
    }
}

impl Analyzer for Blaster {
    fn class_name(&self) -> &str {
        "Blaster"
    }
    fn stage(&self) -> Stage {
        Stage::PolicyOnly
    }
    fn granularity(&self) -> Granularity {
        Granularity::PerConnection
    }
    fn key_kind(&self) -> FlowKeyKind {
        FlowKeyKind::BiSession
    }
    fn wants(&self, conn: &ConnRecord) -> bool {
        // Watches TFTP fetches and RPC-port traffic.
        conn.app == Some(AppProtocol::Tftp) || conn.orig.dst_port == 135
    }
    fn on_packet(
        &mut self,
        pkt: &Packet<'_>,
        conn: &ConnRecord,
        is_new_conn: bool,
        costs: &CostModel,
        meter: &mut Meter,
    ) {
        if is_new_conn {
            meter.cpu(10 * costs.interp_factor);
        }
        if pkt.payload.is_empty() {
            return;
        }
        meter.cpu(pkt.payload.len() as u64 * costs.sig_per_byte);
        if self.ac.is_match(pkt.payload)
            && self.alerts.insert(Alert {
                module: "Blaster".to_string(),
                kind: "blaster_worm",
                subject: conn.orig.src_ip as u64,
            })
        {
            emit_structured("Blaster", "blaster_worm", conn.orig.src_ip as u64, Some(conn));
        }
    }
    fn alerts(&self) -> &BTreeSet<Alert> {
        &self.alerts
    }
    fn absorb(&mut self, _state: ModuleState, alerts: &BTreeSet<Alert>) -> u64 {
        self.alerts.extend(alerts.iter().cloned());
        0
    }
}

// --------------------------------------------------------------- Signature

/// Generic signature matching over all TCP/UDP payloads (Bro's signature
/// engine; instantiation happens in the event engine). Matching is
/// **streaming per connection direction** — the automaton state persists
/// across packets, so signatures split over packet boundaries are found
/// (see [`AhoCorasick::scan_stream`]).
pub struct Signature {
    ac: AhoCorasick,
    /// Automaton state per (connection, direction).
    stream_state: HashMap<(u64, bool), u32>,
    alerts: BTreeSet<Alert>,
}

impl Signature {
    /// The default signature set: the generic malware marker plus a few
    /// decoys that never match the benign templates.
    pub fn new() -> Self {
        Signature {
            ac: AhoCorasick::new(&[
                templates::MALWARE_SIG,
                b"\xde\xad\xbe\xef\xba\xad",
                b"cmd.exe /c tftp -i",
                b"\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41",
            ]),
            stream_state: HashMap::new(),
            alerts: BTreeSet::new(),
        }
    }
}

impl Default for Signature {
    fn default() -> Self {
        Self::new()
    }
}

impl Analyzer for Signature {
    fn class_name(&self) -> &str {
        "Signature"
    }
    fn stage(&self) -> Stage {
        Stage::EventOnly
    }
    fn granularity(&self) -> Granularity {
        Granularity::PerPacket
    }
    fn key_kind(&self) -> FlowKeyKind {
        FlowKeyKind::BiSession
    }
    fn wants(&self, _conn: &ConnRecord) -> bool {
        true
    }
    fn on_packet(
        &mut self,
        pkt: &Packet<'_>,
        conn: &ConnRecord,
        is_new_conn: bool,
        costs: &CostModel,
        meter: &mut Meter,
    ) {
        if is_new_conn {
            meter.alloc(2 * 16); // per-direction stream state
        }
        if pkt.payload.is_empty() {
            return;
        }
        meter.cpu(pkt.payload.len() as u64 * costs.sig_per_byte);
        let key = (conn_subject(conn), pkt.forward);
        let state = self.stream_state.get(&key).copied().unwrap_or(0);
        let (next, matched) = self.ac.scan_stream(state, pkt.payload);
        self.stream_state.insert(key, next);
        if matched
            && self.alerts.insert(Alert {
                module: "Signature".to_string(),
                kind: "signature_match",
                subject: conn_subject(conn),
            })
        {
            emit_structured("Signature", "signature_match", conn_subject(conn), Some(conn));
        }
    }
    fn alerts(&self) -> &BTreeSet<Alert> {
        &self.alerts
    }
    fn absorb(&mut self, _state: ModuleState, alerts: &BTreeSet<Alert>) -> u64 {
        // Stream-automaton state is per (connection, direction); sessions
        // shard by connection, so no cross-shard merging is needed.
        self.alerts.extend(alerts.iter().cloned());
        0
    }
}

// ---------------------------------------------------------------- SYNFlood

/// Inbound SYN-flood detection: counts half-open SYNs per destination.
pub struct SynFlood {
    threshold: usize,
    syns: HashMap<u32, usize>,
    alerts: BTreeSet<Alert>,
}

impl SynFlood {
    pub fn new(threshold: usize) -> Self {
        SynFlood { threshold, syns: HashMap::new(), alerts: BTreeSet::new() }
    }
}

impl Analyzer for SynFlood {
    fn class_name(&self) -> &str {
        "SYNFlood"
    }
    fn stage(&self) -> Stage {
        Stage::PolicyOnly
    }
    fn granularity(&self) -> Granularity {
        Granularity::PerConnection
    }
    fn key_kind(&self) -> FlowKeyKind {
        FlowKeyKind::Destination
    }
    fn needs_all_packets(&self) -> bool {
        false // only bare SYNs, observable from connection events
    }
    fn wants(&self, _conn: &ConnRecord) -> bool {
        true
    }
    fn on_packet(
        &mut self,
        pkt: &Packet<'_>,
        conn: &ConnRecord,
        _is_new_conn: bool,
        costs: &CostModel,
        meter: &mut Meter,
    ) {
        if !pkt.syn || pkt.ack {
            return;
        }
        meter.cpu(12 * costs.interp_factor);
        let c = self.syns.entry(conn.orig.dst_ip).or_insert_with(|| {
            meter.alloc(48);
            0
        });
        *c += 1;
        if *c == self.threshold
            && self.alerts.insert(Alert {
                module: "SYNFlood".to_string(),
                kind: "syn_flood",
                subject: conn.orig.dst_ip as u64,
            })
        {
            emit_structured("SYNFlood", "syn_flood", conn.orig.dst_ip as u64, Some(conn));
        }
    }
    fn alerts(&self) -> &BTreeSet<Alert> {
        &self.alerts
    }
    fn take_state(&mut self) -> ModuleState {
        ModuleState::SynCounts(std::mem::take(&mut self.syns))
    }
    fn absorb(&mut self, state: ModuleState, alerts: &BTreeSet<Alert>) -> u64 {
        self.alerts.extend(alerts.iter().cloned());
        let ModuleState::SynCounts(counts) = state else { return 0 };
        let threshold = self.threshold;
        let mut refund = 0u64;
        for (dst, c) in counts {
            match self.syns.entry(dst) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    refund += 48; // both shards allocated this victim's counter
                    *e.get_mut() += c;
                    if *e.get() >= threshold
                        && self.alerts.insert(Alert {
                            module: "SYNFlood".to_string(),
                            kind: "syn_flood",
                            subject: dst as u64,
                        })
                    {
                        emit_structured("SYNFlood", "syn_flood", dst as u64, None);
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(c);
                }
            }
        }
        refund
    }
}

/// The libpcap-style capture filter Bro derives from its loaded analyzers:
/// a module-in-isolation run receives only its own traffic (protocol
/// modules filter by server port; connection-level modules see all).
pub fn capture_filter(class_name: &str, s: &nwdp_traffic::Session) -> bool {
    use nwdp_traffic::AppProtocol as A;
    let base = class_name.split('-').next().unwrap_or(class_name);
    match base {
        "HTTP" => s.tuple.dst_port == A::Http.server_port(),
        "IRC" => s.tuple.dst_port == A::Irc.server_port(),
        "Login" => s.tuple.dst_port == A::Telnet.server_port(),
        "TFTP" => s.tuple.dst_port == A::Tftp.server_port(),
        "Blaster" => s.tuple.dst_port == A::Tftp.server_port() || s.tuple.dst_port == 135,
        _ => true,
    }
}

/// Errors surfaced by the engine instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An analysis-class name has no registered module implementation
    /// (typically a typo in a deployment description or a class added to
    /// the optimizer without a matching analyzer).
    UnknownClass(String),
    /// A manifest swap was requested on an engine running without a
    /// coordination context (edge-only / unmodified placement) — there is
    /// no manifest to replace.
    NotCoordinated,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownClass(name) => {
                write!(f, "no analysis module registered for class {name:?}")
            }
            EngineError::NotCoordinated => {
                write!(f, "manifest swap needs a coordinated engine (this one has no manifest)")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Instantiate the module matching an analysis-class name. Duplicate
/// classes ("HTTP-dup3") get fresh instances of their base module carrying
/// the duplicate name, exactly like the paper's "fake instances".
///
/// Unknown classes are reported as [`EngineError::UnknownClass`] rather
/// than panicking, so a bad deployment description fails gracefully.
pub fn module_for_class(class_name: &str) -> Result<Box<dyn Analyzer>, EngineError> {
    let base = class_name.split('-').next().unwrap_or(class_name);
    Ok(match base {
        "Baseline" => Box::new(Baseline::new()),
        "Scan" => Box::new(Scan::new(16)),
        "IRC" => Box::new(AppAnalyzer::irc(class_name)),
        "Login" => Box::new(AppAnalyzer::login(class_name)),
        "TFTP" => Box::new(AppAnalyzer::tftp(class_name)),
        "HTTP" => Box::new(AppAnalyzer::http(class_name)),
        "Blaster" => Box::new(Blaster::new()),
        "Signature" => Box::new(Signature::new()),
        "SYNFlood" => Box::new(SynFlood::new(64)),
        "DNS" => Box::new(AppAnalyzer::dns(class_name)),
        "FTP" => Box::new(AppAnalyzer::ftp(class_name)),
        "SMTP" => Box::new(AppAnalyzer::smtp(class_name)),
        "SSH" => Box::new(AppAnalyzer::ssh(class_name)),
        _ => return Err(EngineError::UnknownClass(class_name.to_string())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwdp_hash::FiveTuple;
    use nwdp_topo::NodeId;
    use nwdp_traffic::{Session, SessionKind};

    fn record(tuple: FiveTuple) -> ConnRecord {
        ConnRecord {
            orig: tuple,
            app: AppProtocol::from_port(tuple.dst_port),
            pkts: 0,
            bytes: 0,
            saw_syn: false,
            saw_fin: false,
            hashes: Default::default(),
            enabled: vec![],
            light: false,
        }
    }

    fn run_session(module: &mut dyn Analyzer, s: &Session) -> Meter {
        let costs = CostModel::default();
        let mut meter = Meter::new();
        let conn = record(s.tuple);
        for (i, pkt) in s.packets().iter().enumerate() {
            if module.wants(&conn) {
                module.on_packet(pkt, &conn, i == 0, &costs, &mut meter);
            }
        }
        meter
    }

    fn session(kind: SessionKind, i: u32) -> Session {
        Session {
            id: i as u64,
            tuple: FiveTuple::new(
                0x0a000000 + i,
                0x0a010000 + i,
                40000 + (i % 1000) as u16,
                kind.app().server_port(),
                kind.app().ip_proto(),
            ),
            kind,
            src_node: NodeId(0),
            dst_node: NodeId(1),
            exchanges: 2,
        }
    }

    #[test]
    fn http_module_alerts_on_requests() {
        let mut m = AppAnalyzer::http("HTTP");
        let meter = run_session(&mut m, &session(SessionKind::Normal(AppProtocol::Http), 1));
        assert_eq!(m.alerts().len(), 1);
        assert!(meter.cpu_cycles > 0);
        assert!(meter.mem_bytes >= 176);
    }

    #[test]
    fn http_ignores_non_http() {
        let m = AppAnalyzer::http("HTTP");
        let s = session(SessionKind::Normal(AppProtocol::Irc), 2);
        let conn = record(s.tuple);
        assert!(!m.wants(&conn));
    }

    #[test]
    fn scan_alerts_after_threshold_distinct_destinations() {
        let mut m = Scan::new(16);
        let costs = CostModel::default();
        let mut meter = Meter::new();
        let scanner = 0x0a000099u32;
        for i in 0..20u32 {
            let t = FiveTuple::new(scanner, 0x0a010000 + i, 41000, 445, 6);
            let conn = record(t);
            let s = session(SessionKind::ScanProbe, i);
            m.on_packet(&s.packets()[0], &conn, true, &costs, &mut meter);
        }
        assert_eq!(m.alerts().len(), 1);
        assert_eq!(m.alerts().iter().next().unwrap().subject, scanner as u64);
    }

    #[test]
    fn scan_no_alert_below_threshold() {
        let mut m = Scan::new(16);
        let costs = CostModel::default();
        let mut meter = Meter::new();
        for i in 0..10u32 {
            let t = FiveTuple::new(7, 0x0a010000 + i, 41000, 445, 6);
            let conn = record(t);
            let s = session(SessionKind::ScanProbe, i);
            m.on_packet(&s.packets()[0], &conn, true, &costs, &mut meter);
        }
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn synflood_counts_only_bare_syns() {
        let mut m = SynFlood::new(64);
        let costs = CostModel::default();
        let mut meter = Meter::new();
        for i in 0..100u32 {
            let s = session(SessionKind::SynFloodPkt, i);
            let mut t = s.tuple;
            t.dst_ip = 0x0a01_0001; // one victim
            let conn = record(t);
            let pkts = s.packets();
            m.on_packet(&pkts[0], &conn, true, &costs, &mut meter);
        }
        assert_eq!(m.alerts().len(), 1);
        // Normal handshake SYN-ACKs don't count.
        let mut m2 = SynFlood::new(2);
        let s = session(SessionKind::Normal(AppProtocol::Http), 5);
        let conn = record(s.tuple);
        for pkt in s.packets().iter().skip(1) {
            m2.on_packet(pkt, &conn, false, &costs, &mut meter);
        }
        assert!(m2.alerts().is_empty());
    }

    #[test]
    fn signature_finds_infected_payloads_only() {
        let mut m = Signature::new();
        run_session(&mut m, &session(SessionKind::InfectedPayload(AppProtocol::Http), 1));
        assert_eq!(m.alerts().len(), 1);
        let mut clean = Signature::new();
        run_session(&mut clean, &session(SessionKind::Normal(AppProtocol::Http), 2));
        assert!(clean.alerts().is_empty(), "{:?}", clean.alerts());
    }

    #[test]
    fn signature_streams_across_packet_boundaries() {
        use nwdp_traffic::session::templates::MALWARE_SIG;
        let mut m = Signature::new();
        let costs = CostModel::default();
        let mut meter = Meter::new();
        let t = FiveTuple::new(0x0a000001, 0x0a010001, 40000, 80, 6);
        let conn = record(t);
        // Split the signature between two forward packets.
        let half = MALWARE_SIG.len() / 2;
        let mk = |payload: &'static [u8]| Packet {
            tuple: t,
            forward: true,
            syn: false,
            ack: true,
            fin: false,
            rst: false,
            payload,
            size: 40 + payload.len() as u16,
        };
        // Leak two halves as 'static for the test.
        let a: &'static [u8] = Box::leak(MALWARE_SIG[..half].to_vec().into_boxed_slice());
        let b: &'static [u8] = Box::leak(MALWARE_SIG[half..].to_vec().into_boxed_slice());
        m.on_packet(&mk(a), &conn, true, &costs, &mut meter);
        assert!(m.alerts().is_empty(), "half a signature must not alert");
        m.on_packet(&mk(b), &conn, false, &costs, &mut meter);
        assert_eq!(m.alerts().len(), 1, "split signature must be caught by streaming");
        // The reverse direction has independent state: the second half
        // alone on a new connection does not alert.
        let mut fresh = Signature::new();
        fresh.on_packet(&mk(b), &conn, true, &costs, &mut meter);
        assert!(fresh.alerts().is_empty());
    }

    #[test]
    fn blaster_detects_worm_sessions() {
        let mut m = Blaster::new();
        run_session(&mut m, &session(SessionKind::Blaster, 3));
        assert_eq!(m.alerts().len(), 1);
        let mut clean = Blaster::new();
        run_session(&mut clean, &session(SessionKind::Normal(AppProtocol::Tftp), 4));
        assert!(clean.alerts().is_empty());
    }

    #[test]
    fn module_factory_handles_duplicates() {
        let m = module_for_class("HTTP-dup3").unwrap();
        assert_eq!(m.class_name(), "HTTP-dup3");
        assert_eq!(m.stage(), Stage::EventCapable);
        let t = module_for_class("TFTP").unwrap();
        assert_eq!(t.stage(), Stage::PolicyOnly);
    }

    #[test]
    fn module_factory_rejects_unknown_without_aborting() {
        let err = match module_for_class("NoSuchModule") {
            Ok(_) => panic!("unknown class must not resolve"),
            Err(e) => e,
        };
        assert_eq!(err, EngineError::UnknownClass("NoSuchModule".to_string()));
        assert!(err.to_string().contains("NoSuchModule"));
    }

    #[test]
    fn scan_merge_fires_alert_only_crossed_by_combined_shards() {
        let costs = CostModel::default();
        let mut meter = Meter::new();
        let scanner = 0x0a000099u32;
        let mut shard_a = Scan::new(16);
        let mut shard_b = Scan::new(16);
        // 10 destinations per shard (one overlapping): neither shard alone
        // reaches the threshold of 16, the union (19 distinct) does.
        for i in 0..10u32 {
            let t = FiveTuple::new(scanner, 0x0a010000 + i, 41000, 445, 6);
            shard_a.on_packet(
                &session(SessionKind::ScanProbe, i).packets()[0],
                &record(t),
                true,
                &costs,
                &mut meter,
            );
            let t = FiveTuple::new(scanner, 0x0a010009 + i, 41000, 445, 6);
            shard_b.on_packet(
                &session(SessionKind::ScanProbe, i).packets()[0],
                &record(t),
                true,
                &costs,
                &mut meter,
            );
        }
        assert!(shard_a.alerts().is_empty() && shard_b.alerts().is_empty());
        let state = shard_b.take_state();
        let alerts = shard_b.alerts().clone();
        let refund = shard_a.absorb(state, &alerts);
        assert_eq!(shard_a.alerts().len(), 1, "merged shards must cross the threshold");
        // Duplicate source set (72) plus one shared destination (8).
        assert_eq!(refund, 72 + 8);
    }

    #[test]
    fn synflood_merge_sums_counts_and_refunds_duplicates() {
        let costs = CostModel::default();
        let mut meter = Meter::new();
        let mut shard_a = SynFlood::new(64);
        let mut shard_b = SynFlood::new(64);
        for i in 0..40u32 {
            let s = session(SessionKind::SynFloodPkt, i);
            let mut t = s.tuple;
            t.dst_ip = 0x0a01_0001;
            let pkts = s.packets();
            shard_a.on_packet(&pkts[0], &record(t), true, &costs, &mut meter);
            shard_b.on_packet(&pkts[0], &record(t), true, &costs, &mut meter);
        }
        assert!(shard_a.alerts().is_empty() && shard_b.alerts().is_empty());
        let state = shard_b.take_state();
        let alerts = shard_b.alerts().clone();
        let refund = shard_a.absorb(state, &alerts);
        assert_eq!(shard_a.alerts().len(), 1, "80 merged SYNs cross the 64 threshold");
        assert_eq!(refund, 48, "one victim counter allocated twice");
    }

    #[test]
    fn stage_assignment_matches_paper() {
        // §2.4: HTTP/IRC/Login checks go to the event engine; Scan, TFTP,
        // Blaster, SYNFlood stay in policy scripts.
        for (name, want) in [
            ("HTTP", Stage::EventCapable),
            ("IRC", Stage::EventCapable),
            ("Login", Stage::EventCapable),
            ("Signature", Stage::EventOnly),
            ("Scan", Stage::PolicyOnly),
            ("TFTP", Stage::PolicyOnly),
            ("Blaster", Stage::PolicyOnly),
            ("SYNFlood", Stage::PolicyOnly),
        ] {
            assert_eq!(module_for_class(name).unwrap().stage(), want, "{name}");
        }
    }
}
