//! `repro alerts` — the production alert plane end to end (ISSUE 10).
//!
//! Streams the standard Internet2 / 9-module deployment through the
//! sharded engine with the structured alert plane enabled: every
//! detection site emits a typed [`nwdp_obs::AlertRecord`], per-thread
//! buffers drain into the deterministic merge, the suppression window
//! and token-bucket rate limiter filter the batch, and the survivors go
//! out through **both** egress encoders at once — `alerts.jsonl` and
//! `alerts.cef` under the results directory.
//!
//! The run asserts the ISSUE 10 acceptance criteria directly:
//!
//! - the accounting balances **exactly**: `emitted == written + deduped
//!   + dropped_ratelimit` (nothing is silently lossy);
//! - every JSONL line re-parses and carries the full typed record;
//! - every CEF line splits into exactly 7 unescaped-pipe header fields
//!   plus an extension, and both files hold exactly `written` lines.
//!
//! Tuning comes from the `NWDP_ALERT_RATE` / `NWDP_ALERT_BURST` /
//! `NWDP_ALERT_SUPPRESS` knobs when set (same warn-once fallback as
//! everywhere else); unset knobs get bench defaults chosen to exercise
//! both the suppression and the rate-limit paths, so the attribution
//! tables are non-trivial out of the box.
//!
//! Results go to `results/alerts_summary.csv`, `alerts_by_class.csv`
//! and `alerts_top_talkers.csv`, and the canonical point is appended to
//! the repo-root `BENCH_alerts.json` trajectory.

use crate::output::{f2, pct, Table};
use crate::scenario::NidsContext;
use crate::Scale;
use nwdp_core::parallel;
use nwdp_engine::{run_coordinated_stream, stream_shards, Placement};
use nwdp_hash::KeyedHasher;
use nwdp_obs as obs;
use nwdp_traffic::{SessionStream, TraceConfig};
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One full alert-plane run plus the egress audit.
#[derive(Debug)]
pub struct AlertsBench {
    pub quick: bool,
    pub sessions: usize,
    pub shards: usize,
    pub threads: usize,
    pub wall_s: f64,
    /// Effective pipeline tuning (env knobs over bench defaults).
    pub cfg: obs::AlertConfig,
    /// Cumulative pipeline accounting after the final flush.
    pub stats: obs::AlertStats,
    /// `(class, written, deduped, dropped_ratelimit)` per module class.
    pub per_class: Vec<(String, u64, u64, u64)>,
    /// Top talkers by written alerts (source address, else subject).
    pub talkers: Vec<(u64, u64)>,
    /// Unique engine alerts (the legacy `BTreeSet<Alert>` contract).
    pub engine_alerts: usize,
    pub jsonl_path: PathBuf,
    pub cef_path: PathBuf,
    /// Emission-path latency (ns) from the `alert.emit_ns` histogram.
    pub p50_emit_ns: f64,
    pub p95_emit_ns: f64,
    pub p99_emit_ns: f64,
    pub emit_count: u64,
    pub emit_sum_ns: f64,
}

/// Env knobs over bench defaults. The default rate deliberately starves
/// the token bucket (the replay clock spans one unit, so a rate of a
/// few hundred against thousands of detections keeps the limiter busy).
/// The suppression window stays small: coordinated sampling makes
/// detection *exactly-once* per (class, subject) on almost every run —
/// only fractional unit splits ever re-detect across nodes — so the
/// dedup column measuring ~0 here is itself a property of the paper's
/// architecture, not a dead code path (the obs unit tests drive it).
fn bench_config() -> obs::AlertConfig {
    let mut cfg = nwdp_core::alertcfg::alert_config_from_env();
    if std::env::var_os("NWDP_ALERT_RATE").is_none() {
        cfg.rate = 200.0;
    }
    if std::env::var_os("NWDP_ALERT_BURST").is_none() {
        cfg.burst = 50.0;
    }
    if std::env::var_os("NWDP_ALERT_SUPPRESS").is_none() {
        cfg.suppress = 0.0005;
    }
    cfg
}

/// Run the alert-plane bench at `scale`, writing the egress files under
/// `out`. Panics when any acceptance criterion fails — alert volume
/// numbers for an unbalanced or unparseable egress are worthless.
pub fn run(scale: Scale, out: &Path) -> AlertsBench {
    let sessions = match scale {
        Scale::Quick => 20_000,
        Scale::Full => 100_000,
    };
    let seed = 17u64;
    let ctx = NidsContext::internet2();
    let dep = ctx.deployment(9);
    let (_assignment, manifest) = ctx.manifests(&dep);
    let cfg_trace = TraceConfig::new(sessions, seed);
    let hasher = KeyedHasher::with_key(5);
    let shards = stream_shards();
    let threads = parallel::num_threads();

    std::fs::create_dir_all(out).expect("create results dir");
    let jsonl_path = out.join("alerts.jsonl");
    let cef_path = out.join("alerts.cef");
    let acfg = bench_config();

    // Alert plane + metrics on for the run; everything restored after.
    let was_obs = obs::enabled();
    let was_alert = obs::alert_enabled();
    obs::set_enabled(true);
    obs::clear_alert_writers();
    obs::reset_alerts();
    obs::set_alert_config(acfg);
    // One replay-clock unit spans the whole trace: ts = session / total.
    obs::set_alert_clock_scale(1.0 / sessions as f64);
    obs::add_alert_writer(
        obs::AlertFormat::Jsonl,
        Box::new(BufWriter::new(std::fs::File::create(&jsonl_path).expect("create jsonl egress"))),
    );
    obs::add_alert_writer(
        obs::AlertFormat::Cef,
        Box::new(BufWriter::new(std::fs::File::create(&cef_path).expect("create cef egress"))),
    );
    obs::set_alert_enabled(true);
    let hist = obs::histogram("alert.emit_ns", &obs::emit_latency_bounds());
    hist.reset();

    let t0 = Instant::now();
    let net = run_coordinated_stream(
        &dep,
        &manifest,
        &ctx.paths,
        || SessionStream::new(&ctx.topo, &ctx.tm, &cfg_trace),
        Placement::EventEngine,
        hasher,
        shards,
    )
    .expect("stream run");
    let stats = obs::flush_alerts().expect("alert egress");
    let wall_s = t0.elapsed().as_secs_f64();
    let per_class = obs::alert_class_stats();
    let talkers = obs::alert_top_talkers(10);

    obs::set_alert_enabled(was_alert);
    obs::clear_alert_writers();
    obs::set_alert_clock_scale(1.0);
    obs::set_enabled(was_obs);

    // Accounting: exact balance, and the plane actually saw the engine's
    // detections (cross-shard and cross-node duplicates only add).
    assert_eq!(
        stats.emitted,
        stats.written + stats.deduped + stats.dropped_ratelimit,
        "alert accounting must balance exactly: {stats:?}"
    );
    assert!(stats.written > 0, "a full engine run must write alerts");
    assert!(
        stats.emitted >= net.alerts.len() as u64,
        "emitted {} < {} unique engine alerts",
        stats.emitted,
        net.alerts.len()
    );

    // Egress audit: both files hold exactly the written records, every
    // line structurally valid for its format.
    let jsonl_lines = validate_jsonl(&jsonl_path);
    let cef_lines = validate_cef(&cef_path);
    assert_eq!(jsonl_lines as u64, stats.written, "jsonl line count vs written");
    assert_eq!(cef_lines as u64, stats.written, "cef line count vs written");

    AlertsBench {
        quick: scale == Scale::Quick,
        sessions,
        shards,
        threads,
        wall_s,
        cfg: acfg,
        stats,
        per_class,
        talkers,
        engine_alerts: net.alerts.len(),
        jsonl_path,
        cef_path,
        p50_emit_ns: hist.quantile(0.5),
        p95_emit_ns: hist.quantile(0.95),
        p99_emit_ns: hist.quantile(0.99),
        emit_count: hist.count(),
        emit_sum_ns: hist.sum(),
    }
}

/// Every line must re-parse as a JSON object carrying the full typed
/// record. Returns the line count.
fn validate_jsonl(path: &Path) -> usize {
    let text = std::fs::read_to_string(path).expect("read jsonl egress");
    let mut n = 0;
    for line in text.lines() {
        let doc = obs::parse_json(line)
            .unwrap_or_else(|e| panic!("jsonl line {} unparseable ({e}): {line}", n + 1));
        for field in ["ts", "node", "class", "kind", "subject", "severity", "src_ip", "dst_ip"] {
            assert!(doc.get(field).is_some(), "jsonl line {} missing {field}: {line}", n + 1);
        }
        n += 1;
    }
    n
}

/// Every line must split into exactly 7 unescaped-pipe header fields
/// plus an extension whose values unescape cleanly. Returns the count.
fn validate_cef(path: &Path) -> usize {
    let text = std::fs::read_to_string(path).expect("read cef egress");
    let mut n = 0;
    for line in text.lines() {
        let (header, ext) =
            obs::split_cef(line).unwrap_or_else(|| panic!("cef line {} malformed: {line}", n + 1));
        assert_eq!(header[0], "CEF:0", "cef line {} version: {line}", n + 1);
        assert!(
            header.iter().all(|f| obs::cef_unescape(f).is_some()),
            "cef line {} header does not unescape: {line}",
            n + 1
        );
        assert!(!ext.is_empty(), "cef line {} has no extension: {line}", n + 1);
        n += 1;
    }
    n
}

/// Headline summary: volume, filter attribution, emission latency.
pub fn table(b: &AlertsBench) -> Table {
    let mut t = Table::new(
        "Alert plane: volume, suppression/rate-limit attribution, emission latency",
        &[
            "sessions",
            "shards",
            "threads",
            "wall_s",
            "emitted",
            "written",
            "deduped",
            "dropped_rl",
            "rate",
            "burst",
            "suppress",
            "p50_emit_ns",
            "p95_emit_ns",
            "p99_emit_ns",
        ],
    );
    t.row(vec![
        b.sessions.to_string(),
        b.shards.to_string(),
        b.threads.to_string(),
        f2(b.wall_s),
        b.stats.emitted.to_string(),
        b.stats.written.to_string(),
        b.stats.deduped.to_string(),
        b.stats.dropped_ratelimit.to_string(),
        f2(b.cfg.rate),
        f2(b.cfg.burst),
        format!("{:.4}", b.cfg.suppress),
        format!("{:.0}", b.p50_emit_ns),
        format!("{:.0}", b.p95_emit_ns),
        format!("{:.0}", b.p99_emit_ns),
    ]);
    t
}

/// Per-class rates: where the volume comes from and which filter ate it.
pub fn class_table(b: &AlertsBench) -> Table {
    let mut t = Table::new(
        "Alerts by class (written / deduped / rate-limited, share of written)",
        &["class", "written", "deduped", "dropped_rl", "share"],
    );
    let total = b.stats.written.max(1) as f64;
    for (class, written, deduped, dropped) in &b.per_class {
        t.row(vec![
            class.clone(),
            written.to_string(),
            deduped.to_string(),
            dropped.to_string(),
            pct(*written as f64 / total),
        ]);
    }
    t
}

/// Top talkers by written alerts. The key is the source address when the
/// record carried a 5-tuple, else the detection subject.
pub fn talkers_table(b: &AlertsBench) -> Table {
    let mut t =
        Table::new("Top talkers by written alerts", &["talker", "as_ipv4", "written", "share"]);
    let total = b.stats.written.max(1) as f64;
    for &(key, count) in &b.talkers {
        let dotted = if key > 0 && key <= u32::MAX as u64 {
            let v = key as u32;
            format!("{}.{}.{}.{}", v >> 24, (v >> 16) & 255, (v >> 8) & 255, v & 255)
        } else {
            "-".to_string()
        };
        t.row(vec![key.to_string(), dotted, count.to_string(), pct(count as f64 / total)]);
    }
    t
}

/// Append the run to the repo-root trajectory.
pub fn append_trajectory(path: &Path, b: &AlertsBench) -> std::io::Result<usize> {
    crate::output::append_trajectory(
        path,
        vec![
            ("quick", obs::Json::Bool(b.quick)),
            ("sessions", obs::Json::Num(b.sessions as f64)),
            ("shards", obs::Json::Num(b.shards as f64)),
            ("threads", obs::Json::Num(b.threads as f64)),
            ("wall_s", obs::Json::Num(b.wall_s)),
            ("emitted", obs::Json::Num(b.stats.emitted as f64)),
            ("written", obs::Json::Num(b.stats.written as f64)),
            ("deduped", obs::Json::Num(b.stats.deduped as f64)),
            ("dropped_ratelimit", obs::Json::Num(b.stats.dropped_ratelimit as f64)),
            ("engine_alerts", obs::Json::Num(b.engine_alerts as f64)),
            ("p50_emit_ns", obs::Json::Num(b.p50_emit_ns)),
            ("p95_emit_ns", obs::Json::Num(b.p95_emit_ns)),
            ("p99_emit_ns", obs::Json::Num(b.p99_emit_ns)),
            ("emit_count", obs::Json::Num(b.emit_count as f64)),
            ("emit_sum_ns", obs::Json::Num(b.emit_sum_ns)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_balances_and_both_egress_files_validate() {
        let dir = std::env::temp_dir().join("nwdp_alerts_bench_test");
        let _ = std::fs::remove_dir_all(&dir);
        // `run` asserts balance, line counts, and per-line validity; the
        // validators re-run here only to pin the audit to fresh reads.
        let b = run(Scale::Quick, &dir);
        assert_eq!(b.stats.emitted, b.stats.written + b.stats.deduped + b.stats.dropped_ratelimit);
        assert!(b.stats.written > 0);
        assert_eq!(validate_jsonl(&b.jsonl_path) as u64, b.stats.written);
        assert_eq!(validate_cef(&b.cef_path) as u64, b.stats.written);
        // The default rate starves the bucket on the full scenario, and
        // coordinated sampling keeps detection (nearly) exactly-once:
        // emissions exceed unique engine alerts only by cross-node
        // re-detections of fractionally split units.
        assert!(b.stats.dropped_ratelimit > 0, "default rate must exercise the limiter");
        assert!(b.stats.emitted >= b.engine_alerts as u64);
        assert!(b.emit_count >= b.stats.emitted, "every emit observes the latency histogram");
        assert_eq!(table(&b).rows.len(), 1);
        assert!(!class_table(&b).rows.is_empty());
        assert!(!talkers_table(&b).rows.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trajectory_appends_and_reparses() {
        let dir = std::env::temp_dir().join("nwdp_alerts_traj_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_alerts.json");
        let _ = std::fs::remove_file(&path);
        let b = AlertsBench {
            quick: true,
            sessions: 100,
            shards: 1,
            threads: 1,
            wall_s: 0.1,
            cfg: obs::AlertConfig::default(),
            stats: obs::AlertStats { emitted: 10, written: 7, deduped: 2, dropped_ratelimit: 1 },
            per_class: vec![("Scan".into(), 7, 2, 1)],
            talkers: vec![(167772161, 7)],
            engine_alerts: 9,
            jsonl_path: dir.join("a.jsonl"),
            cef_path: dir.join("a.cef"),
            p50_emit_ns: 100.0,
            p95_emit_ns: 300.0,
            p99_emit_ns: 500.0,
            emit_count: 10,
            emit_sum_ns: 1500.0,
        };
        assert_eq!(append_trajectory(&path, &b).unwrap(), 1);
        assert_eq!(append_trajectory(&path, &b).unwrap(), 2);
        let json = obs::parse_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let Some(obs::Json::Arr(runs)) = json.get("runs") else { panic!("runs array missing") };
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("written"), Some(&obs::Json::Num(7.0)));
        let _ = std::fs::remove_file(&path);
    }
}
