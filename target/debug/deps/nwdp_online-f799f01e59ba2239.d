/root/repo/target/debug/deps/nwdp_online-f799f01e59ba2239.d: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp_online-f799f01e59ba2239.rmeta: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs Cargo.toml

crates/online/src/lib.rs:
crates/online/src/adversary.rs:
crates/online/src/fpl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-W__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
