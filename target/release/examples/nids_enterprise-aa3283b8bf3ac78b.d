/root/repo/target/release/examples/nids_enterprise-aa3283b8bf3ac78b.d: examples/nids_enterprise.rs

/root/repo/target/release/examples/nids_enterprise-aa3283b8bf3ac78b: examples/nids_enterprise.rs

examples/nids_enterprise.rs:
