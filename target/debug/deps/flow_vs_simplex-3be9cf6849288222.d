/root/repo/target/debug/deps/flow_vs_simplex-3be9cf6849288222.d: crates/lp/tests/flow_vs_simplex.rs Cargo.toml

/root/repo/target/debug/deps/libflow_vs_simplex-3be9cf6849288222.rmeta: crates/lp/tests/flow_vs_simplex.rs Cargo.toml

crates/lp/tests/flow_vs_simplex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
