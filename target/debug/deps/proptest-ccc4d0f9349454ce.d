/root/repo/target/debug/deps/proptest-ccc4d0f9349454ce.d: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs

/root/repo/target/debug/deps/proptest-ccc4d0f9349454ce: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs

crates/proptest/src/lib.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/strategy.rs:
