//! # nwdp-lp — linear & mixed-integer optimization substrate
//!
//! The paper solves its NIDS assignment LP (Eqs 1–6) and the LP relaxation
//! of its NIPS MILP (Eqs 7–14) with CPLEX. No mature pure-Rust LP solver is
//! available offline, so this crate implements the required optimization
//! machinery from scratch:
//!
//! - [`model::Problem`]: a sparse column-wise LP/MIP builder;
//! - [`simplex`]: a bounded-variable two-phase revised simplex with two
//!   basis backends — a dense explicit inverse for small/medium problems
//!   and a sparse product-form inverse (eta file + permutation) for the
//!   large, highly structured NIPS relaxations;
//! - [`rowgen`]: lazy-constraint (row generation) wrapper for formulations
//!   whose row set is huge but mostly slack at the optimum (the GUB/VUB
//!   rows of the NIPS relaxation);
//! - [`flow`]: an exact min-cost max-flow solver (successive shortest
//!   paths with potentials) used as a fast path for the NIPS inner
//!   sampling LPs, which reduce to transportation problems when resource
//!   requirements are proportional (the paper's evaluation setting);
//! - [`milp`]: branch-and-bound over the simplex, used on small instances
//!   to compare randomized rounding against the true integer optimum;
//! - [`presolve`]: opt-in problem reductions (fixed variables, empty and
//!   singleton rows) with reversible solution mapping;
//! - [`check`]: independent KKT verification, the test oracle certifying
//!   optimality of simplex output without sharing its code path.

pub mod check;
pub mod flow;
pub mod milp;
pub mod model;
pub mod presolve;
pub mod rowgen;
pub mod simplex;
pub mod solution;

pub use check::{verify_kkt, KktTol};
pub use model::{Cmp, ConId, Problem, Sense, VarId};
pub use rowgen::SolveContext;
pub use simplex::{solve, solve_from, solve_warm, SolverOpts, WarmStart};
pub use solution::{Solution, Status};
