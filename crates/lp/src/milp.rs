//! Branch-and-bound for mixed-integer programs.
//!
//! The NIPS deployment problem (Eqs 7–14 of the paper) is NP-hard; the
//! paper solves it approximately by randomized rounding. To *evaluate* the
//! rounding quality against the true integer optimum (rather than only the
//! LP upper bound) on small instances, this module implements a
//! straightforward LP-based branch-and-bound: depth-first with best-bound
//! tie-breaking, branching on the most fractional integer variable.

use crate::model::Problem;
use crate::simplex::{solve_warm, SolverOpts, WarmStart};
use crate::solution::{Solution, Status};
use std::rc::Rc;

/// Branch-and-bound options.
#[derive(Debug, Clone)]
pub struct MilpOpts {
    /// LP sub-solver options.
    pub lp: SolverOpts,
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub tol_int: f64,
    /// Relative optimality gap at which to stop.
    pub gap: f64,
}

impl Default for MilpOpts {
    fn default() -> Self {
        MilpOpts { lp: SolverOpts::default(), max_nodes: 100_000, tol_int: 1e-6, gap: 1e-9 }
    }
}

/// Outcome of a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct MilpResult {
    /// Best integer-feasible solution found (if any).
    pub incumbent: Option<Solution>,
    /// Proven bound on the optimum (upper bound for Max, lower for Min).
    pub bound: f64,
    /// True when the search completed (incumbent is proven optimal, or the
    /// problem is proven integer-infeasible).
    pub proved: bool,
    /// Nodes explored.
    pub nodes: usize,
}

/// Solve `p` to integer optimality (subject to the node budget).
pub fn solve_milp(p: &Problem, opts: &MilpOpts) -> MilpResult {
    let int_vars: Vec<_> = p.integer_vars().collect();
    // `better(a, b)`: is objective `a` better than `b` in p's sense?
    let maximize = matches!(p.sense(), crate::model::Sense::Max);
    let better = |a: f64, b: f64| if maximize { a > b } else { a < b };

    let root = p.clone();
    // Stack holds subproblems as bound-override lists (var, lb, ub) plus
    // the parent relaxation's final basis: a child differs from its
    // parent only in one variable's bounds, so the parent basis is an
    // excellent warm-start guess. Tightening a bound keeps the parent
    // basis dual feasible (costs are untouched), which is exactly the
    // case the simplex dual phase repairs in place; it falls back to a
    // cold solve only when branching broke both feasibility senses.
    type Node = (Vec<(usize, f64, f64)>, Option<Rc<WarmStart>>);
    let mut stack: Vec<Node> = vec![(Vec::new(), None)];
    let mut incumbent: Option<Solution> = None;
    let mut incumbent_obj = if maximize { f64::NEG_INFINITY } else { f64::INFINITY };
    let mut root_bound = if maximize { f64::INFINITY } else { f64::NEG_INFINITY };
    let mut nodes = 0usize;
    let mut exhausted = false;

    while let Some((overrides, warm)) = stack.pop() {
        if nodes >= opts.max_nodes {
            exhausted = true;
            break;
        }
        nodes += 1;
        let mut sub = root.clone();
        for &(v, lb, ub) in &overrides {
            let vid = crate::model::VarId(v);
            if lb > ub {
                // Empty domain: prune.
                continue;
            }
            sub.set_bounds(vid, lb, ub);
        }
        // Detect truly empty domains (lb > ub) before solving.
        if overrides.iter().any(|&(_, lb, ub)| lb > ub) {
            continue;
        }
        let (rel, snap) = solve_warm(&sub, &opts.lp, warm.as_deref());
        match rel.status {
            Status::Infeasible => continue,
            Status::Unbounded => {
                // Unbounded relaxation at the root means the MIP is
                // unbounded or needs cuts; report as unproved.
                if overrides.is_empty() {
                    root_bound = if maximize { f64::INFINITY } else { f64::NEG_INFINITY };
                    exhausted = true;
                    break;
                }
                continue;
            }
            Status::IterLimit | Status::NumericalFailure => {
                exhausted = true;
                continue;
            }
            Status::Optimal => {}
        }
        if overrides.is_empty() {
            root_bound = rel.objective;
        }
        // Bound pruning.
        if incumbent.is_some() {
            let slack = opts.gap * (1.0 + incumbent_obj.abs());
            if !better(rel.objective, incumbent_obj + if maximize { slack } else { -slack }) {
                continue;
            }
        }
        // Most fractional integer variable.
        let mut branch: Option<(usize, f64)> = None;
        let mut best_frac = opts.tol_int;
        for &v in &int_vars {
            let x = rel.x[v.index()];
            let frac = (x - x.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch = Some((v.index(), x));
            }
        }
        match branch {
            None => {
                // Integer feasible: round off the dust and keep if better.
                let mut sol = rel;
                for &v in &int_vars {
                    sol.x[v.index()] = sol.x[v.index()].round();
                }
                sol.objective = p.objective_value(&sol.x);
                if incumbent.is_none() || better(sol.objective, incumbent_obj) {
                    incumbent_obj = sol.objective;
                    incumbent = Some(sol);
                }
            }
            Some((v, x)) => {
                let (lb0, ub0) = current_bounds(&root, &overrides, v);
                let floor = x.floor();
                let snap = snap.map(Rc::new);
                // Down branch: x <= floor; up branch: x >= floor + 1.
                let mut down = overrides.clone();
                down.push((v, lb0, floor.min(ub0)));
                let mut up = overrides.clone();
                up.push((v, (floor + 1.0).max(lb0), ub0));
                // Explore the side nearer the fractional value first
                // (pushed last → popped first).
                if x - floor > 0.5 {
                    stack.push((down, snap.clone()));
                    stack.push((up, snap));
                } else {
                    stack.push((up, snap.clone()));
                    stack.push((down, snap));
                }
            }
        }
    }

    MilpResult { incumbent, bound: root_bound, proved: !exhausted, nodes }
}

fn current_bounds(root: &Problem, overrides: &[(usize, f64, f64)], v: usize) -> (f64, f64) {
    let mut b = root.var_bounds(crate::model::VarId(v));
    for &(ov, lb, ub) in overrides {
        if ov == v {
            b = (lb, ub);
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Problem, Sense};

    #[test]
    fn knapsack_small() {
        // max 10a + 6b + 4c ; 5a + 4b + 3c <= 7; binary → a=1, c=0, b=0?
        // a+c: 5+3=8 >7. a alone: 10. b+c: 7 → 10. a=1 → 10; b=1,c=1 → 10.
        // Optimum 10.
        let mut p = Problem::new(Sense::Max);
        let a = p.add_bin_var("a", 10.0);
        let b = p.add_bin_var("b", 6.0);
        let c = p.add_bin_var("c", 4.0);
        p.add_con("w", &[(a, 5.0), (b, 4.0), (c, 3.0)], Cmp::Le, 7.0);
        let r = solve_milp(&p, &MilpOpts::default());
        assert!(r.proved);
        let inc = r.incumbent.unwrap();
        assert!((inc.objective - 10.0).abs() < 1e-6, "obj {}", inc.objective);
    }

    #[test]
    fn knapsack_where_lp_rounds_wrong() {
        // max 8x + 11y + 6z + 4w ; 5x + 7y + 4z + 3w <= 14, binary.
        // LP relaxation picks fractional; integer optimum is x+y=19 w/ 12
        // weight? 5+7=12 ≤14 → 19; y+z+w = 11+6+4=21, weight 7+4+3=14 ✓ → 21.
        let mut p = Problem::new(Sense::Max);
        let x = p.add_bin_var("x", 8.0);
        let y = p.add_bin_var("y", 11.0);
        let z = p.add_bin_var("z", 6.0);
        let w = p.add_bin_var("w", 4.0);
        p.add_con("cap", &[(x, 5.0), (y, 7.0), (z, 4.0), (w, 3.0)], Cmp::Le, 14.0);
        let r = solve_milp(&p, &MilpOpts::default());
        assert!(r.proved);
        let inc = r.incumbent.unwrap();
        assert!((inc.objective - 21.0).abs() < 1e-6, "obj {}", inc.objective);
        assert!(inc.x.iter().all(|v| (v - v.round()).abs() < 1e-9));
    }

    #[test]
    fn integer_infeasible() {
        // 2x = 1 with x integer in [0, 3]: LP feasible (x=0.5), IP not.
        let mut p = Problem::new(Sense::Min);
        let x = p.add_int_var("x", 0.0, 3.0, 1.0);
        p.add_con("odd", &[(x, 2.0)], Cmp::Eq, 1.0);
        let r = solve_milp(&p, &MilpOpts::default());
        assert!(r.proved);
        assert!(r.incumbent.is_none());
    }

    #[test]
    fn mixed_integer_continuous() {
        // max y + 0.5 t ; y integer ≤ 3.7-ish via row, t continuous ≤ y.
        let mut p = Problem::new(Sense::Max);
        let y = p.add_int_var("y", 0.0, 10.0, 1.0);
        let t = p.add_var("t", 0.0, 10.0, 0.5);
        p.add_con("cap", &[(y, 1.0)], Cmp::Le, 3.7);
        p.add_con("link", &[(t, 1.0), (y, -1.0)], Cmp::Le, 0.0);
        let r = solve_milp(&p, &MilpOpts::default());
        let inc = r.incumbent.unwrap();
        assert!((inc.x[y.index()] - 3.0).abs() < 1e-6);
        assert!((inc.x[t.index()] - 3.0).abs() < 1e-6);
        assert!((inc.objective - 4.5).abs() < 1e-6);
    }

    #[test]
    fn bound_is_valid() {
        let mut p = Problem::new(Sense::Max);
        let a = p.add_bin_var("a", 3.0);
        let b = p.add_bin_var("b", 2.0);
        p.add_con("c", &[(a, 1.0), (b, 1.0)], Cmp::Le, 1.0);
        let r = solve_milp(&p, &MilpOpts::default());
        let inc = r.incumbent.unwrap();
        assert!(r.bound >= inc.objective - 1e-9);
        assert!((inc.objective - 3.0).abs() < 1e-9);
    }
}
