/root/repo/target/debug/deps/nwdp-1149352f83554600.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp-1149352f83554600.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
