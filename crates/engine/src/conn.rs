//! Connection tracking (the Bro event engine's connection records).
//!
//! "Bro maintains a connection record for each end-to-end session which is
//! generated in the event engine and carried into the policy engine"
//! (§2.3). The coordinated prototype extends the record with hashes of
//! different header-field combinations so policy scripts never recompute
//! them; this costs a few percent of memory (Fig 5(b)) but makes the
//! coordination checks cheap.

use crate::cost::{CostModel, Meter};
use nwdp_hash::{FiveTuple, FlowKeyKind, KeyedHasher};
use nwdp_traffic::AppProtocol;
use std::collections::HashMap;

/// Precomputed coordination hashes carried in the connection record.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnHashes {
    pub uniflow: f64,
    pub bisession: f64,
    pub source: f64,
    pub destination: f64,
}

impl ConnHashes {
    pub fn get(&self, kind: FlowKeyKind) -> f64 {
        match kind {
            FlowKeyKind::UniFlow => self.uniflow,
            FlowKeyKind::BiSession => self.bisession,
            FlowKeyKind::Source => self.source,
            FlowKeyKind::Destination => self.destination,
            FlowKeyKind::HostPair => self.bisession,
        }
    }
}

/// A connection record.
#[derive(Debug, Clone)]
pub struct ConnRecord {
    /// Originator-oriented tuple (the connection's canonical identity).
    pub orig: FiveTuple,
    pub app: Option<AppProtocol>,
    pub pkts: u64,
    pub bytes: u64,
    pub saw_syn: bool,
    pub saw_fin: bool,
    /// Coordination hashes (populated only in coordinated deployments).
    pub hashes: ConnHashes,
    /// Per-module analysis opt-in decided at connection setup (used by the
    /// event-engine check placement): `enabled[m]` = module `m` analyzes
    /// this connection.
    pub enabled: Vec<bool>,
    /// §2.5 fine-grained extension: the connection is tracked in a
    /// lightweight record because every interested module consumes only
    /// connection-level events (no per-packet analysis needed).
    pub light: bool,
}

/// The connection table.
#[derive(Debug)]
pub struct ConnTable {
    map: HashMap<FiveTuple, usize>,
    records: Vec<ConnRecord>,
    /// Whether records carry coordination hashes (+memory, Fig 5(b)).
    with_hashes: bool,
    n_modules: usize,
}

impl ConnTable {
    pub fn new(with_hashes: bool, n_modules: usize) -> Self {
        ConnTable { map: HashMap::new(), records: Vec::new(), with_hashes, n_modules }
    }

    fn canonical(t: &FiveTuple) -> FiveTuple {
        // Bidirectional canonical key (same for both directions).
        let r = t.reversed();
        if (t.src_ip, t.src_port) <= (r.src_ip, r.src_port) {
            *t
        } else {
            r
        }
    }

    /// Record size in bytes under the cost model.
    pub fn record_bytes(&self, costs: &CostModel) -> u64 {
        costs.conn_bytes
            + if self.with_hashes { costs.conn_hash_bytes } else { 0 }
            + self.n_modules as u64 // enabled-bitmap footprint
    }

    /// Size of a §2.5 lightweight record: enough for the 5-tuple, counters
    /// and hashes, but no reassembly/analyzer state.
    pub fn light_record_bytes(&self, costs: &CostModel) -> u64 {
        64 + if self.with_hashes { costs.conn_hash_bytes } else { 0 }
    }

    /// Downgrade a record to the lightweight representation, refunding the
    /// memory difference (called once the engine knows only conn-level
    /// modules are interested).
    pub fn make_light(&mut self, idx: usize, costs: &CostModel, meter: &mut Meter) {
        let full = self.record_bytes(costs);
        let light = self.light_record_bytes(costs);
        let rec = &mut self.records[idx];
        if !rec.light {
            rec.light = true;
            meter.free(full.saturating_sub(light));
        }
    }

    /// Look up the record for a tuple without creating one (no cost
    /// charged; used by the §2.3 fast path which runs inside the same
    /// table probe).
    pub fn find(&self, tuple: &FiveTuple) -> Option<usize> {
        self.map.get(&Self::canonical(tuple)).copied()
    }

    /// Look up (or create) the record for a packet. Charges lookup /
    /// creation costs. Returns `(index, is_new)`; the packet's tuple
    /// becomes the originator tuple on creation (first packet wins).
    pub fn upsert(
        &mut self,
        tuple: &FiveTuple,
        hasher: &KeyedHasher,
        costs: &CostModel,
        meter: &mut Meter,
    ) -> (usize, bool) {
        meter.cpu(costs.conn_lookup);
        let key = Self::canonical(tuple);
        if let Some(&idx) = self.map.get(&key) {
            return (idx, false);
        }
        meter.cpu(costs.conn_create);
        meter.alloc(self.record_bytes(costs));
        let hashes = if self.with_hashes {
            // §2.3: computed once at connection setup, carried in the
            // record; avoids recomputation in every policy script.
            meter.cpu(costs.hash_compute * 4);
            ConnHashes {
                uniflow: hasher.unit_hash(tuple, FlowKeyKind::UniFlow),
                bisession: hasher.unit_hash(tuple, FlowKeyKind::BiSession),
                source: hasher.unit_hash(tuple, FlowKeyKind::Source),
                destination: hasher.unit_hash(tuple, FlowKeyKind::Destination),
            }
        } else {
            ConnHashes::default()
        };
        let idx = self.records.len();
        self.records.push(ConnRecord {
            orig: *tuple,
            app: AppProtocol::from_port(tuple.dst_port),
            pkts: 0,
            bytes: 0,
            saw_syn: false,
            saw_fin: false,
            hashes,
            enabled: vec![true; self.n_modules],
            light: false,
        });
        self.map.insert(key, idx);
        (idx, true)
    }

    pub fn get(&self, idx: usize) -> &ConnRecord {
        &self.records[idx]
    }

    pub fn get_mut(&mut self, idx: usize) -> &mut ConnRecord {
        &mut self.records[idx]
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> FiveTuple {
        FiveTuple::new(0x0a000001, 0x0a010002, 41000, 80, 6)
    }

    #[test]
    fn both_directions_hit_same_record() {
        let mut t = ConnTable::new(true, 3);
        let h = KeyedHasher::unkeyed();
        let c = CostModel::default();
        let mut m = Meter::new();
        let (i1, new1) = t.upsert(&tuple(), &h, &c, &mut m);
        let (i2, new2) = t.upsert(&tuple().reversed(), &h, &c, &mut m);
        assert_eq!(i1, i2);
        assert!(new1 && !new2);
        assert_eq!(t.len(), 1);
        // Originator orientation preserved from the first packet.
        assert_eq!(t.get(i1).orig, tuple());
    }

    #[test]
    fn hash_fields_cost_memory() {
        let c = CostModel::default();
        let h = KeyedHasher::unkeyed();
        let mut with = Meter::new();
        let mut without = Meter::new();
        let mut tw = ConnTable::new(true, 0);
        let mut tn = ConnTable::new(false, 0);
        tw.upsert(&tuple(), &h, &c, &mut with);
        tn.upsert(&tuple(), &h, &c, &mut without);
        assert_eq!(with.mem_bytes - without.mem_bytes, c.conn_hash_bytes);
        assert!(with.cpu_cycles > without.cpu_cycles, "hash computation charged");
    }

    #[test]
    fn distinct_connections_distinct_records() {
        let mut t = ConnTable::new(false, 0);
        let h = KeyedHasher::unkeyed();
        let c = CostModel::default();
        let mut m = Meter::new();
        t.upsert(&tuple(), &h, &c, &mut m);
        let mut other = tuple();
        other.src_port = 50000;
        t.upsert(&other, &h, &c, &mut m);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn record_hash_consistency_with_keyed_hasher() {
        let mut t = ConnTable::new(true, 0);
        let h = KeyedHasher::with_key(42);
        let c = CostModel::default();
        let mut m = Meter::new();
        let (i, _) = t.upsert(&tuple(), &h, &c, &mut m);
        let r = t.get(i);
        assert_eq!(r.hashes.bisession, h.unit_hash(&tuple(), FlowKeyKind::BiSession));
        assert_eq!(r.hashes.bisession, h.unit_hash(&tuple().reversed(), FlowKeyKind::BiSession));
    }
}
