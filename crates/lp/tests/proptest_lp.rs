//! Property-based tests for the LP solver: every optimal solve must pass
//! the independent KKT certificate; MILP incumbents must be feasible,
//! integral, and within the proven bound.

use nwdp_lp::milp::{solve_milp, MilpOpts};
use nwdp_lp::{solve, verify_kkt, Cmp, KktTol, Problem, Sense, SolverOpts, Status};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct LpSpec {
    maximize: bool,
    nv: usize,
    // per-var: (lb in [-4,0], width in [1,6], obj in [-3,3], start frac)
    vars: Vec<(f64, f64, f64, f64)>,
    // per-con: (vars (by index mod nv), coefs, cmp sel, slack)
    cons: Vec<(Vec<usize>, Vec<i8>, u8, f64)>,
}

fn lp_strategy() -> impl Strategy<Value = LpSpec> {
    (1usize..8)
        .prop_flat_map(|nv| {
            (
                any::<bool>(),
                Just(nv),
                proptest::collection::vec(
                    (-4.0f64..0.0, 1.0f64..6.0, -3.0f64..3.0, 0.0f64..1.0),
                    nv,
                ),
                proptest::collection::vec(
                    (
                        proptest::collection::vec(0usize..64, 1..4),
                        proptest::collection::vec(-2i8..=2, 1..4),
                        0u8..3,
                        0.0f64..2.0,
                    ),
                    0..10,
                ),
            )
        })
        .prop_map(|(maximize, nv, vars, cons)| LpSpec { maximize, nv, vars, cons })
}

fn build(spec: &LpSpec) -> (Problem, Vec<f64>) {
    let sense = if spec.maximize { Sense::Max } else { Sense::Min };
    let mut p = Problem::new(sense);
    let mut point = Vec::new();
    let mut ids = Vec::new();
    for (j, &(lb, w, obj, frac)) in spec.vars.iter().enumerate() {
        let ub = lb + w;
        ids.push(p.add_var(format!("v{j}"), lb, ub, obj));
        point.push(lb + frac * w); // interior feasible point
    }
    for (i, (vidx, coefs, cmpsel, slack)) in spec.cons.iter().enumerate() {
        let n = vidx.len().min(coefs.len());
        let mut terms = Vec::new();
        let mut act = 0.0;
        for t in 0..n {
            let j = vidx[t] % spec.nv;
            let c = coefs[t] as f64;
            terms.push((ids[j], c));
            act += c * point[j];
        }
        let (cmp, rhs) = match cmpsel {
            0 => (Cmp::Le, act + slack),
            1 => (Cmp::Ge, act - slack),
            _ => (Cmp::Eq, act),
        };
        p.add_con(format!("c{i}"), &terms, cmp, rhs);
    }
    (p, point)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Bounded vars + feasible-by-construction rows ⇒ the solver must
    /// return Optimal, and the result must pass the KKT certificate.
    #[test]
    fn solver_output_is_kkt_certified(spec in lp_strategy()) {
        let (p, _point) = build(&spec);
        let s = solve(&p, &SolverOpts::default());
        prop_assert_eq!(s.status, Status::Optimal);
        if let Err(e) = verify_kkt(&p, &s, KktTol::default()) {
            return Err(TestCaseError::fail(format!("KKT: {e}")));
        }
        // The optimum can be no worse than the known feasible point.
        let ref_obj = p.objective_value(&_point);
        let slack = 1e-6 * (1.0 + ref_obj.abs());
        if spec.maximize {
            prop_assert!(s.objective >= ref_obj - slack);
        } else {
            prop_assert!(s.objective <= ref_obj + slack);
        }
    }

    /// MILP incumbents are integral, feasible, and no better than the bound.
    #[test]
    fn milp_incumbent_is_sound(spec in lp_strategy()) {
        let (mut p, _) = build(&spec);
        // Make the first variable integer (bounds already span >= 1 unit).
        if p.num_vars() > 0 {
            let v = p.var_id(0);
            let (lb, ub) = p.var_bounds(v);
            p.set_bounds(v, lb.ceil(), ub.floor().max(lb.ceil()));
            p.mark_integer(v);
        }
        let r = solve_milp(&p, &MilpOpts::default());
        if let Some(inc) = r.incumbent {
            prop_assert!(p.max_violation(&inc.x) < 1e-6);
            for v in p.integer_vars() {
                let x = inc.x[v.index()];
                prop_assert!((x - x.round()).abs() < 1e-6);
            }
            if r.proved {
                let gap = 1e-6 * (1.0 + r.bound.abs());
                match p.sense() {
                    Sense::Max => prop_assert!(inc.objective <= r.bound + gap),
                    Sense::Min => prop_assert!(inc.objective >= r.bound - gap),
                }
            }
        }
    }
}
