/root/repo/target/debug/deps/nwdp_hash-01e89f8e0075b30b.d: crates/hash/src/lib.rs crates/hash/src/key.rs crates/hash/src/keyed.rs crates/hash/src/lookup3.rs crates/hash/src/range.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp_hash-01e89f8e0075b30b.rmeta: crates/hash/src/lib.rs crates/hash/src/key.rs crates/hash/src/keyed.rs crates/hash/src/lookup3.rs crates/hash/src/range.rs Cargo.toml

crates/hash/src/lib.rs:
crates/hash/src/key.rs:
crates/hash/src/keyed.rs:
crates/hash/src/lookup3.rs:
crates/hash/src/range.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
