//! Graceful degradation under overload.
//!
//! When replayed load exceeds a node's capacity (traffic surge, or a
//! capacity-degraded failure mode), the node cannot analyze everything it
//! is responsible for. Rather than dropping packets arbitrarily — which
//! loses coverage *unpredictably* — the node sheds whole hash ranges in a
//! deterministic priority order, lowest **distance-weighted value** first.
//! This mirrors the NIPS objective (paper Eq 7: value of dropping attack
//! traffic scales with the traffic volume and how much downstream
//! footprint it would consume): analysis responsibilities that watch a
//! lot of traffic across a long path are the last to go.
//!
//! Shedding is *exact*: the boundary entry is trimmed with
//! [`RangeSet::take_measure`], so the post-shed load lands on the capacity
//! ceiling instead of overshooting below it, and the accounted coverage
//! loss matches the manifest to within FP epsilon.

use crate::nids::lp::NodeCaps;
use crate::nids::manifest::{ManifestEntry, SamplingManifest};
use crate::units::NidsDeployment;
use nwdp_topo::NodeId;
use std::collections::HashMap;

/// Priority of each unit: distance-weighted traffic value **per unit of
/// hash measure**. A unit observed along an `h`-hop path weighs
/// `pkts · h` — shedding it forfeits more observed traffic (and more
/// downstream benefit, NIPS-style) than an edge-local unit of equal rate.
pub fn distance_weighted_values(dep: &NidsDeployment) -> Vec<f64> {
    dep.units.iter().map(|u| u.pkts * u.nodes.len() as f64).collect()
}

/// One shedding decision.
#[derive(Debug, Clone)]
pub struct ShedAction {
    pub unit: usize,
    pub node: NodeId,
    /// Hash measure this node stopped covering for the unit.
    pub shed_measure: f64,
    /// The unit's distance-weighted value (per measure).
    pub value: f64,
}

/// Result of [`shed_overload`].
#[derive(Debug, Clone)]
pub struct DegradeOutcome {
    /// Manifest with shed ranges removed.
    pub manifest: SamplingManifest,
    /// Every shed, in the order it was decided (per node, ascending
    /// value).
    pub actions: Vec<ShedAction>,
    /// Nodes that had to shed, ascending.
    pub overloaded_nodes: Vec<NodeId>,
    /// Shed hash measure / total assigned hash measure.
    pub shed_fraction: f64,
    /// Traffic-weighted coverage lost: `Σ shed·pkts / Σ_units pkts`.
    pub traffic_fraction_lost: f64,
    /// Total distance-weighted value forfeited.
    pub value_lost: f64,
}

/// Shed responsibilities on every node whose projected load under a
/// traffic surge of `surge`× exceeds capacity, in ascending
/// distance-weighted-value order, until the node fits again.
///
/// `values` comes from [`distance_weighted_values`] (or any caller-chosen
/// priority; ties break on the unit index, so the order is deterministic).
/// The surge scales both CPU and memory load; capacities are the `caps`
/// the manifest was provisioned for.
pub fn shed_overload(
    dep: &NidsDeployment,
    manifest: &SamplingManifest,
    caps: &[NodeCaps],
    surge: f64,
    values: &[f64],
) -> DegradeOutcome {
    assert_eq!(caps.len(), dep.num_nodes, "capacity vector size mismatch");
    assert_eq!(values.len(), dep.units.len(), "one value per unit");
    assert!(surge > 0.0, "surge must be a positive multiplier");

    let mut actions: Vec<ShedAction> = Vec::new();
    let mut overloaded_nodes: Vec<NodeId> = Vec::new();
    // (unit, node) → measure kept (only for trimmed/shed entries).
    let mut kept: HashMap<(usize, usize), f64> = HashMap::new();
    let mut total_measure = 0.0;
    let mut lost_traffic = 0.0;
    let total_traffic: f64 = dep.units.iter().map(|u| u.pkts).sum();
    let mut value_lost = 0.0;
    let mut shed_measure_total = 0.0;

    for (jn, cap) in caps.iter().enumerate().take(dep.num_nodes) {
        let node = NodeId(jn);
        // Per-entry surged load contributions.
        let mut load: Vec<(usize, f64, f64, f64)> = Vec::new(); // (unit, cpu, mem, measure)
        let (mut cpu, mut mem) = (0.0f64, 0.0f64);
        for e in manifest.node_entries(node) {
            let unit = &dep.units[e.unit];
            let class = &dep.classes[unit.class];
            let measure = e.ranges.measure();
            let c = class.cpu_per_pkt * unit.pkts * measure * surge / cap.cpu;
            let m = class.mem_per_item * unit.items * measure * surge / cap.mem;
            cpu += c;
            mem += m;
            total_measure += measure;
            load.push((e.unit, c, m, measure));
        }
        if cpu.max(mem) <= 1.0 + 1e-12 {
            continue;
        }
        overloaded_nodes.push(node);
        // Cheapest responsibilities first; unit index breaks value ties.
        load.sort_by(|a, b| values[a.0].total_cmp(&values[b.0]).then(a.0.cmp(&b.0)));
        for &(u, c, m, measure) in &load {
            if cpu.max(mem) <= 1.0 + 1e-12 {
                break;
            }
            // Fraction of this entry that must go to clear the excess on
            // every violated dimension; ≥ 1 means the whole entry goes.
            let need = |excess: f64, per: f64| {
                if excess <= 0.0 {
                    0.0
                } else if per > 0.0 {
                    excess / per
                } else {
                    f64::INFINITY
                }
            };
            let f = need(cpu - 1.0, c).max(need(mem - 1.0, m)).min(1.0);
            cpu -= f * c;
            mem -= f * m;
            let shed = f * measure;
            kept.insert((u, jn), measure - shed);
            shed_measure_total += shed;
            lost_traffic += shed * dep.units[u].pkts;
            value_lost += shed * values[u];
            actions.push(ShedAction { unit: u, node, shed_measure: shed, value: values[u] });
        }
    }

    // Rebuild deterministically: walk units in order, trim or drop the
    // shed entries, keep the rest verbatim.
    let mut entries: Vec<(NodeId, ManifestEntry)> = Vec::new();
    for (u, unit) in dep.units.iter().enumerate() {
        for &j in &unit.nodes {
            let Some(old) = manifest.range(u, j) else { continue };
            let ranges = match kept.get(&(u, j.index())) {
                Some(&keep) => old.take_measure(keep),
                None => old.clone(),
            };
            if ranges.is_empty() {
                continue;
            }
            entries.push((j, ManifestEntry { class: unit.class, unit: u, key: unit.key, ranges }));
        }
    }
    let manifest2 = SamplingManifest::from_entries(dep.num_nodes, entries);

    DegradeOutcome {
        manifest: manifest2,
        actions,
        overloaded_nodes,
        shed_fraction: if total_measure > 0.0 { shed_measure_total / total_measure } else { 0.0 },
        traffic_fraction_lost: if total_traffic > 0.0 { lost_traffic / total_traffic } else { 0.0 },
        value_lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::AnalysisClass;
    use crate::nids::lp::{solve_nids_lp, NidsLpConfig};
    use crate::nids::manifest::generate_manifests;
    use crate::resilience::repair::manifest_loads;
    use crate::units::build_units;
    use nwdp_topo::{internet2, PathDb};
    use nwdp_traffic::{TrafficMatrix, VolumeModel};

    fn setup() -> (NidsDeployment, NidsLpConfig, SamplingManifest) {
        let t = internet2();
        let paths = PathDb::shortest_paths(&t);
        let tm = TrafficMatrix::gravity(&t);
        let vol = VolumeModel::internet2_baseline();
        let dep = build_units(&t, &paths, &tm, &vol, &AnalysisClass::standard_set());
        let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let a = solve_nids_lp(&dep, &cfg).unwrap();
        let m = generate_manifests(&dep, &a.d);
        (dep, cfg, m)
    }

    #[test]
    fn no_overload_no_shedding() {
        let (dep, cfg, m) = setup();
        let values = distance_weighted_values(&dep);
        // The LP provisioned for surge 1: nothing sheds.
        let out = shed_overload(&dep, &m, &cfg.caps, 1.0, &values);
        assert!(out.actions.is_empty());
        assert!(out.overloaded_nodes.is_empty());
        assert_eq!(out.shed_fraction, 0.0);
        assert_eq!(m.verify_coverage_exact(&dep), out.manifest.verify_coverage_exact(&dep));
    }

    #[test]
    fn surge_sheds_lowest_value_first_and_lands_on_the_ceiling() {
        let (dep, cfg, m) = setup();
        let values = distance_weighted_values(&dep);
        let (cpu0, mem0) = manifest_loads(&dep, &cfg.caps, &m);
        let base = cpu0.iter().zip(&mem0).map(|(c, m)| c.max(*m)).fold(0.0f64, f64::max);
        assert!(base > 0.0);
        // Push every node past its ceiling.
        let surge = 2.0 / base;
        let out = shed_overload(&dep, &m, &cfg.caps, surge, &values);
        assert!(!out.overloaded_nodes.is_empty());
        assert!(out.shed_fraction > 0.0 && out.shed_fraction < 1.0);
        assert!(out.traffic_fraction_lost > 0.0 && out.traffic_fraction_lost < 1.0);
        // Post-shed surged load fits on every node, and the bottleneck
        // sits exactly on the ceiling (exact trim, no overshoot).
        let (cpu1, mem1) = manifest_loads(&dep, &cfg.caps, &out.manifest);
        let worst = cpu1.iter().zip(&mem1).map(|(c, m)| c.max(*m) * surge).fold(0.0f64, f64::max);
        assert!(worst <= 1.0 + 1e-9, "still overloaded: {worst}");
        assert!(worst >= 1.0 - 1e-6, "shed too much: {worst}");
        // Within each overloaded node, everything cheaper than a kept
        // responsibility was shed before it: fully-shed values are ≤ the
        // node's kept values.
        for &node in &out.overloaded_nodes {
            let fully_shed: Vec<usize> = out
                .actions
                .iter()
                .filter(|a| a.node == node)
                .filter(|a| out.manifest.share(a.unit, node) == 0.0)
                .map(|a| a.unit)
                .collect();
            let max_shed = fully_shed.iter().map(|&u| values[u]).fold(f64::NEG_INFINITY, f64::max);
            let min_kept = out
                .manifest
                .node_entries(node)
                .iter()
                .map(|e| values[e.unit])
                .fold(f64::INFINITY, f64::min);
            if !fully_shed.is_empty() && min_kept.is_finite() {
                assert!(
                    max_shed <= min_kept + 1e-9,
                    "{node:?}: shed value {max_shed} above kept {min_kept}"
                );
            }
        }
        // Deterministic: same inputs, same decisions.
        let again = shed_overload(&dep, &m, &cfg.caps, surge, &values);
        assert_eq!(out.actions.len(), again.actions.len());
        for (a, b) in out.actions.iter().zip(&again.actions) {
            assert_eq!((a.unit, a.node), (b.unit, b.node));
            assert_eq!(a.shed_measure, b.shed_measure);
        }
    }

    #[test]
    fn values_prefer_long_paths() {
        let (dep, _, _) = setup();
        let values = distance_weighted_values(&dep);
        // Single-node (ingress/egress) units weigh less per packet than a
        // multi-hop path unit of the same rate would.
        for (u, unit) in dep.units.iter().enumerate() {
            assert!((values[u] - unit.pkts * unit.nodes.len() as f64).abs() < 1e-9);
        }
    }
}
