//! Satellite of the tracing layer: a mid-run panic must still leave a
//! *valid* (if partial) journal behind. The guarantees under test:
//!
//! - every journal line is well-formed JSON even when the writer was
//!   abandoned mid-run (records are buffered per thread and flushed
//!   whole, never split);
//! - the panicking thread's open spans are closed by their guards during
//!   the unwind, so open/close records stay balanced;
//! - the panic-hook + final flush push everything out of the per-thread
//!   buffers.

use nwdp_obs::{parse_json, Json};
use std::io::Write;
use std::sync::{Arc, Mutex};

#[derive(Clone)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn panic_mid_run_leaves_valid_balanced_journal() {
    let sink = Arc::new(Mutex::new(Vec::new()));
    nwdp_obs::set_trace_writer(Box::new(Capture(Arc::clone(&sink))));
    nwdp_obs::set_trace_enabled(true);
    // The default hook prints a backtrace per panic; replace it with a
    // silent one *before* installing the flush hook, so the chain under
    // test is flush → silence.
    let noisy = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    nwdp_obs::install_panic_flush();

    let worker = std::thread::spawn(|| {
        let _outer = nwdp_obs::span!("work.outer", item = 1);
        let _inner = nwdp_obs::span!("work.inner");
        nwdp_obs::event("work.progress", &[("step", nwdp_obs::TraceValue::from(3u32))]);
        panic!("simulated mid-run crash");
    });
    assert!(worker.join().is_err(), "worker must have panicked");

    nwdp_obs::flush_trace();
    nwdp_obs::set_trace_enabled(false);
    std::panic::set_hook(noisy);

    let bytes = sink.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("journal is UTF-8");
    assert!(!text.is_empty(), "panic must not swallow the journal");

    // Every line parses; span opens and closes balance per id.
    let mut open: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut names = Vec::new();
    for line in text.lines() {
        let doc = parse_json(line).unwrap_or_else(|e| panic!("bad journal line {line:?}: {e}"));
        let id = doc.get("id").and_then(Json::as_f64).map(|v| v as u64);
        match doc.get("ev").and_then(Json::as_str) {
            Some("B") => {
                assert!(open.insert(id.expect("B record has id")), "duplicate span id");
                names.push(doc.get("name").and_then(Json::as_str).unwrap_or("").to_string());
            }
            Some("E") => {
                assert!(open.remove(&id.expect("E record has id")), "close without open");
            }
            Some("I") => {}
            other => panic!("unknown record type {other:?} in {line:?}"),
        }
    }
    assert!(open.is_empty(), "unwind must close every span: left open {open:?}");
    assert!(names.iter().any(|n| n == "work.outer") && names.iter().any(|n| n == "work.inner"));
}
