/root/repo/target/debug/examples/quickstart-91531bbecd902c01.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-91531bbecd902c01: examples/quickstart.rs

examples/quickstart.rs:
