/root/repo/target/debug/examples/routing_change-e2acb2a2cfcd6b1e.d: examples/routing_change.rs

/root/repo/target/debug/examples/routing_change-e2acb2a2cfcd6b1e: examples/routing_change.rs

examples/routing_change.rs:
