//! Deterministic virtual clock: a logical event queue on the
//! replay-fraction timeline.
//!
//! No wall-clock anywhere — "time" is the replay fraction carried by each
//! scheduled event, exactly like the PR 4 resilience clock. Ties are
//! broken by insertion sequence, so two events at the same instant always
//! pop in the order they were scheduled, which is what makes whole-run
//! delivery schedules bit-identical across `NWDP_THREADS` (all
//! scheduling happens serially in the driver; only actor *processing* of
//! an already-ordered same-instant batch fans out).

use super::{Addr, Msg};
use nwdp_topo::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Everything that can fire on the virtual clock.
#[derive(Debug, Clone)]
pub enum Timer {
    /// A transport-delayed message arrival.
    Deliver { to: Addr, msg: Msg },
    /// A node's next heartbeat emission.
    NodeBeat { node: NodeId },
    /// The controller's periodic heartbeat-monitor sweep.
    HealthSweep,
    /// Per-attempt manifest-push timeout: if `node` has not acked `epoch`
    /// by the time this fires, the controller retries or gives up. Stale
    /// checks (epoch moved on, node already acked/declared) are resolved
    /// lazily at fire time, so no explicit cancellation is needed.
    RetryCheck { node: NodeId, epoch: u64, attempt: u32 },
    /// Deferred LP re-optimization after a greedy repair.
    LpFollowup { after_epoch: u64 },
    /// Ground-truth coverage sample point (plan boundaries).
    Sample,
}

struct Scheduled {
    at: f64,
    seq: u64,
    timer: Timer,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at.total_cmp(&other.at) == Ordering::Equal && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // BinaryHeap is a max-heap: reverse so the earliest (then
    // first-scheduled) event is the maximum.
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.total_cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Seeded-order logical event queue.
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    pub fn push(&mut self, at: f64, timer: Timer) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, timer });
    }

    /// Time of the next event, if any.
    pub fn peek_at(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.at)
    }

    pub fn pop(&mut self) -> Option<(f64, Timer)> {
        self.heap.pop().map(|s| (s.at, s.timer))
    }

    /// Pop every event scheduled at exactly the head instant (ties in
    /// scheduling order): one same-instant batch for the driver.
    pub fn pop_batch(&mut self) -> Option<(f64, Vec<Timer>)> {
        let (at, first) = self.pop()?;
        let mut batch = vec![first];
        while self.peek_at().is_some_and(|next| next.total_cmp(&at) == Ordering::Equal) {
            if let Some((_, timer)) = self.pop() {
                batch.push(timer);
            }
        }
        Some((at, batch))
    }
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q = EventQueue::new();
        q.push(0.5, Timer::HealthSweep);
        q.push(0.2, Timer::NodeBeat { node: NodeId(1) });
        q.push(0.2, Timer::NodeBeat { node: NodeId(0) });
        let (at, batch) = q.pop_batch().unwrap();
        assert_eq!(at, 0.2);
        // Same instant, insertion order: node 1 was scheduled first.
        match &batch[..] {
            [Timer::NodeBeat { node: a }, Timer::NodeBeat { node: b }] => {
                assert_eq!((*a, *b), (NodeId(1), NodeId(0)));
            }
            other => panic!("unexpected batch {other:?}"),
        }
        let (at, batch) = q.pop_batch().unwrap();
        assert_eq!(at, 0.5);
        assert_eq!(batch.len(), 1);
        assert!(q.pop_batch().is_none());
    }
}
