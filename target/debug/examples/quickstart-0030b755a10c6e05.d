/root/repo/target/debug/examples/quickstart-0030b755a10c6e05.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0030b755a10c6e05: examples/quickstart.rs

examples/quickstart.rs:
