//! # Distributed control plane: message-passing nodes over a faulty
//! transport
//!
//! Everything before this module noticed failures by *arithmetic*
//! (`health::detect_at`'s closed-form grid). Here the cluster is real —
//! in-process, but message-passing: each node is an actor with a typed
//! mailbox ([`NodeActor`]), a controller actor pushes epoch-numbered
//! manifest updates and collects heartbeats, and a [`FaultPlan`]-driven
//! transport drops, delays, reorders, and severs messages. Failure
//! detection is re-derived from *actually missed* heartbeat messages
//! ([`HeartbeatMonitor`]); convergence is something that visibly happens
//! (or doesn't) on the wire.
//!
//! ## Determinism contract
//!
//! The run is a discrete-event simulation on the replay-fraction clock —
//! no wall-clock anywhere. All scheduling, all transport RNG draws, and
//! all controller decisions happen serially in the driver thread in
//! event order; ties pop in scheduling order. Node actors only process
//! *same-instant* delivery batches, fanned out over `NWDP_THREADS`
//! workers with each node's mailbox drained in batch order and replies
//! merged back in ascending node order. A worker thread never touches
//! the RNG or the queue, so the entire run — stats, detections, epochs,
//! coverage samples, and the delivery-schedule fingerprint — is a pure
//! function of `(deployment, manifest, plan, config)`, bit-identical
//! across thread counts.
//!
//! ## Degradation semantics
//!
//! A partitioned minority cannot receive pushes, so it keeps serving its
//! **last validated manifest** — stale but safe, and exactly the blind
//! window `FailureTimeline` accounts: the ground-truth coverage timeline
//! in [`ClusterRun::coverage`] counts a partitioned node's ranges as
//! unobserved while it is cut, and its manifest as stale-but-fenced when
//! it heals (the controller re-pushes on the first heartbeat back, and
//! the node's epoch fence makes the catch-up idempotent).

mod clock;
mod controller;
mod node;
mod transport;

pub use clock::{EventQueue, Timer};
pub use node::NodeActor;
pub use transport::{SendOutcome, Transport};

use controller::Controller;
use nwdp_core::nids::lp::NodeCaps;
use nwdp_core::nids::manifest::{
    validate_manifests, CapacityCeiling, ManifestValidationError, SamplingManifest,
};
use nwdp_core::parallel;
use nwdp_core::resilience::{covered_fraction, FaultPlan, HealthConfig, HealthConfigError};
use nwdp_core::units::NidsDeployment;
use nwdp_obs as obs;
use nwdp_topo::NodeId;
use std::sync::{Arc, Mutex};

/// Typed control-plane messages.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Node → controller liveness beat.
    Heartbeat { from: NodeId, seq: u64 },
    /// Controller → node epoch-numbered manifest update.
    ManifestPush { epoch: u64, manifest: Arc<SamplingManifest>, attempt: u32 },
    /// Node → controller: installed and serving `epoch`.
    InstallAck { from: NodeId, epoch: u64 },
    /// Node → controller: fenced off a stale push; `current` is what the
    /// node actually runs.
    StaleReject { from: NodeId, pushed: u64, current: u64 },
    /// Node → controller: batched alert forwarding — `count` alerts
    /// detected locally since the previous report. Rides the same lossy
    /// transport as everything else, so the fault plans exercise alert
    /// loss; sends/delivered/drops are balance-checked like heartbeats.
    AlertReport { from: NodeId, seq: u64, count: u64 },
}

/// Mailbox addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Addr {
    Controller,
    Node(NodeId),
}

/// Wire-level and control-loop counters for one run. Mirrored into the
/// `net.*` obs counters when collection is enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the transport (pushes, beats, replies).
    pub sends: u64,
    /// Messages actually delivered to a mailbox.
    pub delivered: u64,
    /// Dropped by link loss.
    pub drops_loss: u64,
    /// Dropped on a severed path (crash or partition), at send or
    /// delivery time.
    pub drops_cut: u64,
    /// Manifest-push retransmissions.
    pub retries: u64,
    /// Retry budgets exhausted (each declares the node failed).
    pub timeouts: u64,
    /// Stale pushes fenced off by nodes.
    pub stale_epoch_rejects: u64,
    /// Heartbeats delivered to the controller.
    pub heartbeats: u64,
    /// Manifest installs across all nodes.
    pub installs: u64,
    /// Declared-failed nodes that proved liveness again.
    pub recoveries: u64,
    /// Greedy repairs adopted as epochs.
    pub repairs: u64,
    /// Repair candidates the validation gate refused.
    pub repairs_rejected: u64,
    /// LP follow-up re-optimizations adopted as epochs.
    pub lp_followups: u64,
    /// LP follow-ups that failed to solve.
    pub lp_failures: u64,
    /// Alert-report messages handed to the transport.
    pub alert_sends: u64,
    /// Alert-report messages delivered to the controller.
    pub alert_delivered: u64,
    /// Alert-report messages lost (link loss, or a severed path at send
    /// or delivery time). Invariant: `alert_sends == alert_delivered +
    /// alert_drops`.
    pub alert_drops: u64,
    /// Sum of the `count` fields of delivered alert reports — alerts the
    /// controller actually learned about.
    pub alerts_forwarded: u64,
}

/// Why the controller declared a node failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionCause {
    /// Heartbeat silence past the miss window + grace.
    MissedHeartbeats,
    /// Manifest push unacked past the retry budget.
    RetryExhausted,
}

/// One failure declaration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    pub node: NodeId,
    pub declared_at: f64,
    pub cause: DetectionCause,
}

/// Lifecycle of one distributed epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochReport {
    pub epoch: u64,
    pub created_at: f64,
    /// Nodes the epoch was pushed to (live set at creation).
    pub targets: usize,
    /// Acks received so far.
    pub acked: usize,
    /// Instant the last target acked, if the epoch fully converged.
    pub converged_at: Option<f64>,
}

impl EpochReport {
    /// Creation-to-full-ack latency, if converged.
    pub fn convergence_latency(&self) -> Option<f64> {
        self.converged_at.map(|c| c - self.created_at)
    }
}

/// Control-plane configuration. Times are replay fractions.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub health: HealthConfig,
    /// Maximum manifest-push retransmissions per node per epoch before
    /// the node is declared failed.
    pub retry_budget: u32,
    /// First-attempt push timeout.
    pub backoff_base: f64,
    /// Timeout multiplier per attempt (exponential backoff).
    pub backoff_factor: f64,
    /// Coverage multiplicity for validation.
    pub redundancy: f64,
    /// Optional capacity ceiling for validation.
    pub max_load: Option<f64>,
    /// End of the run on the replay clock.
    pub horizon: f64,
    /// Schedule an LP re-optimization one heartbeat after each greedy
    /// repair.
    pub lp_followup: bool,
    /// Forward an [`Msg::AlertReport`] every this-many heartbeats per
    /// node; 0 (the default) disables forwarding. Off by default because
    /// extra messages advance the transport's RNG stream — enabling this
    /// legitimately changes the delivery schedule, so it is only switched
    /// on when the alert plane is (`NWDP_ALERT` set) or by tests.
    pub alert_every: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            health: HealthConfig::default(),
            retry_budget: 3,
            backoff_base: 0.025,
            backoff_factor: 2.0,
            redundancy: 1.0,
            max_load: None,
            horizon: 1.0,
            lp_followup: false,
            alert_every: 0,
        }
    }
}

/// Why a cluster run could not start (runtime faults are data, not
/// errors — they are the point).
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    Health(HealthConfigError),
    Validation(ManifestValidationError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Health(e) => write!(f, "health config: {e}"),
            ClusterError::Validation(e) => write!(f, "initial manifest: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Everything one cluster run produced. Plain comparable data: the
/// thread-equivalence tests assert whole-run equality.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRun {
    pub stats: NetStats,
    pub detections: Vec<Detection>,
    pub epochs: Vec<EpochReport>,
    /// Ground-truth coverage samples `(t, covered_fraction)` over the
    /// effective network-wide manifest (each node contributes the ranges
    /// of the epoch it actually runs; cut nodes contribute nothing).
    pub coverage: Vec<(f64, f64)>,
    /// Final installed epoch per node.
    pub node_epochs: Vec<u64>,
    /// Install log per node: `(at, epoch)`.
    pub node_installs: Vec<Vec<(f64, u64)>>,
    /// Stale pushes fenced per node.
    pub node_stale_rejects: Vec<u64>,
    /// The controller's final epoch.
    pub final_epoch: u64,
    /// The manifest of the final epoch — what the controller last pushed
    /// (and validated) network-wide.
    pub final_manifest: Arc<SamplingManifest>,
    /// Nodes still declared failed when the run ended (declared nodes
    /// that later proved alive via a heartbeat are not listed).
    pub failed_final: Vec<NodeId>,
    /// FNV fold over every delivered message in processing order — the
    /// delivery schedule's identity for determinism assertions.
    pub fingerprint: u64,
}

impl ClusterRun {
    /// Minimum ground-truth coverage over the run.
    pub fn coverage_floor(&self) -> f64 {
        self.coverage.iter().map(|&(_, c)| c).fold(f64::INFINITY, f64::min)
    }

    /// `(epoch, latency)` for every converged epoch.
    pub fn convergence_latencies(&self) -> Vec<(u64, f64)> {
        self.epochs.iter().filter_map(|r| r.convergence_latency().map(|l| (r.epoch, l))).collect()
    }

    /// First declaration of `node`, if any.
    pub fn detection_of(&self, node: NodeId) -> Option<&Detection> {
        self.detections.iter().find(|d| d.node == node)
    }

    /// True when `node` was declared failed during the run but had
    /// cleared the declaration (a heartbeat got through) by its end.
    pub fn is_recovered(&self, node: NodeId) -> bool {
        self.detection_of(node).is_some() && !self.failed_final.contains(&node)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: u64, v: u64) -> u64 {
    let mut h = h;
    for byte in v.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fingerprint_msg(h: u64, at: f64, to: &Addr, msg: &Msg) -> u64 {
    let h = fnv(h, at.to_bits());
    let h = fnv(
        h,
        match to {
            Addr::Controller => u64::MAX,
            Addr::Node(n) => n.index() as u64,
        },
    );
    match msg {
        Msg::Heartbeat { from, seq } => fnv(fnv(fnv(h, 1), from.index() as u64), *seq),
        Msg::ManifestPush { epoch, attempt, .. } => fnv(fnv(fnv(h, 2), *epoch), *attempt as u64),
        Msg::InstallAck { from, epoch } => fnv(fnv(fnv(h, 3), from.index() as u64), *epoch),
        Msg::StaleReject { from, pushed, current } => {
            fnv(fnv(fnv(fnv(h, 4), from.index() as u64), *pushed), *current)
        }
        Msg::AlertReport { from, seq, count } => {
            fnv(fnv(fnv(fnv(h, 5), from.index() as u64), *seq), *count)
        }
    }
}

fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Work routed to one node within a same-instant batch.
enum NodeWork {
    Deliver(Msg),
    Beat,
}

/// Effective network-wide manifest: node `j` contributes the entries of
/// the epoch it currently runs. Mixed epochs (mid-convergence) yield
/// exactly the transient gaps/overlaps the coverage timeline should see.
fn effective_manifest(nodes: &[Mutex<NodeActor>], num_nodes: usize) -> SamplingManifest {
    let mut entries = Vec::new();
    for (j, cell) in nodes.iter().enumerate() {
        let n = locked(cell);
        for e in n.manifest.node_entries(NodeId(j)) {
            entries.push((NodeId(j), e.clone()));
        }
    }
    SamplingManifest::from_entries(num_nodes, entries)
}

/// Drive one full cluster run over the fault plan until the horizon.
///
/// The initial manifest must pass [`validate_manifests`]; it boots on
/// every node as epoch 1 (the paper's offline compile-and-distribute
/// step), so the run starts converged and the interesting dynamics are
/// fault-driven re-convergence.
pub fn run_cluster(
    dep: &NidsDeployment,
    manifest: &SamplingManifest,
    caps: &[NodeCaps],
    plan: &FaultPlan,
    cfg: &ClusterConfig,
) -> Result<ClusterRun, ClusterError> {
    let ceiling = cfg.max_load.map(|max_load| CapacityCeiling { caps, max_load });
    validate_manifests(dep, manifest, cfg.redundancy, ceiling.as_ref())
        .map_err(ClusterError::Validation)?;
    cfg.health.validate().map_err(ClusterError::Health)?;

    let initial = Arc::new(manifest.clone());
    let mut tx = Transport::new(plan.clone());
    let mut ctl = Controller::new(dep, caps, initial.clone(), cfg, tx.max_delay(), plan.seed)?;
    let nodes: Vec<Mutex<NodeActor>> = (0..dep.num_nodes)
        .map(|j| Mutex::new(NodeActor::new(NodeId(j), initial.clone())))
        .collect();

    let mut q = EventQueue::new();
    let i = cfg.health.heartbeat_interval;
    let first_grid = if cfg.health.phase > 0.0 { cfg.health.phase * i } else { i };
    for j in 0..dep.num_nodes {
        q.push(first_grid, Timer::NodeBeat { node: NodeId(j) });
    }
    q.push(first_grid, Timer::HealthSweep);
    // Ground-truth sample points at every plan boundary, so the coverage
    // timeline cannot miss a blind window narrower than the beat grid.
    for &(_, at) in &plan.crashes {
        if at <= cfg.horizon {
            q.push(at, Timer::Sample);
        }
    }
    for p in &plan.partitions {
        for at in [p.from, p.until] {
            if at <= cfg.horizon {
                q.push(at, Timer::Sample);
            }
        }
    }

    let mut stats = NetStats::default();
    let mut fingerprint = FNV_OFFSET;
    let mut coverage: Vec<(f64, f64)> = Vec::new();

    let sample = |t: f64, nodes: &[Mutex<NodeActor>], tx: &Transport| {
        let blind: Vec<NodeId> = (0..dep.num_nodes).map(NodeId).filter(|&n| tx.cut(n, t)).collect();
        let eff = effective_manifest(nodes, dep.num_nodes);
        covered_fraction(dep, &eff, &blind)
    };
    coverage.push((0.0, sample(0.0, &nodes, &tx)));

    while let Some((t, batch)) = q.pop_batch() {
        if t > cfg.horizon {
            break;
        }
        // Split the same-instant batch: per-node work (mailbox deliveries
        // and beat timers) fans out in parallel; controller events stay
        // serial. Delivery-time severance is re-checked here — a push in
        // flight when its target crashed or partitioned must not land.
        let mut node_work: Vec<Vec<NodeWork>> = (0..dep.num_nodes).map(|_| Vec::new()).collect();
        let mut ctl_events: Vec<Timer> = Vec::new();
        let mut resample = false;
        for ev in batch {
            match ev {
                Timer::Deliver { to: Addr::Node(n), msg } => {
                    if tx.cut(n, t) {
                        stats.drops_cut += 1;
                    } else {
                        fingerprint = fingerprint_msg(fingerprint, t, &Addr::Node(n), &msg);
                        stats.delivered += 1;
                        node_work[n.index()].push(NodeWork::Deliver(msg));
                    }
                }
                Timer::NodeBeat { node } => {
                    node_work[node.index()].push(NodeWork::Beat);
                    q.push(t + i, Timer::NodeBeat { node });
                }
                Timer::Deliver { to: Addr::Controller, msg } => {
                    // Delivery-time severance: a beat or alert report in
                    // flight when its origin was cut must not land.
                    if let Msg::Heartbeat { from, .. } | Msg::AlertReport { from, .. } = &msg {
                        if tx.cut(*from, t) {
                            stats.drops_cut += 1;
                            if matches!(msg, Msg::AlertReport { .. }) {
                                stats.alert_drops += 1;
                            }
                            continue;
                        }
                    }
                    fingerprint = fingerprint_msg(fingerprint, t, &Addr::Controller, &msg);
                    stats.delivered += 1;
                    if matches!(msg, Msg::AlertReport { .. }) {
                        stats.alert_delivered += 1;
                    }
                    ctl_events.push(Timer::Deliver { to: Addr::Controller, msg });
                }
                other => ctl_events.push(other),
            }
        }

        // Parallel node dispatch: each active node drains its mailbox in
        // batch order; replies merge back in ascending node order.
        let active: Vec<usize> = (0..dep.num_nodes).filter(|&j| !node_work[j].is_empty()).collect();
        if !active.is_empty() {
            let work = &node_work;
            let cells = &nodes;
            let alert_every = cfg.alert_every;
            let replies: Vec<(usize, Vec<Msg>, NetStats, bool)> =
                parallel::par_map_n(active.len(), |k| {
                    let j = active[k];
                    let mut actor = locked(&cells[j]);
                    let mut local = NetStats::default();
                    let mut out = Vec::new();
                    let mut installed = false;
                    for w in &work[j] {
                        match w {
                            NodeWork::Deliver(msg) => {
                                let before = local.installs;
                                if let Some(reply) = actor.on_msg(msg.clone(), t, &mut local) {
                                    out.push(reply);
                                }
                                installed |= local.installs > before;
                            }
                            NodeWork::Beat => {
                                out.push(actor.beat());
                                if alert_every > 0 && actor.beat_seq.is_multiple_of(alert_every) {
                                    out.push(actor.alert_report());
                                }
                            }
                        }
                    }
                    (j, out, local, installed)
                });
            for (j, out, local, installed) in replies {
                stats.sends += out.len() as u64;
                stats.installs += local.installs;
                stats.stale_epoch_rejects += local.stale_epoch_rejects;
                resample |= installed;
                for msg in out {
                    let is_alert = matches!(msg, Msg::AlertReport { .. });
                    if is_alert {
                        stats.alert_sends += 1;
                    }
                    match tx.send(NodeId(j), t) {
                        SendOutcome::Delivered { at } => {
                            q.push(at, Timer::Deliver { to: Addr::Controller, msg });
                        }
                        SendOutcome::DroppedLoss => {
                            stats.drops_loss += 1;
                            if is_alert {
                                stats.alert_drops += 1;
                            }
                        }
                        SendOutcome::DroppedCut => {
                            stats.drops_cut += 1;
                            if is_alert {
                                stats.alert_drops += 1;
                            }
                        }
                    }
                }
            }
        }

        // Serial controller turn, in batch order.
        for ev in ctl_events {
            match ev {
                Timer::Deliver { msg, .. } => ctl.on_msg(msg, t, &mut q, &mut tx, &mut stats),
                Timer::HealthSweep => {
                    ctl.on_sweep(t, &mut q, &mut tx, &mut stats);
                    q.push(t + i, Timer::HealthSweep);
                    resample = true;
                }
                Timer::RetryCheck { node, epoch, attempt } => {
                    ctl.on_retry_check(node, epoch, attempt, t, &mut q, &mut tx, &mut stats);
                }
                Timer::LpFollowup { after_epoch } => {
                    ctl.on_lp_followup(after_epoch, t, &mut q, &mut tx, &mut stats);
                }
                Timer::Sample => resample = true,
                Timer::NodeBeat { .. } => unreachable!("node timers never route to the controller"),
            }
        }

        if resample {
            coverage.push((t, sample(t, &nodes, &tx)));
        }
    }
    coverage.push((cfg.horizon, sample(cfg.horizon, &nodes, &tx)));

    let node_epochs: Vec<u64> = nodes.iter().map(|c| locked(c).epoch).collect();
    let node_installs: Vec<Vec<(f64, u64)>> =
        nodes.iter().map(|c| locked(c).installs.clone()).collect();
    let node_stale_rejects: Vec<u64> =
        nodes.iter().map(|c| locked(c).stale_epoch_rejects).collect();

    let run = ClusterRun {
        stats,
        detections: ctl.detections.clone(),
        epochs: ctl.epochs.clone(),
        coverage,
        node_epochs,
        node_installs,
        node_stale_rejects,
        final_epoch: ctl.epoch,
        final_manifest: ctl.manifest.clone(),
        failed_final: ctl.declared_nodes(),
        fingerprint,
    };
    export_metrics(&run);
    Ok(run)
}

/// Mirror a finished run into `net.*` counters and series.
fn export_metrics(run: &ClusterRun) {
    if !obs::enabled() {
        return;
    }
    let s = obs::Scope::new("net");
    s.counter("sends").add(run.stats.sends);
    s.counter("delivered").add(run.stats.delivered);
    s.counter("drops_loss").add(run.stats.drops_loss);
    s.counter("drops_cut").add(run.stats.drops_cut);
    s.counter("retries").add(run.stats.retries);
    s.counter("timeouts").add(run.stats.timeouts);
    s.counter("stale_epoch_rejects").add(run.stats.stale_epoch_rejects);
    s.counter("heartbeats").add(run.stats.heartbeats);
    s.counter("installs").add(run.stats.installs);
    s.counter("recoveries").add(run.stats.recoveries);
    s.counter("repairs").add(run.stats.repairs);
    s.counter("repairs_rejected").add(run.stats.repairs_rejected);
    s.counter("lp_followups").add(run.stats.lp_followups);
    // Alert forwarding is opt-in (`ClusterConfig::alert_every`); only
    // export its counters when it actually ran, so the metrics document
    // is unchanged for runs with forwarding off.
    if run.stats.alert_sends > 0 {
        s.counter("alert_sends").add(run.stats.alert_sends);
        s.counter("alert_delivered").add(run.stats.alert_delivered);
        s.counter("alert_drops").add(run.stats.alert_drops);
        s.counter("alerts_forwarded").add(run.stats.alerts_forwarded);
    }
    s.gauge("final_epoch").set(run.final_epoch as f64);
    for r in &run.epochs {
        if let Some(latency) = r.convergence_latency() {
            obs::record_series("net.convergence", r.created_at, latency);
        }
    }
    for &(t, c) in &run.coverage {
        obs::record_series("net.coverage", t, c);
    }
}
