/root/repo/target/release/deps/nwdp_topo-1cd6560765798032.d: crates/topo/src/lib.rs crates/topo/src/builtin.rs crates/topo/src/generate.rs crates/topo/src/graph.rs crates/topo/src/io.rs crates/topo/src/rocketfuel.rs crates/topo/src/routing.rs

/root/repo/target/release/deps/libnwdp_topo-1cd6560765798032.rlib: crates/topo/src/lib.rs crates/topo/src/builtin.rs crates/topo/src/generate.rs crates/topo/src/graph.rs crates/topo/src/io.rs crates/topo/src/rocketfuel.rs crates/topo/src/routing.rs

/root/repo/target/release/deps/libnwdp_topo-1cd6560765798032.rmeta: crates/topo/src/lib.rs crates/topo/src/builtin.rs crates/topo/src/generate.rs crates/topo/src/graph.rs crates/topo/src/io.rs crates/topo/src/rocketfuel.rs crates/topo/src/routing.rs

crates/topo/src/lib.rs:
crates/topo/src/builtin.rs:
crates/topo/src/generate.rs:
crates/topo/src/graph.rs:
crates/topo/src/io.rs:
crates/topo/src/rocketfuel.rs:
crates/topo/src/routing.rs:
