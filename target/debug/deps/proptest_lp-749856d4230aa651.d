/root/repo/target/debug/deps/proptest_lp-749856d4230aa651.d: crates/lp/tests/proptest_lp.rs

/root/repo/target/debug/deps/proptest_lp-749856d4230aa651: crates/lp/tests/proptest_lp.rs

crates/lp/tests/proptest_lp.rs:
