/root/repo/target/debug/examples/quickstart-a39e186ce4361278.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-a39e186ce4361278.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
