/root/repo/target/debug/deps/nwdp-a272625c1b39815d.d: src/lib.rs

/root/repo/target/debug/deps/libnwdp-a272625c1b39815d.rlib: src/lib.rs

/root/repo/target/debug/deps/libnwdp-a272625c1b39815d.rmeta: src/lib.rs

src/lib.rs:
