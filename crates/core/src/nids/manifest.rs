//! Sampling manifests (paper Fig 2) and the per-node coordination check
//! (paper Fig 3).
//!
//! `GENERATE-NIDS-MANIFEST` converts the optimal fractional assignment
//! `d*` into **non-overlapping hash ranges** per coordination unit: walking
//! the unit's nodes in a fixed order, node `j` receives
//! `[Range, Range + d*_ikj)`. Because every node hashes packets with the
//! same keyed function, the ranges partition the hash space and each item
//! is analyzed exactly once network-wide — with zero runtime coordination.
//!
//! With the redundancy extension (§2.5) the covered space is `[0, r)`; the
//! running range wraps around the unit interval, so a node's share can be
//! a two-segment [`RangeSet`]. Since each `d ≤ 1`, a node never wraps onto
//! itself, guaranteeing `r` *distinct* nodes per point.

use crate::units::{NidsDeployment, UnitKey};
use nwdp_hash::RangeSet;
use nwdp_topo::NodeId;
use std::collections::HashMap;

/// One node's responsibility for one coordination unit.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Class index in the deployment.
    pub class: usize,
    /// Unit index in the deployment.
    pub unit: usize,
    pub key: UnitKey,
    pub ranges: RangeSet,
}

/// The network-wide set of sampling manifests.
#[derive(Debug, Clone)]
pub struct SamplingManifest {
    /// Entries grouped per node.
    per_node: Vec<Vec<ManifestEntry>>,
    /// `(unit index, node)` → position in `per_node[node]`.
    index: HashMap<(usize, usize), usize>,
}

/// Fig 2: translate the optimal solution into sampling manifests.
///
/// `d[u]` lists `(node, fraction)` in a fixed node order (the order of
/// `dep.units[u].nodes`; the paper notes the order does not matter as long
/// as it is consistent).
pub fn generate_manifests(dep: &NidsDeployment, d: &[Vec<(NodeId, f64)>]) -> SamplingManifest {
    assert_eq!(d.len(), dep.units.len(), "assignment/unit count mismatch");
    let mut per_node: Vec<Vec<ManifestEntry>> = vec![Vec::new(); dep.num_nodes];
    let mut index = HashMap::new();
    for (u, unit) in dep.units.iter().enumerate() {
        let mut range = 0.0f64;
        for &(j, frac) in &d[u] {
            debug_assert!((0.0..=1.0 + 1e-9).contains(&frac), "fraction {frac} out of range");
            if frac <= 1e-12 {
                continue;
            }
            let ranges = RangeSet::wrapped(range, range + frac);
            range += frac;
            let entry = ManifestEntry { class: unit.class, unit: u, key: unit.key, ranges };
            index.insert((u, j.index()), per_node[j.index()].len());
            per_node[j.index()].push(entry);
        }
    }
    SamplingManifest { per_node, index }
}

impl SamplingManifest {
    /// All of `node`'s responsibilities.
    pub fn node_entries(&self, node: NodeId) -> &[ManifestEntry] {
        &self.per_node[node.index()]
    }

    /// The hash range `HashRange(i, k, j)` for unit `u` at `node`, if any.
    pub fn range(&self, unit: usize, node: NodeId) -> Option<&RangeSet> {
        self.index.get(&(unit, node.index())).map(|&pos| &self.per_node[node.index()][pos].ranges)
    }

    /// Fig 3 line 5: should `node` run the unit's class on a packet whose
    /// coordination hash is `h ∈ [0, 1)`?
    pub fn should_analyze(&self, unit: usize, node: NodeId, h: f64) -> bool {
        self.range(unit, node).is_some_and(|r| r.contains(h))
    }

    /// Fraction of the unit's hash space assigned to `node`.
    pub fn share(&self, unit: usize, node: NodeId) -> f64 {
        self.range(unit, node).map_or(0.0, |r| r.measure())
    }

    /// Verify the manifest invariants for every unit:
    /// 1. the ranges of distinct nodes are disjoint within each unit
    ///    (checked on a grid), and
    /// 2. every point of the hash space is covered exactly `r` times by
    ///    `r` distinct nodes.
    ///
    /// Returns the observed coverage multiplicity (min, max) over a probe
    /// grid of `grid` points.
    pub fn verify_coverage(&self, dep: &NidsDeployment, grid: usize) -> (usize, usize) {
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for (u, unit) in dep.units.iter().enumerate() {
            for g in 0..grid {
                let h = (g as f64 + 0.5) / grid as f64;
                let mut covers = 0usize;
                for &j in &unit.nodes {
                    if self.should_analyze(u, j, h) {
                        covers += 1;
                    }
                }
                lo = lo.min(covers);
                hi = hi.max(covers);
            }
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::AnalysisClass;
    use crate::nids::lp::{solve_nids_lp, NidsLpConfig, NodeCaps};
    use crate::units::{build_units, NidsDeployment};
    use nwdp_topo::{internet2, PathDb};
    use nwdp_traffic::{TrafficMatrix, VolumeModel};

    fn dep() -> NidsDeployment {
        let t = internet2();
        let paths = PathDb::shortest_paths(&t);
        let tm = TrafficMatrix::gravity(&t);
        let vol = VolumeModel::internet2_baseline();
        build_units(&t, &paths, &tm, &vol, &AnalysisClass::standard_set())
    }

    #[test]
    fn optimal_assignment_yields_exact_single_coverage() {
        let d = dep();
        let cfg = NidsLpConfig::homogeneous(d.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let a = solve_nids_lp(&d, &cfg).unwrap();
        let m = generate_manifests(&d, &a.d);
        let (lo, hi) = m.verify_coverage(&d, 101);
        assert_eq!((lo, hi), (1, 1), "every hash point covered exactly once");
    }

    #[test]
    fn shares_match_fractions() {
        let d = dep();
        let cfg = NidsLpConfig::homogeneous(d.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let a = solve_nids_lp(&d, &cfg).unwrap();
        let m = generate_manifests(&d, &a.d);
        for (u, fr) in a.d.iter().enumerate() {
            for &(j, f) in fr {
                assert!(
                    (m.share(u, j) - f).abs() < 1e-9,
                    "unit {u} node {j:?}: share {} vs fraction {f}",
                    m.share(u, j)
                );
            }
        }
    }

    #[test]
    fn redundancy_two_covers_twice_distinctly() {
        let d0 = dep();
        let d2 = NidsDeployment {
            classes: d0.classes.clone(),
            units: d0.units.iter().filter(|u| u.nodes.len() >= 2).cloned().collect(),
            num_nodes: d0.num_nodes,
        };
        let mut cfg = NidsLpConfig::homogeneous(d2.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        cfg.redundancy = 2.0;
        let a = solve_nids_lp(&d2, &cfg).unwrap();
        let m = generate_manifests(&d2, &a.d);
        let (lo, hi) = m.verify_coverage(&d2, 101);
        assert_eq!((lo, hi), (2, 2), "every point covered exactly twice");
    }

    #[test]
    fn hand_built_assignment_manifest() {
        // A unit split 0.25 / 0.75 across two nodes.
        let d0 = dep();
        let mut d: Vec<Vec<(NodeId, f64)>> = d0
            .units
            .iter()
            .map(|u| {
                let mut v: Vec<(NodeId, f64)> = u.nodes.iter().map(|&n| (n, 0.0)).collect();
                if v.len() >= 2 {
                    v[0].1 = 0.25;
                    v[1].1 = 0.75;
                } else {
                    v[0].1 = 1.0;
                }
                v
            })
            .collect();
        // Perturb one unit to check `share` on zero-fraction nodes.
        d[0][0].1 = 0.25;
        let m = generate_manifests(&d0, &d);
        let u0 = &d0.units[0];
        assert!((m.share(0, u0.nodes[0]) - 0.25).abs() < 1e-12);
        assert!((m.share(0, u0.nodes[1]) - 0.75).abs() < 1e-12);
        if u0.nodes.len() > 2 {
            assert_eq!(m.share(0, u0.nodes[2]), 0.0);
            assert!(m.range(0, u0.nodes[2]).is_none());
        }
        // Boundary semantics: 0.25 belongs to the second node.
        assert!(m.should_analyze(0, u0.nodes[0], 0.2499));
        assert!(!m.should_analyze(0, u0.nodes[0], 0.25));
        assert!(m.should_analyze(0, u0.nodes[1], 0.25));
    }
}
