/root/repo/target/debug/deps/simplex-5b7d2fdce593635e.d: crates/lp/tests/simplex.rs

/root/repo/target/debug/deps/simplex-5b7d2fdce593635e: crates/lp/tests/simplex.rs

crates/lp/tests/simplex.rs:
