//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage: `repro [--quick] [--out DIR] [fig5 fig6 fig7 fig8 fig10 fig11 opt-time ext | all]`
//!
//! Results are written as CSV files under `--out` (default `results/`) and
//! printed as ASCII tables.

use nwdp_bench::output::Table;
use nwdp_bench::{fig10, fig11, fig5, fig678, opttime, Scale};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = Scale::from_flag(quick);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let mut wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && Some(a.as_str()) != out.to_str())
        .cloned()
        .collect();
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = ["fig5", "fig6", "fig7", "fig8", "fig10", "fig11", "opt-time", "ext"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    println!("repro: scale = {:?}, experiments = {wanted:?}, output = {}", scale, out.display());

    for w in &wanted {
        let started = std::time::Instant::now();
        match w.as_str() {
            "fig5" => {
                let r = fig5::run(scale);
                let (cpu, mem) = fig5::tables(&r);
                emit(&cpu, &out, "fig5a_cpu_overhead");
                emit(&mem, &out, "fig5b_mem_overhead");
            }
            "fig6" => {
                let pts = fig678::fig6(scale);
                emit(&fig678::table6(&pts), &out, "fig6_modules_sweep");
            }
            "fig7" => {
                let pts = fig678::fig7(scale);
                emit(&fig678::table7(&pts), &out, "fig7_volume_sweep");
            }
            "fig8" => {
                let r = fig678::fig8(scale);
                emit(&fig678::table8(&r), &out, "fig8_per_node");
            }
            "fig10" => {
                let topos = fig10::topologies();
                let pts = fig10::run(scale, &topos);
                emit(&fig10::table(&pts), &out, "fig10_rounding_quality");
            }
            "fig11" => {
                let runs = fig11::run(scale);
                emit(&fig11::table(&runs), &out, "fig11_online_regret");
                println!(
                    "final worst-case normalized regret: {:.3} (paper: ≤ 0.15)",
                    fig11::final_worst_regret(&runs)
                );
            }
            "ext" => {
                emit(
                    &nwdp_bench::extensions::fine_grained_ablation(scale),
                    &out,
                    "ext_fine_grained",
                );
                emit(&nwdp_bench::extensions::redundancy_cost(scale), &out, "ext_redundancy_cost");
                emit(&nwdp_bench::extensions::adversary_comparison(scale), &out, "ext_adversaries");
            }
            "opt-time" => {
                let mut rows = vec![opttime::nids_lp_time(50, 50)];
                let (n, rules) = if quick { (30, 25) } else { (50, 50) };
                rows.push(opttime::nips_pipeline_time(n, rules, 51));
                emit(&opttime::table(&rows), &out, "opt_time");
            }
            other => eprintln!("unknown experiment: {other}"),
        }
        println!("[{w} done in {:.1}s]\n", started.elapsed().as_secs_f64());
    }
}

fn emit(t: &Table, out: &std::path::Path, name: &str) {
    t.emit(out, name).expect("write results");
}
