//! Shortest-path routing and the path database.
//!
//! The paper (§2.4, §3.4) constructs ingress–egress paths with shortest-path
//! routing on link distances. [`PathDb::shortest_paths`] runs Dijkstra from
//! every source with a deterministic tie-break (prefer the predecessor with
//! the smaller node id), so path sets are reproducible across runs and
//! platforms — a requirement for the deterministic experiment pipeline.

use crate::graph::{NodeId, Topology};

/// An ingress→egress routing path: the ordered list of on-path nodes,
/// including both endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    pub src: NodeId,
    pub dst: NodeId,
    pub nodes: Vec<NodeId>,
    /// Total routing weight of the path.
    pub weight_bits: u64,
}

impl Path {
    pub fn weight(&self) -> f64 {
        f64::from_bits(self.weight_bits)
    }

    pub fn hops(&self) -> usize {
        self.nodes.len()
    }

    /// Position of `node` on this path, if it lies on it.
    pub fn position(&self, node: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == node)
    }

    /// Downstream distance `Dist_ikj` in router hops: the number of on-path
    /// nodes from `node` (inclusive) to the egress. For the paper's example
    /// `P = R1,R2,R3`: Dist(R1) = 3, Dist(R2) = 2, Dist(R3) = 1.
    pub fn downstream_hops(&self, node: NodeId) -> Option<usize> {
        self.position(node).map(|i| self.nodes.len() - i)
    }
}

/// All-pairs shortest paths over a topology.
#[derive(Debug, Clone)]
pub struct PathDb {
    n: usize,
    /// `paths[src * n + dst]`; entry for `src == dst` is the trivial path.
    paths: Vec<Path>,
}

impl PathDb {
    /// Compute all-pairs shortest paths by per-source Dijkstra.
    ///
    /// Routing is **symmetric by construction**: the `dst → src` path is
    /// the exact reverse of the `src → dst` path (valid on an undirected
    /// graph, where the reverse of a shortest path is shortest). Symmetry
    /// matters for stateful NIDS coordination — both directions of a
    /// connection must traverse the same node set so that a single on-path
    /// node can observe the whole session (paper Fig 1).
    pub fn shortest_paths(topo: &Topology) -> Self {
        assert!(topo.is_connected(), "routing requires a connected topology");
        let n = topo.num_nodes();
        let mut paths: Vec<Option<Path>> = (0..n * n).map(|_| None).collect();
        for src in topo.nodes() {
            let (dist, prev) = dijkstra(topo, src);
            for dst in topo.nodes() {
                if dst.index() < src.index() {
                    continue; // filled by reversal below
                }
                let mut nodes = Vec::new();
                let mut cur = dst;
                loop {
                    nodes.push(cur);
                    if cur == src {
                        break;
                    }
                    cur = prev[cur.index()].expect("connected graph has predecessors");
                }
                nodes.reverse();
                let wbits = dist[dst.index()].to_bits();
                let mut rev_nodes = nodes.clone();
                rev_nodes.reverse();
                paths[src.index() * n + dst.index()] =
                    Some(Path { src, dst, nodes, weight_bits: wbits });
                paths[dst.index() * n + src.index()] =
                    Some(Path { src: dst, dst: src, nodes: rev_nodes, weight_bits: wbits });
            }
        }
        PathDb { n, paths: paths.into_iter().map(|p| p.expect("all pairs filled")).collect() }
    }

    pub fn path(&self, src: NodeId, dst: NodeId) -> &Path {
        &self.paths[src.index() * self.n + dst.index()]
    }

    /// All ingress–egress paths with distinct endpoints.
    pub fn all_pairs(&self) -> impl Iterator<Item = &Path> {
        self.paths.iter().filter(|p| p.src != p.dst)
    }

    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Average hop count over distinct-endpoint paths.
    pub fn mean_hops(&self) -> f64 {
        let (sum, count) =
            self.all_pairs().fold((0usize, 0usize), |(s, c), p| (s + p.hops(), c + 1));
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }
}

/// Dijkstra with deterministic tie-breaking: among equal-distance
/// relaxations, keep the predecessor with the smaller node id.
fn dijkstra(topo: &Topology, src: NodeId) -> (Vec<f64>, Vec<Option<NodeId>>) {
    let n = topo.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut done = vec![false; n];
    dist[src.index()] = 0.0;
    let mut heap = std::collections::BinaryHeap::new();
    heap.push(std::cmp::Reverse((0u64, src.index())));
    while let Some(std::cmp::Reverse((dbits, u))) = heap.pop() {
        if done[u] {
            continue;
        }
        let du = f64::from_bits(dbits);
        if du > dist[u] {
            continue;
        }
        done[u] = true;
        for &(v, w) in topo.neighbors(NodeId(u)) {
            let nd = du + w;
            let vi = v.index();
            let improves = nd < dist[vi] - 1e-12;
            let tie_better =
                (nd - dist[vi]).abs() <= 1e-12 && prev[vi].is_some_and(|p| u < p.index());
            if improves || tie_better {
                dist[vi] = nd;
                prev[vi] = Some(NodeId(u));
                if improves {
                    heap.push(std::cmp::Reverse((nd.to_bits(), vi)));
                }
            }
        }
    }
    (dist, prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;

    fn line4() -> Topology {
        let mut t = Topology::new("line");
        let n: Vec<_> = (0..4).map(|i| t.add_node(format!("n{i}"), 1.0)).collect();
        for w in n.windows(2) {
            t.add_link(w[0], w[1], 1.0);
        }
        t
    }

    #[test]
    fn line_paths() {
        let t = line4();
        let db = PathDb::shortest_paths(&t);
        let p = db.path(NodeId(0), NodeId(3));
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(p.hops(), 4);
        assert!((p.weight() - 3.0).abs() < 1e-12);
        assert_eq!(p.downstream_hops(NodeId(0)), Some(4));
        assert_eq!(p.downstream_hops(NodeId(3)), Some(1));
        assert_eq!(p.downstream_hops(NodeId(2)), Some(2));
    }

    #[test]
    fn trivial_self_path() {
        let t = line4();
        let db = PathDb::shortest_paths(&t);
        let p = db.path(NodeId(2), NodeId(2));
        assert_eq!(p.nodes, vec![NodeId(2)]);
        assert_eq!(p.weight(), 0.0);
    }

    #[test]
    fn shortest_route_chosen() {
        // Square with a shortcut diagonal.
        let mut t = Topology::new("sq");
        let a = t.add_node("a", 1.0);
        let b = t.add_node("b", 1.0);
        let c = t.add_node("c", 1.0);
        let d = t.add_node("d", 1.0);
        t.add_link(a, b, 1.0);
        t.add_link(b, c, 1.0);
        t.add_link(c, d, 1.0);
        t.add_link(d, a, 1.0);
        t.add_link(a, c, 1.2);
        let db = PathDb::shortest_paths(&t);
        assert_eq!(db.path(a, c).nodes, vec![a, c]); // 1.2 < 2.0
        assert_eq!(db.path(b, d).hops(), 3); // via a or c, weight 2
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Two equal-cost routes 0-1-3 and 0-2-3: must pick via node 1.
        let mut t = Topology::new("diamond");
        let s = t.add_node("s", 1.0);
        let m1 = t.add_node("m1", 1.0);
        let m2 = t.add_node("m2", 1.0);
        let d = t.add_node("d", 1.0);
        t.add_link(s, m1, 1.0);
        t.add_link(s, m2, 1.0);
        t.add_link(m1, d, 1.0);
        t.add_link(m2, d, 1.0);
        let db1 = PathDb::shortest_paths(&t);
        let db2 = PathDb::shortest_paths(&t);
        assert_eq!(db1.path(s, d).nodes, db2.path(s, d).nodes);
        assert_eq!(db1.path(s, d).nodes, vec![s, m1, d]);
    }

    #[test]
    fn routing_is_symmetric() {
        let t = crate::builtin::internet2();
        let db = PathDb::shortest_paths(&t);
        for s in t.nodes() {
            for d in t.nodes() {
                let fwd = db.path(s, d);
                let rev = db.path(d, s);
                let mut r = rev.nodes.clone();
                r.reverse();
                assert_eq!(fwd.nodes, r, "asymmetric route {s:?}→{d:?}");
            }
        }
    }

    #[test]
    fn all_pairs_count() {
        let t = line4();
        let db = PathDb::shortest_paths(&t);
        assert_eq!(db.all_pairs().count(), 12);
        assert!((db.mean_hops() - (2.0 * 6.0 + 3.0 * 4.0 + 4.0 * 2.0) / 12.0).abs() < 1e-12);
    }
}
