//! Match-rate (`M_ik`) scenario generation for the NIPS evaluation.
//!
//! §3.4: "We present results for the case when `M_ik` values are
//! distributed uniformly in the range [0, 0.01]. … For each setting, we
//! generate 30 different `M_ik` values" (i.e. 30 scenarios). §3.4 also
//! notes results hold for other distributions; [`Distribution::Exponential`]
//! provides one such alternative with the same mean.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Shape of the match-rate distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// `M ~ U[0, max]` — the paper's headline setting with `max = 0.01`.
    Uniform { max: f64 },
    /// Exponential with the given mean, truncated at 1.
    Exponential { mean: f64 },
}

/// One scenario: the fraction of traffic on path `k` matching rule `i`.
#[derive(Debug, Clone)]
pub struct MatchRates {
    n_rules: usize,
    n_paths: usize,
    /// Rule-major: `rates[i * n_paths + k]`.
    rates: Vec<f64>,
}

impl MatchRates {
    pub fn generate(n_rules: usize, n_paths: usize, dist: Distribution, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let rates = (0..n_rules * n_paths)
            .map(|_| match dist {
                Distribution::Uniform { max } => rng.random_range(0.0..max),
                Distribution::Exponential { mean } => {
                    let u: f64 = rng.random_range(f64::EPSILON..1.0);
                    (-u.ln() * mean).min(1.0)
                }
            })
            .collect();
        MatchRates { n_rules, n_paths, rates }
    }

    /// The paper's default: `U[0, 0.01]`.
    pub fn uniform_001(n_rules: usize, n_paths: usize, seed: u64) -> Self {
        Self::generate(n_rules, n_paths, Distribution::Uniform { max: 0.01 }, seed)
    }

    pub fn rate(&self, rule: usize, path: usize) -> f64 {
        self.rates[rule * self.n_paths + path]
    }

    pub fn set_rate(&mut self, rule: usize, path: usize, value: f64) {
        assert!((0.0..=1.0).contains(&value), "match rate outside [0,1]");
        self.rates[rule * self.n_paths + path] = value;
    }

    pub fn n_rules(&self) -> usize {
        self.n_rules
    }

    pub fn n_paths(&self) -> usize {
        self.n_paths
    }

    /// Elementwise mean of many scenarios (used by online adaptation to
    /// average observed history).
    pub fn mean_of(scenarios: &[MatchRates]) -> MatchRates {
        assert!(!scenarios.is_empty());
        let (nr, np) = (scenarios[0].n_rules, scenarios[0].n_paths);
        let mut rates = vec![0.0; nr * np];
        for s in scenarios {
            assert_eq!(s.n_rules, nr);
            assert_eq!(s.n_paths, np);
            for (acc, &r) in rates.iter_mut().zip(&s.rates) {
                *acc += r;
            }
        }
        for r in rates.iter_mut() {
            *r /= scenarios.len() as f64;
        }
        MatchRates { n_rules: nr, n_paths: np, rates }
    }

    /// Fresh all-zero rates (builder for custom scenarios).
    pub fn zeros(n_rules: usize, n_paths: usize) -> Self {
        MatchRates { n_rules, n_paths, rates: vec![0.0; n_rules * n_paths] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_rates_in_range_and_mean_right() {
        let m = MatchRates::uniform_001(100, 110, 3);
        let mut sum = 0.0;
        for i in 0..100 {
            for k in 0..110 {
                let r = m.rate(i, k);
                assert!((0.0..0.01).contains(&r));
                sum += r;
            }
        }
        let mean = sum / (100.0 * 110.0);
        assert!((mean - 0.005).abs() < 0.0005, "mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = MatchRates::uniform_001(10, 10, 5);
        let b = MatchRates::uniform_001(10, 10, 5);
        let c = MatchRates::uniform_001(10, 10, 6);
        assert_eq!(a.rate(3, 7), b.rate(3, 7));
        assert_ne!(a.rate(3, 7), c.rate(3, 7));
    }

    #[test]
    fn exponential_truncated() {
        let m = MatchRates::generate(50, 50, Distribution::Exponential { mean: 0.005 }, 9);
        for i in 0..50 {
            for k in 0..50 {
                assert!((0.0..=1.0).contains(&m.rate(i, k)));
            }
        }
    }

    #[test]
    fn mean_of_scenarios() {
        let mut a = MatchRates::zeros(1, 2);
        a.set_rate(0, 0, 0.2);
        let mut b = MatchRates::zeros(1, 2);
        b.set_rate(0, 0, 0.4);
        b.set_rate(0, 1, 1.0);
        let m = MatchRates::mean_of(&[a, b]);
        assert!((m.rate(0, 0) - 0.3).abs() < 1e-12);
        assert!((m.rate(0, 1) - 0.5).abs() < 1e-12);
    }
}
