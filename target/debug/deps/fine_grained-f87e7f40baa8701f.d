/root/repo/target/debug/deps/fine_grained-f87e7f40baa8701f.d: crates/engine/tests/fine_grained.rs

/root/repo/target/debug/deps/fine_grained-f87e7f40baa8701f: crates/engine/tests/fine_grained.rs

crates/engine/tests/fine_grained.rs:
