/root/repo/target/debug/deps/nwdp_topo-9c5dea3e1dc863ea.d: crates/topo/src/lib.rs crates/topo/src/builtin.rs crates/topo/src/generate.rs crates/topo/src/graph.rs crates/topo/src/io.rs crates/topo/src/rocketfuel.rs crates/topo/src/routing.rs

/root/repo/target/debug/deps/nwdp_topo-9c5dea3e1dc863ea: crates/topo/src/lib.rs crates/topo/src/builtin.rs crates/topo/src/generate.rs crates/topo/src/graph.rs crates/topo/src/io.rs crates/topo/src/rocketfuel.rs crates/topo/src/routing.rs

crates/topo/src/lib.rs:
crates/topo/src/builtin.rs:
crates/topo/src/generate.rs:
crates/topo/src/graph.rs:
crates/topo/src/io.rs:
crates/topo/src/rocketfuel.rs:
crates/topo/src/routing.rs:
