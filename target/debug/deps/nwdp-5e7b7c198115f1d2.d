/root/repo/target/debug/deps/nwdp-5e7b7c198115f1d2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp-5e7b7c198115f1d2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
