//! Network-wide emulation harness (paper §2.4, "Network-wide evaluation").
//!
//! "From a network-wide trace, we generate traces that each node sees. For
//! the coordinated case, this includes both traffic originating/terminating
//! at a node and transit traffic. For the edge-only case, these consist of
//! traffic originating/terminating at each node."

use crate::engine::{CoordContext, Engine, Placement, RunStats};
use crate::modules::Alert;
use nwdp_core::nids::SamplingManifest;
use nwdp_core::NidsDeployment;
use nwdp_hash::KeyedHasher;
use nwdp_topo::{NodeId, PathDb};
use nwdp_traffic::NetTrace;
use std::collections::BTreeSet;

/// Results of running one deployment scenario across all nodes.
#[derive(Debug, Clone)]
pub struct NetworkRun {
    pub per_node: Vec<RunStats>,
    /// Union of alerts across the network (for equivalence checks).
    pub alerts: BTreeSet<Alert>,
}

impl NetworkRun {
    pub fn max_cpu(&self) -> u64 {
        self.per_node.iter().map(|s| s.cpu_cycles).max().unwrap_or(0)
    }

    pub fn max_mem(&self) -> u64 {
        self.per_node.iter().map(|s| s.mem_peak).max().unwrap_or(0)
    }

    pub fn total_cpu(&self) -> u64 {
        self.per_node.iter().map(|s| s.cpu_cycles).sum()
    }
}

fn class_names(dep: &NidsDeployment) -> Vec<String> {
    dep.classes.iter().map(|c| c.name.clone()).collect()
}

/// Edge-only deployment: every node independently runs stock Bro on the
/// traffic it originates or terminates.
pub fn run_edge_only(dep: &NidsDeployment, trace: &NetTrace, hasher: KeyedHasher) -> NetworkRun {
    let names = class_names(dep);
    let mut per_node = Vec::with_capacity(dep.num_nodes);
    let mut alerts = BTreeSet::new();
    for j in 0..dep.num_nodes {
        let node = NodeId(j);
        let mut engine = Engine::new(node, Placement::Unmodified, &names, None, hasher);
        for s in trace.edge_sessions(node) {
            engine.process_session(s);
        }
        let stats = engine.stats();
        alerts.extend(stats.alerts.iter().cloned());
        per_node.push(stats);
    }
    NetworkRun { per_node, alerts }
}

/// Coordinated network-wide deployment: every node runs the coordinated
/// engine (checks placed per the paper's final configuration) over all
/// on-path traffic, guided by the shared sampling manifest.
pub fn run_coordinated(
    dep: &NidsDeployment,
    manifest: &SamplingManifest,
    paths: &PathDb,
    trace: &NetTrace,
    placement: Placement,
    hasher: KeyedHasher,
) -> NetworkRun {
    assert_ne!(placement, Placement::Unmodified, "coordinated run needs a coordinated placement");
    let names = class_names(dep);
    let mut per_node = Vec::with_capacity(dep.num_nodes);
    let mut alerts = BTreeSet::new();
    for j in 0..dep.num_nodes {
        let node = NodeId(j);
        let coord = CoordContext::new(dep, manifest);
        let mut engine = Engine::new(node, placement, &names, Some(coord), hasher);
        for s in trace.onpath_sessions(paths, node) {
            engine.process_session(s);
        }
        let stats = engine.stats();
        alerts.extend(stats.alerts.iter().cloned());
        per_node.push(stats);
    }
    NetworkRun { per_node, alerts }
}

/// A single standalone NIDS over the entire trace (the logical reference
/// the network-wide deployment must be equivalent to).
pub fn run_standalone_reference(
    dep: &NidsDeployment,
    trace: &NetTrace,
    hasher: KeyedHasher,
) -> RunStats {
    let names = class_names(dep);
    let mut engine = Engine::new(NodeId(0), Placement::Unmodified, &names, None, hasher);
    for s in &trace.sessions {
        engine.process_session(s);
    }
    engine.stats()
}
