/root/repo/target/debug/deps/nwdp_traffic-876e339fb3e07f22.d: crates/traffic/src/lib.rs crates/traffic/src/faults.rs crates/traffic/src/generator.rs crates/traffic/src/matchrate.rs crates/traffic/src/matrix.rs crates/traffic/src/profile.rs crates/traffic/src/session.rs crates/traffic/src/volume.rs

/root/repo/target/debug/deps/libnwdp_traffic-876e339fb3e07f22.rlib: crates/traffic/src/lib.rs crates/traffic/src/faults.rs crates/traffic/src/generator.rs crates/traffic/src/matchrate.rs crates/traffic/src/matrix.rs crates/traffic/src/profile.rs crates/traffic/src/session.rs crates/traffic/src/volume.rs

/root/repo/target/debug/deps/libnwdp_traffic-876e339fb3e07f22.rmeta: crates/traffic/src/lib.rs crates/traffic/src/faults.rs crates/traffic/src/generator.rs crates/traffic/src/matchrate.rs crates/traffic/src/matrix.rs crates/traffic/src/profile.rs crates/traffic/src/session.rs crates/traffic/src/volume.rs

crates/traffic/src/lib.rs:
crates/traffic/src/faults.rs:
crates/traffic/src/generator.rs:
crates/traffic/src/matchrate.rs:
crates/traffic/src/matrix.rs:
crates/traffic/src/profile.rs:
crates/traffic/src/session.rs:
crates/traffic/src/volume.rs:
