/root/repo/target/debug/deps/extended_modules-4eb237ea1017321e.d: crates/engine/tests/extended_modules.rs Cargo.toml

/root/repo/target/debug/deps/libextended_modules-4eb237ea1017321e.rmeta: crates/engine/tests/extended_modules.rs Cargo.toml

crates/engine/tests/extended_modules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
