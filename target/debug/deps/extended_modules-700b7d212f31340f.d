/root/repo/target/debug/deps/extended_modules-700b7d212f31340f.d: crates/engine/tests/extended_modules.rs

/root/repo/target/debug/deps/extended_modules-700b7d212f31340f: crates/engine/tests/extended_modules.rs

crates/engine/tests/extended_modules.rs:
