/root/repo/target/debug/deps/nwdp_core-30f543fdf395bcbc.d: crates/core/src/lib.rs crates/core/src/class.rs crates/core/src/migration.rs crates/core/src/nids/mod.rs crates/core/src/nids/lp.rs crates/core/src/nids/manifest.rs crates/core/src/nids/manifest_io.rs crates/core/src/nips/mod.rs crates/core/src/nips/hardness.rs crates/core/src/nips/model.rs crates/core/src/nips/relax.rs crates/core/src/nips/round.rs crates/core/src/parallel.rs crates/core/src/provision.rs crates/core/src/units.rs

/root/repo/target/debug/deps/libnwdp_core-30f543fdf395bcbc.rlib: crates/core/src/lib.rs crates/core/src/class.rs crates/core/src/migration.rs crates/core/src/nids/mod.rs crates/core/src/nids/lp.rs crates/core/src/nids/manifest.rs crates/core/src/nids/manifest_io.rs crates/core/src/nips/mod.rs crates/core/src/nips/hardness.rs crates/core/src/nips/model.rs crates/core/src/nips/relax.rs crates/core/src/nips/round.rs crates/core/src/parallel.rs crates/core/src/provision.rs crates/core/src/units.rs

/root/repo/target/debug/deps/libnwdp_core-30f543fdf395bcbc.rmeta: crates/core/src/lib.rs crates/core/src/class.rs crates/core/src/migration.rs crates/core/src/nids/mod.rs crates/core/src/nids/lp.rs crates/core/src/nids/manifest.rs crates/core/src/nids/manifest_io.rs crates/core/src/nips/mod.rs crates/core/src/nips/hardness.rs crates/core/src/nips/model.rs crates/core/src/nips/relax.rs crates/core/src/nips/round.rs crates/core/src/parallel.rs crates/core/src/provision.rs crates/core/src/units.rs

crates/core/src/lib.rs:
crates/core/src/class.rs:
crates/core/src/migration.rs:
crates/core/src/nids/mod.rs:
crates/core/src/nids/lp.rs:
crates/core/src/nids/manifest.rs:
crates/core/src/nids/manifest_io.rs:
crates/core/src/nips/mod.rs:
crates/core/src/nips/hardness.rs:
crates/core/src/nips/model.rs:
crates/core/src/nips/relax.rs:
crates/core/src/nips/round.rs:
crates/core/src/parallel.rs:
crates/core/src/provision.rs:
crates/core/src/units.rs:
