/root/repo/target/debug/deps/equivalence-ff3435af181c002d.d: crates/engine/tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-ff3435af181c002d: crates/engine/tests/equivalence.rs

crates/engine/tests/equivalence.rs:
