/root/repo/target/debug/deps/large_sparse-57ce491caa888faa.d: crates/lp/tests/large_sparse.rs

/root/repo/target/debug/deps/large_sparse-57ce491caa888faa: crates/lp/tests/large_sparse.rs

crates/lp/tests/large_sparse.rs:
