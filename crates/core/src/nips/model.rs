//! The NIPS deployment problem instance (paper §3.1–3.2).
//!
//! Rules consume per-rule TCAM slots when *enabled* on a node (`e_ij`) and
//! per-packet CPU / per-flow memory when *applied* to sampled traffic
//! (`d_ikj`). Coordination units are end-to-end routing paths. The
//! objective is the network-footprint reduction: dropped unwanted traffic
//! weighted by the remaining downstream distance `Dist_ikj`.

use nwdp_topo::{NodeId, PathDb, Topology};
use nwdp_traffic::{MatchRates, TrafficMatrix, VolumeModel};

/// One NIPS filtering rule `C_i`.
#[derive(Debug, Clone)]
pub struct NipsRule {
    pub name: String,
    /// TCAM slots consumed when the rule is enabled on a node (per rule,
    /// not per packet).
    pub cam_req: f64,
    /// CPU per processed packet.
    pub cpu_per_pkt: f64,
    /// Memory per tracked flow.
    pub mem_per_item: f64,
}

impl NipsRule {
    /// The paper's evaluation setting: unit requirements for everything.
    pub fn unit(name: impl Into<String>) -> Self {
        NipsRule { name: name.into(), cam_req: 1.0, cpu_per_pkt: 1.0, mem_per_item: 1.0 }
    }
}

/// One coordination unit: an ingress–egress routing path with volumes.
#[derive(Debug, Clone)]
pub struct NipsPath {
    pub nodes: Vec<NodeId>,
    /// `T_ik^items`: flows per interval on this path.
    pub items: f64,
    /// `T_ik^pkts`: packets per interval on this path.
    pub pkts: f64,
}

/// How `Dist_ikj` is measured (§3.2: "number of router hops, fiber
/// distance, or routing weights; alternatively, to model the total volume
/// of unwanted traffic dropped, set all Dist to 1").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceModel {
    /// Downstream router hops (the paper's evaluation setting).
    Hops,
    /// All distances 1: the objective counts dropped volume only.
    UnitVolume,
}

/// A complete NIPS problem instance.
#[derive(Debug, Clone)]
pub struct NipsInstance {
    pub rules: Vec<NipsRule>,
    pub paths: Vec<NipsPath>,
    pub num_nodes: usize,
    /// Per-node TCAM slot capacity (`CamCap_j`).
    pub cam_cap: Vec<f64>,
    /// Per-node flow-memory capacity (`MemCap_j`).
    pub mem_cap: Vec<f64>,
    /// Per-node packet-processing capacity (`CpuCap_j`).
    pub cpu_cap: Vec<f64>,
    pub dist: DistanceModel,
    /// `M_ik`: fraction of path `k`'s traffic matching rule `i`.
    pub match_rates: MatchRates,
}

impl NipsInstance {
    /// Build the paper's §3.4 evaluation instance for a topology:
    /// `n_rules` unit-requirement rules; volumes from the scaled Internet2
    /// baseline spread by a gravity traffic matrix; `MemCap = 400_000`
    /// flows and `CpuCap = 2_000_000` packets per node per 5-minute
    /// interval; `CamCap = rule_cap_frac × n_rules` slots.
    pub fn evaluation_setup(
        topo: &Topology,
        paths: &PathDb,
        tm: &TrafficMatrix,
        vol: &VolumeModel,
        n_rules: usize,
        rule_cap_frac: f64,
        match_rates: MatchRates,
    ) -> Self {
        Self::evaluation_setup_capped(
            topo,
            paths,
            tm,
            vol,
            n_rules,
            rule_cap_frac,
            match_rates,
            usize::MAX,
        )
    }

    /// [`Self::evaluation_setup`] restricted to the `max_paths` highest-
    /// volume ingress–egress pairs. Under a gravity matrix the top few
    /// hundred pairs carry the bulk of the traffic, so this preserves the
    /// Fig 10 shape while keeping the relaxation LPs tractable on the
    /// larger ISP topologies (documented in EXPERIMENTS.md).
    #[allow(clippy::too_many_arguments)]
    pub fn evaluation_setup_capped(
        topo: &Topology,
        paths: &PathDb,
        tm: &TrafficMatrix,
        vol: &VolumeModel,
        n_rules: usize,
        rule_cap_frac: f64,
        match_rates: MatchRates,
        max_paths: usize,
    ) -> Self {
        assert!(rule_cap_frac > 0.0 && rule_cap_frac <= 1.0);
        let rules = (0..n_rules).map(|i| NipsRule::unit(format!("rule{i}"))).collect();
        let mut npaths: Vec<NipsPath> = paths
            .all_pairs()
            .map(|p| NipsPath {
                nodes: p.nodes.clone(),
                items: vol.pair_flows(tm, p.src, p.dst),
                pkts: vol.pair_pkts(tm, p.src, p.dst),
            })
            .collect();
        if npaths.len() > max_paths {
            // Highest volume first; non-finite volumes (NaN from a
            // degenerate traffic model) compare lowest and are truncated
            // away first.
            let finite_or_min = |v: f64| if v.is_finite() { v } else { f64::NEG_INFINITY };
            npaths.sort_by(|a, b| finite_or_min(b.items).total_cmp(&finite_or_min(a.items)));
            npaths.truncate(max_paths);
        }
        assert_eq!(match_rates.n_rules(), n_rules);
        assert_eq!(match_rates.n_paths(), npaths.len());
        let n = topo.num_nodes();
        NipsInstance {
            rules,
            paths: npaths,
            num_nodes: n,
            cam_cap: vec![(rule_cap_frac * n_rules as f64).floor(); n],
            mem_cap: vec![400_000.0; n],
            cpu_cap: vec![2_000_000.0; n],
            dist: DistanceModel::Hops,
            match_rates,
        }
    }

    /// `Dist_ikj` for position `pos` on path `k`.
    pub fn distance(&self, path: usize, pos: usize) -> f64 {
        match self.dist {
            DistanceModel::Hops => (self.paths[path].nodes.len() - pos) as f64,
            DistanceModel::UnitVolume => 1.0,
        }
    }

    /// Objective coefficient of `d_ikj`:
    /// `T_ik^items × M_ik × Dist_ikj` (Eq 7).
    pub fn weight(&self, rule: usize, path: usize, pos: usize) -> f64 {
        self.paths[path].items * self.match_rates.rate(rule, path) * self.distance(path, pos)
    }

    /// Are resource requirements proportional across rules and volume
    /// ratios constant across paths? When true, the inner sampling LP
    /// (placement fixed) is an exact transportation problem and the
    /// min-cost-flow fast path applies.
    pub fn is_proportional(&self) -> bool {
        let r0 = &self.rules[0];
        let rules_ok = self.rules.iter().all(|r| {
            (r.cpu_per_pkt - r0.cpu_per_pkt).abs() < 1e-12
                && (r.mem_per_item - r0.mem_per_item).abs() < 1e-12
        });
        let ratio0 = self.paths[0].pkts / self.paths[0].items.max(1e-12);
        let paths_ok = self
            .paths
            .iter()
            .all(|p| (p.pkts / p.items.max(1e-12) - ratio0).abs() < 1e-9 * (1.0 + ratio0));
        rules_ok && paths_ok
    }

    /// An upper bound on the objective assuming every unwanted flow is
    /// dropped at its ingress (no resource constraints at all).
    pub fn drop_everything_bound(&self) -> f64 {
        let mut total = 0.0;
        for i in 0..self.rules.len() {
            for (k, _) in self.paths.iter().enumerate() {
                total += self.weight(i, k, 0);
            }
        }
        total
    }

    /// Objective of `d` under an alternative match-rate scenario (used by
    /// online adaptation, where the true rates are revealed only after a
    /// deployment decision is made).
    pub fn objective_with_rates(&self, d: &SolutionD, rates: &MatchRates) -> f64 {
        let mut total = 0.0;
        for ((i, k), shares) in d.iter() {
            for &(pos, frac) in shares {
                total += self.paths[*k].items * rates.rate(*i, *k) * self.distance(*k, pos) * frac;
            }
        }
        total
    }

    /// Total objective of a solution `(e, d)` where `d[(i, k)]` lists
    /// `(pos, fraction)` entries.
    pub fn objective(&self, d: &SolutionD) -> f64 {
        let mut total = 0.0;
        for ((i, k), shares) in d.iter() {
            for &(pos, frac) in shares {
                total += self.weight(*i, *k, pos) * frac;
            }
        }
        total
    }

    /// Verify all constraints of Eqs (8)–(14) for an integral placement
    /// `e` and sampling fractions `d`. Returns the first violation.
    pub fn check_feasible(&self, e: &[Vec<bool>], d: &SolutionD, tol: f64) -> Result<(), String> {
        let (nr, nn) = (self.rules.len(), self.num_nodes);
        assert_eq!(e.len(), nr);
        // Eq 8: TCAM.
        for (j, &cam_cap) in self.cam_cap.iter().enumerate().take(nn) {
            let used: f64 = (0..nr).filter(|&i| e[i][j]).map(|i| self.rules[i].cam_req).sum();
            if used > cam_cap + tol {
                return Err(format!("node {j}: TCAM {used} > {cam_cap}"));
            }
        }
        let mut mem = vec![0.0; nn];
        let mut cpu = vec![0.0; nn];
        for ((i, k), shares) in d.iter() {
            let path = &self.paths[*k];
            let mut covered = 0.0;
            for &(pos, frac) in shares {
                if frac < -tol {
                    return Err(format!("negative fraction for rule {i} path {k}"));
                }
                let j = path.nodes[pos].index();
                // Eq 12: applying requires enabling.
                if frac > tol && !e[*i][j] {
                    return Err(format!("rule {i} applied at node {j} without being enabled"));
                }
                mem[j] += path.items * self.rules[*i].mem_per_item * frac;
                cpu[j] += path.pkts * self.rules[*i].cpu_per_pkt * frac;
                covered += frac;
            }
            // Eq 11.
            if covered > 1.0 + tol {
                return Err(format!("rule {i} path {k}: sampled fraction {covered} > 1"));
            }
        }
        for j in 0..nn {
            if mem[j] > self.mem_cap[j] * (1.0 + tol) {
                return Err(format!("node {j}: memory {} > {}", mem[j], self.mem_cap[j]));
            }
            if cpu[j] > self.cpu_cap[j] * (1.0 + tol) {
                return Err(format!("node {j}: cpu {} > {}", cpu[j], self.cpu_cap[j]));
            }
        }
        Ok(())
    }
}

/// Sampling fractions: `(rule, path)` → `(position on path, fraction)`.
pub type SolutionD = std::collections::BTreeMap<(usize, usize), Vec<(usize, f64)>>;

#[cfg(test)]
mod tests {
    use super::*;
    use nwdp_topo::internet2;

    fn instance() -> NipsInstance {
        let t = internet2();
        let paths = PathDb::shortest_paths(&t);
        let tm = TrafficMatrix::gravity(&t);
        let vol = VolumeModel::internet2_baseline();
        let rates = MatchRates::uniform_001(10, paths.all_pairs().count(), 1);
        NipsInstance::evaluation_setup(&t, &paths, &tm, &vol, 10, 0.2, rates)
    }

    #[test]
    fn evaluation_setup_matches_paper_constants() {
        let inst = instance();
        assert_eq!(inst.paths.len(), 110);
        assert_eq!(inst.mem_cap[0], 400_000.0);
        assert_eq!(inst.cpu_cap[0], 2_000_000.0);
        assert_eq!(inst.cam_cap[0], 2.0); // 0.2 × 10 rules
        assert!(inst.is_proportional());
    }

    #[test]
    fn distance_model() {
        let inst = instance();
        let k = inst
            .paths
            .iter()
            .position(|p| p.nodes.len() == 4)
            .expect("a 4-hop path exists on Internet2");
        assert_eq!(inst.distance(k, 0), 4.0);
        assert_eq!(inst.distance(k, 3), 1.0);
        let mut unit = instance();
        unit.dist = DistanceModel::UnitVolume;
        assert_eq!(unit.distance(k, 0), 1.0);
    }

    #[test]
    fn feasibility_checker_catches_violations() {
        let mut inst = instance();
        // Enable everything legally: lift the TCAM budget for this test.
        inst.cam_cap = vec![inst.rules.len() as f64; inst.num_nodes];
        let e = vec![vec![true; inst.num_nodes]; inst.rules.len()];
        // Sampling 100% of rule 0 on path 0 at its ingress: fine for
        // memory but check coverage > 1 detection.
        let mut d: SolutionD = SolutionD::new();
        d.insert((0, 0), vec![(0, 0.7), (1, 0.6)]);
        let err = inst.check_feasible(&e, &d, 1e-9).unwrap_err();
        assert!(err.contains("> 1"), "{err}");
        // Applying a disabled rule.
        let mut e2 = e.clone();
        let j = inst.paths[0].nodes[0].index();
        e2[0][j] = false;
        let mut d2: SolutionD = SolutionD::new();
        d2.insert((0, 0), vec![(0, 0.5)]);
        let err2 = inst.check_feasible(&e2, &d2, 1e-9).unwrap_err();
        assert!(err2.contains("without being enabled"), "{err2}");
    }

    #[test]
    fn objective_accumulates_weights() {
        let inst = instance();
        let mut d: SolutionD = SolutionD::new();
        d.insert((2, 5), vec![(0, 0.5), (1, 0.25)]);
        let expect = 0.5 * inst.weight(2, 5, 0) + 0.25 * inst.weight(2, 5, 1);
        assert!((inst.objective(&d) - expect).abs() < 1e-9);
    }
}
