/root/repo/target/debug/deps/nwdp_online-439be349da7d6284.d: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

/root/repo/target/debug/deps/libnwdp_online-439be349da7d6284.rlib: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

/root/repo/target/debug/deps/libnwdp_online-439be349da7d6284.rmeta: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

crates/online/src/lib.rs:
crates/online/src/adversary.rs:
crates/online/src/fpl.rs:
