//! Built-in reference topologies.
//!
//! - [`internet2`]: the 11-PoP Abilene/Internet2 backbone used for the
//!   paper's NIDS network-wide evaluation (§2.4) and as the Fig 10/11 base.
//!   Node order matters for Fig 8: the paper numbers nodes 1..11 and
//!   observes that node 11 — New York — is the edge-deployment hotspot, so
//!   New York is the last node here as well. Populations are ~2010 metro
//!   estimates (millions); link weights are approximate great-circle
//!   distances in km.
//! - [`geant`]: a 22-PoP approximation of the GÉANT European research
//!   backbone with major-city populations.

use crate::graph::Topology;

/// The Abilene / Internet2 backbone (11 PoPs, 14 links).
pub fn internet2() -> Topology {
    let mut t = Topology::new("Internet2");
    let sea = t.add_node("Seattle", 3.4);
    let sun = t.add_node("Sunnyvale", 1.8);
    let la = t.add_node("LosAngeles", 12.9);
    let den = t.add_node("Denver", 2.5);
    let kc = t.add_node("KansasCity", 2.0);
    let hou = t.add_node("Houston", 5.9);
    let chi = t.add_node("Chicago", 9.5);
    let ind = t.add_node("Indianapolis", 1.7);
    let atl = t.add_node("Atlanta", 5.3);
    let was = t.add_node("Washington", 5.6);
    let nyc = t.add_node("NewYork", 19.0);

    t.add_link(sea, sun, 1100.0);
    t.add_link(sea, den, 1650.0);
    t.add_link(sun, la, 550.0);
    t.add_link(sun, den, 1500.0);
    t.add_link(la, hou, 2200.0);
    t.add_link(den, kc, 900.0);
    t.add_link(kc, hou, 1200.0);
    t.add_link(kc, ind, 720.0);
    t.add_link(hou, atl, 1130.0);
    t.add_link(ind, chi, 265.0);
    t.add_link(ind, atl, 690.0);
    t.add_link(chi, nyc, 1145.0);
    t.add_link(atl, was, 870.0);
    t.add_link(nyc, was, 330.0);
    t
}

/// A 22-PoP approximation of the GÉANT European backbone.
///
/// Structure follows the published GÉANT PoP map at coarse granularity
/// (ring-of-rings with a dense western core); populations are metro
/// estimates in millions.
pub fn geant() -> Topology {
    let mut t = Topology::new("Geant");
    let lon = t.add_node("London", 13.0);
    let par = t.add_node("Paris", 11.8);
    let ams = t.add_node("Amsterdam", 2.4);
    let bru = t.add_node("Brussels", 2.0);
    let lux = t.add_node("Luxembourg", 0.5);
    let fra = t.add_node("Frankfurt", 5.5);
    let gen = t.add_node("Geneva", 0.9);
    let mil = t.add_node("Milan", 7.4);
    let mad = t.add_node("Madrid", 6.0);
    let lis = t.add_node("Lisbon", 2.8);
    let dub = t.add_node("Dublin", 1.8);
    let cop = t.add_node("Copenhagen", 1.9);
    let sto = t.add_node("Stockholm", 2.1);
    let hel = t.add_node("Helsinki", 1.4);
    let ber = t.add_node("Berlin", 4.3);
    let pra = t.add_node("Prague", 1.9);
    let vie = t.add_node("Vienna", 2.4);
    let bud = t.add_node("Budapest", 2.5);
    let zag = t.add_node("Zagreb", 1.1);
    let ath = t.add_node("Athens", 3.8);
    let buc = t.add_node("Bucharest", 2.1);
    let war = t.add_node("Warsaw", 3.1);

    t.add_link(dub, lon, 460.0);
    t.add_link(lon, par, 340.0);
    t.add_link(lon, ams, 360.0);
    t.add_link(par, bru, 260.0);
    t.add_link(par, gen, 410.0);
    t.add_link(par, mad, 1050.0);
    t.add_link(ams, bru, 170.0);
    t.add_link(ams, fra, 360.0);
    t.add_link(ams, cop, 620.0);
    t.add_link(bru, lux, 190.0);
    t.add_link(lux, fra, 190.0);
    t.add_link(fra, gen, 460.0);
    t.add_link(fra, ber, 420.0);
    t.add_link(fra, pra, 410.0);
    t.add_link(gen, mil, 250.0);
    t.add_link(mil, vie, 620.0);
    t.add_link(mil, zag, 540.0);
    t.add_link(mad, lis, 500.0);
    t.add_link(mad, mil, 1190.0);
    t.add_link(cop, sto, 520.0);
    t.add_link(sto, hel, 400.0);
    t.add_link(hel, war, 910.0);
    t.add_link(ber, cop, 360.0);
    t.add_link(ber, war, 520.0);
    t.add_link(pra, vie, 250.0);
    t.add_link(vie, bud, 220.0);
    t.add_link(bud, zag, 300.0);
    t.add_link(bud, buc, 640.0);
    t.add_link(zag, ath, 1080.0);
    t.add_link(ath, buc, 740.0);
    t.add_link(war, pra, 520.0);
    t.add_link(lis, lon, 1580.0);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::PathDb;

    #[test]
    fn internet2_shape() {
        let t = internet2();
        assert_eq!(t.num_nodes(), 11);
        assert_eq!(t.num_links(), 14);
        assert!(t.is_connected());
        // New York must be the last node (the paper's "node 11").
        assert_eq!(t.find("NewYork").unwrap().index(), 10);
        // New York carries the largest population weight (gravity hotspot).
        let nyc = t.find("NewYork").unwrap();
        for n in t.nodes() {
            assert!(t.population(n) <= t.population(nyc));
        }
    }

    #[test]
    fn internet2_routes_sane() {
        let t = internet2();
        let db = PathDb::shortest_paths(&t);
        let sea = t.find("Seattle").unwrap();
        let nyc = t.find("NewYork").unwrap();
        let p = db.path(sea, nyc);
        // Cross-country path traverses several PoPs.
        assert!(p.hops() >= 4 && p.hops() <= 7, "hops = {}", p.hops());
        assert_eq!(p.nodes.first(), Some(&sea));
        assert_eq!(p.nodes.last(), Some(&nyc));
    }

    #[test]
    fn geant_shape() {
        let t = geant();
        assert_eq!(t.num_nodes(), 22);
        assert!(t.is_connected());
        assert!(t.num_links() >= 30);
        let db = PathDb::shortest_paths(&t);
        assert_eq!(db.all_pairs().count(), 22 * 21);
        assert!(db.mean_hops() > 2.0);
    }
}
