//! The paper's correctness claim (§2.4): "a network-wide deployment should
//! be logically equivalent to running a single NIDS on the entire
//! traffic… We verified through manual inspection of Bro logs and profiles
//! that the aggregate behavior of the network-wide and standalone
//! approaches are equivalent." Here the verification is automated: the
//! union of alerts across the coordinated network must equal the alert set
//! of one standalone instance over the whole trace — for both
//! coordination-check placements and with redundancy enabled.

use nwdp_core::nids::{generate_manifests, solve_nids_lp, NidsLpConfig, NodeCaps};
use nwdp_core::{build_units, AnalysisClass, NidsDeployment};
use nwdp_engine::{run_coordinated, run_edge_only, run_standalone_reference, Placement};
use nwdp_hash::KeyedHasher;
use nwdp_topo::{internet2, PathDb, Topology};
use nwdp_traffic::{generate_trace, NetTrace, TraceConfig, TrafficMatrix, VolumeModel};

fn setup(sessions: usize, seed: u64) -> (Topology, PathDb, NidsDeployment, NetTrace) {
    let topo = internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
    let trace = generate_trace(&topo, &tm, &TraceConfig::new(sessions, seed));
    (topo, paths, dep, trace)
}

fn manifest_for(dep: &NidsDeployment) -> nwdp_core::nids::SamplingManifest {
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let assignment = solve_nids_lp(dep, &cfg).expect("NIDS LP solves");
    generate_manifests(dep, &assignment.d)
}

#[test]
fn coordinated_event_engine_equivalent_to_standalone() {
    let (_t, paths, dep, trace) = setup(4000, 42);
    let manifest = manifest_for(&dep);
    let h = KeyedHasher::with_key(0xA11CE);
    let reference = run_standalone_reference(&dep, &trace, h).unwrap();
    let coordinated =
        run_coordinated(&dep, &manifest, &paths, &trace, Placement::EventEngine, h).unwrap();
    assert!(!reference.alerts.is_empty(), "workload must trigger alerts");
    assert_eq!(
        coordinated.alerts, reference.alerts,
        "coordinated network-wide alerts must equal the standalone set"
    );
}

#[test]
fn coordinated_policy_engine_equivalent_to_standalone() {
    let (_t, paths, dep, trace) = setup(3000, 77);
    let manifest = manifest_for(&dep);
    let h = KeyedHasher::with_key(0xB0B);
    let reference = run_standalone_reference(&dep, &trace, h).unwrap();
    let coordinated =
        run_coordinated(&dep, &manifest, &paths, &trace, Placement::PolicyEngine, h).unwrap();
    assert_eq!(coordinated.alerts, reference.alerts);
}

#[test]
fn equivalence_holds_under_different_hash_keys() {
    // The alert set must not depend on the coordination key: different
    // keys shift which node analyzes what, never what is detected.
    let (_t, paths, dep, trace) = setup(2500, 11);
    let manifest = manifest_for(&dep);
    let a = run_coordinated(
        &dep,
        &manifest,
        &paths,
        &trace,
        Placement::EventEngine,
        KeyedHasher::with_key(1),
    )
    .unwrap();
    let b = run_coordinated(
        &dep,
        &manifest,
        &paths,
        &trace,
        Placement::EventEngine,
        KeyedHasher::with_key(999),
    )
    .unwrap();
    assert_eq!(a.alerts, b.alerts);
}

#[test]
fn redundancy_two_preserves_equivalence() {
    // §2.5: with r = 2, every session is analyzed at two distinct nodes;
    // the union of alerts must still match (and nothing is missed).
    // r = 2 requires ≥2 eligible nodes per unit, so restrict the class
    // list to path-scoped classes (ingress/egress units are single-node).
    let topo = internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let classes: Vec<AnalysisClass> = AnalysisClass::standard_set()
        .into_iter()
        .filter(|c| c.scope == nwdp_core::ClassScope::PerPath)
        .collect();
    let dep = build_units(&topo, &paths, &tm, &vol, &classes);
    let trace = generate_trace(&topo, &tm, &TraceConfig::new(2500, 5));
    let mut cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    cfg.redundancy = 2.0;
    let assignment = solve_nids_lp(&dep, &cfg).unwrap();
    let manifest = generate_manifests(&dep, &assignment.d);
    let h = KeyedHasher::with_key(3);
    let reference = run_standalone_reference(&dep, &trace, h).unwrap();
    let coordinated =
        run_coordinated(&dep, &manifest, &paths, &trace, Placement::EventEngine, h).unwrap();
    assert_eq!(coordinated.alerts, reference.alerts);
}

#[test]
fn edge_only_can_miss_nothing_it_sees_but_duplicates_work() {
    let (_t, _paths, dep, trace) = setup(2500, 9);
    let h = KeyedHasher::unkeyed();
    let edge = run_edge_only(&dep, &trace, h).unwrap();
    let reference = run_standalone_reference(&dep, &trace, h).unwrap();
    // Every edge node sees its own traffic fully, so per-session alerts
    // (signature, blaster, app activity) are all found...
    for alert in reference.alerts.iter().filter(|a| {
        a.kind == "signature_match" || a.kind == "blaster_worm" || a.kind == "http_request"
    }) {
        assert!(edge.alerts.contains(alert), "edge deployment missed {alert:?}");
    }
    // ...but the total work is duplicated: each session is processed at
    // both endpoints, so network-wide packet work is ~2x the reference.
    let edge_pkts: u64 = edge.per_node.iter().map(|s| s.packets).sum();
    assert!(
        edge_pkts as f64 >= 1.9 * reference.packets as f64,
        "edge {edge_pkts} vs standalone {}",
        reference.packets
    );
}
