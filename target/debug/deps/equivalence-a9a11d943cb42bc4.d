/root/repo/target/debug/deps/equivalence-a9a11d943cb42bc4.d: crates/engine/tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-a9a11d943cb42bc4.rmeta: crates/engine/tests/equivalence.rs Cargo.toml

crates/engine/tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
