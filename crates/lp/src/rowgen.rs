//! Lazy-constraint (row generation) solving.
//!
//! The NIPS LP relaxation has one coverage row per (rule, path) pair and
//! one variable-upper-bound row per (rule, path, node) triple — hundreds of
//! thousands of rows, of which only a small fraction bind at the optimum.
//! Rather than materializing all of them, [`solve_with_lazy_rows`] solves a
//! restricted LP, scans the lazy pool for violated rows, adds the worst
//! offenders, and repeats. At termination no lazy row is violated, so the
//! restricted optimum is optimal for the full LP (cutting-plane argument:
//! the restricted problem is a relaxation of the full one).

use crate::model::{Cmp, Problem, VarId};
#[cfg(test)]
use crate::simplex::solve;
use crate::simplex::{solve_warm, SolverOpts, WarmStart};
use crate::solution::{Solution, Status};
use nwdp_obs as obs;

/// A constraint kept out of the LP until it becomes violated.
#[derive(Debug, Clone)]
pub struct LazyRow {
    pub name: String,
    pub terms: Vec<(VarId, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

impl LazyRow {
    pub fn new(name: impl Into<String>, terms: Vec<(VarId, f64)>, cmp: Cmp, rhs: f64) -> Self {
        LazyRow { name: name.into(), terms, cmp, rhs }
    }

    fn violation(&self, x: &[f64]) -> f64 {
        let act: f64 = self.terms.iter().map(|&(v, c)| c * x[v.index()]).sum();
        match self.cmp {
            Cmp::Le => act - self.rhs,
            Cmp::Ge => self.rhs - act,
            Cmp::Eq => (act - self.rhs).abs(),
        }
    }
}

/// Row-generation report.
#[derive(Debug, Clone)]
pub struct RowGenResult {
    pub solution: Solution,
    /// Number of lazy rows that ended up in the LP.
    pub rows_added: usize,
    /// Cutting-plane rounds performed.
    pub rounds: usize,
    /// True when the final solution violates no lazy row (i.e. it is
    /// optimal for the *full* problem).
    pub converged: bool,
}

/// Options for [`solve_with_lazy_rows`].
#[derive(Debug, Clone)]
pub struct RowGenOpts {
    pub lp: SolverOpts,
    /// Violation tolerance for activating a lazy row.
    pub tol: f64,
    /// Add at most this many rows per round (worst violations first).
    pub batch: usize,
    /// Give up after this many rounds.
    pub max_rounds: usize,
    /// Predictive margin: when any row is violated, also activate rows
    /// within this distance of binding (they are very likely to be cut
    /// next round; activating them now saves whole re-solve rounds).
    pub near_margin: f64,
}

impl Default for RowGenOpts {
    fn default() -> Self {
        RowGenOpts {
            lp: SolverOpts::default(),
            tol: 1e-7,
            batch: usize::MAX,
            max_rounds: 60,
            near_margin: 0.0,
        }
    }
}

/// Cross-call solver cache for repeated [`solve_with_lazy_rows`] runs
/// over the *same problem shape* (same variable count, same eager-row
/// count, same lazy pool size). It carries two things from one call to
/// the next:
///
/// 1. the set of lazy rows that ended up active at the previous optimum
///    (pre-materialized before the first LP of the next call, skipping
///    the cutting-plane rounds that would rediscover them), and
/// 2. the final simplex basis ([`WarmStart`]), so the first LP restarts
///    from the previous optimum instead of from the slack basis.
///
/// Coefficients, costs, bounds and right-hand sides of both the base
/// problem and the pooled rows may change freely between calls — rows are
/// re-read from the pool on every call and the basis is re-validated by
/// the simplex. A basis the changes pushed out of primal feasibility is
/// first offered to the dual repair phase and only falls back to a cold
/// start when it is feasible in neither sense (see the `simplex` module
/// docs). A shape change resets the context (`rowgen.ctx_resets`) rather
/// than erroring.
#[derive(Debug, Clone, Default)]
pub struct SolveContext {
    warm: Option<WarmStart>,
    /// Lazy-pool indices active at the previous optimum, in activation
    /// order (the order determines row ids, which the basis snapshot
    /// depends on).
    active: Vec<usize>,
    /// `(num_vars, base rows, lazy pool len)` of the problem that filled
    /// this context.
    shape: Option<(usize, usize, usize)>,
    /// Total simplex iterations of the most recent cold pass through this
    /// context — the baseline for the `rowgen.iterations_saved` estimate.
    baseline_iters: Option<usize>,
}

impl SolveContext {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all cached state (basis and active rows).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Does the context hold a reusable basis?
    pub fn is_primed(&self) -> bool {
        self.warm.is_some()
    }
}

/// Solve `base` plus the lazy pool to optimality by row generation.
pub fn solve_with_lazy_rows(base: &Problem, lazy: &[LazyRow], opts: &RowGenOpts) -> RowGenResult {
    solve_with_lazy_rows_ctx(base, lazy, opts, &mut SolveContext::new())
}

/// [`solve_with_lazy_rows`] with a cross-call [`SolveContext`]: repeated
/// solves of near-identical problems (what-if sweeps, rounding re-solves,
/// online epochs) skip both the rediscovery of binding lazy rows and the
/// cold phase-1 of the first LP.
pub fn solve_with_lazy_rows_ctx(
    base: &Problem,
    lazy: &[LazyRow],
    opts: &RowGenOpts,
    ctx: &mut SolveContext,
) -> RowGenResult {
    let t0 = obs::now_if_enabled();
    let shape = (base.num_vars(), base.num_cons(), lazy.len());
    let _span = obs::span!(
        "rowgen.solve",
        vars = shape.0,
        base_rows = shape.1,
        lazy_pool = shape.2,
        primed = ctx.is_primed()
    );
    if ctx.shape.is_some_and(|s| s != shape) {
        if obs::enabled() {
            obs::counter("rowgen.ctx_resets").inc();
        }
        ctx.reset();
    }
    let ctx_hit = ctx.is_primed();
    let preloaded = ctx.active.len();

    let mut p = base.clone();
    let mut active = vec![false; lazy.len()];
    // Re-materialize the previously binding rows up front, in the stored
    // activation order (row ids must match the basis snapshot).
    let mut activation: Vec<usize> = std::mem::take(&mut ctx.active);
    for &i in &activation {
        let r = &lazy[i];
        p.add_con(r.name.clone(), &r.terms, r.cmp, r.rhs);
        active[i] = true;
    }
    let mut warm: Option<WarmStart> = ctx.warm.take();
    let mut rows_added = 0usize;
    let mut rounds = 0usize;
    let mut total_iters = 0usize;

    let (solution, converged) = loop {
        rounds += 1;
        let (sol, snapshot) = solve_warm(&p, &opts.lp, warm.as_ref());
        warm = snapshot;
        total_iters += sol.iterations;
        if sol.status != Status::Optimal {
            break (sol, false);
        }
        // Scan for violated lazy rows (and, when predictive activation is
        // on, near-binding ones).
        let mut violated: Vec<(usize, f64)> = Vec::new();
        let mut near: Vec<usize> = Vec::new();
        for (i, r) in lazy.iter().enumerate() {
            if active[i] {
                continue;
            }
            let v = r.violation(&sol.x);
            if v > opts.tol {
                violated.push((i, v));
            } else if v > -opts.near_margin {
                near.push(i);
            }
        }
        if violated.is_empty() {
            break (sol, true);
        }
        if rounds >= opts.max_rounds {
            break (sol, false);
        }
        violated.sort_by(|a, b| b.1.total_cmp(&a.1));
        for &(i, _) in violated.iter().take(opts.batch) {
            let r = &lazy[i];
            p.add_con(r.name.clone(), &r.terms, r.cmp, r.rhs);
            active[i] = true;
            activation.push(i);
            rows_added += 1;
        }
        if violated.len() <= opts.batch {
            for i in near {
                let r = &lazy[i];
                p.add_con(r.name.clone(), &r.terms, r.cmp, r.rhs);
                active[i] = true;
                activation.push(i);
                rows_added += 1;
            }
        }
    };

    if obs::enabled() {
        // Per-re-solve iteration trajectory, keyed on a process-wide solve
        // index (ordering across threads is best-effort; the series is for
        // eyeballing warm-start decay, not for equivalence checks).
        static SOLVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SOLVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        obs::record_series("simplex.resolve_iterations", seq as f64, total_iters as f64);
        let s = obs::Scope::new("rowgen");
        s.counter("solves").inc();
        s.counter("rounds").add(rounds as u64);
        s.counter("rows_added").add(rows_added as u64);
        if ctx_hit {
            s.counter("ctx_hits").inc();
            s.counter("ctx_rows_preloaded").add(preloaded as u64);
            if let Some(base_iters) = ctx.baseline_iters {
                s.counter("iterations_saved").add(base_iters.saturating_sub(total_iters) as u64);
            }
        }
        if !converged {
            s.counter("not_converged").inc();
        }
        s.timer("solve_ns").observe_since(t0);
    }
    if !ctx_hit {
        ctx.baseline_iters = Some(total_iters);
    }
    ctx.warm = warm;
    ctx.active = activation;
    ctx.shape = Some(shape);
    RowGenResult { solution, rows_added, rounds, converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    #[test]
    fn matches_full_solve() {
        // max sum x_j, x_j in [0,1], plus 20 lazy rows x_a + x_b <= 1.
        let mut base = Problem::new(Sense::Max);
        let vars: Vec<_> = (0..10).map(|j| base.add_var(format!("x{j}"), 0.0, 1.0, 1.0)).collect();
        let mut lazy = Vec::new();
        let mut full = base.clone();
        for a in 0..10usize {
            let b = (a + 1) % 10;
            let terms = vec![(vars[a], 1.0), (vars[b], 1.0)];
            lazy.push(LazyRow::new(format!("l{a}"), terms.clone(), Cmp::Le, 1.0));
            full.add_con(format!("l{a}"), &terms, Cmp::Le, 1.0);
        }
        let lazy_sol = solve_with_lazy_rows(&base, &lazy, &RowGenOpts::default());
        let full_sol = solve(&full, &SolverOpts::default());
        assert!(lazy_sol.converged);
        assert!(
            (lazy_sol.solution.objective - full_sol.objective).abs() < 1e-6,
            "{} vs {}",
            lazy_sol.solution.objective,
            full_sol.objective
        );
        // Odd cycle of length 10 pairwise caps → optimum 5.
        assert!((full_sol.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn no_violations_single_round() {
        let mut base = Problem::new(Sense::Max);
        let x = base.add_var("x", 0.0, 1.0, 1.0);
        let lazy = vec![LazyRow::new("loose", vec![(x, 1.0)], Cmp::Le, 5.0)];
        let r = solve_with_lazy_rows(&base, &lazy, &RowGenOpts::default());
        assert!(r.converged);
        assert_eq!(r.rows_added, 0);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn batch_limit_respected() {
        let mut base = Problem::new(Sense::Max);
        let vars: Vec<_> = (0..6).map(|j| base.add_var(format!("x{j}"), 0.0, 2.0, 1.0)).collect();
        let lazy: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| LazyRow::new(format!("cap{i}"), vec![(v, 1.0)], Cmp::Le, 1.0))
            .collect();
        let opts = RowGenOpts { batch: 2, ..Default::default() };
        let r = solve_with_lazy_rows(&base, &lazy, &opts);
        assert!(r.converged);
        assert_eq!(r.rows_added, 6);
        assert!(r.rounds >= 4); // 3 adding rounds + final clean round
        assert!((r.solution.objective - 6.0).abs() < 1e-6);
    }
}
