//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//!   repro [--quick] [--out DIR] [--metrics-out FILE] [--fig N]...
//!         [fig5 fig6 fig7 fig8 fig10 fig11 opt-time ext warm resilience throughput | all]
//!   repro report --trace FILE [--metrics FILE] [--top N] [--chrome FILE]
//!
//! Results are written as CSV files under `--out` (default `results/`) and
//! printed as ASCII tables. `--fig 5` is shorthand for the `fig5`
//! experiment name.
//!
//! `--metrics-out FILE` (or the `NWDP_METRICS=FILE` environment variable)
//! enables the `nwdp-obs` metrics layer and writes a JSON dump of every
//! counter/gauge/timer/histogram on exit, plus a `timeseries.csv` of the
//! replay-clock series under `--out`. A miniature end-to-end pipeline
//! runs first so the dump always carries simplex, rounding and per-node
//! engine series, even for experiments that exercise only one subsystem.
//!
//! `NWDP_TRACE=FILE` additionally journals every span/event to a JSONL
//! file; `repro report` turns that journal (and optionally the metrics
//! dump) into per-phase wall-time, hottest-span and warm-start tables.

use nwdp_bench::output::Table;
use nwdp_bench::{
    alerts, cluster, fig10, fig11, fig5, fig678, opttime, reload, report, selftest, throughput,
    warmstart, Scale,
};
use nwdp_core::obs;
use std::path::PathBuf;
use std::process::exit;

struct Cli {
    quick: bool,
    out: PathBuf,
    metrics_out: Option<PathBuf>,
    wanted: Vec<String>,
}

/// Flushes the metrics sink and the trace journal no matter how `main`
/// unwinds; paired with `obs::install_panic_flush` so even a panicking
/// run leaves valid artifacts behind.
struct FlushGuard;

impl Drop for FlushGuard {
    fn drop(&mut self) {
        // Alerts first: flushing mirrors the final emitted/written/dropped
        // deltas into the `alert.*` counters, which the metrics dump below
        // must include.
        let _ = obs::flush_alerts();
        let _ = obs::flush();
        obs::flush_trace();
    }
}

fn value_of(args: &[String], i: usize, flag: &str) -> String {
    match args.get(i + 1) {
        Some(v) => v.clone(),
        None => {
            eprintln!("repro: {flag} requires a value");
            exit(2);
        }
    }
}

/// `repro report --trace FILE [--metrics FILE] [--top N] [--chrome FILE]`.
fn report_main(args: &[String]) -> ! {
    let mut trace: Option<PathBuf> = None;
    let mut metrics: Option<PathBuf> = None;
    let mut chrome: Option<PathBuf> = None;
    let mut top = 10usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => {
                trace = Some(PathBuf::from(value_of(args, i, "--trace")));
                i += 1;
            }
            "--metrics" => {
                metrics = Some(PathBuf::from(value_of(args, i, "--metrics")));
                i += 1;
            }
            "--chrome" => {
                chrome = Some(PathBuf::from(value_of(args, i, "--chrome")));
                i += 1;
            }
            "--top" => {
                top = match value_of(args, i, "--top").parse() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("repro report: --top takes a number");
                        exit(2);
                    }
                };
                i += 1;
            }
            other => {
                eprintln!("repro report: unknown argument {other}");
                exit(2);
            }
        }
        i += 1;
    }
    let Some(trace) = trace else {
        eprintln!("repro report: --trace FILE is required");
        exit(2);
    };
    match report::run(&trace, metrics.as_deref(), top, chrome.as_deref()) {
        Ok(()) => exit(0),
        Err(e) => {
            eprintln!("repro report: {e}");
            exit(1);
        }
    }
}

fn parse_args(args: &[String]) -> Cli {
    let mut cli =
        Cli { quick: false, out: PathBuf::from("results"), metrics_out: None, wanted: Vec::new() };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cli.quick = true,
            "--out" => {
                cli.out = PathBuf::from(value_of(args, i, "--out"));
                i += 1;
            }
            "--metrics-out" => {
                cli.metrics_out = Some(PathBuf::from(value_of(args, i, "--metrics-out")));
                i += 1;
            }
            "--fig" => {
                cli.wanted.push(format!("fig{}", value_of(args, i, "--fig")));
                i += 1;
            }
            flag if flag.starts_with("--") => {
                eprintln!("repro: unknown flag {flag}");
                exit(2);
            }
            name => cli.wanted.push(name.to_string()),
        }
        i += 1;
    }
    if cli.wanted.is_empty() || cli.wanted.iter().any(|w| w == "all") {
        cli.wanted = [
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig10",
            "fig11",
            "opt-time",
            "ext",
            "warm",
            "resilience",
            "throughput",
            "reload",
            "cluster",
            "alerts",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    cli
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("report") {
        report_main(&args[1..]);
    }
    let cli = parse_args(&args);
    let scale = Scale::from_flag(cli.quick);

    // Metrics: an explicit --metrics-out wins; otherwise NWDP_METRICS may
    // install a sink. Either way the obs layer stays disabled (one relaxed
    // atomic load per instrumentation site) unless a dump was requested.
    let env_sink = obs::init_from_env();
    if cli.metrics_out.is_some() {
        obs::set_enabled(true);
    }
    // Tracing: NWDP_TRACE=FILE journals spans/events as JSONL;
    // NWDP_LP_TRACE streams them to stderr. The panic hook and the drop
    // guard make both sinks survive a mid-run panic with valid (partial)
    // contents.
    let trace_path = obs::init_trace_from_env();
    // Alert plane: NWDP_ALERT=FILE[:format] turns on structured detection
    // egress; unset means the plane stays off and outputs bit-identical.
    let alert_path = nwdp_core::alertcfg::init_alert_from_env();
    obs::install_panic_flush();
    let _flush_guard = FlushGuard;
    let metrics_on = obs::enabled();
    if let Some(p) = &trace_path {
        println!("repro: tracing to {}", p.display());
    }
    if let Some(p) = &alert_path {
        println!("repro: alert egress to {}", p.display());
    }
    let root_span = obs::span!("repro");
    if metrics_on {
        println!("repro: metrics enabled, running pipeline selftest");
        let _span = obs::span!("phase.selftest");
        selftest::metrics_selftest();
    }

    println!(
        "repro: scale = {:?}, experiments = {:?}, output = {}",
        scale,
        cli.wanted,
        cli.out.display()
    );

    for w in &cli.wanted {
        let started = std::time::Instant::now();
        let _span = obs::span(&format!("phase.{w}"));
        match w.as_str() {
            "fig5" => {
                let r = fig5::run(scale);
                let (cpu, mem) = fig5::tables(&r);
                emit(&cpu, &cli.out, "fig5a_cpu_overhead");
                emit(&mem, &cli.out, "fig5b_mem_overhead");
            }
            "fig6" => {
                let pts = fig678::fig6(scale);
                emit(&fig678::table6(&pts), &cli.out, "fig6_modules_sweep");
            }
            "fig7" => {
                let pts = fig678::fig7(scale);
                emit(&fig678::table7(&pts), &cli.out, "fig7_volume_sweep");
            }
            "fig8" => {
                let r = fig678::fig8(scale);
                emit(&fig678::table8(&r), &cli.out, "fig8_per_node");
            }
            "fig10" => {
                let topos = fig10::topologies();
                let pts = fig10::run(scale, &topos);
                emit(&fig10::table(&pts), &cli.out, "fig10_rounding_quality");
            }
            "fig11" => {
                let runs = fig11::run(scale);
                emit(&fig11::table(&runs), &cli.out, "fig11_online_regret");
                println!(
                    "final worst-case normalized regret: {:.3} (paper: ≤ 0.15)",
                    fig11::final_worst_regret(&runs)
                );
            }
            "ext" => {
                emit(
                    &nwdp_bench::extensions::fine_grained_ablation(scale),
                    &cli.out,
                    "ext_fine_grained",
                );
                emit(
                    &nwdp_bench::extensions::redundancy_cost(scale),
                    &cli.out,
                    "ext_redundancy_cost",
                );
                emit(
                    &nwdp_bench::extensions::adversary_comparison(scale),
                    &cli.out,
                    "ext_adversaries",
                );
            }
            "warm" => {
                let (epochs, trials) = if cli.quick { (50, 5) } else { (200, 10) };
                let rows = vec![
                    warmstart::fpl_cold_vs_warm(epochs, 6, 17),
                    warmstart::rounding_cold_vs_warm(trials, 6, 17),
                    warmstart::provisioning_cold_vs_warm(2.0),
                ];
                emit(&warmstart::table(&rows), &cli.out, "warmstart_cold_vs_warm");
            }
            "resilience" => {
                let pts = nwdp_bench::resilience::run(scale);
                emit(&nwdp_bench::resilience::table(&pts), &cli.out, "resilience_crash_sweep");
                emit(
                    &nwdp_bench::resilience::summary(&pts),
                    &cli.out,
                    "resilience_detection_tradeoff",
                );
                emit(
                    &nwdp_bench::resilience::coverage_timeseries(&pts),
                    &cli.out,
                    "resilience_coverage_timeseries",
                );
            }
            "throughput" => {
                let r = throughput::run(scale);
                emit(&throughput::table(&r), &cli.out, "throughput");
                let traj = std::path::Path::new("BENCH_throughput.json");
                match throughput::append_trajectory(traj, &r) {
                    Ok(seq) => println!("trajectory entry #{seq} appended to {}", traj.display()),
                    // A corrupt trajectory is preserved (.bak) and the
                    // append skipped — the bench itself succeeded, so warn
                    // without failing the run.
                    Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                        eprintln!("repro: {e}");
                    }
                    Err(e) => {
                        eprintln!("repro: failed to write {}: {e}", traj.display());
                        exit(1);
                    }
                }
            }
            "reload" => {
                let b = reload::run(scale);
                emit(&reload::table(&b), &cli.out, "reload_epochs");
                emit(&reload::coverage_timeseries(&b), &cli.out, "reload_coverage_timeseries");
                emit(&reload::summary(&b), &cli.out, "reload_summary");
                println!(
                    "reload: {} swaps, {} rejected, coverage floor {:.9}",
                    b.run.swaps(),
                    b.run.rejected(),
                    b.run.coverage_floor()
                );
            }
            "cluster" => {
                let b = cluster::run(scale);
                emit(&cluster::table(&b), &cli.out, "cluster_convergence");
                emit(&cluster::epochs_table(&b), &cli.out, "cluster_epochs");
                let traj = std::path::Path::new("BENCH_cluster.json");
                match cluster::append_trajectory(traj, &b) {
                    Ok(seq) => println!("trajectory entry #{seq} appended to {}", traj.display()),
                    Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                        eprintln!("repro: {e}");
                    }
                    Err(e) => {
                        eprintln!("repro: failed to write {}: {e}", traj.display());
                        exit(1);
                    }
                }
                let p = &b.points[b.points.len() - 1];
                println!(
                    "cluster: loss {:.2} -> {} detections, final epoch {}, coverage floor {:.9}",
                    p.loss,
                    p.run.detections.len(),
                    p.run.final_epoch,
                    p.run.coverage_floor()
                );
            }
            "alerts" => {
                let b = alerts::run(scale, &cli.out);
                emit(&alerts::table(&b), &cli.out, "alerts_summary");
                emit(&alerts::class_table(&b), &cli.out, "alerts_by_class");
                emit(&alerts::talkers_table(&b), &cli.out, "alerts_top_talkers");
                let traj = std::path::Path::new("BENCH_alerts.json");
                match alerts::append_trajectory(traj, &b) {
                    Ok(seq) => println!("trajectory entry #{seq} appended to {}", traj.display()),
                    Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                        eprintln!("repro: {e}");
                    }
                    Err(e) => {
                        eprintln!("repro: failed to write {}: {e}", traj.display());
                        exit(1);
                    }
                }
                let s = &b.stats;
                println!(
                    "alerts: {} emitted = {} written + {} deduped + {} rate-limited ({} + {})",
                    s.emitted,
                    s.written,
                    s.deduped,
                    s.dropped_ratelimit,
                    b.jsonl_path.display(),
                    b.cef_path.display()
                );
            }
            "opt-time" => {
                let mut rows = vec![opttime::nids_lp_time(50, 50)];
                let (n, rules) = if cli.quick { (30, 25) } else { (50, 50) };
                rows.push(opttime::nips_pipeline_time(n, rules, 51));
                emit(&opttime::table(&rows), &cli.out, "opt_time");
            }
            other => eprintln!("unknown experiment: {other}"),
        }
        println!("[{w} done in {:.1}s]\n", started.elapsed().as_secs_f64());
    }

    drop(root_span);

    if metrics_on {
        if let Some(path) = &cli.metrics_out {
            match obs::write_json(path) {
                Ok(()) => println!("metrics written to {}", path.display()),
                Err(e) => {
                    eprintln!("repro: failed to write metrics to {}: {e}", path.display());
                    exit(1);
                }
            }
        }
        if env_sink.is_some() {
            match obs::flush() {
                Ok(true) => {}
                Ok(false) => eprintln!("repro: NWDP_METRICS set but no sink flushed"),
                Err(e) => {
                    eprintln!("repro: failed to flush NWDP_METRICS sink: {e}");
                    exit(1);
                }
            }
        }
        // Replay-clock series (coverage, regret, re-solve iterations, …)
        // collected during the run.
        let ts_path = cli.out.join("timeseries.csv");
        match obs::write_series_csv(&ts_path) {
            Ok(true) => println!("time series written to {}", ts_path.display()),
            Ok(false) => {}
            Err(e) => eprintln!("repro: failed to write {}: {e}", ts_path.display()),
        }
    }
    if trace_path.is_some() {
        obs::flush_trace();
    }
}

fn emit(t: &Table, out: &std::path::Path, name: &str) {
    t.emit(out, name).expect("write results");
}
