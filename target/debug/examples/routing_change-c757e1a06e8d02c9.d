/root/repo/target/debug/examples/routing_change-c757e1a06e8d02c9.d: examples/routing_change.rs Cargo.toml

/root/repo/target/debug/examples/librouting_change-c757e1a06e8d02c9.rmeta: examples/routing_change.rs Cargo.toml

examples/routing_change.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
