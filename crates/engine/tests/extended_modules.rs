//! The extended analyzer set (DNS/FTP/SMTP/SSH beyond the paper's nine):
//! detection fires on the right sessions, and the coordinated equivalence
//! guarantee extends to the bigger module set unchanged.

use nwdp_core::nids::{generate_manifests, solve_nids_lp, NidsLpConfig, NodeCaps};
use nwdp_core::{build_units, AnalysisClass};
use nwdp_engine::{module_for_class, run_coordinated, run_standalone_reference, Placement, Stage};
use nwdp_hash::KeyedHasher;
use nwdp_topo::{internet2, PathDb};
use nwdp_traffic::{generate_trace, TraceConfig, TrafficMatrix, VolumeModel};

#[test]
fn extended_modules_construct_with_expected_stages() {
    for name in ["DNS", "FTP", "SMTP", "SSH"] {
        let m = module_for_class(name).unwrap();
        assert_eq!(m.class_name(), name);
        assert_eq!(m.stage(), Stage::EventCapable, "{name}");
        assert!(m.needs_all_packets());
    }
}

#[test]
fn extended_set_detects_its_protocols() {
    let topo = internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let classes = AnalysisClass::extended_set();
    assert_eq!(classes.len(), 13);
    let dep = build_units(&topo, &paths, &tm, &vol, &classes);
    let trace = generate_trace(&topo, &tm, &TraceConfig::new(3000, 31));
    let h = KeyedHasher::with_key(0xE7);
    let reference = run_standalone_reference(&dep, &trace, h).unwrap();
    // The mixed profile generates DNS/FTP/SMTP/SSH sessions; each new
    // analyzer must produce alerts on them.
    for kind in ["dns_query", "ftp_anonymous_login", "smtp_sender", "ssh_session"] {
        assert!(
            reference.alerts.iter().any(|a| a.kind == kind),
            "no {kind} alerts in a mixed trace"
        );
    }
}

#[test]
fn equivalence_holds_for_extended_set() {
    let topo = internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::extended_set());
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let a = solve_nids_lp(&dep, &cfg).unwrap();
    let manifest = generate_manifests(&dep, &a.d);
    let trace = generate_trace(&topo, &tm, &TraceConfig::new(2500, 17));
    let h = KeyedHasher::with_key(0x55);
    let reference = run_standalone_reference(&dep, &trace, h).unwrap();
    let coord =
        run_coordinated(&dep, &manifest, &paths, &trace, Placement::EventEngine, h).unwrap();
    assert_eq!(coord.alerts, reference.alerts);
}
