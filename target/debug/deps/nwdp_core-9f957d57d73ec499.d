/root/repo/target/debug/deps/nwdp_core-9f957d57d73ec499.d: crates/core/src/lib.rs crates/core/src/class.rs crates/core/src/migration.rs crates/core/src/nids/mod.rs crates/core/src/nids/lp.rs crates/core/src/nids/manifest.rs crates/core/src/nids/manifest_io.rs crates/core/src/nips/mod.rs crates/core/src/nips/hardness.rs crates/core/src/nips/model.rs crates/core/src/nips/relax.rs crates/core/src/nips/round.rs crates/core/src/parallel.rs crates/core/src/provision.rs crates/core/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp_core-9f957d57d73ec499.rmeta: crates/core/src/lib.rs crates/core/src/class.rs crates/core/src/migration.rs crates/core/src/nids/mod.rs crates/core/src/nids/lp.rs crates/core/src/nids/manifest.rs crates/core/src/nids/manifest_io.rs crates/core/src/nips/mod.rs crates/core/src/nips/hardness.rs crates/core/src/nips/model.rs crates/core/src/nips/relax.rs crates/core/src/nips/round.rs crates/core/src/parallel.rs crates/core/src/provision.rs crates/core/src/units.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/class.rs:
crates/core/src/migration.rs:
crates/core/src/nids/mod.rs:
crates/core/src/nids/lp.rs:
crates/core/src/nids/manifest.rs:
crates/core/src/nids/manifest_io.rs:
crates/core/src/nips/mod.rs:
crates/core/src/nips/hardness.rs:
crates/core/src/nips/model.rs:
crates/core/src/nips/relax.rs:
crates/core/src/nips/round.rs:
crates/core/src/parallel.rs:
crates/core/src/provision.rs:
crates/core/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-W__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
