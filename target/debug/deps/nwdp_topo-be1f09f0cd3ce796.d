/root/repo/target/debug/deps/nwdp_topo-be1f09f0cd3ce796.d: crates/topo/src/lib.rs crates/topo/src/builtin.rs crates/topo/src/generate.rs crates/topo/src/graph.rs crates/topo/src/io.rs crates/topo/src/rocketfuel.rs crates/topo/src/routing.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp_topo-be1f09f0cd3ce796.rmeta: crates/topo/src/lib.rs crates/topo/src/builtin.rs crates/topo/src/generate.rs crates/topo/src/graph.rs crates/topo/src/io.rs crates/topo/src/rocketfuel.rs crates/topo/src/routing.rs Cargo.toml

crates/topo/src/lib.rs:
crates/topo/src/builtin.rs:
crates/topo/src/generate.rs:
crates/topo/src/graph.rs:
crates/topo/src/io.rs:
crates/topo/src/rocketfuel.rs:
crates/topo/src/routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-W__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
