//! NIPS deployment for an ISP: place TCAM-constrained filtering rules to
//! maximally reduce the network footprint of unwanted traffic (paper §3).
//!
//! Solves the LP relaxation, rounds it with all three strategies, and
//! prints the achieved fraction of the LP upper bound plus a per-node
//! placement summary.
//!
//! Run with: `cargo run --release --example nips_isp [rule_cap_frac]`

use nwdp::prelude::*;

fn main() {
    let cap_frac: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.15);

    let topo = nwdp::topo::geant();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::scaled_for(&topo);
    let n_rules = 40;
    let rates = MatchRates::uniform_001(n_rules, paths.all_pairs().count(), 7);
    let inst = NipsInstance::evaluation_setup(&topo, &paths, &tm, &vol, n_rules, cap_frac, rates);
    println!(
        "ISP NIPS on {}: {} rules, {} paths, TCAM budget {} rules/node\n",
        topo.name,
        n_rules,
        inst.paths.len(),
        inst.cam_cap[0]
    );

    let t0 = std::time::Instant::now();
    let relax = solve_relaxation(&inst, &RowGenOpts::default()).expect("relaxation solves");
    println!(
        "LP relaxation (OptLP): {:.3e} footprint units  [{:.1}s, {} lazy rows in {} rounds]",
        relax.objective,
        t0.elapsed().as_secs_f64(),
        relax.rowgen.0,
        relax.rowgen.1
    );
    let bound = inst.drop_everything_bound();
    println!(
        "(drop-everything bound: {:.3e}; TCAM keeps us at {:.0}% of it)\n",
        bound,
        100.0 * relax.objective / bound
    );

    for (label, strategy) in [
        ("Fig 9 scaled      ", Strategy::ScaledFig9),
        ("rounding + LP     ", Strategy::LpResolve),
        ("+ greedy fill (b) ", Strategy::GreedyLpResolve),
    ] {
        let opts = RoundingOpts { strategy, iterations: 10, seed: 42, ..Default::default() };
        let sol = round_best_of(&inst, &relax, &opts).expect("rounding failed");
        inst.check_feasible(&sol.e, &sol.d, 1e-6).expect("feasible");
        println!(
            "{label}: {:.3e}  ({:.1}% of OptLP)",
            sol.objective,
            100.0 * sol.objective / relax.objective
        );
        if strategy == Strategy::GreedyLpResolve {
            // Placement summary for the best variant.
            println!("\nper-node rule placement (greedy variant):");
            for j in 0..inst.num_nodes {
                let enabled: Vec<&str> = (0..n_rules)
                    .filter(|&i| sol.e[i][j])
                    .map(|i| inst.rules[i].name.as_str())
                    .collect();
                println!(
                    "  {:>12}: {:>2} rules [{}{}]",
                    topo.node(NodeId(j)).name,
                    enabled.len(),
                    enabled.iter().take(5).cloned().collect::<Vec<_>>().join(","),
                    if enabled.len() > 5 { ",…" } else { "" }
                );
            }
        }
    }
}
