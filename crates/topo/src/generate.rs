//! Synthetic topology generators.
//!
//! Deterministic (seeded) generators for experiment scaffolding: the
//! classic Waxman random-geometric model (used to synthesize Rocketfuel-like
//! ISP backbones and the 50-node optimization-time instances), plus simple
//! regular shapes for unit tests.

use crate::graph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Waxman random topology: `n` nodes placed uniformly in the unit square;
/// link probability `alpha * exp(-d / (beta * L))` with `L` the diameter.
/// A random spanning tree is added first so the result is always connected.
/// Node populations are log-normal-ish (heavy-tailed, like city sizes).
pub fn waxman(name: impl Into<String>, n: usize, alpha: f64, beta: f64, seed: u64) -> Topology {
    assert!(n >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new(name);
    let pts: Vec<(f64, f64)> =
        (0..n).map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0))).collect();
    for (i, _) in pts.iter().enumerate() {
        // Heavy-tailed population: exp of a normal-ish sum.
        let z: f64 = (0..6).map(|_| rng.random_range(-0.5..0.5)).sum();
        t.add_node(format!("n{i}"), (z * 1.6).exp());
    }
    let dist = |i: usize, j: usize| -> f64 {
        let dx = pts[i].0 - pts[j].0;
        let dy = pts[i].1 - pts[j].1;
        (dx * dx + dy * dy).sqrt().max(1e-6)
    };
    let l = 2f64.sqrt();
    // Random spanning tree: connect each node to a random earlier node.
    for i in 1..n {
        let j = rng.random_range(0..i);
        t.add_link(NodeId(i), NodeId(j), dist(i, j) * 1000.0);
    }
    // Waxman extra links.
    for i in 0..n {
        for j in (i + 1)..n {
            if t.neighbors(NodeId(i)).iter().any(|&(v, _)| v == NodeId(j)) {
                continue;
            }
            let p = alpha * (-dist(i, j) / (beta * l)).exp();
            if rng.random_bool(p.clamp(0.0, 1.0)) {
                t.add_link(NodeId(i), NodeId(j), dist(i, j) * 1000.0);
            }
        }
    }
    t
}

/// A cycle of `n` nodes with unit weights.
pub fn ring(n: usize) -> Topology {
    assert!(n >= 3);
    let mut t = Topology::new(format!("ring{n}"));
    let ids: Vec<_> = (0..n).map(|i| t.add_node(format!("r{i}"), 1.0)).collect();
    for i in 0..n {
        t.add_link(ids[i], ids[(i + 1) % n], 1.0);
    }
    t
}

/// A star: hub node 0 with `n - 1` leaves.
pub fn star(n: usize) -> Topology {
    assert!(n >= 2);
    let mut t = Topology::new(format!("star{n}"));
    let hub = t.add_node("hub", 1.0);
    for i in 1..n {
        let leaf = t.add_node(format!("leaf{i}"), 1.0);
        t.add_link(hub, leaf, 1.0);
    }
    t
}

/// A line of `n` nodes.
pub fn line(n: usize) -> Topology {
    assert!(n >= 2);
    let mut t = Topology::new(format!("line{n}"));
    let ids: Vec<_> = (0..n).map(|i| t.add_node(format!("l{i}"), 1.0)).collect();
    for w in ids.windows(2) {
        t.add_link(w[0], w[1], 1.0);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::PathDb;

    #[test]
    fn waxman_connected_and_deterministic() {
        let a = waxman("w", 30, 0.4, 0.25, 42);
        let b = waxman("w", 30, 0.4, 0.25, 42);
        assert!(a.is_connected());
        assert_eq!(a.num_links(), b.num_links());
        for (la, lb) in a.links().iter().zip(b.links()) {
            assert_eq!(la.a, lb.a);
            assert_eq!(la.b, lb.b);
        }
        // Different seed ⇒ (almost surely) different graph.
        let c = waxman("w", 30, 0.4, 0.25, 43);
        assert!(
            a.num_links() != c.num_links()
                || a.links().iter().zip(c.links()).any(|(x, y)| x.a != y.a || x.b != y.b)
        );
    }

    #[test]
    fn waxman_density_grows_with_alpha() {
        let sparse = waxman("s", 40, 0.1, 0.2, 7);
        let dense = waxman("d", 40, 0.9, 0.6, 7);
        assert!(dense.num_links() > sparse.num_links());
    }

    #[test]
    fn regular_shapes() {
        assert_eq!(ring(5).num_links(), 5);
        assert_eq!(star(6).num_links(), 5);
        assert_eq!(line(4).num_links(), 3);
        let db = PathDb::shortest_paths(&ring(6));
        // Antipodal nodes on a 6-ring: 4 nodes on the path (3 hops).
        assert_eq!(db.path(crate::graph::NodeId(0), crate::graph::NodeId(3)).hops(), 4);
    }
}
