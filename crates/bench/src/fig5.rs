//! Fig 5 — microbenchmarks: CPU and memory overhead of the coordination
//! functions per module, for both check placements, vs unmodified Bro.
//!
//! "We generate a single traffic trace with 100,000 traffic sessions using
//! a mixed traffic profile that stresses different modules… We configure
//! Bro to run each analysis module in isolation. For each configuration,
//! we perform 5 runs and report the mean, minimum, and maximum overhead."

use crate::output::{f4, pct, Table};
use crate::scenario::Scale;
use nwdp_core::{build_units, AnalysisClass};
use nwdp_engine::{
    modules::capture_filter, standalone_coordination, CoordContext, Engine, Placement,
};
use nwdp_hash::KeyedHasher;
use nwdp_topo::{line, NodeId, PathDb};
use nwdp_traffic::{generate_trace, TraceConfig, TrafficMatrix, VolumeModel};

pub const MODULES: [&str; 9] =
    ["Baseline", "Scan", "IRC", "Login", "TFTP", "HTTP", "Blaster", "Signature", "SYNFlood"];

/// One (module, placement) measurement across repeats.
#[derive(Debug, Clone)]
pub struct Overhead {
    pub module: String,
    /// (mean, min, max) CPU overhead vs unmodified, as fractions.
    pub cpu_event: (f64, f64, f64),
    pub cpu_policy: (f64, f64, f64),
    /// (mean, min, max) memory overhead vs unmodified.
    pub mem_event: (f64, f64, f64),
    pub mem_policy: (f64, f64, f64),
}

fn run_once(module: &str, placement: Placement, sessions: usize, seed: u64) -> (u64, u64) {
    let topo = line(2);
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::uniform(&topo);
    let vol = VolumeModel::internet2_baseline();
    let classes: Vec<AnalysisClass> =
        AnalysisClass::standard_set().into_iter().filter(|c| c.name == module).collect();
    let dep = build_units(&topo, &paths, &tm, &vol, &classes);
    let (solo, manifest) = standalone_coordination(&dep, NodeId(0));
    let names = vec![module.to_string()];
    let h = KeyedHasher::unkeyed();
    let trace = generate_trace(&topo, &tm, &TraceConfig::new(sessions, seed));
    let mut engine = match placement {
        Placement::Unmodified => Engine::new(NodeId(0), placement, &names, None, h),
        _ => {
            Engine::new(NodeId(0), placement, &names, Some(CoordContext::new(&solo, &manifest)), h)
        }
    }
    .expect("Fig 5 modules are registered");
    for s in trace.sessions.iter().filter(|s| capture_filter(module, s)) {
        engine.process_session(s);
    }
    let st = engine.stats();
    (st.cpu_cycles, st.mem_peak)
}

fn stats(xs: &[f64]) -> (f64, f64, f64) {
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (mean, min, max)
}

/// Run the full Fig 5 microbenchmark. The nine module sweeps are
/// independent and fan out across scoped threads (results in module
/// order, bit-identical to a serial sweep).
pub fn run(scale: Scale) -> Vec<Overhead> {
    let sessions = scale.fig5_sessions();
    nwdp_core::parallel::par_map(&MODULES, |_, module| {
        let mut ce = Vec::new();
        let mut cp = Vec::new();
        let mut me = Vec::new();
        let mut mp = Vec::new();
        for rep in 0..scale.repeats() {
            let seed = 1000 + rep as u64;
            let (cu, mu) = run_once(module, Placement::Unmodified, sessions, seed);
            let (cev, mev) = run_once(module, Placement::EventEngine, sessions, seed);
            let (cpo, mpo) = run_once(module, Placement::PolicyEngine, sessions, seed);
            ce.push(cev as f64 / cu as f64 - 1.0);
            cp.push(cpo as f64 / cu as f64 - 1.0);
            me.push(mev as f64 / mu as f64 - 1.0);
            mp.push(mpo as f64 / mu as f64 - 1.0);
        }
        Overhead {
            module: module.to_string(),
            cpu_event: stats(&ce),
            cpu_policy: stats(&cp),
            mem_event: stats(&me),
            mem_policy: stats(&mp),
        }
    })
}

/// Render the Fig 5(a)/(b) tables.
pub fn tables(results: &[Overhead]) -> (Table, Table) {
    let mut cpu = Table::new(
        "Fig 5(a): CPU overhead of coordination checks (vs unmodified Bro)",
        &["module", "event-engine mean", "min", "max", "policy-engine mean", "min", "max"],
    );
    let mut mem = Table::new(
        "Fig 5(b): memory overhead of coordination state (vs unmodified Bro)",
        &["module", "event-engine mean", "min", "max", "policy-engine mean", "min", "max"],
    );
    for r in results {
        cpu.row(vec![
            r.module.clone(),
            pct(r.cpu_event.0),
            f4(r.cpu_event.1),
            f4(r.cpu_event.2),
            pct(r.cpu_policy.0),
            f4(r.cpu_policy.1),
            f4(r.cpu_policy.2),
        ]);
        mem.row(vec![
            r.module.clone(),
            pct(r.mem_event.0),
            f4(r.mem_event.1),
            f4(r.mem_event.2),
            pct(r.mem_policy.0),
            f4(r.mem_policy.1),
            f4(r.mem_policy.2),
        ]);
    }
    (cpu, mem)
}
