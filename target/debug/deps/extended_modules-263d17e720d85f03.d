/root/repo/target/debug/deps/extended_modules-263d17e720d85f03.d: crates/engine/tests/extended_modules.rs

/root/repo/target/debug/deps/extended_modules-263d17e720d85f03: crates/engine/tests/extended_modules.rs

crates/engine/tests/extended_modules.rs:
