/root/repo/target/debug/deps/proptest-5dd630a2f42218fc.d: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-5dd630a2f42218fc.rlib: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-5dd630a2f42218fc.rmeta: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs

crates/proptest/src/lib.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/strategy.rs:
