//! Application traffic profiles.
//!
//! The paper's traffic generator takes "a traffic profile (e.g., relative
//! popularity of different application ports)" and uses "template sessions
//! using real traffic captured for common protocols like HTTP, IRC, and
//! Telnet" (§2.4). [`TrafficProfile`] is that knob; [`TrafficProfile::mixed`]
//! reproduces the microbenchmark setting — "a mixed traffic profile that
//! stresses different modules".

use rand::rngs::StdRng;
use rand::RngExt;

/// Application protocols with template sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppProtocol {
    Http,
    Irc,
    Telnet,
    Tftp,
    Smtp,
    Dns,
    Ftp,
    Ssh,
    /// Miscellaneous TCP traffic on an ephemeral service port.
    OtherTcp,
}

impl AppProtocol {
    /// Well-known server port.
    pub fn server_port(&self) -> u16 {
        match self {
            AppProtocol::Http => 80,
            AppProtocol::Irc => 6667,
            AppProtocol::Telnet => 23,
            AppProtocol::Tftp => 69,
            AppProtocol::Smtp => 25,
            AppProtocol::Dns => 53,
            AppProtocol::Ftp => 21,
            AppProtocol::Ssh => 22,
            AppProtocol::OtherTcp => 8000,
        }
    }

    /// IP protocol number (6 = TCP, 17 = UDP).
    pub fn ip_proto(&self) -> u8 {
        match self {
            AppProtocol::Tftp | AppProtocol::Dns => 17,
            _ => 6,
        }
    }

    pub fn is_udp(&self) -> bool {
        self.ip_proto() == 17
    }

    pub const ALL: [AppProtocol; 9] = [
        AppProtocol::Http,
        AppProtocol::Irc,
        AppProtocol::Telnet,
        AppProtocol::Tftp,
        AppProtocol::Smtp,
        AppProtocol::Dns,
        AppProtocol::Ftp,
        AppProtocol::Ssh,
        AppProtocol::OtherTcp,
    ];

    /// Identify the protocol from a server port, if it is one of ours.
    pub fn from_port(port: u16) -> Option<AppProtocol> {
        AppProtocol::ALL.iter().copied().find(|a| a.server_port() == port)
    }
}

/// Relative popularity of application protocols.
#[derive(Debug, Clone)]
pub struct TrafficProfile {
    /// Normalized weights, same order as the `apps` list.
    weights: Vec<(AppProtocol, f64)>,
    cumulative: Vec<f64>,
}

impl TrafficProfile {
    pub fn new(mut weights: Vec<(AppProtocol, f64)>) -> Self {
        assert!(!weights.is_empty(), "empty profile");
        let total: f64 = weights.iter().map(|(_, w)| *w).sum();
        assert!(total > 0.0, "profile weights must be positive");
        for (_, w) in weights.iter_mut() {
            *w /= total;
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &(_, w) in &weights {
            acc += w;
            cumulative.push(acc);
        }
        TrafficProfile { weights, cumulative }
    }

    /// The paper's microbenchmark mix: every module gets exercised, web
    /// still dominates as in real traffic.
    pub fn mixed() -> Self {
        TrafficProfile::new(vec![
            (AppProtocol::Http, 0.35),
            (AppProtocol::Dns, 0.15),
            (AppProtocol::Smtp, 0.08),
            (AppProtocol::Irc, 0.08),
            (AppProtocol::Telnet, 0.08),
            (AppProtocol::Tftp, 0.08),
            (AppProtocol::Ftp, 0.06),
            (AppProtocol::Ssh, 0.06),
            (AppProtocol::OtherTcp, 0.06),
        ])
    }

    /// A realistic web-dominated mix.
    pub fn web_heavy() -> Self {
        TrafficProfile::new(vec![
            (AppProtocol::Http, 0.70),
            (AppProtocol::Dns, 0.15),
            (AppProtocol::Smtp, 0.05),
            (AppProtocol::Ssh, 0.03),
            (AppProtocol::Ftp, 0.02),
            (AppProtocol::Irc, 0.02),
            (AppProtocol::Telnet, 0.01),
            (AppProtocol::Tftp, 0.01),
            (AppProtocol::OtherTcp, 0.01),
        ])
    }

    /// Single-protocol profile (used to isolate a module, as in Fig 5).
    pub fn only(app: AppProtocol) -> Self {
        TrafficProfile::new(vec![(app, 1.0)])
    }

    pub fn weight(&self, app: AppProtocol) -> f64 {
        self.weights.iter().find(|(a, _)| *a == app).map_or(0.0, |(_, w)| *w)
    }

    /// Sample a protocol.
    pub fn sample(&self, rng: &mut StdRng) -> AppProtocol {
        let u: f64 = rng.random_range(0.0..1.0);
        let idx = self.cumulative.iter().position(|&c| u < c).unwrap_or(self.weights.len() - 1);
        self.weights[idx].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn weights_normalized() {
        let p = TrafficProfile::mixed();
        let total: f64 = AppProtocol::ALL.iter().map(|&a| p.weight(a)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_tracks_weights() {
        let p = TrafficProfile::mixed();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 40_000;
        let mut http = 0usize;
        for _ in 0..n {
            if p.sample(&mut rng) == AppProtocol::Http {
                http += 1;
            }
        }
        let frac = http as f64 / n as f64;
        assert!((frac - 0.35).abs() < 0.02, "HTTP fraction {frac}");
    }

    #[test]
    fn port_round_trip() {
        for a in AppProtocol::ALL {
            assert_eq!(AppProtocol::from_port(a.server_port()), Some(a));
        }
        assert_eq!(AppProtocol::from_port(4444), None);
    }

    #[test]
    fn only_profile_is_degenerate() {
        let p = TrafficProfile::only(AppProtocol::Irc);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            assert_eq!(p.sample(&mut rng), AppProtocol::Irc);
        }
    }
}
