//! Dense explicit-inverse basis backend.
//!
//! Maintains `B⁻¹` as a column-major dense matrix, updated by elementary row
//! operations at each pivot (product-form update applied eagerly). Simple,
//! numerically transparent, and fast for basis sizes up to a few thousand
//! rows; the sparse backend takes over beyond that.

use super::{BasisBackend, SingularBasis};

pub struct DenseInverse {
    m: usize,
    /// Column-major `B⁻¹`: entry `(i, k)` at `binv[k * m + i]`.
    binv: Vec<f64>,
}

impl DenseInverse {
    pub fn new() -> Self {
        DenseInverse { m: 0, binv: Vec::new() }
    }
}

impl Default for DenseInverse {
    fn default() -> Self {
        Self::new()
    }
}

impl BasisBackend for DenseInverse {
    fn reset_identity(&mut self, m: usize) {
        self.m = m;
        self.binv.clear();
        self.binv.resize(m * m, 0.0);
        for i in 0..m {
            self.binv[i * m + i] = 1.0;
        }
    }

    fn refactor(&mut self, m: usize, basis_cols: &[&[(usize, f64)]]) -> Result<(), SingularBasis> {
        // Build the dense basis matrix and invert by Gauss-Jordan with
        // partial pivoting. O(m^3); called only on numerical alarms.
        self.m = m;
        let mut a = vec![0.0f64; m * m]; // column-major basis matrix
        for (pos, col) in basis_cols.iter().enumerate() {
            for &(row, val) in *col {
                a[pos * m + row] = val;
            }
        }
        let mut inv = vec![0.0f64; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        // Gauss-Jordan over columns of `a` (column-major access by row is
        // strided; acceptable for the rare refactor path).
        for piv in 0..m {
            // Find pivot row.
            let mut best = piv;
            let mut best_abs = a[piv * m + piv].abs();
            for r in (piv + 1)..m {
                let v = a[piv * m + r].abs();
                if v > best_abs {
                    best_abs = v;
                    best = r;
                }
            }
            if best_abs < 1e-12 {
                return Err(SingularBasis);
            }
            if best != piv {
                for k in 0..m {
                    a.swap(k * m + piv, k * m + best);
                    inv.swap(k * m + piv, k * m + best);
                }
            }
            let d = a[piv * m + piv];
            for k in 0..m {
                a[k * m + piv] /= d;
                inv[k * m + piv] /= d;
            }
            for r in 0..m {
                if r == piv {
                    continue;
                }
                let f = a[piv * m + r];
                if f == 0.0 {
                    continue;
                }
                for k in 0..m {
                    a[k * m + r] -= f * a[k * m + piv];
                    inv[k * m + r] -= f * inv[k * m + piv];
                }
            }
        }
        self.binv = inv;
        Ok(())
    }

    fn ftran(&self, col: &[(usize, f64)], out: &mut [f64]) {
        let m = self.m;
        out[..m].fill(0.0);
        for &(k, ak) in col {
            let base = k * m;
            let c = &self.binv[base..base + m];
            for i in 0..m {
                out[i] += c[i] * ak;
            }
        }
    }

    fn btran(&self, c: &[f64], out: &mut [f64]) {
        let m = self.m;
        for (k, o) in out.iter_mut().enumerate().take(m) {
            let base = k * m;
            let col = &self.binv[base..base + m];
            let mut acc = 0.0;
            for i in 0..m {
                acc += c[i] * col[i];
            }
            *o = acc;
        }
    }

    fn btran_unit(&self, r: usize, out: &mut [f64]) {
        // Row `r` of the explicit inverse, read straight out of the
        // column-major store — no BTRAN pass needed.
        let m = self.m;
        for (k, o) in out.iter_mut().enumerate().take(m) {
            *o = self.binv[k * m + r];
        }
    }

    fn update(&mut self, pivot_row: usize, y: &[f64]) {
        let m = self.m;
        let yr = y[pivot_row];
        debug_assert!(yr.abs() > 1e-13, "pivot too small in dense update");
        for k in 0..m {
            let base = k * m;
            let v = self.binv[base + pivot_row] / yr;
            if v == 0.0 {
                continue;
            }
            let col = &mut self.binv[base..base + m];
            for i in 0..m {
                col[i] -= y[i] * v;
            }
            col[pivot_row] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::BasisBackend;

    #[test]
    fn identity_ftran_btran_roundtrip() {
        let mut b = DenseInverse::new();
        b.reset_identity(3);
        let col = vec![(0, 2.0), (2, -1.0)];
        let mut y = vec![0.0; 3];
        b.ftran(&col, &mut y);
        assert_eq!(y, vec![2.0, 0.0, -1.0]);
        let mut pi = vec![0.0; 3];
        b.btran(&[1.0, 2.0, 3.0], &mut pi);
        assert_eq!(pi, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn update_matches_refactor() {
        // Start from identity, pivot column [1, 2, 0]^T into row 1, and
        // compare against a from-scratch inversion of the same basis.
        let mut b = DenseInverse::new();
        b.reset_identity(3);
        let entering = vec![(0, 1.0), (1, 2.0)];
        let mut y = vec![0.0; 3];
        b.ftran(&entering, &mut y);
        b.update(1, &y);

        let mut fresh = DenseInverse::new();
        let c0: Vec<(usize, f64)> = vec![(0, 1.0)];
        let c1: Vec<(usize, f64)> = vec![(0, 1.0), (1, 2.0)];
        let c2: Vec<(usize, f64)> = vec![(2, 1.0)];
        let basis_cols: Vec<&[(usize, f64)]> = vec![&c0, &c1, &c2];
        fresh.refactor(3, &basis_cols).unwrap();

        let probe = vec![(0, 0.3), (1, -1.7), (2, 0.9)];
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        b.ftran(&probe, &mut y1);
        fresh.ftran(&probe, &mut y2);
        for (a, c) in y1.iter().zip(&y2) {
            assert!((a - c).abs() < 1e-12, "{y1:?} vs {y2:?}");
        }
    }

    #[test]
    fn btran_unit_matches_btran_of_unit_vector() {
        // Same non-trivial basis as `update_matches_refactor`: row
        // extraction must agree with BTRAN applied to a materialized eᵣ.
        let mut b = DenseInverse::new();
        let c0: Vec<(usize, f64)> = vec![(0, 1.0), (2, 0.5)];
        let c1: Vec<(usize, f64)> = vec![(0, 1.0), (1, 2.0)];
        let c2: Vec<(usize, f64)> = vec![(1, -0.3), (2, 1.0)];
        let basis_cols: Vec<&[(usize, f64)]> = vec![&c0, &c1, &c2];
        b.refactor(3, &basis_cols).unwrap();
        for r in 0..3 {
            let mut e = vec![0.0; 3];
            e[r] = 1.0;
            let mut via_btran = vec![0.0; 3];
            b.btran(&e, &mut via_btran);
            let mut direct = vec![0.0; 3];
            b.btran_unit(r, &mut direct);
            for (a, c) in direct.iter().zip(&via_btran) {
                assert!((a - c).abs() < 1e-12, "row {r}: {direct:?} vs {via_btran:?}");
            }
        }
    }

    #[test]
    fn refactor_detects_singularity() {
        let mut b = DenseInverse::new();
        let c0: Vec<(usize, f64)> = vec![(0, 1.0)];
        let c1: Vec<(usize, f64)> = vec![(0, 2.0)]; // rank 1 in 2x2
        let cols: Vec<&[(usize, f64)]> = vec![&c0, &c1];
        assert!(b.refactor(2, &cols).is_err());
    }
}
