/root/repo/target/debug/deps/warmstart-09f3ab0c6dfcc897.d: crates/lp/tests/warmstart.rs

/root/repo/target/debug/deps/warmstart-09f3ab0c6dfcc897: crates/lp/tests/warmstart.rs

crates/lp/tests/warmstart.rs:
