/root/repo/target/release/examples/online_adaptation-d8c6edbfd02166c8.d: examples/online_adaptation.rs

/root/repo/target/release/examples/online_adaptation-d8c6edbfd02166c8: examples/online_adaptation.rs

examples/online_adaptation.rs:
