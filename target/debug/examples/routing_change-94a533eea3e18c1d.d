/root/repo/target/debug/examples/routing_change-94a533eea3e18c1d.d: examples/routing_change.rs

/root/repo/target/debug/examples/routing_change-94a533eea3e18c1d: examples/routing_change.rs

examples/routing_change.rs:
