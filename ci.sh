#!/usr/bin/env bash
# Tier-1 gate plus lint checks. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

# Library code must not panic on fallible paths; surface unwrap/expect as
# warnings there. --lib keeps #[cfg(test)] modules, test targets, benches
# and binaries exempt (unwrap in tests is idiomatic).
echo "== clippy (panic-path lint, library crates) =="
cargo clippy --lib -p nwdp -p nwdp-core -p nwdp-lp -p nwdp-engine \
  -p nwdp-online -p nwdp-obs -p nwdp-topo -p nwdp-traffic -p nwdp-hash -- \
  -W clippy::unwrap_used -W clippy::expect_used

echo "== metrics smoke =="
metrics_tmp="$(mktemp -d)"
trap 'rm -rf "$metrics_tmp"' EXIT
./target/release/repro --quick --fig 5 \
  --metrics-out "$metrics_tmp/metrics.json" --out "$metrics_tmp/results" \
  > /dev/null
python3 - "$metrics_tmp/metrics.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["version"] == 1, d.get("version")
c = d["counters"]
for key in ("simplex.solves", "simplex.iterations", "round.trials", "rowgen.solves"):
    assert c.get(key, 0) > 0, f"missing or zero counter: {key}"
assert any(k.startswith("engine.packets{") and v > 0 for k, v in c.items()), \
    "no per-node engine packet counters"
print(f"metrics smoke OK ({len(c)} counters)")
PY

echo "CI OK"
