//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the `rand` API it actually uses:
//!
//! - [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (the published reference construction);
//! - [`SeedableRng::seed_from_u64`] — the only seeding entry point used;
//! - [`RngExt::random_range`] / [`RngExt::random_bool`] — uniform sampling
//!   over integer and float ranges.
//!
//! Determinism is load-bearing: every experiment, test, and the
//! parallel-vs-serial equivalence suite assume that a given seed yields
//! the same stream on every platform. xoshiro256++ is exactly specified
//! over `u64`, so streams are bit-stable across architectures.

pub mod rngs;

pub use rngs::StdRng;

/// Low-level uniform generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (the reference
    /// seeding procedure recommended by the xoshiro authors).
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly (mirrors `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level sampling helpers (mirrors the `rand` 0.10 `Rng`/`RngExt`
/// extension trait this workspace imports).
pub trait RngExt: RngCore {
    /// Uniform sample from `range`. Panics on an empty range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z: i8 = rng.random_range(-2i8..=2);
            assert!((-2..=2).contains(&z));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn float_sampling_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
