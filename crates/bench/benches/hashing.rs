//! Wall-clock benches for the coordination-hashing substrate: the per-
//! packet cost of the Fig 3 check is dominated by the Bob hash, so its
//! throughput bounds the prototype's overhead (§2.3–2.4).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nwdp_hash::{lookup3, FiveTuple, FlowKeyKind, KeyedHasher, RangeSet};
use std::hint::black_box;

fn bench_lookup3(c: &mut Criterion) {
    let mut g = c.benchmark_group("lookup3");
    let data: Vec<u8> = (0..1500u32).map(|i| (i % 251) as u8).collect();
    g.throughput(Throughput::Bytes(1500));
    g.bench_function("hashlittle_1500B", |b| b.iter(|| lookup3::hashlittle(black_box(&data), 0)));
    let words = [0x0a000001u32, 0xc0a80107, 0x9c408050, 6];
    g.bench_function("hashword_5tuple", |b| {
        b.iter(|| lookup3::hashword(black_box(&words), black_box(0xdead)))
    });
    g.finish();
}

fn bench_coordination_check(c: &mut Criterion) {
    // The full Fig 3 line-4/5 kernel: key extraction + keyed hash + range
    // membership.
    let hasher = KeyedHasher::with_key(0x5eed);
    let range = RangeSet::interval(0.25, 0.5);
    let tuple = FiveTuple::new(0x0a000001, 0x0a0a0101, 43210, 80, 6);
    c.bench_function("fig3_check_bisession", |b| {
        b.iter(|| {
            let h = hasher.unit_hash(black_box(&tuple), FlowKeyKind::BiSession);
            range.contains(h)
        })
    });
    c.bench_function("fig3_check_source", |b| {
        b.iter(|| {
            let h = hasher.unit_hash(black_box(&tuple), FlowKeyKind::Source);
            range.contains(h)
        })
    });
}

criterion_group!(benches, bench_lookup3, bench_coordination_check);
criterion_main!(benches);
