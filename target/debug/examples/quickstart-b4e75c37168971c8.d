/root/repo/target/debug/examples/quickstart-b4e75c37168971c8.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b4e75c37168971c8.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
