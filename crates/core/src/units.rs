//! Coordination units (§2.1).
//!
//! For each class `C_i`, its traffic `T_i` is partitioned into components
//! `T_ik` such that a nonempty node set `P_ik` observes all of `T_ik`. A
//! [`CoordUnit`] is one such `(i, k)` pair: its eligible nodes, and the
//! packet/item volumes used by the optimization (`T_ik^pkts`,
//! `T_ik^items`). [`build_units`] derives the units for a class list from
//! the topology, routing, traffic matrix, and volume model.

use crate::class::{AnalysisClass, ClassScope};
use nwdp_topo::{NodeId, PathDb, Topology};
use nwdp_traffic::{TrafficMatrix, VolumeModel};

/// Identity of a coordination unit's traffic component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitKey {
    /// Traffic on the ingress–egress path `(src, dst)`.
    Path(NodeId, NodeId),
    /// Traffic initiated by hosts homed at this ingress.
    Ingress(NodeId),
    /// Traffic terminating at hosts homed at this egress.
    Egress(NodeId),
}

/// One coordination unit `P_ik` with its traffic volumes.
#[derive(Debug, Clone)]
pub struct CoordUnit {
    /// Index of the class in the deployment's class list.
    pub class: usize,
    pub key: UnitKey,
    /// Nodes eligible to analyze this unit's traffic (all observe it).
    pub nodes: Vec<NodeId>,
    /// `T_ik^pkts`: packet volume per measurement interval.
    pub pkts: f64,
    /// `T_ik^items`: item volume (connections / sources / destinations).
    pub items: f64,
}

/// A full NIDS deployment description: classes plus their units.
#[derive(Debug, Clone)]
pub struct NidsDeployment {
    pub classes: Vec<AnalysisClass>,
    pub units: Vec<CoordUnit>,
    pub num_nodes: usize,
}

/// Derive coordination units for `classes` under the given network model.
pub fn build_units(
    topo: &Topology,
    paths: &PathDb,
    tm: &TrafficMatrix,
    vol: &VolumeModel,
    classes: &[AnalysisClass],
) -> NidsDeployment {
    let mut units = Vec::new();
    for (ci, class) in classes.iter().enumerate() {
        match class.scope {
            ClassScope::PerPath => {
                for p in paths.all_pairs() {
                    let pkts = vol.pair_pkts(tm, p.src, p.dst);
                    let flows = vol.pair_flows(tm, p.src, p.dst);
                    if pkts <= 0.0 {
                        continue;
                    }
                    units.push(CoordUnit {
                        class: ci,
                        key: UnitKey::Path(p.src, p.dst),
                        nodes: p.nodes.clone(),
                        pkts,
                        items: flows * class.items_per_flow,
                    });
                }
            }
            ClassScope::PerIngress => {
                for s in topo.nodes() {
                    let pkts: f64 = topo.nodes().map(|d| vol.pair_pkts(tm, s, d)).sum();
                    let flows: f64 = topo.nodes().map(|d| vol.pair_flows(tm, s, d)).sum();
                    if pkts <= 0.0 {
                        continue;
                    }
                    units.push(CoordUnit {
                        class: ci,
                        key: UnitKey::Ingress(s),
                        nodes: vec![s],
                        pkts,
                        items: flows * class.items_per_flow,
                    });
                }
            }
            ClassScope::PerEgress => {
                for d in topo.nodes() {
                    let pkts: f64 = topo.nodes().map(|s| vol.pair_pkts(tm, s, d)).sum();
                    let flows: f64 = topo.nodes().map(|s| vol.pair_flows(tm, s, d)).sum();
                    if pkts <= 0.0 {
                        continue;
                    }
                    units.push(CoordUnit {
                        class: ci,
                        key: UnitKey::Egress(d),
                        nodes: vec![d],
                        pkts,
                        items: flows * class.items_per_flow,
                    });
                }
            }
        }
    }
    NidsDeployment { classes: classes.to_vec(), units, num_nodes: topo.num_nodes() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::AnalysisClass;
    use nwdp_topo::internet2;
    use nwdp_traffic::TrafficMatrix;

    fn deployment() -> NidsDeployment {
        let t = internet2();
        let paths = PathDb::shortest_paths(&t);
        let tm = TrafficMatrix::gravity(&t);
        let vol = VolumeModel::internet2_baseline();
        build_units(&t, &paths, &tm, &vol, &AnalysisClass::standard_set())
    }

    #[test]
    fn unit_counts_match_scopes() {
        let d = deployment();
        // 7 per-path classes × 110 pairs + Scan (11) + SYNFlood (11).
        let per_path = d.units.iter().filter(|u| matches!(u.key, UnitKey::Path(..))).count();
        let ingress = d.units.iter().filter(|u| matches!(u.key, UnitKey::Ingress(_))).count();
        let egress = d.units.iter().filter(|u| matches!(u.key, UnitKey::Egress(_))).count();
        assert_eq!(per_path, 7 * 110);
        assert_eq!(ingress, 11);
        assert_eq!(egress, 11);
    }

    #[test]
    fn per_class_volume_conserved() {
        let d = deployment();
        let vol = VolumeModel::internet2_baseline();
        // For each per-path class, unit packet volumes must sum to the
        // network total (complete coverage of T_i).
        for (ci, class) in d.classes.iter().enumerate() {
            if class.scope != ClassScope::PerPath {
                continue;
            }
            let sum: f64 = d.units.iter().filter(|u| u.class == ci).map(|u| u.pkts).sum();
            assert!((sum - vol.pkts).abs() < 1e-3, "{}: {sum} vs {}", class.name, vol.pkts);
        }
        // Same for ingress-scoped classes.
        for (ci, class) in d.classes.iter().enumerate() {
            if class.scope != ClassScope::PerIngress {
                continue;
            }
            let sum: f64 = d.units.iter().filter(|u| u.class == ci).map(|u| u.pkts).sum();
            assert!((sum - vol.pkts).abs() < 1e-3, "{}", class.name);
        }
    }

    #[test]
    fn ingress_units_are_single_node() {
        let d = deployment();
        for u in &d.units {
            match u.key {
                UnitKey::Ingress(n) | UnitKey::Egress(n) => {
                    assert_eq!(u.nodes, vec![n]);
                }
                UnitKey::Path(s, dst) => {
                    assert_eq!(u.nodes.first(), Some(&s));
                    assert_eq!(u.nodes.last(), Some(&dst));
                    assert!(u.nodes.len() >= 2);
                }
            }
        }
    }

    #[test]
    fn items_respect_aggregation_level() {
        let d = deployment();
        let scan_items: f64 =
            d.units.iter().filter(|u| matches!(u.key, UnitKey::Ingress(_))).map(|u| u.items).sum();
        let baseline_items: f64 = d.units.iter().filter(|u| u.class == 0).map(|u| u.items).sum();
        // Per-source tracking has far fewer items than per-connection.
        assert!(scan_items < baseline_items / 10.0);
    }
}
