/root/repo/target/debug/examples/whatif_provisioning-2f0b135d249c14e1.d: examples/whatif_provisioning.rs

/root/repo/target/debug/examples/whatif_provisioning-2f0b135d249c14e1: examples/whatif_provisioning.rs

examples/whatif_provisioning.rs:
