//! Routing-change transitions (paper §5, "Routing changes").
//!
//! When routes change and the optimization is re-run, a node that holds
//! connection state may stop being responsible for (or even stop seeing)
//! those connections. The paper's prescription: "nodes temporarily retain
//! the old responsibilities until existing connections in these
//! assignments expire … each node picks up new assignments immediately but
//! takes on no new connections in the old assignments", transferring state
//! only when the old node is no longer on the new path.
//!
//! [`plan_transition`] compares two compiled deployments and produces the
//! per-unit migration actions plus the transition-period cost: the
//! fraction of hash space whose owner changes (duplicated work while old
//! connections drain) and the set of owners that require explicit state
//! transfer (Sommer/Paxson-style \[34\]) because the new routes bypass them.

use crate::nids::SamplingManifest;
use crate::units::{NidsDeployment, UnitKey};
use nwdp_topo::NodeId;
use std::collections::HashMap;

/// What happens to one coordination unit across a reconfiguration.
#[derive(Debug, Clone)]
pub struct UnitTransition {
    /// Unit index in the *new* deployment.
    pub new_unit: usize,
    pub key: UnitKey,
    /// Fraction of this unit's hash space whose owner changed.
    pub moved_fraction: f64,
    /// Old owners that keep draining connections (still on the new path).
    pub drain_at: Vec<NodeId>,
    /// Old owners that are no longer on the unit's path: their live
    /// connection state must be transferred to a new owner.
    pub transfer_from: Vec<NodeId>,
}

/// A full reconfiguration plan.
#[derive(Debug, Clone)]
pub struct TransitionPlan {
    pub units: Vec<UnitTransition>,
    /// Mean moved fraction over matched units (the expected duplicated
    /// work during the drain period, relative to steady state).
    pub mean_moved_fraction: f64,
    /// Units present only in the new deployment (e.g. new routes).
    pub new_units: usize,
    /// Units that disappeared (their state simply expires).
    pub retired_units: usize,
}

/// Fraction of `[0, 1)` where the owner under `old` differs from the owner
/// under `new`, computed exactly by sweeping the elementary intervals
/// induced by both manifests' segment endpoints (ownership is constant on
/// each). The owner of a point is the first covering node in the unit's
/// eligible-node order (the unique owner at redundancy 1; the same
/// deterministic representative either way at higher redundancy).
fn moved_fraction(
    old: &SamplingManifest,
    old_unit: usize,
    old_nodes: &[NodeId],
    new: &SamplingManifest,
    new_unit: usize,
    new_nodes: &[NodeId],
) -> f64 {
    let mut cuts: Vec<f64> = vec![0.0, 1.0];
    let mut push_cuts = |m: &SamplingManifest, u: usize, nodes: &[NodeId]| {
        for &j in nodes {
            if let Some(ranges) = m.range(u, j) {
                for seg in ranges.segments() {
                    cuts.push(seg.lo.clamp(0.0, 1.0));
                    cuts.push(seg.hi.clamp(0.0, 1.0));
                }
            }
        }
    };
    push_cuts(old, old_unit, old_nodes);
    push_cuts(new, new_unit, new_nodes);
    cuts.sort_by(f64::total_cmp);
    let mut moved = 0.0;
    for w in 0..cuts.len() - 1 {
        let (a, b) = (cuts[w], cuts[w + 1]);
        if b <= a {
            continue;
        }
        let h = 0.5 * (a + b);
        let old_owner = old_nodes.iter().find(|&&n| old.should_analyze(old_unit, n, h));
        let new_owner = new_nodes.iter().find(|&&n| new.should_analyze(new_unit, n, h));
        if old_owner != new_owner {
            moved += b - a;
        }
    }
    moved
}

/// Compare two compiled deployments (same class list, possibly different
/// routing) and plan the transition.
///
/// `_grid` is vestigial: moved fractions are now computed by an exact
/// endpoint sweep rather than grid sampling (the argument is kept so the
/// many existing call sites keep compiling).
pub fn plan_transition(
    old_dep: &NidsDeployment,
    old_manifest: &SamplingManifest,
    new_dep: &NidsDeployment,
    new_manifest: &SamplingManifest,
    _grid: usize,
) -> TransitionPlan {
    assert_eq!(
        old_dep.classes.len(),
        new_dep.classes.len(),
        "transitions assume an unchanged class list"
    );
    let old_index: HashMap<(usize, UnitKey), usize> =
        old_dep.units.iter().enumerate().map(|(u, unit)| ((unit.class, unit.key), u)).collect();

    let mut units = Vec::new();
    let mut matched = 0usize;
    let mut new_units = 0usize;
    let mut moved_total = 0.0;
    for (nu, unit) in new_dep.units.iter().enumerate() {
        let Some(&ou) = old_index.get(&(unit.class, unit.key)) else {
            new_units += 1;
            continue;
        };
        matched += 1;
        let old_unit = &old_dep.units[ou];
        let moved =
            moved_fraction(old_manifest, ou, &old_unit.nodes, new_manifest, nu, &unit.nodes);
        moved_total += moved;
        if moved == 0.0 {
            continue;
        }
        // Old owners with any responsibility: drain in place if still on
        // the new path, otherwise transfer state.
        let mut drain_at = Vec::new();
        let mut transfer_from = Vec::new();
        for &n in &old_unit.nodes {
            if old_manifest.share(ou, n) <= 0.0 {
                continue;
            }
            if unit.nodes.contains(&n) {
                drain_at.push(n);
            } else {
                transfer_from.push(n);
            }
        }
        units.push(UnitTransition {
            new_unit: nu,
            key: unit.key,
            moved_fraction: moved,
            drain_at,
            transfer_from,
        });
    }
    let retired_units = old_dep.units.len() - matched;
    TransitionPlan {
        units,
        mean_moved_fraction: if matched > 0 { moved_total / matched as f64 } else { 0.0 },
        new_units,
        retired_units,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::AnalysisClass;
    use crate::nids::{generate_manifests, solve_nids_lp, NidsLpConfig, NodeCaps};
    use crate::units::build_units;
    use nwdp_topo::{internet2, PathDb, Topology};
    use nwdp_traffic::{TrafficMatrix, VolumeModel};

    fn compile(topo: &Topology) -> (NidsDeployment, SamplingManifest) {
        let paths = PathDb::shortest_paths(topo);
        let tm = TrafficMatrix::gravity(topo);
        let vol = VolumeModel::internet2_baseline();
        let dep = build_units(topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
        let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let a = solve_nids_lp(&dep, &cfg).unwrap();
        let m = generate_manifests(&dep, &a.d);
        (dep, m)
    }

    /// A one-unit deployment over a 3-node line with an explicit split.
    fn line_unit_manifest(
        nodes: &[usize],
        ranges: &[(usize, f64, f64)],
    ) -> (NidsDeployment, SamplingManifest) {
        use crate::nids::ManifestEntry;
        use nwdp_hash::RangeSet;
        let topo = nwdp_topo::line(3);
        let paths = PathDb::shortest_paths(&topo);
        let tm = nwdp_traffic::TrafficMatrix::uniform(&topo);
        let vol = VolumeModel::internet2_baseline();
        let classes = vec![AnalysisClass::standard_set().remove(0)];
        let mut dep = build_units(&topo, &paths, &tm, &vol, &classes);
        dep.units.truncate(1);
        dep.units[0].nodes = nodes.iter().map(|&j| NodeId(j)).collect();
        let entries: Vec<_> = ranges
            .iter()
            .map(|&(j, lo, hi)| {
                (
                    NodeId(j),
                    ManifestEntry {
                        class: dep.units[0].class,
                        unit: 0,
                        key: dep.units[0].key,
                        ranges: RangeSet::interval(lo, hi),
                    },
                )
            })
            .collect();
        let m = SamplingManifest::from_entries(dep.num_nodes, entries);
        (dep, m)
    }

    #[test]
    fn handcrafted_swap_moves_exact_fraction_and_classifies_owners() {
        // Old: node 0 owns [0, 0.25), node 1 owns [0.25, 1).
        let (old_dep, old_man) = line_unit_manifest(&[0, 1, 2], &[(0, 0.0, 0.25), (1, 0.25, 1.0)]);
        // New: node 0 dropped off the path; node 1 owns [0, 0.75),
        // node 2 owns [0.75, 1).
        let (new_dep, new_man) = line_unit_manifest(&[1, 2], &[(1, 0.0, 0.75), (2, 0.75, 1.0)]);
        let plan = plan_transition(&old_dep, &old_man, &new_dep, &new_man, 31);
        assert_eq!(plan.units.len(), 1);
        let t = &plan.units[0];
        // Owner changes exactly on [0, 0.25) (0 → 1) and [0.75, 1) (1 → 2).
        assert!((t.moved_fraction - 0.5).abs() < 1e-12, "moved {}", t.moved_fraction);
        assert!((plan.mean_moved_fraction - 0.5).abs() < 1e-12);
        // Node 1 is still on the new path: it drains in place. Node 0 is
        // not: its live state must be transferred.
        assert_eq!(t.drain_at, vec![NodeId(1)]);
        assert_eq!(t.transfer_from, vec![NodeId(0)]);
    }

    #[test]
    fn moved_fraction_is_a_fraction() {
        // Per-unit and mean moved fractions live in [0, 1] by construction;
        // pin it on a real reroute (the exact sweep must not double-count
        // elementary intervals).
        let topo = internet2();
        let (old_dep, old_man) = compile(&topo);
        let mut rerouted = Topology::new("Internet2-rerouted");
        for n in topo.nodes() {
            rerouted.add_node(topo.node(n).name.clone(), topo.population(n));
        }
        let chi = topo.find("Chicago").unwrap();
        let nyc = topo.find("NewYork").unwrap();
        for l in topo.links() {
            let w = if (l.a == chi && l.b == nyc) || (l.a == nyc && l.b == chi) {
                l.weight * 10.0
            } else {
                l.weight
            };
            rerouted.add_link(l.a, l.b, w);
        }
        let (new_dep, new_man) = compile(&rerouted);
        let plan = plan_transition(&old_dep, &old_man, &new_dep, &new_man, 31);
        for t in &plan.units {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&t.moved_fraction),
                "unit {}: moved {}",
                t.new_unit,
                t.moved_fraction
            );
            // A listed transition really moved something.
            assert!(t.moved_fraction > 0.0);
        }
        assert!((0.0..=1.0).contains(&plan.mean_moved_fraction));
    }

    #[test]
    fn same_assignment_different_manifest_objects_is_all_zero() {
        // The degenerate case at the unit level: byte-identical splits
        // compiled into two distinct manifest objects plan an all-zero
        // transition (no drains, no transfers, nothing moved).
        let (dep, man_a) = line_unit_manifest(&[0, 1], &[(0, 0.0, 0.5), (1, 0.5, 1.0)]);
        let (_, man_b) = line_unit_manifest(&[0, 1], &[(0, 0.0, 0.5), (1, 0.5, 1.0)]);
        let plan = plan_transition(&dep, &man_a, &dep, &man_b, 7);
        assert_eq!(plan.mean_moved_fraction, 0.0);
        assert!(plan.units.is_empty(), "zero-move units are elided from the plan");
        assert_eq!((plan.new_units, plan.retired_units), (0, 0));
    }

    #[test]
    fn identical_deployments_need_no_transition() {
        let topo = internet2();
        let (dep, man) = compile(&topo);
        let plan = plan_transition(&dep, &man, &dep, &man, 31);
        assert_eq!(plan.mean_moved_fraction, 0.0);
        assert!(plan.units.is_empty());
        assert_eq!(plan.new_units, 0);
        assert_eq!(plan.retired_units, 0);
    }

    #[test]
    fn link_weight_change_triggers_bounded_migration() {
        let topo = internet2();
        let (old_dep, old_man) = compile(&topo);
        // Reroute: make the Chicago–NewYork link very expensive, shifting
        // the NYC-bound transit paths south through Washington.
        let mut rerouted = Topology::new("Internet2-rerouted");
        for n in topo.nodes() {
            rerouted.add_node(topo.node(n).name.clone(), topo.population(n));
        }
        let chi = topo.find("Chicago").unwrap();
        let nyc = topo.find("NewYork").unwrap();
        for l in topo.links() {
            let w = if (l.a == chi && l.b == nyc) || (l.a == nyc && l.b == chi) {
                l.weight * 10.0
            } else {
                l.weight
            };
            rerouted.add_link(l.a, l.b, w);
        }
        let (new_dep, new_man) = compile(&rerouted);
        let plan = plan_transition(&old_dep, &old_man, &new_dep, &new_man, 31);
        // Something moved, but most of the network's assignments survive.
        assert!(plan.mean_moved_fraction > 0.0);
        assert!(plan.mean_moved_fraction < 0.9, "{}", plan.mean_moved_fraction);
        assert_eq!(plan.new_units + plan.retired_units, 0, "same unit keys either way");
        // Any old owner dropped from a rerouted path must be flagged for
        // state transfer.
        for t in &plan.units {
            for n in &t.transfer_from {
                let unit = &new_dep.units[t.new_unit];
                assert!(!unit.nodes.contains(n));
            }
        }
    }

    #[test]
    fn capacity_change_moves_work_without_transfers() {
        // Same routing, different capacities: owners shift but every old
        // owner is still on-path, so draining suffices (no transfers).
        let topo = internet2();
        let paths = PathDb::shortest_paths(&topo);
        let tm = TrafficMatrix::gravity(&topo);
        let vol = VolumeModel::internet2_baseline();
        let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
        let cfg1 = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let mut cfg2 = cfg1.clone();
        cfg2.caps[0].cpu *= 4.0;
        cfg2.caps[0].mem *= 4.0;
        let a1 = solve_nids_lp(&dep, &cfg1).unwrap();
        let a2 = solve_nids_lp(&dep, &cfg2).unwrap();
        let m1 = generate_manifests(&dep, &a1.d);
        let m2 = generate_manifests(&dep, &a2.d);
        let plan = plan_transition(&dep, &m1, &dep, &m2, 31);
        for t in &plan.units {
            assert!(t.transfer_from.is_empty(), "same paths ⇒ no transfers: {t:?}");
        }
    }
}
