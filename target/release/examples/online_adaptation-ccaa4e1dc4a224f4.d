/root/repo/target/release/examples/online_adaptation-ccaa4e1dc4a224f4.d: examples/online_adaptation.rs

/root/repo/target/release/examples/online_adaptation-ccaa4e1dc4a224f4: examples/online_adaptation.rs

examples/online_adaptation.rs:
