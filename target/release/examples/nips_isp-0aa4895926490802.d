/root/repo/target/release/examples/nips_isp-0aa4895926490802.d: examples/nips_isp.rs

/root/repo/target/release/examples/nips_isp-0aa4895926490802: examples/nips_isp.rs

examples/nips_isp.rs:
