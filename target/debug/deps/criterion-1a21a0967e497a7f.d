/root/repo/target/debug/deps/criterion-1a21a0967e497a7f.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-1a21a0967e497a7f.rlib: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-1a21a0967e497a7f.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
