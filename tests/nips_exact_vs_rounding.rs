//! On instances small enough for branch-and-bound, compare the rounding
//! pipeline against the *true integer optimum* (not just the LP bound):
//! the greedy variant should recover most of OptNIPS, and never exceed it.

use nwdp::core::nips::{round_best_of, solve_exact, solve_relaxation, RoundingOpts, Strategy};
use nwdp::lp::milp::MilpOpts;
use nwdp::prelude::*;

fn small_instance(seed: u64, cap_frac: f64) -> NipsInstance {
    let topo = nwdp::topo::line(4);
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::uniform(&topo);
    let vol = VolumeModel::internet2_baseline();
    let n_rules = 4;
    let rates = MatchRates::uniform_001(n_rules, paths.all_pairs().count(), seed);
    NipsInstance::evaluation_setup(&topo, &paths, &tm, &vol, n_rules, cap_frac, rates)
}

#[test]
fn rounding_tracks_integer_optimum_on_small_instances() {
    let mut ratios = Vec::new();
    for seed in 1..=4u64 {
        let inst = small_instance(seed, 0.25);
        let (res, decoded) = solve_exact(&inst, &MilpOpts::default());
        assert!(res.proved, "seed {seed}: B&B must prove optimality");
        let (e, d) = decoded.expect("incumbent");
        inst.check_feasible(&e, &d, 1e-6).unwrap();
        let opt_ip = res.incumbent.as_ref().unwrap().objective;

        let relax = solve_relaxation(&inst, &RowGenOpts::default()).unwrap();
        assert!(relax.objective >= opt_ip - 1e-6, "LP must upper-bound IP");

        let sol = round_best_of(
            &inst,
            &relax,
            &RoundingOpts {
                strategy: Strategy::GreedyLpResolve,
                iterations: 8,
                seed,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            sol.objective <= opt_ip * (1.0 + 1e-6),
            "seed {seed}: rounding cannot beat the integer optimum"
        );
        ratios.push(sol.objective / opt_ip);
    }
    let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(mean > 0.85, "greedy rounding should recover most of OptNIPS: ratios {ratios:?}");
}

#[test]
fn milp_bound_sandwiches_everything() {
    let inst = small_instance(9, 0.5);
    let (res, _) = solve_exact(&inst, &MilpOpts::default());
    let relax = solve_relaxation(&inst, &RowGenOpts::default()).unwrap();
    let opt_ip = res.incumbent.as_ref().unwrap().objective;
    // bound (from B&B root) and OptLP both upper-bound OptNIPS.
    assert!(res.bound >= opt_ip - 1e-6);
    assert!(relax.objective >= opt_ip - 1e-6);
}
