/root/repo/target/release/deps/nwdp_bench-44a77789ec7b7e2c.d: crates/bench/src/lib.rs crates/bench/src/extensions.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig5.rs crates/bench/src/fig678.rs crates/bench/src/opttime.rs crates/bench/src/output.rs crates/bench/src/scenario.rs crates/bench/src/selftest.rs

/root/repo/target/release/deps/libnwdp_bench-44a77789ec7b7e2c.rlib: crates/bench/src/lib.rs crates/bench/src/extensions.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig5.rs crates/bench/src/fig678.rs crates/bench/src/opttime.rs crates/bench/src/output.rs crates/bench/src/scenario.rs crates/bench/src/selftest.rs

/root/repo/target/release/deps/libnwdp_bench-44a77789ec7b7e2c.rmeta: crates/bench/src/lib.rs crates/bench/src/extensions.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig5.rs crates/bench/src/fig678.rs crates/bench/src/opttime.rs crates/bench/src/output.rs crates/bench/src/scenario.rs crates/bench/src/selftest.rs

crates/bench/src/lib.rs:
crates/bench/src/extensions.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig678.rs:
crates/bench/src/opttime.rs:
crates/bench/src/output.rs:
crates/bench/src/scenario.rs:
crates/bench/src/selftest.rs:
