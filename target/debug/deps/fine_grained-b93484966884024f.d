/root/repo/target/debug/deps/fine_grained-b93484966884024f.d: crates/engine/tests/fine_grained.rs

/root/repo/target/debug/deps/fine_grained-b93484966884024f: crates/engine/tests/fine_grained.rs

crates/engine/tests/fine_grained.rs:
