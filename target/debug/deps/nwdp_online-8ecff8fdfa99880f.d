/root/repo/target/debug/deps/nwdp_online-8ecff8fdfa99880f.d: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

/root/repo/target/debug/deps/libnwdp_online-8ecff8fdfa99880f.rlib: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

/root/repo/target/debug/deps/libnwdp_online-8ecff8fdfa99880f.rmeta: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

crates/online/src/lib.rs:
crates/online/src/adversary.rs:
crates/online/src/fpl.rs:
