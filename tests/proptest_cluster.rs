//! Workspace property tests for the distributed control plane: over
//! random topologies and random seeded fault plans, a cluster run must be
//! bit-identical across thread counts, every manifest a node ever
//! installs must have passed validation (modulo the declared-unrecoverable
//! units), epoch fencing must hold on every node, and the message
//! accounting must balance.

use nwdp::core::parallel;
use nwdp::prelude::*;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

/// A random small topology: line, ring, or Waxman (connected by
/// construction in `nwdp::topo`).
fn arb_topology() -> impl proptest::strategy::Strategy<Value = Topology> {
    (0usize..3, 4usize..9, 0u64..1000).prop_map(|(kind, n, seed)| match kind {
        0 => nwdp::topo::line(n),
        1 => nwdp::topo::ring(n),
        _ => nwdp::topo::waxman("prop", n, 0.6, 0.5, seed),
    })
}

fn deployment_for(topo: &Topology) -> (NidsDeployment, Vec<NodeCaps>, SamplingManifest) {
    let paths = PathDb::shortest_paths(topo);
    let tm = TrafficMatrix::uniform(topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let assignment = solve_nids_lp(&dep, &cfg).expect("generous caps always solve");
    let manifest = generate_manifests(&dep, &assignment.d);
    (dep, cfg.caps, manifest)
}

/// A random fault plan over `n` nodes: background loss, at most one
/// crash and at most one partition window, all derived from the seed.
fn plan_for(n: usize, drop_p: f64, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::lossy(drop_p, 0.001, 0.004, seed);
    if seed.is_multiple_of(2) {
        let victim = NodeId((seed as usize / 2) % n);
        let at = 0.2 + 0.4 * ((seed % 7) as f64 / 7.0);
        plan.crashes.push((victim, at));
    }
    if seed.is_multiple_of(3) {
        let victim = NodeId((seed as usize / 3) % n);
        plan.partitions.push(Partition { nodes: vec![victim], from: 0.45, until: 0.7 });
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cluster_runs_are_thread_invariant_fenced_and_validated(
        case in (arb_topology(), 0.0f64..0.15, 0u64..10_000)
    ) {
        let (topo, drop_p, seed) = case;
        let (dep, caps, manifest) = deployment_for(&topo);
        let plan = plan_for(dep.num_nodes, drop_p, seed);
        let mut cfg = ClusterConfig::default();
        cfg.health.miss_threshold = 5;

        let run = run_cluster(&dep, &manifest, &caps, &plan, &cfg).expect("valid config");

        // Bit-identical at 1 and 4 threads: same stats, same detections,
        // same epochs, same coverage samples, same delivery-schedule
        // fingerprint.
        let r1 = parallel::with_threads(1, || {
            run_cluster(&dep, &manifest, &caps, &plan, &cfg).expect("valid config")
        });
        let r4 = parallel::with_threads(4, || {
            run_cluster(&dep, &manifest, &caps, &plan, &cfg).expect("valid config")
        });
        prop_assert_eq!(&r1, &r4, "cluster run must not depend on thread count");
        prop_assert_eq!(&r1, &run);

        // Epoch fencing on every node: installed epochs strictly increase,
        // and no node ever runs an epoch the controller never created.
        for (j, installs) in run.node_installs.iter().enumerate() {
            let mut prev = 0u64;
            for &(at, epoch) in installs {
                prop_assert!(epoch > prev, "node {} re-installed epoch {} at {}", j, epoch, at);
                prop_assert!(epoch <= run.final_epoch);
                prev = epoch;
            }
            prop_assert_eq!(run.node_epochs[j], if installs.is_empty() { 1 } else { prev });
        }
        let wire: u64 = run.node_stale_rejects.iter().sum();
        prop_assert_eq!(wire, run.stats.stale_epoch_rejects);

        // Every epoch the controller created passed validation with the
        // then-unrecoverable units exempted. Re-check the final manifest
        // externally: exempt only units all of whose homes were declared
        // at some point (recovered nodes rejoin as spares, so their
        // own-only units legitimately stay residual until a reload).
        if run.final_epoch > 1 {
            let ever: Vec<NodeId> = run.detections.iter().map(|d| d.node).collect();
            let skip: Vec<usize> = (0..dep.units.len())
                .filter(|&u| dep.units[u].nodes.iter().all(|j| ever.contains(j)))
                .collect();
            prop_assert!(validate_manifests_excluding(
                &dep, &run.final_manifest, cfg.redundancy, None, &skip
            ).is_ok(), "final epoch {} fails validation", run.final_epoch);
        }

        // Message accounting balances: everything sent was delivered,
        // dropped by loss, or dropped by a cut link.
        let s = &run.stats;
        prop_assert_eq!(s.sends, s.delivered + s.drops_loss + s.drops_cut);
        // Coverage samples are sane fractions and the floor is attained.
        prop_assert!(run.coverage.iter().all(|&(_, c)| (0.0..=1.0 + 1e-9).contains(&c)));
        let floor = run.coverage_floor();
        prop_assert!(run.coverage.iter().any(|&(_, c)| (c - floor).abs() < 1e-12));

        // Alert forwarding is off by default: its accounting stays zero.
        prop_assert_eq!((s.alert_sends, s.alert_delivered, s.alert_drops), (0, 0, 0));
    }

    /// With alert forwarding enabled, alert-report messages ride the same
    /// lossy transport and their accounting balances exactly — sends ==
    /// delivered + drops — while staying thread-invariant.
    #[test]
    fn alert_forwarding_balances_under_loss(
        case in (arb_topology(), 1u64..4, 0u64..10_000)
    ) {
        let (topo, alert_every, seed) = case;
        let (dep, caps, manifest) = deployment_for(&topo);
        let plan = plan_for(dep.num_nodes, 0.1, seed);
        let mut cfg = ClusterConfig::default();
        cfg.health.miss_threshold = 5;
        cfg.alert_every = alert_every;

        let run = run_cluster(&dep, &manifest, &caps, &plan, &cfg).expect("valid config");
        let s = &run.stats;
        prop_assert!(s.alert_sends > 0, "forwarding on must produce reports");
        prop_assert_eq!(s.alert_sends, s.alert_delivered + s.alert_drops,
            "alert accounting must balance: {:?}", s);
        prop_assert_eq!(s.sends, s.delivered + s.drops_loss + s.drops_cut);
        prop_assert!(s.alerts_forwarded >= s.alert_delivered,
            "every delivered report carries at least one alert");

        let r1 = parallel::with_threads(1, || {
            run_cluster(&dep, &manifest, &caps, &plan, &cfg).expect("valid config")
        });
        let r4 = parallel::with_threads(4, || {
            run_cluster(&dep, &manifest, &caps, &plan, &cfg).expect("valid config")
        });
        prop_assert_eq!(&r1, &r4, "alert forwarding must stay thread-invariant");
        prop_assert_eq!(&r1, &run);
    }
}
