/root/repo/target/debug/deps/nwdp_traffic-88fe626a288fc568.d: crates/traffic/src/lib.rs crates/traffic/src/faults.rs crates/traffic/src/generator.rs crates/traffic/src/matchrate.rs crates/traffic/src/matrix.rs crates/traffic/src/profile.rs crates/traffic/src/session.rs crates/traffic/src/volume.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp_traffic-88fe626a288fc568.rmeta: crates/traffic/src/lib.rs crates/traffic/src/faults.rs crates/traffic/src/generator.rs crates/traffic/src/matchrate.rs crates/traffic/src/matrix.rs crates/traffic/src/profile.rs crates/traffic/src/session.rs crates/traffic/src/volume.rs Cargo.toml

crates/traffic/src/lib.rs:
crates/traffic/src/faults.rs:
crates/traffic/src/generator.rs:
crates/traffic/src/matchrate.rs:
crates/traffic/src/matrix.rs:
crates/traffic/src/profile.rs:
crates/traffic/src/session.rs:
crates/traffic/src/volume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-W__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
