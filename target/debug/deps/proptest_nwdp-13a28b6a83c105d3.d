/root/repo/target/debug/deps/proptest_nwdp-13a28b6a83c105d3.d: tests/proptest_nwdp.rs

/root/repo/target/debug/deps/proptest_nwdp-13a28b6a83c105d3: tests/proptest_nwdp.rs

tests/proptest_nwdp.rs:
