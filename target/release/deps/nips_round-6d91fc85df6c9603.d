/root/repo/target/release/deps/nips_round-6d91fc85df6c9603.d: crates/bench/benches/nips_round.rs

/root/repo/target/release/deps/nips_round-6d91fc85df6c9603: crates/bench/benches/nips_round.rs

crates/bench/benches/nips_round.rs:
