//! Sampling manifests (paper Fig 2) and the per-node coordination check
//! (paper Fig 3).
//!
//! `GENERATE-NIDS-MANIFEST` converts the optimal fractional assignment
//! `d*` into **non-overlapping hash ranges** per coordination unit: walking
//! the unit's nodes in a fixed order, node `j` receives
//! `[Range, Range + d*_ikj)`. Because every node hashes packets with the
//! same keyed function, the ranges partition the hash space and each item
//! is analyzed exactly once network-wide — with zero runtime coordination.
//!
//! With the redundancy extension (§2.5) the covered space is `[0, r)`; the
//! running range wraps around the unit interval, so a node's share can be
//! a two-segment [`RangeSet`]. Since each `d ≤ 1`, a node never wraps onto
//! itself, guaranteeing `r` *distinct* nodes per point.

use crate::units::{NidsDeployment, UnitKey};
use nwdp_hash::RangeSet;
use nwdp_topo::NodeId;
use std::collections::HashMap;

/// One node's responsibility for one coordination unit.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Class index in the deployment.
    pub class: usize,
    /// Unit index in the deployment.
    pub unit: usize,
    pub key: UnitKey,
    pub ranges: RangeSet,
}

/// The network-wide set of sampling manifests.
#[derive(Debug, Clone)]
pub struct SamplingManifest {
    /// Entries grouped per node.
    per_node: Vec<Vec<ManifestEntry>>,
    /// `(unit index, node)` → position in `per_node[node]`.
    index: HashMap<(usize, usize), usize>,
}

/// Fig 2: translate the optimal solution into sampling manifests.
///
/// `d[u]` lists `(node, fraction)` in a fixed node order (the order of
/// `dep.units[u].nodes`; the paper notes the order does not matter as long
/// as it is consistent).
pub fn generate_manifests(dep: &NidsDeployment, d: &[Vec<(NodeId, f64)>]) -> SamplingManifest {
    assert_eq!(d.len(), dep.units.len(), "assignment/unit count mismatch");
    let mut per_node: Vec<Vec<ManifestEntry>> = vec![Vec::new(); dep.num_nodes];
    let mut index = HashMap::new();
    for (u, unit) in dep.units.iter().enumerate() {
        let mut range = 0.0f64;
        for &(j, frac) in &d[u] {
            debug_assert!((0.0..=1.0 + 1e-9).contains(&frac), "fraction {frac} out of range");
            if frac <= 1e-12 {
                continue;
            }
            let ranges = RangeSet::wrapped(range, range + frac);
            range += frac;
            let entry = ManifestEntry { class: unit.class, unit: u, key: unit.key, ranges };
            index.insert((u, j.index()), per_node[j.index()].len());
            per_node[j.index()].push(entry);
        }
    }
    SamplingManifest { per_node, index }
}

/// Seam tolerance for the exact coverage sweep: ~4 ulps of the 2⁻³² hash
/// lattice the engine quantizes to. Endpoints closer than this are one
/// seam; intervals narrower than this carry no representable hash value.
pub const SWEEP_EPS: f64 = 1e-9;

impl SamplingManifest {
    /// Rebuild a manifest from explicit per-node entries (one entry per
    /// `(unit, node)` pair at most). This is how the resilience repair
    /// paths construct manifests: they move *specific hash segments*
    /// between nodes, which the fractional [`generate_manifests`] walk
    /// cannot express.
    pub fn from_entries(
        num_nodes: usize,
        entries: impl IntoIterator<Item = (NodeId, ManifestEntry)>,
    ) -> SamplingManifest {
        let mut per_node: Vec<Vec<ManifestEntry>> = vec![Vec::new(); num_nodes];
        let mut index = HashMap::new();
        for (node, entry) in entries {
            if entry.ranges.is_empty() {
                continue;
            }
            let prev = index.insert((entry.unit, node.index()), per_node[node.index()].len());
            assert!(prev.is_none(), "duplicate manifest entry for unit {} at {node:?}", entry.unit);
            per_node[node.index()].push(entry);
        }
        SamplingManifest { per_node, index }
    }

    /// All of `node`'s responsibilities.
    pub fn node_entries(&self, node: NodeId) -> &[ManifestEntry] {
        &self.per_node[node.index()]
    }

    /// Number of nodes the manifest was compiled for.
    pub fn num_nodes(&self) -> usize {
        self.per_node.len()
    }

    /// The hash range `HashRange(i, k, j)` for unit `u` at `node`, if any.
    pub fn range(&self, unit: usize, node: NodeId) -> Option<&RangeSet> {
        self.index.get(&(unit, node.index())).map(|&pos| &self.per_node[node.index()][pos].ranges)
    }

    /// Fig 3 line 5: should `node` run the unit's class on a packet whose
    /// coordination hash is `h ∈ [0, 1)`?
    pub fn should_analyze(&self, unit: usize, node: NodeId, h: f64) -> bool {
        self.range(unit, node).is_some_and(|r| r.contains(h))
    }

    /// Fraction of the unit's hash space assigned to `node`.
    pub fn share(&self, unit: usize, node: NodeId) -> f64 {
        self.range(unit, node).map_or(0.0, |r| r.measure())
    }

    /// Verify the manifest invariants for every unit:
    /// 1. the ranges of distinct nodes are disjoint within each unit
    ///    (multiplicity never exceeds the redundancy level), and
    /// 2. every point of the hash space is covered exactly `r` times by
    ///    `r` distinct nodes.
    ///
    /// Thin wrapper over [`verify_coverage_exact`]: historically this
    /// probed a midpoint grid of `grid` points, which could miss gaps or
    /// overlaps narrower than a grid cell; the check is now an exact
    /// interval sweep and the `grid` argument is ignored (kept for API
    /// compatibility).
    ///
    /// [`verify_coverage_exact`]: SamplingManifest::verify_coverage_exact
    pub fn verify_coverage(&self, dep: &NidsDeployment, _grid: usize) -> (usize, usize) {
        self.verify_coverage_exact(dep)
    }

    /// Exact coverage check: for every unit, sweep the *elementary
    /// intervals* induced by the segment endpoints of all of the unit's
    /// node ranges. Coverage multiplicity is constant on each elementary
    /// interval, so probing one interior point per interval is exact — no
    /// gap or overlap can hide between probe points, unlike the old grid
    /// sampling. Endpoints within [`SWEEP_EPS`] collapse into one seam
    /// (FP drift from the running-range walk in [`generate_manifests`]
    /// lives below the hash lattice and is not a real gap).
    ///
    /// Returns the coverage multiplicity (min, max) over all units.
    pub fn verify_coverage_exact(&self, dep: &NidsDeployment) -> (usize, usize) {
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for u in 0..dep.units.len() {
            let (ulo, uhi) = self.unit_coverage_exact(dep, u);
            lo = lo.min(ulo);
            hi = hi.max(uhi);
        }
        (lo, hi)
    }

    /// The exact-sweep coverage multiplicity (min, max) of one unit. The
    /// resilience layer uses this to verify repaired units individually
    /// while failed single-node units are accounted as shed rather than
    /// flagged as gaps.
    pub fn unit_coverage_exact(&self, dep: &NidsDeployment, u: usize) -> (usize, usize) {
        let unit = &dep.units[u];
        let mut cuts: Vec<f64> = vec![0.0, 1.0];
        for &j in &unit.nodes {
            if let Some(ranges) = self.range(u, j) {
                for seg in ranges.segments() {
                    cuts.push(seg.lo.clamp(0.0, 1.0));
                    cuts.push(seg.hi.clamp(0.0, 1.0));
                }
            }
        }
        cuts.sort_by(f64::total_cmp);
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for w in 0..cuts.len() - 1 {
            let (a, b) = (cuts[w], cuts[w + 1]);
            if b - a <= SWEEP_EPS {
                continue; // sub-lattice sliver: no representable hash
            }
            let h = 0.5 * (a + b);
            let covers = unit.nodes.iter().filter(|&&j| self.should_analyze(u, j, h)).count();
            lo = lo.min(covers);
            hi = hi.max(covers);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::AnalysisClass;
    use crate::nids::lp::{solve_nids_lp, NidsLpConfig, NodeCaps};
    use crate::units::{build_units, NidsDeployment};
    use nwdp_topo::{internet2, PathDb};
    use nwdp_traffic::{TrafficMatrix, VolumeModel};

    fn dep() -> NidsDeployment {
        let t = internet2();
        let paths = PathDb::shortest_paths(&t);
        let tm = TrafficMatrix::gravity(&t);
        let vol = VolumeModel::internet2_baseline();
        build_units(&t, &paths, &tm, &vol, &AnalysisClass::standard_set())
    }

    #[test]
    fn optimal_assignment_yields_exact_single_coverage() {
        let d = dep();
        let cfg = NidsLpConfig::homogeneous(d.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let a = solve_nids_lp(&d, &cfg).unwrap();
        let m = generate_manifests(&d, &a.d);
        let (lo, hi) = m.verify_coverage(&d, 101);
        assert_eq!((lo, hi), (1, 1), "every hash point covered exactly once");
    }

    #[test]
    fn shares_match_fractions() {
        let d = dep();
        let cfg = NidsLpConfig::homogeneous(d.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let a = solve_nids_lp(&d, &cfg).unwrap();
        let m = generate_manifests(&d, &a.d);
        for (u, fr) in a.d.iter().enumerate() {
            for &(j, f) in fr {
                assert!(
                    (m.share(u, j) - f).abs() < 1e-9,
                    "unit {u} node {j:?}: share {} vs fraction {f}",
                    m.share(u, j)
                );
            }
        }
    }

    #[test]
    fn redundancy_two_covers_twice_distinctly() {
        let d0 = dep();
        let d2 = NidsDeployment {
            classes: d0.classes.clone(),
            units: d0.units.iter().filter(|u| u.nodes.len() >= 2).cloned().collect(),
            num_nodes: d0.num_nodes,
        };
        let mut cfg = NidsLpConfig::homogeneous(d2.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        cfg.redundancy = 2.0;
        let a = solve_nids_lp(&d2, &cfg).unwrap();
        let m = generate_manifests(&d2, &a.d);
        let (lo, hi) = m.verify_coverage(&d2, 101);
        assert_eq!((lo, hi), (2, 2), "every point covered exactly twice");
    }

    /// One-unit deployment over the first `n` nodes of a line topology,
    /// with explicit per-node range sets.
    fn manifest_of(ranges: Vec<RangeSet>) -> (NidsDeployment, SamplingManifest) {
        let d0 = dep();
        let mut d = d0.clone();
        d.units.truncate(1);
        d.units[0].nodes = (0..ranges.len()).map(NodeId).collect();
        let entries = ranges.into_iter().enumerate().map(|(j, r)| {
            (
                NodeId(j),
                ManifestEntry { class: d.units[0].class, unit: 0, key: d.units[0].key, ranges: r },
            )
        });
        let m = SamplingManifest::from_entries(d.num_nodes, entries);
        (d, m)
    }

    #[test]
    fn exact_sweep_catches_sub_grid_gap() {
        // A gap of width 2e-4 straddling no midpoint of a 101-point grid:
        // the old grid check reported (1, 1); the exact sweep must not.
        let (d, m) =
            manifest_of(vec![RangeSet::interval(0.0, 0.49505), RangeSet::interval(0.49525, 1.0)]);
        let mut grid_lo = usize::MAX;
        for g in 0..101 {
            let h = (g as f64 + 0.5) / 101.0;
            let covers = (0..2).filter(|&j| m.should_analyze(0, NodeId(j), h)).count();
            grid_lo = grid_lo.min(covers);
        }
        assert_eq!(grid_lo, 1, "the grid probe misses the gap");
        assert_eq!(m.verify_coverage_exact(&d), (0, 1), "the sweep finds it");
    }

    #[test]
    fn exact_sweep_catches_sub_grid_overlap() {
        let (d, m) =
            manifest_of(vec![RangeSet::interval(0.0, 0.49535), RangeSet::interval(0.49515, 1.0)]);
        assert_eq!(m.verify_coverage_exact(&d), (1, 2));
    }

    #[test]
    fn exact_sweep_tolerates_sub_lattice_drift() {
        // Endpoints 3e-10 apart (under the 2^-32 hash lattice) are one
        // seam, not a gap.
        let (d, m) =
            manifest_of(vec![RangeSet::interval(0.0, 0.5), RangeSet::interval(0.5 + 3e-10, 1.0)]);
        assert_eq!(m.verify_coverage_exact(&d), (1, 1));
    }

    #[test]
    fn from_entries_round_trips_generated_manifest() {
        let d = dep();
        let cfg = NidsLpConfig::homogeneous(d.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let a = solve_nids_lp(&d, &cfg).unwrap();
        let m = generate_manifests(&d, &a.d);
        let entries = (0..d.num_nodes)
            .flat_map(|j| m.node_entries(NodeId(j)).iter().cloned().map(move |e| (NodeId(j), e)));
        let rebuilt = SamplingManifest::from_entries(d.num_nodes, entries.collect::<Vec<_>>());
        assert_eq!(rebuilt.verify_coverage_exact(&d), (1, 1));
        for (u, _) in d.units.iter().enumerate() {
            for j in 0..d.num_nodes {
                assert_eq!(m.range(u, NodeId(j)), rebuilt.range(u, NodeId(j)));
            }
        }
    }

    #[test]
    fn hand_built_assignment_manifest() {
        // A unit split 0.25 / 0.75 across two nodes.
        let d0 = dep();
        let mut d: Vec<Vec<(NodeId, f64)>> = d0
            .units
            .iter()
            .map(|u| {
                let mut v: Vec<(NodeId, f64)> = u.nodes.iter().map(|&n| (n, 0.0)).collect();
                if v.len() >= 2 {
                    v[0].1 = 0.25;
                    v[1].1 = 0.75;
                } else {
                    v[0].1 = 1.0;
                }
                v
            })
            .collect();
        // Perturb one unit to check `share` on zero-fraction nodes.
        d[0][0].1 = 0.25;
        let m = generate_manifests(&d0, &d);
        let u0 = &d0.units[0];
        assert!((m.share(0, u0.nodes[0]) - 0.25).abs() < 1e-12);
        assert!((m.share(0, u0.nodes[1]) - 0.75).abs() < 1e-12);
        if u0.nodes.len() > 2 {
            assert_eq!(m.share(0, u0.nodes[2]), 0.0);
            assert!(m.range(0, u0.nodes[2]).is_none());
        }
        // Boundary semantics: 0.25 belongs to the second node.
        assert!(m.should_analyze(0, u0.nodes[0], 0.2499));
        assert!(!m.should_analyze(0, u0.nodes[0], 0.25));
        assert!(m.should_analyze(0, u0.nodes[1], 0.25));
    }
}
