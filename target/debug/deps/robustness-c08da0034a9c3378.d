/root/repo/target/debug/deps/robustness-c08da0034a9c3378.d: crates/engine/tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-c08da0034a9c3378.rmeta: crates/engine/tests/robustness.rs Cargo.toml

crates/engine/tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
