/root/repo/target/debug/deps/nwdp_engine-fb52030e1c9ddf88.d: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp_engine-fb52030e1c9ddf88.rmeta: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/ac.rs:
crates/engine/src/conn.rs:
crates/engine/src/cost.rs:
crates/engine/src/engine.rs:
crates/engine/src/modules.rs:
crates/engine/src/netwide.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-W__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
