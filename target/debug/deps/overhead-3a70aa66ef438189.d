/root/repo/target/debug/deps/overhead-3a70aa66ef438189.d: crates/engine/tests/overhead.rs

/root/repo/target/debug/deps/overhead-3a70aa66ef438189: crates/engine/tests/overhead.rs

crates/engine/tests/overhead.rs:
