//! Network-wide trace generation.
//!
//! Reproduces the paper's custom traffic generator (§2.4): given a
//! topology, a traffic matrix, a routing policy, and a traffic profile, it
//! emits a network-wide session trace. Anomalous activity (scans, SYN
//! floods, Blaster propagation, signature-carrying payloads) is injected at
//! configurable rates so that the corresponding NIDS modules have something
//! to detect.
//!
//! Addressing scheme: node `i` owns the prefix `10.i.0.0/16`; hosts are
//! `10.i.h.x` with `h, x` drawn from a small per-node pool. The ingress of
//! a packet is recoverable from its source address via [`node_of_ip`] —
//! this plays the role of the paper's "configuration files that map IP
//! prefixes to their ingress locations".

use crate::matrix::TrafficMatrix;
use crate::profile::TrafficProfile;
use crate::session::{Session, SessionKind};
use nwdp_hash::FiveTuple;
use nwdp_topo::{NodeId, PathDb, Topology};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// Anomaly injection rates.
#[derive(Debug, Clone)]
pub struct AnomalyConfig {
    /// Fraction of sessions that are scan probes (grouped into bursts from
    /// a small set of scanner hosts).
    pub scan_fraction: f64,
    /// Distinct destinations probed per scanner burst.
    pub scan_fanout: usize,
    /// Fraction of sessions that are SYN-flood packets (aimed at one
    /// victim per source node).
    pub synflood_fraction: f64,
    /// Fraction of sessions that are Blaster propagation attempts.
    pub blaster_fraction: f64,
    /// Fraction of benign sessions that carry the generic malware
    /// signature in their payload.
    pub infected_fraction: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            scan_fraction: 0.03,
            scan_fanout: 24,
            synflood_fraction: 0.02,
            blaster_fraction: 0.01,
            infected_fraction: 0.01,
        }
    }
}

impl AnomalyConfig {
    /// No injected anomalies (pure benign workload).
    pub fn none() -> Self {
        AnomalyConfig {
            scan_fraction: 0.0,
            scan_fanout: 0,
            synflood_fraction: 0.0,
            blaster_fraction: 0.0,
            infected_fraction: 0.0,
        }
    }
}

/// Trace generation parameters.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    pub sessions: usize,
    pub profile: TrafficProfile,
    pub anomalies: AnomalyConfig,
    pub seed: u64,
    /// Application exchanges per benign session (request/response rounds).
    pub exchanges: u8,
    /// Host pool size per node (distinct addresses).
    pub hosts_per_node: u16,
}

impl TraceConfig {
    pub fn new(sessions: usize, seed: u64) -> Self {
        TraceConfig {
            sessions,
            profile: TrafficProfile::mixed(),
            anomalies: AnomalyConfig::default(),
            seed,
            exchanges: 2,
            hosts_per_node: 200,
        }
    }
}

/// A generated network-wide trace.
#[derive(Debug, Clone)]
pub struct NetTrace {
    pub sessions: Vec<Session>,
}

/// Node that owns address `ip` under the `10.i.0.0/16` scheme.
pub fn node_of_ip(ip: u32) -> NodeId {
    NodeId(((ip >> 16) & 0xff) as usize)
}

/// Address of host `h` at node `node`.
pub fn host_ip(node: NodeId, h: u16) -> u32 {
    assert!(node.index() < 256, "addressing scheme supports up to 256 nodes");
    (10u32 << 24) | ((node.index() as u32) << 16) | h as u32
}

/// Generate a network-wide session trace.
///
/// This is a materialized [`SessionStream`]: the batch trace and the
/// streaming data plane share one generator implementation, so they can
/// never drift apart.
pub fn generate_trace(topo: &Topology, tm: &TrafficMatrix, cfg: &TraceConfig) -> NetTrace {
    NetTrace { sessions: SessionStream::new(topo, tm, cfg).collect() }
}

/// Pull-based session stream: yields exactly the sessions of
/// [`generate_trace`] — same seed discipline, same RNG consumption order,
/// same sequential ids — one at a time, without materializing a
/// [`NetTrace`].
///
/// Scan bursts are drawn in one RNG step and buffered internally, capped
/// at the remaining session budget, so the stream yields exactly
/// `cfg.sessions` sessions with ids `0..cfg.sessions` and no trailing
/// truncation is needed.
pub struct SessionStream {
    cfg: TraceConfig,
    rng: StdRng,
    n: usize,
    // Cumulative distribution over ordered (s, d) pairs.
    pairs: Vec<(NodeId, NodeId)>,
    cum: Vec<f64>,
    acc: f64,
    /// Sessions drawn but not yet yielded (tail of a scan burst).
    pending: VecDeque<Session>,
    /// Sessions drawn so far (yielded + pending); doubles as the next id.
    generated: usize,
}

impl SessionStream {
    pub fn new(topo: &Topology, tm: &TrafficMatrix, cfg: &TraceConfig) -> Self {
        let n = topo.num_nodes();
        assert!(n >= 2, "need at least two nodes");
        assert_eq!(tm.num_nodes(), n, "traffic matrix size mismatch");
        let mut pairs = Vec::with_capacity(n * (n - 1));
        let mut cum = Vec::with_capacity(n * (n - 1));
        let mut acc = 0.0;
        for s in topo.nodes() {
            for d in topo.nodes() {
                if s != d {
                    acc += tm.frac(s, d);
                    pairs.push((s, d));
                    cum.push(acc);
                }
            }
        }
        SessionStream {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg: cfg.clone(),
            n,
            pairs,
            cum,
            acc,
            pending: VecDeque::new(),
            generated: 0,
        }
    }

    fn sample_pair(&mut self) -> (NodeId, NodeId) {
        let u: f64 = self.rng.random_range(0.0..self.acc);
        let idx = self.cum.partition_point(|&c| c < u).min(self.pairs.len() - 1);
        self.pairs[idx]
    }

    fn mk_tuple(&mut self, s: NodeId, d: NodeId, kind: &SessionKind) -> FiveTuple {
        let app = kind.app();
        FiveTuple::new(
            host_ip(s, self.rng.random_range(1..self.cfg.hosts_per_node)),
            host_ip(d, self.rng.random_range(1..self.cfg.hosts_per_node)),
            self.rng.random_range(1024..65000),
            app.server_port(),
            app.ip_proto(),
        )
    }

    fn push(&mut self, tuple: FiveTuple, kind: SessionKind, s: NodeId, d: NodeId, exchanges: u8) {
        let id = self.generated as u64;
        self.pending.push_back(Session { id, tuple, kind, src_node: s, dst_node: d, exchanges });
        self.generated += 1;
    }

    /// One draw of the generator's main loop: appends one session — or one
    /// scan burst — to `pending`. Callers guarantee `generated <
    /// cfg.sessions`, so at least one session is always appended.
    fn refill(&mut self) {
        let a = self.cfg.anomalies.clone();
        let u: f64 = self.rng.random_range(0.0..1.0);
        if u < a.scan_fraction && a.scan_fanout > 0 {
            // A burst of probes from one scanner towards many hosts spread
            // over the network (same source node per burst).
            let (s, _) = self.sample_pair();
            let scanner = host_ip(s, self.rng.random_range(1..self.cfg.hosts_per_node));
            let burst = a.scan_fanout.min(self.cfg.sessions - self.generated);
            for _ in 0..burst {
                let d = loop {
                    let c = NodeId(self.rng.random_range(0..self.n));
                    if c != s {
                        break c;
                    }
                };
                let tuple = FiveTuple::new(
                    scanner,
                    host_ip(d, self.rng.random_range(1..self.cfg.hosts_per_node)),
                    self.rng.random_range(1024..65000),
                    self.rng.random_range(1..1024), // scans sweep low ports
                    6,
                );
                self.push(tuple, SessionKind::ScanProbe, s, d, 0);
            }
        } else if u < a.scan_fraction + a.synflood_fraction {
            let (s, d) = self.sample_pair();
            let kind = SessionKind::SynFloodPkt;
            // Flood: fixed victim per destination node, random spoofed srcs.
            let tuple = FiveTuple::new(
                host_ip(s, self.rng.random_range(1..self.cfg.hosts_per_node)),
                host_ip(d, 1), // the victim
                self.rng.random_range(1024..65000),
                kind.app().server_port(),
                6,
            );
            self.push(tuple, kind, s, d, 0);
        } else if u < a.scan_fraction + a.synflood_fraction + a.blaster_fraction {
            let (s, d) = self.sample_pair();
            let kind = SessionKind::Blaster;
            let tuple = self.mk_tuple(s, d, &kind);
            self.push(tuple, kind, s, d, 1);
        } else {
            let (s, d) = self.sample_pair();
            let app = self.cfg.profile.sample(&mut self.rng);
            let kind = if self.rng.random_range(0.0..1.0) < a.infected_fraction {
                SessionKind::InfectedPayload(app)
            } else {
                SessionKind::Normal(app)
            };
            let tuple = self.mk_tuple(s, d, &kind);
            let exchanges = 1 + self.rng.random_range(0..=self.cfg.exchanges.max(1));
            self.push(tuple, kind, s, d, exchanges);
        }
    }
}

impl Iterator for SessionStream {
    type Item = Session;

    fn next(&mut self) -> Option<Session> {
        while self.pending.is_empty() {
            if self.generated >= self.cfg.sessions {
                return None;
            }
            self.refill();
        }
        self.pending.pop_front()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.cfg.sessions - (self.generated - self.pending.len());
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SessionStream {}

impl NetTrace {
    /// Sessions observable at `node` in an **edge-only** deployment: those
    /// originating or terminating at the node.
    pub fn edge_sessions(&self, node: NodeId) -> impl Iterator<Item = &Session> {
        self.sessions.iter().filter(move |s| s.src_node == node || s.dst_node == node)
    }

    /// Sessions observable at `node` in a **network-wide** deployment:
    /// everything whose forwarding path traverses the node (includes
    /// transit traffic).
    pub fn onpath_sessions<'a>(
        &'a self,
        paths: &'a PathDb,
        node: NodeId,
    ) -> impl Iterator<Item = &'a Session> {
        self.sessions
            .iter()
            .filter(move |s| paths.path(s.src_node, s.dst_node).position(node).is_some())
    }

    pub fn total_packets(&self) -> usize {
        self.sessions.iter().map(|s| s.packet_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwdp_topo::internet2;

    fn trace(n_sessions: usize, seed: u64) -> (nwdp_topo::Topology, NetTrace) {
        let t = internet2();
        let tm = TrafficMatrix::gravity(&t);
        let tr = generate_trace(&t, &tm, &TraceConfig::new(n_sessions, seed));
        (t, tr)
    }

    #[test]
    fn deterministic() {
        let (_, a) = trace(500, 9);
        let (_, b) = trace(500, 9);
        assert_eq!(a.sessions.len(), b.sessions.len());
        for (x, y) in a.sessions.iter().zip(&b.sessions) {
            assert_eq!(x.tuple, y.tuple);
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn session_count_exact() {
        let (_, tr) = trace(1234, 4);
        assert_eq!(tr.sessions.len(), 1234);
    }

    #[test]
    fn addressing_scheme_round_trips() {
        let (_, tr) = trace(300, 5);
        for s in &tr.sessions {
            assert_eq!(node_of_ip(s.tuple.src_ip), s.src_node);
            assert_eq!(node_of_ip(s.tuple.dst_ip), s.dst_node);
        }
    }

    #[test]
    fn anomaly_rates_roughly_respected() {
        let (_, tr) = trace(30_000, 6);
        let scans = tr.sessions.iter().filter(|s| s.kind == SessionKind::ScanProbe).count();
        let floods = tr.sessions.iter().filter(|s| s.kind == SessionKind::SynFloodPkt).count();
        let frac_scan = scans as f64 / 30_000.0;
        let frac_flood = floods as f64 / 30_000.0;
        // scan_fraction picks a *burst* of ~24 probes per hit: expected
        // scan share is large; just check both anomalies exist and floods
        // are near their 2% configuration.
        assert!(frac_scan > 0.05, "scan share {frac_scan}");
        assert!((frac_flood - 0.02).abs() < 0.015, "flood share {frac_flood}");
    }

    #[test]
    fn no_anomalies_when_disabled() {
        let t = internet2();
        let tm = TrafficMatrix::gravity(&t);
        let mut cfg = TraceConfig::new(2000, 7);
        cfg.anomalies = AnomalyConfig::none();
        let tr = generate_trace(&t, &tm, &cfg);
        assert!(tr.sessions.iter().all(|s| matches!(s.kind, SessionKind::Normal(_))));
    }

    #[test]
    fn gravity_skews_toward_new_york() {
        let (t, tr) = trace(20_000, 8);
        let nyc = t.find("NewYork").unwrap();
        let kc = t.find("KansasCity").unwrap();
        let at_nyc = tr.edge_sessions(nyc).count();
        let at_kc = tr.edge_sessions(kc).count();
        assert!(at_nyc > 2 * at_kc, "NYC {at_nyc} vs KC {at_kc}");
    }

    #[test]
    fn stream_yields_exact_count_with_sequential_ids() {
        let t = internet2();
        let tm = TrafficMatrix::gravity(&t);
        let cfg = TraceConfig::new(1234, 4);
        let stream = SessionStream::new(&t, &tm, &cfg);
        assert_eq!(stream.len(), 1234);
        let sessions: Vec<Session> = stream.collect();
        assert_eq!(sessions.len(), 1234);
        for (i, s) in sessions.iter().enumerate() {
            assert_eq!(s.id, i as u64);
        }
    }

    #[test]
    fn stream_size_hint_stays_exact_while_draining() {
        let t = internet2();
        let tm = TrafficMatrix::gravity(&t);
        // All-scan config so bursts fill the pending buffer.
        let mut cfg = TraceConfig::new(50, 2);
        cfg.anomalies.scan_fraction = 1.0;
        let mut stream = SessionStream::new(&t, &tm, &cfg);
        for remaining in (0..50usize).rev() {
            assert!(stream.next().is_some());
            assert_eq!(stream.size_hint(), (remaining, Some(remaining)));
        }
        assert!(stream.next().is_none());
    }

    #[test]
    fn stream_caps_final_scan_burst_at_session_budget() {
        let t = internet2();
        let tm = TrafficMatrix::gravity(&t);
        // fanout 24 > 10 sessions: the one burst must be cut at 10, exactly
        // like the batch generator's `min(fanout, remaining)`.
        let mut cfg = TraceConfig::new(10, 3);
        cfg.anomalies.scan_fraction = 1.0;
        let sessions: Vec<Session> = SessionStream::new(&t, &tm, &cfg).collect();
        assert_eq!(sessions.len(), 10);
        assert!(sessions.iter().all(|s| s.kind == SessionKind::ScanProbe));
        let batch = generate_trace(&t, &tm, &cfg);
        assert_eq!(batch.sessions.len(), 10);
        for (a, b) in sessions.iter().zip(&batch.sessions) {
            assert_eq!(a.tuple, b.tuple);
        }
    }

    #[test]
    fn onpath_superset_of_edge() {
        let (t, tr) = trace(3000, 11);
        let db = PathDb::shortest_paths(&t);
        for node in t.nodes() {
            let edge = tr.edge_sessions(node).count();
            let onpath = tr.onpath_sessions(&db, node).count();
            assert!(onpath >= edge, "node {node:?}");
        }
    }
}
