/root/repo/target/debug/deps/nips_round-8e09d15c2adb97d8.d: crates/bench/benches/nips_round.rs Cargo.toml

/root/repo/target/debug/deps/libnips_round-8e09d15c2adb97d8.rmeta: crates/bench/benches/nips_round.rs Cargo.toml

crates/bench/benches/nips_round.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
