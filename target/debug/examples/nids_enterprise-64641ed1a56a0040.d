/root/repo/target/debug/examples/nids_enterprise-64641ed1a56a0040.d: examples/nids_enterprise.rs Cargo.toml

/root/repo/target/debug/examples/libnids_enterprise-64641ed1a56a0040.rmeta: examples/nids_enterprise.rs Cargo.toml

examples/nids_enterprise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
