//! What-if provisioning (paper §5): where should an administrator add
//! hardware? Re-solves the deployment optimizations with per-node upgrades
//! and ranks the sites by marginal benefit — for NIDS capacity (CPU+memory
//! doubling) and NIPS TCAM slots.
//!
//! Run with: `cargo run --release --example whatif_provisioning`

use nwdp::core::provision::{nids_upgrade_plan, nips_tcam_plan};
use nwdp::prelude::*;

fn main() {
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();

    // --- NIDS: which site should get 2x hardware? ---
    let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let plan = nids_upgrade_plan(&dep, &cfg, 2.0).expect("LP solves");
    println!("NIDS: baseline bottleneck load = {:.1}% of capacity", plan.base_max_load * 100.0);
    println!("marginal benefit of doubling one site's hardware:");
    let mut ranked: Vec<(usize, f64)> = plan.gain.iter().cloned().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (j, g) in ranked.iter().take(5) {
        println!("  {:>14}: bottleneck −{:.2} pp", topo.node(NodeId(*j)).name, g * 100.0);
    }
    println!("→ upgrade {} first\n", topo.node(NodeId(plan.best_node)).name);

    // --- NIPS: where do extra TCAM slots buy the most drop capacity? ---
    let n_rules = 25;
    let rates = MatchRates::uniform_001(n_rules, paths.all_pairs().count(), 11);
    let inst = NipsInstance::evaluation_setup(&topo, &paths, &tm, &vol, n_rules, 0.12, rates);
    let opts = RowGenOpts::default();
    let relax = solve_relaxation(&inst, &opts).expect("relaxation solves");
    let tplan = nips_tcam_plan(&inst, &relax, 2.0, &opts);
    println!("NIPS: baseline OptLP = {:.3e}", tplan.base_objective);
    println!("marginal benefit of +2 TCAM slots per site:");
    let mut ranked: Vec<(usize, f64)> = tplan.gain.iter().cloned().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (j, g) in ranked.iter().take(5) {
        println!(
            "  {:>14}: +{:.2}% drop footprint",
            topo.node(NodeId(*j)).name,
            100.0 * g / tplan.base_objective
        );
    }
    println!("→ add TCAM at {} first", topo.node(NodeId(tplan.best_node)).name);
}
