/root/repo/target/debug/deps/fine_grained-432fb054d42bde08.d: crates/engine/tests/fine_grained.rs

/root/repo/target/debug/deps/fine_grained-432fb054d42bde08: crates/engine/tests/fine_grained.rs

crates/engine/tests/fine_grained.rs:
