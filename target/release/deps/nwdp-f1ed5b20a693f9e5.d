/root/repo/target/release/deps/nwdp-f1ed5b20a693f9e5.d: src/lib.rs

/root/repo/target/release/deps/libnwdp-f1ed5b20a693f9e5.rlib: src/lib.rs

/root/repo/target/release/deps/libnwdp-f1ed5b20a693f9e5.rmeta: src/lib.rs

src/lib.rs:
