/root/repo/target/debug/examples/routing_change-b8e6133cb8970cdb.d: examples/routing_change.rs Cargo.toml

/root/repo/target/debug/examples/librouting_change-b8e6133cb8970cdb.rmeta: examples/routing_change.rs Cargo.toml

examples/routing_change.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
