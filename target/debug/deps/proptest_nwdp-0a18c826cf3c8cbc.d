/root/repo/target/debug/deps/proptest_nwdp-0a18c826cf3c8cbc.d: tests/proptest_nwdp.rs

/root/repo/target/debug/deps/proptest_nwdp-0a18c826cf3c8cbc: tests/proptest_nwdp.rs

tests/proptest_nwdp.rs:
