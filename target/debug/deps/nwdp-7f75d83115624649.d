/root/repo/target/debug/deps/nwdp-7f75d83115624649.d: src/lib.rs

/root/repo/target/debug/deps/nwdp-7f75d83115624649: src/lib.rs

src/lib.rs:
