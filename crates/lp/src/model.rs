//! Linear/mixed-integer program model builder.
//!
//! A [`Problem`] is built incrementally: declare variables with bounds and
//! objective coefficients, then add linear constraints. The builder stores
//! the constraint matrix column-wise and sparse, which is what the revised
//! simplex needs.

use std::fmt;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    Min,
    Max,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Le,
    Ge,
    Eq,
}

/// Handle to a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

/// Handle to a constraint (row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConId(pub(crate) usize);

impl VarId {
    /// Positional index of this variable in [`crate::Solution::x`].
    pub fn index(&self) -> usize {
        self.0
    }
}

impl ConId {
    /// Positional index of this constraint (row order of addition).
    pub fn index(&self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
    pub integer: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub name: String,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A linear (or, with integer-marked variables, mixed-integer) program.
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) cons: Vec<Constraint>,
    /// Column-wise sparse matrix: `cols[j]` lists `(row, coefficient)`.
    pub(crate) cols: Vec<Vec<(usize, f64)>>,
}

impl Problem {
    pub fn new(sense: Sense) -> Self {
        Problem { sense, vars: Vec::new(), cons: Vec::new(), cols: Vec::new() }
    }

    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Add a continuous variable with bounds `[lb, ub]` (either may be
    /// infinite) and objective coefficient `obj`.
    pub fn add_var(&mut self, name: impl Into<String>, lb: f64, ub: f64, obj: f64) -> VarId {
        assert!(!lb.is_nan() && !ub.is_nan() && !obj.is_nan(), "NaN in variable definition");
        assert!(lb <= ub, "variable lower bound exceeds upper bound: {lb} > {ub}");
        self.vars.push(Variable { name: name.into(), lb, ub, obj, integer: false });
        self.cols.push(Vec::new());
        VarId(self.vars.len() - 1)
    }

    /// Add a variable restricted to integer values (makes the problem a MIP;
    /// solve it with [`crate::milp::BranchAndBound`]).
    pub fn add_int_var(&mut self, name: impl Into<String>, lb: f64, ub: f64, obj: f64) -> VarId {
        let v = self.add_var(name, lb, ub, obj);
        self.vars[v.0].integer = true;
        v
    }

    /// Add a binary (0/1 integer) variable.
    pub fn add_bin_var(&mut self, name: impl Into<String>, obj: f64) -> VarId {
        self.add_int_var(name, 0.0, 1.0, obj)
    }

    /// Handle for the `index`-th variable (in order of addition).
    pub fn var_id(&self, index: usize) -> VarId {
        assert!(index < self.vars.len(), "variable index out of range");
        VarId(index)
    }

    /// Restrict an existing variable to integer values.
    pub fn mark_integer(&mut self, v: VarId) {
        self.vars[v.0].integer = true;
    }

    /// Add the linear constraint `sum(coef * var) cmp rhs`.
    ///
    /// Repeated variables in `terms` are summed. Zero coefficients are
    /// dropped.
    pub fn add_con(
        &mut self,
        name: impl Into<String>,
        terms: &[(VarId, f64)],
        cmp: Cmp,
        rhs: f64,
    ) -> ConId {
        assert!(rhs.is_finite(), "constraint rhs must be finite (omit unbounded rows)");
        let row = self.cons.len();
        self.cons.push(Constraint { name: name.into(), cmp, rhs });
        // Aggregate duplicates before inserting into the columns.
        let mut sorted: Vec<(usize, f64)> = terms.iter().map(|&(v, c)| (v.0, c)).collect();
        sorted.sort_unstable_by_key(|&(v, _)| v);
        let mut i = 0;
        while i < sorted.len() {
            let v = sorted[i].0;
            let mut coef = 0.0;
            while i < sorted.len() && sorted[i].0 == v {
                coef += sorted[i].1;
                i += 1;
            }
            assert!(!coef.is_nan(), "NaN coefficient in constraint");
            if coef != 0.0 {
                assert!(v < self.vars.len(), "constraint references unknown variable");
                self.cols[v].push((row, coef));
            }
        }
        ConId(row)
    }

    /// Change a variable's bounds (e.g. to fix a rounded binary, or to
    /// branch in branch-and-bound).
    pub fn set_bounds(&mut self, v: VarId, lb: f64, ub: f64) {
        assert!(lb <= ub, "set_bounds: {lb} > {ub}");
        self.vars[v.0].lb = lb;
        self.vars[v.0].ub = ub;
    }

    /// Change a variable's objective coefficient.
    pub fn set_obj(&mut self, v: VarId, obj: f64) {
        self.vars[v.0].obj = obj;
    }

    /// Change a constraint's right-hand side.
    pub fn set_rhs(&mut self, c: ConId, rhs: f64) {
        self.cons[c.0].rhs = rhs;
    }

    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    pub fn num_cons(&self) -> usize {
        self.cons.len()
    }

    pub fn var_bounds(&self, v: VarId) -> (f64, f64) {
        (self.vars[v.0].lb, self.vars[v.0].ub)
    }

    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0].name
    }

    pub fn var_is_integer(&self, v: VarId) -> bool {
        self.vars[v.0].integer
    }

    pub fn integer_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.vars.iter().enumerate().filter(|(_, v)| v.integer).map(|(i, _)| VarId(i))
    }

    /// Evaluate the objective at a point (length `num_vars`).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, xi)| v.obj * xi).sum()
    }

    /// Row activity `A_i · x` for constraint `c`.
    pub fn row_activity(&self, c: ConId, x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (j, col) in self.cols.iter().enumerate() {
            for &(row, coef) in col {
                if row == c.0 {
                    acc += coef * x[j];
                }
            }
        }
        acc
    }

    /// Maximum violation of any constraint or bound at `x`.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        for (j, v) in self.vars.iter().enumerate() {
            worst = worst.max(v.lb - x[j]).max(x[j] - v.ub);
        }
        let mut act = vec![0.0; self.cons.len()];
        for (j, col) in self.cols.iter().enumerate() {
            for &(row, coef) in col {
                act[row] += coef * x[j];
            }
        }
        for (i, con) in self.cons.iter().enumerate() {
            let viol = match con.cmp {
                Cmp::Le => act[i] - con.rhs,
                Cmp::Ge => con.rhs - act[i],
                Cmp::Eq => (act[i] - con.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} problem: {} vars ({} integer), {} constraints",
            match self.sense {
                Sense::Min => "min",
                Sense::Max => "max",
            },
            self.vars.len(),
            self.vars.iter().filter(|v| v.integer).count(),
            self.cons.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_basics() {
        let mut p = Problem::new(Sense::Max);
        let x = p.add_var("x", 0.0, 10.0, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
        let c = p.add_con("cap", &[(x, 1.0), (y, 1.0)], Cmp::Le, 5.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_cons(), 1);
        assert_eq!(p.objective_value(&[1.0, 2.0]), 5.0);
        assert_eq!(p.row_activity(c, &[1.0, 2.0]), 3.0);
        assert_eq!(p.var_name(x), "x");
        assert_eq!(p.var_name(y), "y");
    }

    #[test]
    fn duplicate_terms_are_summed() {
        let mut p = Problem::new(Sense::Min);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        let c = p.add_con("dup", &[(x, 1.0), (x, 2.0)], Cmp::Le, 3.0);
        assert_eq!(p.row_activity(c, &[1.0]), 3.0);
    }

    #[test]
    fn zero_coefficients_dropped() {
        let mut p = Problem::new(Sense::Min);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        let y = p.add_var("y", 0.0, 1.0, 1.0);
        p.add_con("z", &[(x, 0.0), (y, 1.0)], Cmp::Le, 1.0);
        assert!(p.cols[x.0].is_empty());
        assert_eq!(p.cols[y.0].len(), 1);
    }

    #[test]
    fn max_violation_flags_bound_and_row_violations() {
        let mut p = Problem::new(Sense::Min);
        let x = p.add_var("x", 0.0, 1.0, 0.0);
        p.add_con("c", &[(x, 1.0)], Cmp::Ge, 2.0);
        // x = 3 violates ub by 2; row satisfied.
        assert!((p.max_violation(&[3.0]) - 2.0).abs() < 1e-12);
        // x = 0.5 feasible for bounds, violates row by 1.5.
        assert!((p.max_violation(&[0.5]) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        let mut p = Problem::new(Sense::Min);
        p.add_var("x", 2.0, 1.0, 0.0);
    }
}
