//! Streaming sharded data plane.
//!
//! The batch runner ([`run_coordinated`](crate::netwide::run_coordinated))
//! materializes the whole trace and replays one engine per node. This
//! module replaces that with a pull-based pipeline: sessions are generated
//! on demand (no materialized trace), each node's work is split across
//! `shards` per-worker engines, and every shard engine uses the batched
//! §2.3 membership check ([`Engine::process_session_fast`]) so traffic
//! outside its manifest slice is charged without synthesizing packets.
//!
//! ## Why sharding preserves bit-identical results
//!
//! Sessions are assigned to shards by the keyed `BiSession` coordination
//! hash of their canonical tuple — the same orientation-invariant hash the
//! connection table keys on — so no two shards ever share a connection
//! record. Per-connection work is therefore identical to the batch run;
//! the only cross-shard state is the monotone per-host aggregates of Scan
//! and SYNFlood, which merge exactly (see
//! [`Analyzer`](crate::modules::Analyzer)`::absorb`). Shards merge in
//! ascending shard order per node, so the result is deterministic for any
//! worker count, and `tests/parallel_equivalence.rs` pins the merged
//! [`RunStats`](crate::engine::RunStats) bit-identical to the batch run.

use crate::engine::{CoordContext, Engine, Placement};
use crate::modules::EngineError;
use crate::netwide::{flush_metrics, NetworkRun};
use nwdp_core::nids::SamplingManifest;
use nwdp_core::{parallel, NidsDeployment};
use nwdp_hash::{FlowKeyKind, KeyedHasher};
use nwdp_obs::{self as obs, Histogram};
use nwdp_topo::{NodeId, PathDb};
use nwdp_traffic::Session;
use std::collections::BTreeSet;

/// Effective shard count for the streaming data plane: the `NWDP_SHARDS`
/// environment variable when set, else the parallel worker count (see
/// [`parallel::num_threads`]). Results are shard-count-invariant; the knob
/// only trades per-shard state size against merge work. An unparseable
/// value warns once on stderr (and bumps `config.invalid_env`) instead of
/// being silently ignored.
pub fn stream_shards() -> usize {
    parallel::env_count("NWDP_SHARDS").unwrap_or_else(parallel::num_threads)
}

/// Shard owning `session`: the keyed `BiSession` hash of its canonical
/// tuple scaled to `0..shards`. `BiSession` is orientation-invariant, so
/// every session sharing a connection-table record lands on one shard.
pub fn shard_of(hasher: &KeyedHasher, session: &Session, shards: usize) -> usize {
    let h = hasher.unit_hash(&session.tuple, FlowKeyKind::BiSession);
    // unit_hash < 1.0 strictly (u32 / 2^32); min guards the cast anyway.
    ((h * shards as f64) as usize).min(shards.saturating_sub(1))
}

/// Bucket bounds of the `engine.stream.pkt_ns` per-packet latency
/// histogram: geometric from 20 ns spanning into the tens of milliseconds.
/// Public so the throughput bench fetches the identical histogram.
pub fn pkt_latency_bounds() -> Vec<f64> {
    Histogram::exponential_bounds(20.0, 1.7, 28)
}

/// Run the coordinated deployment as a streaming data plane.
///
/// `source` is called once per (node, shard) worker and must return a
/// fresh session iterator over the same sequence each time (e.g. a closure
/// building a [`nwdp_traffic::SessionStream`]); workers filter it down to
/// their on-path, shard-owned slice. Produces a [`NetworkRun`]
/// bit-identical to `run_coordinated` over the materialized trace on the
/// same seed, for any thread or shard count.
///
/// When metrics are enabled, per-session wall time is recorded into the
/// `engine.stream.pkt_ns` histogram (normalized per packet) — the clock
/// reads make that pass slower, so throughput timing runs with metrics
/// off. Spans `engine.stream` / `engine.stream_shard` journal the fan-out
/// for `repro report`'s shard utilization table.
pub fn run_coordinated_stream<I, S>(
    dep: &NidsDeployment,
    manifest: &SamplingManifest,
    paths: &PathDb,
    source: S,
    placement: Placement,
    hasher: KeyedHasher,
    shards: usize,
) -> Result<NetworkRun, EngineError>
where
    I: Iterator<Item = Session>,
    S: Fn() -> I + Sync,
{
    assert_ne!(placement, Placement::Unmodified, "streaming run needs a coordinated placement");
    let shards = shards.max(1);
    let names: Vec<String> = dep.classes.iter().map(|c| c.name.clone()).collect();
    let _span = obs::span!("engine.stream", nodes = dep.num_nodes, shards = shards);
    let lat = if obs::enabled() {
        Some(obs::histogram("engine.stream.pkt_ns", &pkt_latency_bounds()))
    } else {
        None
    };
    let grid = parallel::par_map_grid(dep.num_nodes, shards, |j, shard| {
        let node = NodeId(j);
        let _span = obs::span!("engine.stream_shard", node = j, shard = shard);
        let coord = CoordContext::new(dep, manifest);
        let mut engine = Engine::new(node, placement, &names, Some(coord), hasher)?;
        for session in source() {
            if paths.path(session.src_node, session.dst_node).position(node).is_none() {
                continue;
            }
            if shards > 1 && shard_of(&hasher, &session, shards) != shard {
                continue;
            }
            match &lat {
                Some(lat) => {
                    let t0 = std::time::Instant::now();
                    engine.process_session_fast(&session);
                    let per_pkt =
                        t0.elapsed().as_nanos() as f64 / session.packet_count().max(1) as f64;
                    lat.observe(per_pkt);
                }
                None => engine.process_session_fast(&session),
            }
        }
        Ok(engine)
    });

    // Deterministic merge: shards fold into shard 0's engine in ascending
    // shard order, nodes stay in node order.
    let mut per_node = Vec::with_capacity(dep.num_nodes);
    for row in grid {
        let mut acc: Option<Engine<'_>> = None;
        for engine in row {
            let engine = engine?;
            acc = Some(match acc {
                None => engine,
                Some(mut merged) => {
                    merged.absorb_shard(engine);
                    merged
                }
            });
        }
        match acc {
            Some(merged) => per_node.push(merged.stats()),
            None => unreachable!("shards >= 1: every node row has an engine"),
        }
    }
    let mut alerts = BTreeSet::new();
    for st in &per_node {
        alerts.extend(st.alerts.iter().cloned());
    }
    let run = NetworkRun { per_node, alerts };
    if obs::enabled() {
        flush_metrics("stream", &run);
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwdp_core::nids::{generate_manifests, solve_nids_lp, NidsLpConfig, NodeCaps};
    use nwdp_core::{build_units, AnalysisClass};
    use nwdp_topo::internet2;
    use nwdp_traffic::{SessionStream, TraceConfig, TrafficMatrix, VolumeModel};

    // The full streaming-vs-batch bit-identity suite lives in
    // tests/parallel_equivalence.rs (it needs the LP crate); here we pin
    // the shard assignment itself.
    #[test]
    fn shard_assignment_is_orientation_invariant_and_in_range() {
        let topo = internet2();
        let tm = TrafficMatrix::gravity(&topo);
        let cfg = TraceConfig::new(2000, 21);
        let hasher = KeyedHasher::with_key(5);
        for shards in [1usize, 2, 7] {
            for mut s in SessionStream::new(&topo, &tm, &cfg) {
                let fwd = shard_of(&hasher, &s, shards);
                assert!(fwd < shards);
                s.tuple = s.tuple.reversed();
                assert_eq!(fwd, shard_of(&hasher, &s, shards), "BiSession must ignore direction");
            }
        }
    }

    #[test]
    fn merged_shards_cover_every_session_once() {
        let topo = internet2();
        let paths = nwdp_topo::PathDb::shortest_paths(&topo);
        let tm = TrafficMatrix::gravity(&topo);
        let vol = VolumeModel::internet2_baseline();
        let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
        let lp = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let assignment = solve_nids_lp(&dep, &lp).expect("lp solves");
        let manifest = generate_manifests(&dep, &assignment.d);
        let cfg = TraceConfig::new(1500, 17);
        let hasher = KeyedHasher::with_key(5);
        let trace = nwdp_traffic::generate_trace(&topo, &tm, &cfg);

        let one = run_coordinated_stream(
            &dep,
            &manifest,
            &paths,
            || SessionStream::new(&topo, &tm, &cfg),
            Placement::EventEngine,
            hasher,
            1,
        )
        .expect("stream runs");
        let four = run_coordinated_stream(
            &dep,
            &manifest,
            &paths,
            || SessionStream::new(&topo, &tm, &cfg),
            Placement::EventEngine,
            hasher,
            4,
        )
        .expect("stream runs");
        assert_eq!(one.alerts, four.alerts);
        for (a, b, node) in one.per_node.iter().zip(&four.per_node).map(|(a, b)| (a, b, a.node.0)) {
            assert_eq!(a.packets, b.packets, "node {node}");
            // Each node sees exactly its on-path packets regardless of
            // shard count.
            let expect: u64 =
                trace.onpath_sessions(&paths, a.node).map(|s| s.packet_count() as u64).sum();
            assert_eq!(a.packets, expect, "node {node}");
            assert_eq!(a.connections, b.connections, "node {node}");
            assert_eq!(a.cpu_cycles, b.cpu_cycles, "node {node}");
            assert_eq!(a.mem_peak, b.mem_peak, "node {node}");
        }
    }
}
