//! LP relaxation of the NIPS MILP (Fig 9, steps 1–2).
//!
//! Replacing `e_ij ∈ {0,1}` with `e_ij ∈ [0,1]` yields a (large) linear
//! program. Only the 3·N resource rows are materialized eagerly; the
//! `L × P` coverage rows (Eq 11) and the `L × Σ|P_k|` variable-upper-bound
//! rows (Eq 12) go through the lazy-row generator — at the optimum only a
//! small fraction of them bind, and the cutting-plane loop terminates with
//! a certified optimum of the *full* relaxation.

use super::model::NipsInstance;
use nwdp_lp::rowgen::{solve_with_lazy_rows_ctx, LazyRow, RowGenOpts, SolveContext};
use nwdp_lp::{Cmp, Problem, Sense, Status, VarId};

/// Index layout for the relaxation's variables.
#[derive(Debug, Clone)]
pub struct Layout {
    pub n_rules: usize,
    pub n_nodes: usize,
    /// `path_off[k]` = flat position offset of path `k`'s first node.
    pub path_off: Vec<usize>,
    /// Total on-path positions (`Σ_k |P_k|`).
    pub total_pos: usize,
}

impl Layout {
    pub fn new(inst: &NipsInstance) -> Self {
        let mut path_off = Vec::with_capacity(inst.paths.len());
        let mut acc = 0;
        for p in &inst.paths {
            path_off.push(acc);
            acc += p.nodes.len();
        }
        Layout { n_rules: inst.rules.len(), n_nodes: inst.num_nodes, path_off, total_pos: acc }
    }

    /// Flat index of `e_ij` among the e-variables.
    pub fn e(&self, rule: usize, node: usize) -> usize {
        rule * self.n_nodes + node
    }

    /// Flat index of `d_ikj` among the d-variables.
    pub fn d(&self, rule: usize, path: usize, pos: usize) -> usize {
        rule * self.total_pos + self.path_off[path] + pos
    }

    pub fn num_e(&self) -> usize {
        self.n_rules * self.n_nodes
    }

    pub fn num_d(&self) -> usize {
        self.n_rules * self.total_pos
    }
}

/// Solution of the LP relaxation.
#[derive(Debug, Clone)]
pub struct RelaxSolution {
    /// `OptLP`: the LP upper bound on any integral deployment.
    pub objective: f64,
    /// Fractional enables, indexed by [`Layout::e`].
    pub e: Vec<f64>,
    /// Fractional sampling, indexed by [`Layout::d`].
    pub d: Vec<f64>,
    pub layout: Layout,
    /// Row-generation statistics: (rows added, rounds).
    pub rowgen: (usize, usize),
}

/// Errors from the relaxation solve.
#[derive(Debug, Clone)]
pub enum RelaxError {
    NotConverged,
    SolverFailed(Status),
}

impl std::fmt::Display for RelaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelaxError::NotConverged => write!(f, "row generation did not converge"),
            RelaxError::SolverFailed(s) => write!(f, "LP solver failed: {s:?}"),
        }
    }
}

impl std::error::Error for RelaxError {}

/// Solve the LP relaxation to optimality.
pub fn solve_relaxation(
    inst: &NipsInstance,
    opts: &RowGenOpts,
) -> Result<RelaxSolution, RelaxError> {
    solve_relaxation_ctx(inst, opts, &mut SolveContext::new())
}

/// [`solve_relaxation`] with a cross-call [`SolveContext`]: repeated
/// relaxation solves over the same topology (capacity/parameter sweeps,
/// what-if provisioning) warm-start from the previous optimum's basis and
/// pre-materialize the lazy rows that were binding there.
pub fn solve_relaxation_ctx(
    inst: &NipsInstance,
    opts: &RowGenOpts,
    ctx: &mut SolveContext,
) -> Result<RelaxSolution, RelaxError> {
    // The relaxation LPs are extremely sparse (GUB/VUB rows of 2-6
    // nonzeros); the sparse PFI backend beats the dense inverse well below
    // the generic crossover, so force it.
    let mut opts = opts.clone();
    opts.lp.dense_row_limit = 0;
    // Predictive activation: coverage/VUB rows within 0.25 of binding get
    // materialized as soon as any violation appears, collapsing the
    // cutting-plane loop to a handful of rounds.
    if opts.near_margin == 0.0 {
        opts.near_margin = 0.25;
    }
    let opts = &opts;
    let layout = Layout::new(inst);
    let mut p = Problem::new(Sense::Max);

    // e variables (objective 0).
    let mut evars: Vec<VarId> = Vec::with_capacity(layout.num_e());
    for i in 0..layout.n_rules {
        for j in 0..layout.n_nodes {
            evars.push(p.add_var(format!("e_{i}_{j}"), 0.0, 1.0, 0.0));
        }
    }
    // d variables with drop-benefit objective coefficients.
    let mut dvars: Vec<VarId> = Vec::with_capacity(layout.num_d());
    for i in 0..layout.n_rules {
        for (k, path) in inst.paths.iter().enumerate() {
            for pos in 0..path.nodes.len() {
                dvars.push(p.add_var(format!("d_{i}_{k}_{pos}"), 0.0, 1.0, inst.weight(i, k, pos)));
            }
        }
    }

    // Eager resource rows (Eq 8, 9, 10). Infinite capacities mean the
    // constraint is absent (used by §3.5's TCAM-free setting).
    for j in 0..layout.n_nodes {
        if !inst.cam_cap[j].is_finite() {
            continue;
        }
        let cam: Vec<_> =
            (0..layout.n_rules).map(|i| (evars[layout.e(i, j)], inst.rules[i].cam_req)).collect();
        p.add_con(format!("cam_{j}"), &cam, Cmp::Le, inst.cam_cap[j]);
    }
    let mut mem_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); layout.n_nodes];
    let mut cpu_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); layout.n_nodes];
    for i in 0..layout.n_rules {
        for (k, path) in inst.paths.iter().enumerate() {
            for (pos, &node) in path.nodes.iter().enumerate() {
                let v = dvars[layout.d(i, k, pos)];
                mem_terms[node.index()].push((v, path.items * inst.rules[i].mem_per_item));
                cpu_terms[node.index()].push((v, path.pkts * inst.rules[i].cpu_per_pkt));
            }
        }
    }
    for j in 0..layout.n_nodes {
        if inst.mem_cap[j].is_finite() {
            p.add_con(format!("mem_{j}"), &mem_terms[j], Cmp::Le, inst.mem_cap[j]);
        }
        if inst.cpu_cap[j].is_finite() {
            p.add_con(format!("cpu_{j}"), &cpu_terms[j], Cmp::Le, inst.cpu_cap[j]);
        }
    }

    // Lazy rows: coverage (Eq 11) and VUB (Eq 12).
    let mut lazy = Vec::with_capacity(layout.n_rules * inst.paths.len() + layout.num_d());
    for i in 0..layout.n_rules {
        for (k, path) in inst.paths.iter().enumerate() {
            let cover: Vec<_> =
                (0..path.nodes.len()).map(|pos| (dvars[layout.d(i, k, pos)], 1.0)).collect();
            lazy.push(LazyRow::new(format!("cov_{i}_{k}"), cover, Cmp::Le, 1.0));
            for (pos, &node) in path.nodes.iter().enumerate() {
                lazy.push(LazyRow::new(
                    format!("vub_{i}_{k}_{pos}"),
                    vec![
                        (dvars[layout.d(i, k, pos)], 1.0),
                        (evars[layout.e(i, node.index())], -1.0),
                    ],
                    Cmp::Le,
                    0.0,
                ));
            }
        }
    }

    let res = solve_with_lazy_rows_ctx(&p, &lazy, opts, ctx);
    if res.solution.status != Status::Optimal {
        return Err(RelaxError::SolverFailed(res.solution.status));
    }
    if !res.converged {
        return Err(RelaxError::NotConverged);
    }
    let sol = res.solution;
    let e: Vec<f64> = evars.iter().map(|&v| sol.value(v).clamp(0.0, 1.0)).collect();
    let d: Vec<f64> = dvars.iter().map(|&v| sol.value(v).clamp(0.0, 1.0)).collect();
    Ok(RelaxSolution {
        objective: sol.objective,
        e,
        d,
        layout,
        rowgen: (res.rows_added, res.rounds),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwdp_topo::{internet2, PathDb};
    use nwdp_traffic::{MatchRates, TrafficMatrix, VolumeModel};

    fn small_instance(n_rules: usize, cap_frac: f64, seed: u64) -> NipsInstance {
        let t = internet2();
        let paths = PathDb::shortest_paths(&t);
        let tm = TrafficMatrix::gravity(&t);
        let vol = VolumeModel::internet2_baseline();
        let rates = MatchRates::uniform_001(n_rules, paths.all_pairs().count(), seed);
        NipsInstance::evaluation_setup(&t, &paths, &tm, &vol, n_rules, cap_frac, rates)
    }

    #[test]
    fn relaxation_solves_and_bounds() {
        let inst = small_instance(8, 0.25, 11);
        let sol = solve_relaxation(&inst, &RowGenOpts::default()).unwrap();
        assert!(sol.objective > 0.0);
        assert!(sol.objective <= inst.drop_everything_bound() + 1e-6);
        // e respects TCAM fractionally.
        for j in 0..inst.num_nodes {
            let used: f64 = (0..inst.rules.len()).map(|i| sol.e[sol.layout.e(i, j)]).sum();
            assert!(used <= inst.cam_cap[j] + 1e-6, "node {j}: {used}");
        }
        // d ≤ e everywhere (the lazy VUB rows must have been enforced).
        for i in 0..inst.rules.len() {
            for (k, path) in inst.paths.iter().enumerate() {
                for (pos, &node) in path.nodes.iter().enumerate() {
                    let dv = sol.d[sol.layout.d(i, k, pos)];
                    let ev = sol.e[sol.layout.e(i, node.index())];
                    assert!(dv <= ev + 1e-6, "d {dv} > e {ev}");
                }
            }
        }
        // Coverage ≤ 1.
        for i in 0..inst.rules.len() {
            for (k, path) in inst.paths.iter().enumerate() {
                let cov: f64 =
                    (0..path.nodes.len()).map(|pos| sol.d[sol.layout.d(i, k, pos)]).sum();
                assert!(cov <= 1.0 + 1e-6);
            }
        }
    }

    #[test]
    fn unconstrained_tcam_drops_everything() {
        // With cam_cap = all rules and huge mem/cpu, the relaxation should
        // achieve the drop-everything bound (drop at the ingress).
        let mut inst = small_instance(5, 1.0, 3);
        inst.mem_cap = vec![f64::INFINITY; inst.num_nodes];
        inst.cpu_cap = vec![f64::INFINITY; inst.num_nodes];
        let sol = solve_relaxation(&inst, &RowGenOpts::default()).unwrap();
        let bound = inst.drop_everything_bound();
        assert!((sol.objective - bound).abs() < 1e-6 * bound, "{} vs {bound}", sol.objective);
    }

    #[test]
    fn tighter_tcam_means_lower_bound() {
        let loose = small_instance(10, 0.3, 5);
        let tight = small_instance(10, 0.1, 5);
        let lo = solve_relaxation(&loose, &RowGenOpts::default()).unwrap();
        let ti = solve_relaxation(&tight, &RowGenOpts::default()).unwrap();
        assert!(ti.objective <= lo.objective + 1e-6);
    }
}
