/root/repo/target/release/deps/nwdp_obs-bc1ab937286320d6.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs

/root/repo/target/release/deps/libnwdp_obs-bc1ab937286320d6.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs

/root/repo/target/release/deps/libnwdp_obs-bc1ab937286320d6.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/registry.rs:
