/root/repo/target/debug/deps/simplex-95b6d94051537740.d: crates/lp/tests/simplex.rs

/root/repo/target/debug/deps/simplex-95b6d94051537740: crates/lp/tests/simplex.rs

crates/lp/tests/simplex.rs:
