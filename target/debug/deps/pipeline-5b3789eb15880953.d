/root/repo/target/debug/deps/pipeline-5b3789eb15880953.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-5b3789eb15880953: tests/pipeline.rs

tests/pipeline.rs:
