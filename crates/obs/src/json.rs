//! Hand-rolled JSON writer for metric snapshots plus a minimal parser,
//! so the smoke tests (and `repro --validate-metrics`) can check the
//! sidecar without any external dependency.

use crate::registry::SnapshotValue;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Serialize a snapshot into a single deterministic JSON object grouped by
/// metric kind:
///
/// ```json
/// { "version": 1,
///   "counters": {"name": 1},
///   "gauges": {"name": 0.5},
///   "timers": {"name": {"count":1,"total_ns":…,"min_ns":…,"max_ns":…,"mean_ns":…}},
///   "histograms": {"name": {"bounds":[…],"counts":[…],"count":…,"sum":…}} }
/// ```
pub fn snapshot_to_json(snap: &[(String, SnapshotValue)]) -> String {
    let mut counters = String::new();
    let mut gauges = String::new();
    let mut timers = String::new();
    let mut histograms = String::new();
    for (name, value) in snap {
        match value {
            SnapshotValue::Counter(v) => {
                push_entry(&mut counters, name, &v.to_string());
            }
            SnapshotValue::Gauge(v) => {
                push_entry(&mut gauges, name, &fmt_f64(*v));
            }
            SnapshotValue::Timer { count, total_ns, min_ns, max_ns, mean_ns } => {
                let obj = format!(
                    "{{\"count\":{count},\"total_ns\":{total_ns},\"min_ns\":{min_ns},\
                     \"max_ns\":{max_ns},\"mean_ns\":{}}}",
                    fmt_f64(*mean_ns)
                );
                push_entry(&mut timers, name, &obj);
            }
            SnapshotValue::Histogram { bounds, counts, count, sum, p50, p95, p99 } => {
                let bs: Vec<String> = bounds.iter().map(|&b| fmt_f64(b)).collect();
                let cs: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
                let obj = format!(
                    "{{\"bounds\":[{}],\"counts\":[{}],\"count\":{count},\"sum\":{},\
                     \"p50\":{},\"p95\":{},\"p99\":{}}}",
                    bs.join(","),
                    cs.join(","),
                    fmt_f64(*sum),
                    fmt_f64(*p50),
                    fmt_f64(*p95),
                    fmt_f64(*p99)
                );
                push_entry(&mut histograms, name, &obj);
            }
        }
    }
    format!(
        "{{\n\"version\":1,\n\"counters\":{{{counters}}},\n\"gauges\":{{{gauges}}},\n\
         \"timers\":{{{timers}}},\n\"histograms\":{{{histograms}}}\n}}\n"
    )
}

fn push_entry(buf: &mut String, name: &str, value: &str) {
    if !buf.is_empty() {
        buf.push(',');
    }
    buf.push('\n');
    let _ = write!(buf, "{}:{value}", quote(name));
}

/// JSON has no NaN/Infinity literals; exported as null.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` round-trips f64 and always includes a decimal point or
        // exponent, which keeps integers-as-floats unambiguous.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value for validation and test assertions.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Look up `path` like `"counters/simplex.iterations"` (keys split on
    /// `/`, so metric names containing dots work unescaped).
    pub fn get(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for key in path.split('/') {
            match cur {
                Json::Obj(map) => cur = map.get(key)?,
                _ => return None,
            }
        }
        Some(cur)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize back to JSON text. Object keys come out in `BTreeMap`
    /// order, numbers in `{:?}` round-trip form (non-finite as `null`),
    /// so `parse(render(v)) == v` for any finite-numbered value.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => out.push_str(&quote(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&quote(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset for debugging.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input came from &str, so valid).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SnapshotValue as V;

    #[test]
    fn snapshot_round_trips_through_parser() {
        let snap = vec![
            ("a.counter".to_string(), V::Counter(7)),
            ("b.gauge".to_string(), V::Gauge(1.5)),
            (
                "c.timer".to_string(),
                V::Timer { count: 2, total_ns: 40, min_ns: 10, max_ns: 30, mean_ns: 20.0 },
            ),
            (
                "d.hist".to_string(),
                V::Histogram {
                    bounds: vec![1.0, 2.0],
                    counts: vec![1, 0, 3],
                    count: 4,
                    sum: 9.25,
                    p50: 2.0,
                    p95: 2.0,
                    p99: 2.0,
                },
            ),
        ];
        let text = snapshot_to_json(&snap);
        let doc = parse(&text).expect("valid JSON");
        assert_eq!(doc.get("counters/a.counter").and_then(Json::as_f64), Some(7.0));
        assert_eq!(doc.get("gauges/b.gauge").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("timers/c.timer/mean_ns").and_then(Json::as_f64), Some(20.0));
        assert_eq!(doc.get("histograms/d.hist/sum").and_then(Json::as_f64), Some(9.25));
        assert_eq!(doc.get("histograms/d.hist/p95").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            doc.get("histograms/d.hist/counts"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(0.0), Json::Num(3.0)]))
        );
    }

    #[test]
    fn non_finite_gauge_exports_null() {
        let snap = vec![("bad".to_string(), V::Gauge(f64::NAN))];
        let text = snapshot_to_json(&snap);
        let doc = parse(&text).expect("valid JSON");
        assert_eq!(doc.get("gauges/bad"), Some(&Json::Null));
    }

    #[test]
    fn strings_escape_cleanly() {
        let snap = vec![("name\"with\\odd\nchars".to_string(), V::Counter(1))];
        let text = snapshot_to_json(&snap);
        let doc = parse(&text).expect("valid JSON");
        let counters = doc.get("counters").and_then(Json::as_obj).unwrap();
        assert!(counters.contains_key("name\"with\\odd\nchars"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }
}
