/root/repo/target/debug/deps/nips_round-8c87b84d01329213.d: crates/bench/benches/nips_round.rs

/root/repo/target/debug/deps/nips_round-8c87b84d01329213: crates/bench/benches/nips_round.rs

crates/bench/benches/nips_round.rs:
