/root/repo/target/debug/deps/proptest-49d15511fdc1f85c.d: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-49d15511fdc1f85c.rlib: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-49d15511fdc1f85c.rmeta: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs

crates/proptest/src/lib.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/strategy.rs:
