/root/repo/target/debug/deps/criterion-2ad7b48eaf7587a8.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-2ad7b48eaf7587a8.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
