//! Seeded network-fault injection plans for the distributed control
//! plane.
//!
//! A [`FaultPlan`] describes *what the network does to messages* on the
//! replay-fraction clock: per-link loss probability and bounded delay
//! (which reorders messages when delays differ), full partitions over
//! time windows, and hard node crashes. The plan is pure data — the
//! engine's transport consumes it with its own seeded RNG, so the same
//! plan + seed reproduces the same delivery schedule bit for bit.
//!
//! [`FaultPlan::from_schedule`] bridges the PR 4 scenario machinery: a
//! seeded [`FailureSchedule`] of crash/partition events becomes the
//! crash/partition part of a plan, layered under whatever link-level loss
//! and delay the caller configures. `CapacityDegraded` events have no
//! network-level meaning and are ignored by the bridge (capacity is the
//! `degrade` module's concern, not the transport's).

use crate::resilience::scenario::{FailureKind, FailureSchedule};
use nwdp_topo::NodeId;

/// Loss and delay of one (directed or undirected) link. Delay bounds are
/// replay fractions; a beat emitted at `t` arrives in
/// `[t + delay_min, t + delay_max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Probability each message on the link is dropped, in `[0, 1)`.
    pub drop_p: f64,
    /// Minimum transit delay.
    pub delay_min: f64,
    /// Maximum transit delay (`>= delay_min`). Unequal delays across
    /// messages are exactly what produces reordering.
    pub delay_max: f64,
}

impl LinkFault {
    /// A perfect link: lossless, fixed small delay.
    pub fn ideal() -> Self {
        LinkFault { drop_p: 0.0, delay_min: 0.001, delay_max: 0.001 }
    }

    /// A lossy link with jittered delay.
    pub fn lossy(drop_p: f64, delay_min: f64, delay_max: f64) -> Self {
        LinkFault {
            drop_p: drop_p.clamp(0.0, 0.999),
            delay_min,
            delay_max: delay_max.max(delay_min),
        }
    }
}

impl Default for LinkFault {
    fn default() -> Self {
        LinkFault::ideal()
    }
}

/// A full partition: the listed nodes exchange **no** messages with the
/// controller (or anyone outside the set) during `[from, until)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    pub nodes: Vec<NodeId>,
    pub from: f64,
    pub until: f64,
}

/// A complete fault-injection plan on the replay clock.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Default link behaviour controller ↔ node.
    pub link: LinkFault,
    /// Per-node overrides of the default link.
    pub overrides: Vec<(NodeId, LinkFault)>,
    /// Partition windows.
    pub partitions: Vec<Partition>,
    /// Hard crashes: `(node, at)` — the node emits and receives nothing
    /// from `at` onward.
    pub crashes: Vec<(NodeId, f64)>,
    /// Seed for the transport's drop/delay draws.
    pub seed: u64,
}

impl FaultPlan {
    /// No faults at all: ideal links, no partitions, no crashes.
    pub fn clean(seed: u64) -> Self {
        FaultPlan {
            link: LinkFault::ideal(),
            overrides: Vec::new(),
            partitions: Vec::new(),
            crashes: Vec::new(),
            seed,
        }
    }

    /// Uniform lossy links, no partitions or crashes.
    pub fn lossy(drop_p: f64, delay_min: f64, delay_max: f64, seed: u64) -> Self {
        FaultPlan { link: LinkFault::lossy(drop_p, delay_min, delay_max), ..FaultPlan::clean(seed) }
    }

    /// Bridge from a PR 4 [`FailureSchedule`]: crash events become hard
    /// crashes, partition events become single-node partition windows,
    /// and capacity-degradation events are dropped (no network meaning).
    /// `link` supplies the loss/delay layer the schedule never modelled.
    pub fn from_schedule(schedule: &FailureSchedule, link: LinkFault, seed: u64) -> Self {
        let mut plan = FaultPlan { link, ..FaultPlan::clean(seed) };
        for ev in &schedule.events {
            match ev.kind {
                FailureKind::Crash => plan.crashes.push((ev.node, ev.at)),
                FailureKind::Partition { until } => {
                    plan.partitions.push(Partition { nodes: vec![ev.node], from: ev.at, until })
                }
                FailureKind::CapacityDegraded { .. } => {}
            }
        }
        plan
    }

    /// Effective link fault for messages to/from `node`.
    pub fn link(&self, node: NodeId) -> LinkFault {
        self.overrides.iter().find(|(n, _)| *n == node).map(|(_, l)| *l).unwrap_or(self.link)
    }

    /// Has `node` hard-crashed by `now`?
    pub fn node_dead(&self, node: NodeId, now: f64) -> bool {
        self.crashes.iter().any(|&(n, at)| n == node && now >= at)
    }

    /// Is `node` inside an active partition window at `now`?
    pub fn partitioned(&self, node: NodeId, now: f64) -> bool {
        self.partitions.iter().any(|p| p.nodes.contains(&node) && now >= p.from && now < p.until)
    }

    /// Is the controller ↔ `node` path severed at `now` (crash or
    /// partition)? Loss still applies on top of this for live paths.
    pub fn cut(&self, node: NodeId, now: f64) -> bool {
        self.node_dead(node, now) || self.partitioned(node, now)
    }

    /// Nodes the plan ever crashes or partitions — the ground-truth
    /// blind set for coverage floors.
    pub fn disturbed_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.crashes.iter().map(|&(n, _)| n).collect();
        for p in &self.partitions {
            nodes.extend(p.nodes.iter().copied());
        }
        nodes.sort_by_key(|n| n.index());
        nodes.dedup();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::scenario::FailureScenario;

    #[test]
    fn cut_tracks_crashes_and_partition_windows() {
        let mut plan = FaultPlan::clean(7);
        plan.crashes.push((NodeId(3), 0.4));
        plan.partitions.push(Partition { nodes: vec![NodeId(7)], from: 0.5, until: 0.75 });

        assert!(!plan.cut(NodeId(3), 0.39));
        assert!(plan.cut(NodeId(3), 0.4));
        assert!(plan.cut(NodeId(3), 0.99), "crashes never heal");

        assert!(!plan.cut(NodeId(7), 0.49));
        assert!(plan.cut(NodeId(7), 0.5));
        assert!(plan.cut(NodeId(7), 0.74));
        assert!(!plan.cut(NodeId(7), 0.75), "partition heals at `until`");

        assert!(!plan.cut(NodeId(1), 0.6));
        assert_eq!(plan.disturbed_nodes(), vec![NodeId(3), NodeId(7)]);
    }

    #[test]
    fn per_node_override_shadows_the_default_link() {
        let mut plan = FaultPlan::lossy(0.1, 0.001, 0.004, 11);
        plan.overrides.push((NodeId(2), LinkFault::ideal()));
        assert_eq!(plan.link(NodeId(2)), LinkFault::ideal());
        assert!((plan.link(NodeId(5)).drop_p - 0.1).abs() < 1e-12);
        // Degenerate delay bounds are repaired, drop_p clamped below 1.
        let l = LinkFault::lossy(1.5, 0.01, 0.001);
        assert!(l.drop_p < 1.0);
        assert!(l.delay_max >= l.delay_min);
    }

    #[test]
    fn schedule_bridge_maps_crash_and_partition_and_drops_capacity() {
        let schedule = FailureSchedule {
            events: vec![
                FailureScenario { node: NodeId(1), at: 0.2, kind: FailureKind::Crash },
                FailureScenario {
                    node: NodeId(4),
                    at: 0.3,
                    kind: FailureKind::Partition { until: 0.6 },
                },
                FailureScenario {
                    node: NodeId(5),
                    at: 0.4,
                    kind: FailureKind::CapacityDegraded { factor: 0.5 },
                },
            ],
        };
        let plan = FaultPlan::from_schedule(&schedule, LinkFault::lossy(0.05, 0.001, 0.002), 42);
        assert_eq!(plan.crashes, vec![(NodeId(1), 0.2)]);
        assert_eq!(
            plan.partitions,
            vec![Partition { nodes: vec![NodeId(4)], from: 0.3, until: 0.6 }]
        );
        // Capacity degradation has no transport meaning.
        assert_eq!(plan.disturbed_nodes(), vec![NodeId(1), NodeId(4)]);
        assert!((plan.link(NodeId(5)).drop_p - 0.05).abs() < 1e-12);
        assert_eq!(plan.seed, 42);
    }
}
