/root/repo/target/debug/deps/hashing-12caf4ca6b41f96c.d: crates/bench/benches/hashing.rs Cargo.toml

/root/repo/target/debug/deps/libhashing-12caf4ca6b41f96c.rmeta: crates/bench/benches/hashing.rs Cargo.toml

crates/bench/benches/hashing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
