/root/repo/target/debug/deps/warmstart-7063fc69a2359b1e.d: crates/lp/tests/warmstart.rs

/root/repo/target/debug/deps/warmstart-7063fc69a2359b1e: crates/lp/tests/warmstart.rs

crates/lp/tests/warmstart.rs:
